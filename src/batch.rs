//! The parallel batch engine behind `pgvn batch`.
//!
//! A batch is a list of named routine sources processed independently:
//! each routine is compiled, pushed through the resilient degradation
//! ladder ([`Pipeline::optimize_resilient_with`]), and classified into a
//! per-routine record. Workers are `std::thread::scope` threads, each
//! owning a private [`GvnContext`] so the whole shard it processes is
//! allocation-amortized, plus a private record buffer so no worker ever
//! blocks on another's output.
//!
//! ## Determinism
//!
//! Parallel and sequential runs produce **byte-identical** reports.
//! Work is handed out through a shared atomic cursor, so *which* worker
//! processes a given routine varies from run to run — but every routine
//! is independent (its own compiled [`Function`], a context wiped by
//! `prepare()` at every analysis run) and its record depends only on its
//! input, so the records themselves are identical no matter which thread
//! produced them. Records are merged back in original input order, and
//! the aggregate [`GvnStats::merge`] is associative and applied in that
//! same order, so `--jobs 1` and `--jobs N` agree byte for byte. Nothing
//! in a record derives from wall-clock time or scheduling.
//!
//! Metrics keep that invariant by living in two domains. Each worker
//! owns a private [`MetricsRegistry`] whose per-routine deltas (filtered
//! to [`Metric::stable`] metrics — the subset independent of context
//! history) land in the record JSON and merge into
//! [`BatchReport::metrics`]; both are byte-identical at any `--jobs`.
//! Scheduling- and wall-clock-dependent measurements (per-worker shard
//! sizes, per-routine nanoseconds, merge wait) go to a separate shared
//! timing registry surfaced as [`BatchReport::timing`] and — only when
//! [`BatchOptions::timings`] is set — as `wall_nanos` in the records.
//!
//! [`Function`]: pgvn_ir::Function

use crate::prelude::*;
use pgvn_core::GvnContext;
use pgvn_ir::DiagnosticEngine;
use pgvn_telemetry::json::JsonWriter;
use pgvn_telemetry::{Metric, MetricsRegistry, MetricsSnapshot, Telemetry};
use pgvn_transform::{check_function_with, AnalysisManager, CheckOptions};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// One routine to process: a display name and its source text (or the
/// I/O error that prevented reading it — unreadable inputs become
/// classified records, not early exits).
#[derive(Clone, Debug)]
pub struct BatchInput {
    /// Display name used in records and diagnostics.
    pub name: String,
    /// Source text, or the I/O error message from gathering it.
    pub source: Result<String, String>,
}

/// Tuning for one [`run_batch`] call.
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// The GVN configuration (budgets and fault plan applied).
    pub cfg: GvnConfig,
    /// Pipeline rounds per routine.
    pub rounds: usize,
    /// Explicit pass sequence (`--passes gvn,pre,gvn`). `None` runs the
    /// default pipeline: `gvn` repeated `rounds` times, byte-identical
    /// to the pre-pass-manager engine.
    pub passes: Option<PassSpec>,
    /// Worker threads. Clamped to at least one; values above the input
    /// count just leave the extra workers idle.
    pub jobs: usize,
    /// Include per-routine wall-clock time (`wall_nanos`) in the JSONL
    /// records. Off by default: wall time is scheduling-dependent, so
    /// enabling it forfeits byte-identical output across `--jobs`.
    pub timings: bool,
    /// Run a pilot routine through each worker's context before it
    /// claims real work, so table growth happens off the measured path.
    /// Records are context-history-independent, so this never changes
    /// report bytes — only the shard wall time.
    pub warm_start: bool,
    /// Run the full lint suite (`pgvn check`) over each routine's
    /// optimized output as a post-pass gate. Adds a `check` field to
    /// classified records; error-severity diagnostics make the batch
    /// unclean. Off by default so default output bytes are unchanged.
    pub check: bool,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            cfg: GvnConfig::full(),
            rounds: 2,
            passes: None,
            jobs: 1,
            timings: false,
            warm_start: true,
            check: false,
        }
    }
}

/// Grows a fresh context's tables to working size by pushing one
/// deterministic pilot routine (larger than the generator's default)
/// through the full resilient pipeline. Shared by the batch and serve
/// worker pools; the pilot's report is discarded.
pub fn warm_context(ctx: &mut GvnContext) {
    let gcfg =
        crate::workload::GenConfig { seed: 0xC0FFEE, target_stmts: 96, ..Default::default() };
    let routine = crate::workload::generate_routine("warm_pilot", &gcfg);
    let src = crate::lang::print_routine(&routine);
    let mut func = compile(&src, SsaStyle::Pruned).expect("pilot routine always compiles");
    let pipeline = Pipeline::new(GvnConfig::full()).rounds(2);
    let _ = pipeline.optimize_resilient_with(ctx, &mut func);
}

/// How one routine ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutineStatus {
    /// The ladder committed a changed function.
    Optimized,
    /// The ladder committed, but nothing changed.
    Identity,
    /// The ladder exhausted its rungs and fell back to identity.
    Rejected,
    /// The source failed to read, parse or compile.
    InputError,
    /// A panic escaped `optimize_resilient` — an API-contract violation,
    /// classified at the batch boundary rather than crashing the batch.
    EscapedPanic,
}

/// One routine's classified outcome.
#[derive(Clone, Debug)]
pub struct RoutineRecord {
    /// The input's display name.
    pub name: String,
    /// Classification of the outcome.
    pub status: RoutineStatus,
    /// The JSONL record line (no trailing newline), byte-stable across
    /// worker counts.
    pub json: String,
    /// A one-line stderr diagnostic for error outcomes.
    pub diagnostic: Option<String>,
    /// The routine's GVN statistics, when the ladder produced them.
    pub gvn_stats: Option<GvnStats>,
    /// Panics the degradation ladder absorbed (rung failures classified
    /// as `panicked`) while producing this record.
    pub absorbed_panics: u32,
    /// Error-severity diagnostics the `--check` gate found on this
    /// routine's optimized output (always zero when the gate is off).
    pub check_errors: u32,
    /// Wall-clock nanoseconds spent processing this routine. Always
    /// measured; rendered into the JSONL line only on request (see
    /// [`RoutineRecord::json_line`]).
    pub wall_nanos: u64,
}

impl RoutineRecord {
    /// The JSONL line for this record. With `timings` the
    /// scheduling-dependent `wall_nanos` field is spliced in; without it
    /// the line is exactly [`RoutineRecord::json`], byte-stable across
    /// worker counts.
    pub fn json_line(&self, timings: bool) -> String {
        if !timings {
            return self.json.clone();
        }
        let body = self.json.strip_suffix('}').unwrap_or(&self.json);
        format!("{body},\"wall_nanos\":{}}}", self.wall_nanos)
    }
}

/// The merged outcome of a batch: per-routine records in input order,
/// the classification counts, and the [`GvnStats::merge`] aggregate.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-routine records, in original input order.
    pub records: Vec<RoutineRecord>,
    /// Routines whose ladder committed a changed function.
    pub optimized: u64,
    /// Routines whose ladder committed an unchanged function.
    pub identity: u64,
    /// Routines whose ladder fell back to identity.
    pub rejected: u64,
    /// Routines whose input failed to read or compile.
    pub input_errors: u64,
    /// Routines that violated the no-panic contract.
    pub escaped_panics: u64,
    /// Error-severity diagnostics found by the `--check` gate, summed
    /// across routines (always zero when the gate is off).
    pub check_errors: u64,
    /// All per-routine [`GvnStats`] merged in input order.
    pub merged_stats: GvnStats,
    /// Per-worker analysis metrics, merged and filtered to the stable
    /// (scheduling-independent) subset — identical at any `--jobs`.
    pub metrics: MetricsSnapshot,
    /// Scheduling/timing measurements: routines per worker (shard
    /// balance), per-routine nanoseconds, merge wait. Varies run to run;
    /// consumed by `pgvn perf`, never by the deterministic reports.
    pub timing: MetricsSnapshot,
    /// Routines processed per worker, sorted ascending — the shard
    /// imbalance profile behind [`Metric::BatchWorkerRoutines`].
    pub worker_routines: Vec<u64>,
}

impl BatchReport {
    /// Whether every routine optimized cleanly (the batch exit-code
    /// criterion: no rejections, input errors, escaped panics, or
    /// `--check` error diagnostics).
    pub fn is_clean(&self) -> bool {
        self.rejected == 0
            && self.input_errors == 0
            && self.escaped_panics == 0
            && self.check_errors == 0
    }

    /// The `batch_summary` JSONL record (no trailing newline).
    pub fn summary_json(&self, seed: u64) -> String {
        let mut w = JsonWriter::object();
        w.field_str("event", "batch_summary")
            .field_u64("seed", seed)
            .field_u64("routines", self.records.len() as u64)
            .field_u64("optimized", self.optimized)
            .field_u64("identity", self.identity)
            .field_u64("rejected", self.rejected)
            .field_u64("input_errors", self.input_errors)
            .field_u64("escaped_panics", self.escaped_panics)
            .field_u64("check_errors", self.check_errors);
        w.finish()
    }

    /// The merged-statistics JSONL record (no trailing newline): the
    /// batch-wide [`GvnStats::merge`] aggregate plus the classification
    /// counts, independent of worker count.
    pub fn stats_json(&self, seed: u64) -> String {
        let mut w = JsonWriter::object();
        w.field_str("event", "batch_stats")
            .field_u64("seed", seed)
            .field_u64("routines", self.records.len() as u64)
            .field_u64("optimized", self.optimized)
            .field_u64("identity", self.identity)
            .field_u64("rejected", self.rejected)
            .field_u64("input_errors", self.input_errors)
            .field_u64("escaped_panics", self.escaped_panics)
            .field_u64("check_errors", self.check_errors)
            .field_raw("gvn_stats", &self.merged_stats.to_json())
            .field_raw("metrics", &self.metrics.to_json());
        w.finish()
    }

    /// The timing-domain JSON record: shard balance, per-routine wall
    /// time, and merge wait. Deliberately separate from
    /// [`BatchReport::stats_json`] because every field here varies with
    /// scheduling and clock.
    pub fn timing_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_str("event", "batch_timing").field_u64("jobs", self.worker_routines.len() as u64);
        let workers = format!(
            "[{}]",
            self.worker_routines.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
        );
        w.field_raw("worker_routines", &workers);
        w.field_raw("metrics", &self.timing.to_json());
        w.finish()
    }
}

/// The `check` object embedded in a classified record when the
/// [`BatchOptions::check`] gate is on: severity counts plus the full
/// sorted diagnostic list.
fn check_json(engine: &DiagnosticEngine) -> String {
    let mut w = JsonWriter::object();
    w.field_u64("errors", engine.error_count() as u64)
        .field_u64("warns", engine.warn_count() as u64)
        .field_u64("advisories", engine.advisory_count() as u64)
        .field_raw("diagnostics", &engine.to_json_array());
    w.finish()
}

/// Runs the full lint suite over one function, recording the
/// per-severity diagnostic counters (stable domain) into `reg`. Shared
/// by the batch/serve `--check` gate and `pgvn check` itself.
pub(crate) fn run_check(
    ctx: &mut GvnContext,
    reg: &MetricsRegistry,
    func: &Function,
    opts: &CheckOptions,
) -> DiagnosticEngine {
    let mut analyses = AnalysisManager::new();
    let engine = check_function_with(ctx, &mut analyses, func, opts);
    reg.add(Metric::CheckDiagnosticsError, engine.error_count() as u64);
    reg.add(Metric::CheckDiagnosticsWarn, engine.warn_count() as u64);
    reg.add(Metric::CheckDiagnosticsAdvisory, engine.advisory_count() as u64);
    engine
}

/// Compiles and optimizes one routine against a worker's private
/// context, producing its classified record. This is the unit of work a
/// batch distributes; everything in the record except `wall_nanos`
/// depends only on `(input, opts)`, never on the worker or the schedule
/// — the metrics delta embedded in the JSON is filtered to the stable
/// subset for exactly that reason.
pub(crate) fn process_one(
    ctx: &mut GvnContext,
    reg: &MetricsRegistry,
    input: &BatchInput,
    opts: &BatchOptions,
) -> RoutineRecord {
    let t0 = Instant::now();
    let mut w = JsonWriter::object();
    w.field_str("event", "routine").field_str("name", &input.name);
    let func = input
        .source
        .as_ref()
        .map_err(|e| e.clone())
        .and_then(|s| compile(s, SsaStyle::Pruned).map_err(|e| e.to_string()));
    match func {
        Err(e) => {
            w.field_str("status", "input_error").field_str("detail", &e);
            RoutineRecord {
                name: input.name.clone(),
                status: RoutineStatus::InputError,
                json: w.finish(),
                diagnostic: Some(format!("pgvn batch: {}: input error: {e}", input.name)),
                gvn_stats: None,
                absorbed_panics: 0,
                check_errors: 0,
                wall_nanos: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            }
        }
        Ok(mut f) => {
            let before = reg.snapshot();
            // The API contract says optimize_resilient never panics; the
            // batch boundary still catches, so a violation is a
            // classified record (and a batch failure), not a crash. The
            // context is unwind-safe here for the same reason the ladder
            // itself may catch over it: every analysis run begins with
            // `prepare()`, which rebuilds all scratch state from zero.
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                let mut tel = Telemetry::off();
                tel.attach_metrics(reg);
                let mut pipeline = Pipeline::new(opts.cfg.clone()).rounds(opts.rounds);
                if let Some(spec) = &opts.passes {
                    pipeline = pipeline.passes(spec.clone());
                }
                let rep = pipeline.optimize_resilient_traced_with(ctx, &mut f, &mut tel);
                (rep, f.num_insts())
            }));
            match attempt {
                Ok((rep, insts)) => {
                    let status = match rep.outcome.kind() {
                        "optimized" => RoutineStatus::Optimized,
                        "identity" => RoutineStatus::Identity,
                        _ => RoutineStatus::Rejected,
                    };
                    let absorbed_panics =
                        rep.failures.iter().filter(|f| f.error.kind() == "panicked").count() as u32;
                    // The post-pass gate lints the committed output. It
                    // runs before the delta snapshot so its per-severity
                    // counters (stable domain) land in the record.
                    let check =
                        opts.check.then(|| run_check(ctx, reg, &f, &CheckOptions::default()));
                    let delta = reg.snapshot().delta(&before).stable_only();
                    w.field_str("status", "classified")
                        .field_u64("insts", insts as u64)
                        .field_raw("resilience", &rep.to_json())
                        .field_raw("metrics", &delta.to_json());
                    if let Some(engine) = &check {
                        w.field_raw("check", &check_json(engine));
                    }
                    let check_errors = check.as_ref().map_or(0, |e| e.error_count() as u32);
                    let diagnostic = (check_errors > 0).then(|| {
                        format!(
                            "pgvn batch: {}: check: {check_errors} error diagnostic(s) on \
                             optimized output",
                            input.name
                        )
                    });
                    RoutineRecord {
                        name: input.name.clone(),
                        status,
                        json: w.finish(),
                        diagnostic,
                        gvn_stats: Some(rep.report.gvn_stats),
                        absorbed_panics,
                        check_errors,
                        wall_nanos: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    }
                }
                Err(_) => {
                    w.field_str("status", "escaped_panic");
                    RoutineRecord {
                        name: input.name.clone(),
                        status: RoutineStatus::EscapedPanic,
                        json: w.finish(),
                        diagnostic: Some(format!(
                            "pgvn batch: {}: PANIC escaped optimize_resilient",
                            input.name
                        )),
                        gvn_stats: None,
                        absorbed_panics: 0,
                        check_errors: 0,
                        wall_nanos: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    }
                }
            }
        }
    }
}

/// Processes every input and merges the records in input order.
///
/// With `opts.jobs > 1`, inputs are sharded dynamically over scoped
/// worker threads, each with a private [`GvnContext`]; see the module
/// docs for why the output is identical to a sequential run. The caller
/// owns panic-hook policy — `pgvn batch` silences the hook so injected
/// faults don't spray backtraces, but library callers keep theirs.
pub fn run_batch(inputs: &[BatchInput], opts: &BatchOptions) -> BatchReport {
    let jobs = opts.jobs.max(1).min(inputs.len().max(1));
    let mut slots: Vec<Option<RoutineRecord>> = Vec::new();
    slots.resize_with(inputs.len(), || None);
    let cursor = AtomicUsize::new(0);
    // The timing registry is shared (lock-free) across workers; per-run
    // analysis metrics live in per-worker registries so per-record
    // deltas cannot see another worker's increments.
    let timing_reg = MetricsRegistry::new();
    let mut metrics = MetricsSnapshot::default();
    let mut worker_routines: Vec<u64> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    let mut ctx = GvnContext::new();
                    if opts.warm_start {
                        warm_context(&mut ctx);
                    }
                    let reg = MetricsRegistry::new();
                    let mut produced = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(input) = inputs.get(i) else { break };
                        let rec = process_one(&mut ctx, &reg, input, opts);
                        timing_reg.add(Metric::BatchRoutines, 1);
                        timing_reg.observe(Metric::BatchRoutineNanos, rec.wall_nanos);
                        produced.push((i, rec));
                    }
                    timing_reg.observe(Metric::BatchWorkerRoutines, produced.len() as u64);
                    (produced, reg.snapshot())
                })
            })
            .collect();
        let join_t0 = Instant::now();
        for h in handles {
            let (produced, snap) = h.join().expect("batch worker panicked outside catch_unwind");
            worker_routines.push(produced.len() as u64);
            metrics.merge(&snap);
            for (i, rec) in produced {
                slots[i] = Some(rec);
            }
        }
        timing_reg.add(
            Metric::BatchMergeWaitNanos,
            u64::try_from(join_t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
    });
    worker_routines.sort_unstable();

    let records: Vec<RoutineRecord> =
        slots.into_iter().map(|r| r.expect("every input produces a record")).collect();
    let mut report = BatchReport {
        records,
        optimized: 0,
        identity: 0,
        rejected: 0,
        input_errors: 0,
        escaped_panics: 0,
        check_errors: 0,
        merged_stats: GvnStats::default(),
        metrics: metrics.stable_only(),
        timing: timing_reg.snapshot(),
        worker_routines,
    };
    for rec in &report.records {
        match rec.status {
            RoutineStatus::Optimized => report.optimized += 1,
            RoutineStatus::Identity => report.identity += 1,
            RoutineStatus::Rejected => report.rejected += 1,
            RoutineStatus::InputError => report.input_errors += 1,
            RoutineStatus::EscapedPanic => report.escaped_panics += 1,
        }
        report.check_errors += u64::from(rec.check_errors);
        if let Some(stats) = &rec.gvn_stats {
            report.merged_stats.merge(stats);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_inputs(n: u64, seed: u64) -> Vec<BatchInput> {
        (0..n)
            .map(|i| {
                let gen_seed = crate::oracle::mix64(seed ^ crate::oracle::mix64(i));
                let gcfg = crate::workload::GenConfig { seed: gen_seed, ..Default::default() };
                let routine = crate::workload::generate_routine(&format!("batch_{i}"), &gcfg);
                BatchInput {
                    name: format!("batch_{i}"),
                    source: Ok(crate::lang::print_routine(&routine)),
                }
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_byte_for_byte() {
        let inputs = gen_inputs(12, 2002);
        let seq = run_batch(&inputs, &BatchOptions { jobs: 1, ..Default::default() });
        let par = run_batch(&inputs, &BatchOptions { jobs: 4, ..Default::default() });
        let lines = |r: &BatchReport| {
            r.records.iter().map(|rec| rec.json.clone()).collect::<Vec<_>>().join("\n")
        };
        assert_eq!(lines(&seq), lines(&par));
        assert_eq!(seq.summary_json(2002), par.summary_json(2002));
        assert_eq!(seq.stats_json(2002), par.stats_json(2002));
        assert_eq!(seq.merged_stats, par.merged_stats);
        assert_eq!(seq.metrics, par.metrics, "stable metrics are worker-count independent");
        assert!(seq.metrics.value(Metric::DriverRuns) > 0, "metrics actually recorded");
    }

    #[test]
    fn timing_domain_is_kept_out_of_deterministic_output() {
        let inputs = gen_inputs(6, 5);
        let report = run_batch(&inputs, &BatchOptions { jobs: 2, ..Default::default() });
        // Shard sizes land in the timing snapshot and worker profile,
        // never in records or stable metrics.
        assert_eq!(report.worker_routines.iter().sum::<u64>(), 6);
        assert_eq!(report.timing.value(Metric::BatchRoutines), 6);
        assert_eq!(report.timing.count(Metric::BatchRoutineNanos), 6);
        assert!(report.metrics.is_zero(Metric::BatchRoutines));
        assert!(report.metrics.is_zero(Metric::InternerTableGrowths));
        assert!(!report.stats_json(5).contains("batch_routine_nanos"));
        assert!(report.timing_json().contains("batch_routine_nanos"));
        for rec in &report.records {
            assert!(!rec.json.contains("wall_nanos"));
            assert_eq!(rec.json_line(false), rec.json);
            let timed = rec.json_line(true);
            assert!(timed.contains("\"wall_nanos\":"), "{timed}");
            pgvn_telemetry::json::parse(&timed).expect("timed line stays valid JSON");
            assert!(rec.json.contains("\"metrics\":"), "stable delta embedded in record");
        }
    }

    #[test]
    fn records_keep_input_order_and_classify_errors() {
        let mut inputs = gen_inputs(3, 7);
        inputs.insert(
            1,
            BatchInput { name: "broken".to_string(), source: Ok("routine nope {".to_string()) },
        );
        inputs.push(BatchInput {
            name: "unreadable".to_string(),
            source: Err("permission denied".to_string()),
        });
        let report = run_batch(&inputs, &BatchOptions { jobs: 3, ..Default::default() });
        let names: Vec<&str> = report.records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["batch_0", "broken", "batch_1", "batch_2", "unreadable"]);
        assert_eq!(report.input_errors, 2);
        assert_eq!(report.records[1].status, RoutineStatus::InputError);
        assert!(report.records[4].json.contains("permission denied"));
        assert!(!report.is_clean());
    }

    #[test]
    fn merged_stats_accumulate_across_routines() {
        let inputs = gen_inputs(4, 11);
        let whole = run_batch(&inputs, &BatchOptions::default());
        let mut expected = GvnStats::default();
        for rec in &whole.records {
            expected.merge(rec.gvn_stats.as_ref().expect("generated routines classify"));
        }
        assert_eq!(whole.merged_stats, expected);
        assert!(whole.merged_stats.passes > 0);
        assert!(whole.is_clean());
    }

    #[test]
    fn check_gate_embeds_diagnostics_and_stays_deterministic() {
        let inputs = gen_inputs(8, 42);
        let gated = |jobs| BatchOptions { jobs, check: true, ..Default::default() };
        let seq = run_batch(&inputs, &gated(1));
        let par = run_batch(&inputs, &gated(4));
        let lines = |r: &BatchReport| {
            r.records.iter().map(|rec| rec.json.clone()).collect::<Vec<_>>().join("\n")
        };
        assert_eq!(lines(&seq), lines(&par), "check gate keeps --jobs byte-identity");
        assert_eq!(seq.stats_json(42), par.stats_json(42));
        assert_eq!(seq.check_errors, 0, "optimized generated routines lint clean");
        assert!(seq.is_clean());
        for rec in &seq.records {
            assert!(rec.json.contains("\"check\":{\"errors\":0"), "{}", rec.json);
            pgvn_telemetry::json::parse(&rec.json).expect("gated record stays valid JSON");
        }
        assert!(
            seq.metrics.value(Metric::CheckDiagnosticsError) == 0,
            "no error diagnostics recorded"
        );
        let off = run_batch(&inputs, &BatchOptions::default());
        assert!(
            off.records.iter().all(|r| !r.json.contains("\"check\":")),
            "default output bytes carry no check field"
        );
    }

    #[test]
    fn zero_jobs_and_empty_input_are_harmless() {
        let report = run_batch(&[], &BatchOptions { jobs: 0, ..Default::default() });
        assert!(report.records.is_empty());
        assert!(report.is_clean());
        assert_eq!(report.merged_stats, GvnStats::default());
    }
}
