//! The engine behind `pgvn check`: the lint suite applied to a list of
//! named routine sources.
//!
//! This is the static-analysis front door. Each input is parsed and run
//! through [`pgvn_transform::check`]'s full suite (structural verifier
//! codes, SSA dominance, φ-cycles, CFG hygiene, type/width checks, and
//! the GVN-backed predication lints); unparseable sources become a
//! single [`PARSE_ERROR`] diagnostic so a corpus sweep never aborts on
//! its first bad file. All inputs share one [`GvnContext`], so a corpus
//! run is allocation-amortized exactly like a batch shard.
//!
//! Lint codes, severities, the JSON schema and exit-code mapping are
//! documented in `docs/CHECK.md`.

use crate::batch::BatchInput;
use crate::prelude::*;
use pgvn_core::GvnContext;
use pgvn_ir::{Diagnostic, DiagnosticEngine, Severity};
use pgvn_telemetry::json::JsonWriter;
use pgvn_telemetry::{Metric, MetricsRegistry, MetricsSnapshot};
use pgvn_transform::CheckOptions;
use std::time::Instant;

/// The diagnostic code reported for sources that fail to parse or
/// compile (error severity, no block/inst location).
pub const PARSE_ERROR: &str = "parse_error";

/// One input's lint outcome.
#[derive(Clone, Debug)]
pub struct CheckRecord {
    /// The input's display name.
    pub name: String,
    /// Every diagnostic, in the engine's sorted presentation order.
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckRecord {
    /// Diagnostics at the given severity.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity() == sev).count()
    }

    /// Whether this input carries at least one error-severity
    /// diagnostic (the exit-1 criterion).
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity() == Severity::Error)
    }

    /// The per-file JSONL record (no trailing newline).
    pub fn json_line(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_str("event", "check")
            .field_str("name", &self.name)
            .field_u64("errors", self.count(Severity::Error) as u64)
            .field_u64("warns", self.count(Severity::Warn) as u64)
            .field_u64("advisories", self.count(Severity::Advisory) as u64);
        let diags: Vec<String> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        w.field_raw("diagnostics", &format!("[{}]", diags.join(",")));
        w.finish()
    }

    /// Human-readable lines, one per diagnostic:
    /// `name: error[code] at bb2/inst5: message`.
    pub fn text_lines(&self) -> Vec<String> {
        self.diagnostics.iter().map(|d| format!("{}: {}", self.name, d.render_text())).collect()
    }
}

/// The merged outcome of one [`run_check_inputs`] call.
#[derive(Clone, Debug)]
pub struct CheckRunReport {
    /// Per-input records, in input order.
    pub records: Vec<CheckRecord>,
    /// Total error-severity diagnostics.
    pub errors: u64,
    /// Total warn-severity diagnostics.
    pub warns: u64,
    /// Total advisory-severity diagnostics.
    pub advisories: u64,
    /// Inputs with at least one diagnostic of any severity.
    pub flagged: u64,
    /// Stable per-severity diagnostic counters
    /// (`check_diagnostics_{error,warn,advisory}`).
    pub metrics: MetricsSnapshot,
    /// Timing-domain measurements (`check_nanos` per input).
    pub timing: MetricsSnapshot,
}

impl CheckRunReport {
    /// Whether any input carries an error-severity diagnostic.
    pub fn has_errors(&self) -> bool {
        self.errors > 0
    }

    /// The `check_summary` JSONL record (no trailing newline).
    pub fn summary_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_str("event", "check_summary")
            .field_u64("files", self.records.len() as u64)
            .field_u64("flagged", self.flagged)
            .field_u64("errors", self.errors)
            .field_u64("warns", self.warns)
            .field_u64("advisories", self.advisories);
        w.finish()
    }

    /// The one-line human summary.
    pub fn summary_text(&self) -> String {
        format!(
            "pgvn check: {} file(s), {} flagged: {} error(s), {} warning(s), {} advisory(ies)",
            self.records.len(),
            self.flagged,
            self.errors,
            self.warns,
            self.advisories
        )
    }
}

/// Lints every input in order, sharing one context across the corpus.
///
/// Unreadable or unparseable sources classify as a single
/// [`PARSE_ERROR`] diagnostic; everything else runs the full suite from
/// [`pgvn_transform::check_function_with`]. The report is deterministic:
/// it depends only on `(inputs, opts)`.
pub fn run_check_inputs(inputs: &[BatchInput], opts: &CheckOptions) -> CheckRunReport {
    let mut ctx = GvnContext::new();
    let reg = MetricsRegistry::new();
    let timing_reg = MetricsRegistry::new();
    let mut records = Vec::with_capacity(inputs.len());
    for input in inputs {
        let t0 = Instant::now();
        let parsed = input
            .source
            .as_ref()
            .map_err(|e| e.clone())
            .and_then(|s| compile(s, SsaStyle::Pruned).map_err(|e| e.to_string()));
        let engine = match parsed {
            Ok(func) => crate::batch::run_check(&mut ctx, &reg, &func, opts),
            Err(e) => {
                let mut engine = DiagnosticEngine::new();
                engine.report(Diagnostic::error(PARSE_ERROR, e));
                reg.add(Metric::CheckDiagnosticsError, 1);
                engine
            }
        };
        timing_reg.observe(
            Metric::CheckNanos,
            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
        records
            .push(CheckRecord { name: input.name.clone(), diagnostics: engine.into_diagnostics() });
    }
    let mut report = CheckRunReport {
        records,
        errors: 0,
        warns: 0,
        advisories: 0,
        flagged: 0,
        metrics: reg.snapshot().stable_only(),
        timing: timing_reg.snapshot(),
    };
    for rec in &report.records {
        report.errors += rec.count(Severity::Error) as u64;
        report.warns += rec.count(Severity::Warn) as u64;
        report.advisories += rec.count(Severity::Advisory) as u64;
        report.flagged += u64::from(!rec.diagnostics.is_empty());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(name: &str, src: &str) -> BatchInput {
        BatchInput { name: name.to_string(), source: Ok(src.to_string()) }
    }

    #[test]
    fn clean_sources_produce_empty_records() {
        let inputs = [
            input("a", "routine a(x) { return x + 1; }"),
            input("b", "routine b(x, y) { if (x > y) { return x; } return y; }"),
        ];
        let report = run_check_inputs(&inputs, &CheckOptions::without_gvn());
        assert!(!report.has_errors());
        assert_eq!(report.flagged, 0);
        assert_eq!(report.summary_json(),
            "{\"event\":\"check_summary\",\"files\":2,\"flagged\":0,\"errors\":0,\"warns\":0,\"advisories\":0}");
        assert_eq!(report.timing.count(Metric::CheckNanos), 2);
    }

    #[test]
    fn parse_failures_classify_without_aborting_the_corpus() {
        let inputs = [
            input("bad", "routine nope {"),
            BatchInput { name: "gone".into(), source: Err("no such file".into()) },
            input("good", "routine g(x) { return x; }"),
        ];
        let report = run_check_inputs(&inputs, &CheckOptions::without_gvn());
        assert!(report.has_errors());
        assert_eq!(report.errors, 2);
        assert_eq!(report.flagged, 2);
        assert!(report.records[0].has_errors());
        assert_eq!(report.records[0].diagnostics[0].code(), PARSE_ERROR);
        assert!(report.records[1].json_line().contains("no such file"));
        assert!(!report.records[2].has_errors());
        assert_eq!(report.metrics.value(Metric::CheckDiagnosticsError), 2);
    }

    #[test]
    fn redundancy_advisories_flag_without_failing() {
        let inputs = [input("dup", "routine dup(a, b) { x = a + b; y = a + b; return x * y; }")];
        let report = run_check_inputs(&inputs, &CheckOptions::default());
        assert!(!report.has_errors(), "advisories never fail the run");
        assert!(report.advisories > 0);
        let line = report.records[0].json_line();
        assert!(line.contains("\"code\":\"missed_redundancy\""), "{line}");
        pgvn_telemetry::json::parse(&line).expect("record is valid JSON");
        let text = report.records[0].text_lines();
        assert!(text[0].starts_with("dup: advisory[missed_redundancy]"), "{:?}", text);
    }
}
