//! # pgvn — predicated sparse global value numbering
//!
//! A complete reproduction of Karthik Gargi, *"A Sparse Algorithm for
//! Predicated Global Value Numbering"* (PLDI 2002), as a Rust workspace.
//! This facade crate re-exports the project's public API:
//!
//! - [`ir`] — the SSA intermediate representation, verifier and reference
//!   interpreter;
//! - [`analysis`] — RPO, dominators/postdominators, frontiers, the
//!   reachable dominator tree and loop info;
//! - [`ssa`] — SSA construction (minimal / semi-pruned / pruned);
//! - [`lang`] — the source language used to express the paper's examples;
//! - [`core`] — the paper's unified sparse GVN algorithm;
//! - [`transform`] — GVN-driven optimizations, PRE, and the
//!   pass-manager pipeline (see `docs/PASSES.md`);
//! - [`telemetry`] — structured trace events, sinks and phase timers
//!   (see `docs/OBSERVABILITY.md`);
//! - [`workload`] — the synthetic SPEC CINT2000 stand-in suite used by
//!   the evaluation harness;
//! - [`oracle`] — the differential correctness oracle: interpreter-backed
//!   translation validation, emulation-lattice checking, fuzzing and
//!   shrinking (see `docs/ORACLE.md`);
//! - [`batch`] — the deterministic parallel batch engine behind
//!   `pgvn batch`: scoped worker threads, one reusable
//!   [`GvnContext`](pgvn_core::GvnContext) per worker, byte-identical
//!   reports at any `--jobs` count (see `docs/ARCHITECTURE.md`);
//! - [`perf`] — the pinned-workload benchmark harness behind
//!   `pgvn perf`: single-thread throughput, batch scaling, per-phase
//!   timing, telemetry overhead, and the schema-versioned
//!   `BENCH_*.json` artifact with its regression comparator;
//! - [`serve`] — the long-lived optimization service behind
//!   `pgvn serve`: length-prefixed framing over stdio or a Unix
//!   socket, a context-pooled worker pool, clamped per-request
//!   budgets, bounded admission with explicit shed responses, and the
//!   `pgvn serve-load` harness (see `docs/SERVE.md`).
//!
//! ## Quickstart
//!
//! ```
//! use pgvn::prelude::*;
//!
//! // Compile, analyze, optimize.
//! let src = "routine f(a, b) { x = a + b; y = b + a; return x - y; }";
//! let mut func = compile(src, SsaStyle::Pruned)?;
//! let results = gvn(&func, &GvnConfig::full());
//! assert!(results.stats.converged);
//!
//! let report = Pipeline::new(GvnConfig::full()).optimize(&mut func);
//! assert!(report.constants_propagated > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod check;
pub mod perf;
pub mod serve;

pub use pgvn_analysis as analysis;
pub use pgvn_core as core;
pub use pgvn_ir as ir;
pub use pgvn_lang as lang;
pub use pgvn_oracle as oracle;
pub use pgvn_ssa as ssa;
pub use pgvn_telemetry as telemetry;
pub use pgvn_transform as transform;
pub use pgvn_workload as workload;

/// The most common imports, in one place.
pub mod prelude {
    pub use pgvn_core::run as gvn;
    pub use pgvn_core::{GvnConfig, GvnContext, GvnResults, GvnStats, Mode, Strength, Variant};
    pub use pgvn_ir::{Function, HashedOpaques, Interpreter};
    pub use pgvn_lang::compile;
    pub use pgvn_ssa::SsaStyle;
    pub use pgvn_transform::{PassSpec, Pipeline};
}
