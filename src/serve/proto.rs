//! Wire protocol for `pgvn serve`: length-prefixed framing and the
//! request/response JSON schema.
//!
//! A frame is a 4-byte little-endian `u32` payload length followed by
//! that many bytes of UTF-8 JSON, in both directions. Framing errors
//! are split into recoverable ones (an oversized frame is drained and
//! rejected with a structured error response — the connection loop
//! keeps going) and terminal ones (EOF in the middle of a frame means
//! the peer is gone, so the connection closes after a best-effort
//! error response). See `docs/SERVE.md` for the full spec.

use pgvn_core::FaultPlan;
use pgvn_telemetry::json::{parse, JsonValue, JsonWriter};
use std::io::{self, Read, Write};

/// What [`read_frame`] produced.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Clean end of stream at a frame boundary.
    Eof,
    /// The stop predicate fired while waiting for bytes (server drain).
    Stopped,
}

/// Why [`read_frame`] failed.
#[derive(Debug)]
pub enum FrameError {
    /// End of stream in the middle of a frame — the peer disconnected
    /// mid-request. Terminal for the connection.
    Truncated {
        /// Bytes received of the unfinished section.
        got: usize,
        /// Bytes the section needed.
        want: usize,
    },
    /// The declared payload length exceeds the server ceiling. The
    /// payload has been drained, so the connection stays usable.
    TooLarge {
        /// The declared payload length.
        len: u32,
        /// The server's frame-size ceiling.
        max: u32,
    },
    /// An I/O error other than timeout/interrupt. Terminal.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { got, want } => {
                write!(f, "truncated frame: got {got} of {want} bytes before EOF")
            }
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte ceiling")
            }
            FrameError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

/// How one fixed-size read ended.
enum Progress {
    Done,
    Eof { got: usize },
    Stopped,
}

/// Reads exactly `buf.len()` bytes, tolerating read timeouts (polling
/// `should_stop` on each) and short reads.
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    should_stop: &mut dyn FnMut() -> bool,
) -> Result<Progress, FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => return Ok(Progress::Eof { got }),
            Ok(n) => got += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if should_stop() {
                    return Ok(Progress::Stopped);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Progress::Done)
}

/// Reads one length-prefixed frame.
///
/// `should_stop` is polled whenever the underlying read times out
/// (socket connections set a short read timeout so a draining server
/// stays responsive); blocking readers never poll it. An oversized
/// frame is drained to keep the stream aligned and reported as
/// [`FrameError::TooLarge`] — the caller answers with a structured
/// error and keeps reading.
pub fn read_frame(
    r: &mut impl Read,
    max_len: u32,
    should_stop: &mut dyn FnMut() -> bool,
) -> Result<FrameEvent, FrameError> {
    let mut prefix = [0u8; 4];
    match read_full(r, &mut prefix, should_stop)? {
        Progress::Done => {}
        Progress::Eof { got: 0 } => return Ok(FrameEvent::Eof),
        Progress::Eof { got } => return Err(FrameError::Truncated { got, want: 4 }),
        Progress::Stopped => return Ok(FrameEvent::Stopped),
    }
    let len = u32::from_le_bytes(prefix);
    if len > max_len {
        // Drain the payload in chunks so the next frame starts aligned.
        let mut remaining = len as usize;
        let mut chunk = [0u8; 4096];
        while remaining > 0 {
            let take = remaining.min(chunk.len());
            match read_full(r, &mut chunk[..take], should_stop)? {
                Progress::Done => remaining -= take,
                Progress::Eof { got } => {
                    return Err(FrameError::Truncated {
                        got: len as usize - remaining + got,
                        want: len as usize,
                    })
                }
                Progress::Stopped => return Ok(FrameEvent::Stopped),
            }
        }
        return Err(FrameError::TooLarge { len, max: max_len });
    }
    let mut payload = vec![0u8; len as usize];
    match read_full(r, &mut payload, should_stop)? {
        Progress::Done => Ok(FrameEvent::Frame(payload)),
        Progress::Eof { got } => Err(FrameError::Truncated { got, want: len as usize }),
        Progress::Stopped => Ok(FrameEvent::Stopped),
    }
}

/// Writes one length-prefixed frame and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large for u32"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// The request verb.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestOp {
    /// Optimize one routine (the default when `op` is absent).
    Optimize,
    /// Liveness probe; answered inline with `pong`.
    Ping,
    /// Server statistics: queue depth, counters, per-worker context
    /// capacities. Answered inline, never queued behind work.
    Stats,
    /// Graceful drain: stop admitting, finish in-flight work, exit.
    Shutdown,
}

/// One parsed request. Budgets and rounds are client *suggestions*;
/// the server clamps them against its [`ServeLimits`] ceilings before
/// any work runs.
///
/// [`ServeLimits`]: crate::serve::ServeLimits
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response. Responses
    /// may arrive out of request order (workers finish independently).
    pub id: u64,
    /// The verb.
    pub op: RequestOp,
    /// Display name for the routine record.
    pub name: String,
    /// Routine source text (mutually exclusive with `gen_seed`).
    pub source: Option<String>,
    /// Generate the routine from the workload generator with this seed
    /// instead of shipping source text.
    pub gen_seed: Option<u64>,
    /// Config preset name (`full|extended|click|sccp|awz|basic`).
    pub config: Option<String>,
    /// Mode override (`optimistic|balanced|pessimistic`).
    pub mode: Option<String>,
    /// Variant override (`practical|complete`).
    pub variant: Option<String>,
    /// Pipeline rounds override (clamped to the server ceiling).
    pub rounds: Option<usize>,
    /// Pass-sequence override (e.g. `"gvn,pre,gvn"`). Validated at
    /// request resolution; a malformed spec is a `protocol` error.
    pub passes: Option<String>,
    /// Pass-ceiling override (clamped).
    pub budget_passes: Option<u32>,
    /// Deadline override in milliseconds (clamped). Also bounds the
    /// time a request may wait in the admission queue.
    pub budget_ms: Option<u64>,
    /// Touched-work quota override (clamped).
    pub budget_touches: Option<u64>,
    /// Deterministic fault injection (`kind@site`, seed and stickiness
    /// already applied) — the fault-matrix hook.
    pub inject: Option<FaultPlan>,
}

/// Reads an optional `u64` field, rejecting wrong types.
fn opt_u64(obj: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| format!("field {key:?} must be a number")),
    }
}

/// Reads an optional string field, rejecting wrong types.
fn opt_str(obj: &JsonValue, key: &str) -> Result<Option<String>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("field {key:?} must be a string")),
    }
}

/// Parses one frame payload into a [`Request`]. Every failure is a
/// one-line diagnostic destined for a `protocol` error response; the
/// connection always survives a parse failure.
pub fn parse_request(payload: &[u8]) -> Result<Request, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
    let obj = parse(text).map_err(|e| format!("payload is not valid JSON: {e}"))?;
    if !matches!(obj, JsonValue::Obj(_)) {
        return Err("payload must be a JSON object".to_string());
    }
    let id = opt_u64(&obj, "id")?.unwrap_or(0);
    let op = match opt_str(&obj, "op")?.as_deref() {
        None | Some("optimize") => RequestOp::Optimize,
        Some("ping") => RequestOp::Ping,
        Some("stats") => RequestOp::Stats,
        Some("shutdown") => RequestOp::Shutdown,
        Some(other) => {
            return Err(format!("unknown op {other:?} (expected optimize|ping|stats|shutdown)"))
        }
    };
    let source = opt_str(&obj, "routine")?;
    let gen_seed = opt_u64(&obj, "gen_seed")?;
    if op == RequestOp::Optimize {
        match (&source, gen_seed) {
            (Some(_), Some(_)) => {
                return Err("request has both \"routine\" and \"gen_seed\"; send exactly one".into())
            }
            (None, None) => {
                return Err("optimize request needs \"routine\" text or a \"gen_seed\"".into())
            }
            _ => {}
        }
    }
    let name = opt_str(&obj, "name")?.unwrap_or_else(|| format!("req_{id}"));
    let inject = match opt_str(&obj, "inject")? {
        None => None,
        Some(spec) => {
            let plan = FaultPlan::parse(&spec).ok_or_else(|| {
                format!(
                    "inject {spec:?}: expected kind@site with kind one of \
                     panic|invariant|budget|verifier-reject and site one of \
                     eval|edges|phipred|rewrite"
                )
            })?;
            let plan = plan.seeded(opt_u64(&obj, "inject_seed")?.unwrap_or(0));
            let sticky = matches!(obj.get("inject_sticky"), Some(v) if v.as_bool() == Some(true));
            Some(if sticky { plan.sticky() } else { plan })
        }
    };
    Ok(Request {
        id,
        op,
        name,
        source,
        gen_seed,
        config: opt_str(&obj, "config")?,
        mode: opt_str(&obj, "mode")?,
        variant: opt_str(&obj, "variant")?,
        rounds: opt_u64(&obj, "rounds")?.map(|v| v as usize),
        passes: opt_str(&obj, "passes")?,
        budget_passes: opt_u64(&obj, "budget_passes")?.map(|v| v as u32),
        budget_ms: opt_u64(&obj, "budget_ms")?,
        budget_touches: opt_u64(&obj, "budget_touches")?,
        inject,
    })
}

/// Renders the shared response prefix.
fn response(id: u64, reply: &str) -> JsonWriter {
    let mut w = JsonWriter::object();
    w.field_str("event", "serve_response").field_u64("id", id).field_str("reply", reply);
    w
}

/// A structured error response. `kind` is one of the taxonomy names
/// documented in `docs/SERVE.md`: `protocol`, `over_limit`,
/// `draining`, `internal`.
pub fn error_response(id: u64, kind: &str, detail: &str) -> String {
    let mut w = response(id, "error");
    w.field_str("error", kind).field_str("detail", detail);
    w.finish()
}

/// A successful routine record. The record is rendered as the **last**
/// field so [`extract_record`] can recover its exact bytes — the
/// serve≡batch determinism contract compares these byte-for-byte
/// against `pgvn batch --jobs 1` output.
pub fn record_response(id: u64, record_json: &str) -> String {
    let mut w = response(id, "record");
    w.field_raw("record", record_json);
    w.finish()
}

/// The admission-queue-full response (backpressure made explicit).
pub fn shed_response(id: u64, queue_capacity: usize) -> String {
    let mut w = response(id, "shed");
    w.field_u64("queue_capacity", queue_capacity as u64);
    w.finish()
}

/// The queue-wait-deadline-exceeded response: the request was admitted
/// but its own `budget_ms` elapsed before a worker picked it up.
pub fn expired_response(id: u64, waited_ms: u64) -> String {
    let mut w = response(id, "expired");
    w.field_u64("waited_ms", waited_ms);
    w.finish()
}

/// The `ping` reply.
pub fn pong_response(id: u64) -> String {
    response(id, "pong").finish()
}

/// The `shutdown` acknowledgement (sent before the drain begins).
pub fn shutting_down_response(id: u64) -> String {
    response(id, "shutting_down").finish()
}

/// Slices the embedded routine record back out of a `reply:"record"`
/// response, byte-for-byte as the worker rendered it. Relies on the
/// record being the final field of the envelope.
pub fn extract_record(response: &str) -> Option<&str> {
    let marker = ",\"record\":";
    let start = response.find(marker)? + marker.len();
    let end = response.len().checked_sub(1)?;
    if !response.ends_with('}') {
        return None;
    }
    response.get(start..end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"id\":1}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        let mut never = || false;
        match read_frame(&mut r, 1024, &mut never).unwrap() {
            FrameEvent::Frame(p) => assert_eq!(p, b"{\"id\":1}"),
            other => panic!("unexpected {other:?}"),
        }
        match read_frame(&mut r, 1024, &mut never).unwrap() {
            FrameEvent::Frame(p) => assert!(p.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(read_frame(&mut r, 1024, &mut never).unwrap(), FrameEvent::Eof));
    }

    #[test]
    fn oversized_frames_are_drained_and_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[b'x'; 100]).unwrap();
        write_frame(&mut buf, b"after").unwrap();
        let mut r = &buf[..];
        let mut never = || false;
        match read_frame(&mut r, 16, &mut never) {
            Err(FrameError::TooLarge { len: 100, max: 16 }) => {}
            other => panic!("unexpected {other:?}"),
        }
        // The stream is still aligned: the next frame parses.
        match read_frame(&mut r, 16, &mut never).unwrap() {
            FrameEvent::Frame(p) => assert_eq!(p, b"after"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truncation_is_terminal() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full payload").unwrap();
        buf.truncate(buf.len() - 4);
        let mut r = &buf[..];
        let mut never = || false;
        match read_frame(&mut r, 1024, &mut never) {
            Err(FrameError::Truncated { got: 8, want: 12 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn request_parse_validates() {
        let ok = parse_request(br#"{"id":7,"routine":"routine f(a){return a;}"}"#).unwrap();
        assert_eq!(ok.id, 7);
        assert_eq!(ok.op, RequestOp::Optimize);
        assert_eq!(ok.name, "req_7");
        assert!(parse_request(&[0xff, 0xfe]).unwrap_err().contains("UTF-8"));
        assert!(parse_request(b"{nope").unwrap_err().contains("JSON"));
        assert!(parse_request(br#"{"id":1}"#).unwrap_err().contains("gen_seed"));
        assert!(parse_request(br#"{"op":"evaporate"}"#).unwrap_err().contains("unknown op"));
        assert!(parse_request(br#"{"gen_seed":3,"inject":"panic@nowhere"}"#).is_err());
        let plan = parse_request(br#"{"gen_seed":3,"inject":"panic@eval","inject_sticky":true}"#)
            .unwrap()
            .inject
            .unwrap();
        assert!(plan.sticky);
    }

    #[test]
    fn record_extraction_recovers_exact_bytes() {
        let record = r#"{"event":"routine","name":"x","status":"classified"}"#;
        let resp = record_response(42, record);
        assert_eq!(extract_record(&resp), Some(record));
        assert!(extract_record(&error_response(1, "protocol", "nope")).is_none());
    }
}
