//! The serve engine: a bounded admission queue feeding a fixed pool of
//! workers, each owning one rollback-safe [`GvnContext`] for the life
//! of the server.
//!
//! Isolation is layered exactly like `pgvn batch`: every request runs
//! through [`process_one`] (whose degradation ladder already absorbs
//! panics, budget blowouts and verifier rejections into classified
//! records), and the worker wraps even that in `catch_unwind` so an
//! API-contract violation costs one `internal` error response — the
//! worker clears its context and keeps serving. Nothing a request does
//! can take down the process.

use crate::batch::{process_one, warm_context, BatchInput, BatchOptions, RoutineStatus};
use crate::serve::proto::{error_response, expired_response, record_response, write_frame};
use crate::serve::ServeOptions;
use pgvn_core::{ContextCapacities, GvnContext};
use pgvn_telemetry::json::JsonWriter;
use pgvn_telemetry::{Metric, MetricsRegistry, MetricsSnapshot};
use std::collections::VecDeque;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A connection's write half, shared by every worker holding one of its
/// jobs. Frame writes are serialized under the mutex; a failed write
/// means the client hung up, which is counted, never fatal.
pub(crate) struct ConnOut {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl ConnOut {
    pub(crate) fn new(writer: Box<dyn Write + Send>) -> Arc<Self> {
        Arc::new(ConnOut { writer: Mutex::new(writer) })
    }

    /// Sends one response frame, counting delivery or hangup.
    pub(crate) fn send(&self, engine: &Engine, payload: &str) {
        let mut w = self.writer.lock().expect("serve writer lock poisoned");
        if write_frame(&mut *w, payload.as_bytes()).is_ok() {
            engine.responses.fetch_add(1, Ordering::Relaxed);
        } else {
            engine.hangups.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One admitted optimize request.
pub(crate) struct Job {
    /// Client correlation id.
    pub id: u64,
    /// The routine to process (name + source, batch-shaped).
    pub input: BatchInput,
    /// Fully resolved per-request options (budgets already clamped).
    pub opts: BatchOptions,
    /// The client's own deadline, when it sent `budget_ms`; bounds the
    /// admission-queue wait as well as the analysis.
    pub queue_deadline: Option<Duration>,
    /// When the job was admitted (queue-wait measurement).
    pub enqueued: Instant,
    /// Where the response goes.
    pub out: Arc<ConnOut>,
}

/// Live per-worker state, refreshed after every request so the `stats`
/// op (and the soak test behind it) can watch pool capacities settle.
#[derive(Clone, Copy, Debug)]
pub(crate) struct WorkerState {
    /// Analysis runs this worker's context has performed.
    pub runs: u64,
    /// The context's current capacity profile.
    pub capacities: ContextCapacities,
}

/// Shared state between the connection loops and the worker pool.
pub(crate) struct Engine {
    /// The server configuration (ceilings, pool size, base config).
    pub opts: ServeOptions,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    draining: AtomicBool,
    /// Serve-domain metrics: request/shed/degraded counters plus the
    /// latency and queue-wait histograms.
    pub reg: MetricsRegistry,
    /// Worker analysis metrics, merged as each worker retires.
    pub analysis: Mutex<MetricsSnapshot>,
    /// Live worker state, indexed by worker.
    pub workers: Mutex<Vec<WorkerState>>,
    // Counters without a Metric counterpart.
    pub records: AtomicU64,
    pub escaped_panics: AtomicU64,
    pub input_errors: AtomicU64,
    pub control: AtomicU64,
    pub hangups: AtomicU64,
    pub responses: AtomicU64,
}

impl Engine {
    pub(crate) fn new(opts: ServeOptions) -> Self {
        let workers = opts.workers.max(1);
        Engine {
            opts,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            draining: AtomicBool::new(false),
            reg: MetricsRegistry::new(),
            analysis: Mutex::new(MetricsSnapshot::default()),
            workers: Mutex::new(vec![
                WorkerState {
                    runs: 0,
                    capacities: GvnContext::new().capacities()
                };
                workers
            ]),
            records: AtomicU64::new(0),
            escaped_panics: AtomicU64::new(0),
            input_errors: AtomicU64::new(0),
            control: AtomicU64::new(0),
            hangups: AtomicU64::new(0),
            responses: AtomicU64::new(0),
        }
    }

    /// Whether the drain has begun (no new admissions).
    pub(crate) fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Stops admission and wakes every worker so the pool can finish
    /// the queue and retire.
    pub(crate) fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
        self.available.notify_all();
    }

    /// Admits a job, or hands it back when the queue is full (the
    /// caller answers with an explicit shed response). A capacity of
    /// zero sheds everything — the deterministic backpressure test.
    /// The `Err` variant intentionally carries the whole job back: the
    /// caller still owns the response channel for the shed reply.
    #[allow(clippy::result_large_err)]
    pub(crate) fn submit(&self, job: Job) -> Result<(), Job> {
        let mut q = self.queue.lock().expect("serve queue lock poisoned");
        if q.len() >= self.opts.queue_capacity {
            return Err(job);
        }
        q.push_back(job);
        let depth = q.len() as u64;
        drop(q);
        self.reg.gauge_max(Metric::ServeQueueDepth, depth);
        self.available.notify_one();
        Ok(())
    }

    /// Current admission-queue depth (for the `stats` op).
    pub(crate) fn queue_depth(&self) -> usize {
        self.queue.lock().expect("serve queue lock poisoned").len()
    }

    /// Blocks until a job is available or the drain empties the queue.
    fn next_job(&self) -> Option<Job> {
        let mut q = self.queue.lock().expect("serve queue lock poisoned");
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if self.draining() {
                return None;
            }
            q = self.available.wait(q).expect("serve queue lock poisoned");
        }
    }

    /// One worker: a private context and metrics registry, reused for
    /// every request until the drain. Runs on a scoped thread.
    pub(crate) fn worker_loop(&self, index: usize) {
        let mut ctx = GvnContext::new();
        if self.opts.warm_start {
            warm_context(&mut ctx);
            self.record_worker(index, &ctx);
        }
        // Private per-worker registry: record metric deltas must never
        // see another worker's increments (the determinism contract).
        let reg = MetricsRegistry::new();
        while let Some(job) = self.next_job() {
            let waited = job.enqueued.elapsed();
            self.reg.observe(
                Metric::ServeQueueWaitNanos,
                u64::try_from(waited.as_nanos()).unwrap_or(u64::MAX),
            );
            if let Some(deadline) = job.queue_deadline {
                if waited > deadline {
                    self.reg.add(Metric::ServeExpired, 1);
                    job.out.send(self, &expired_response(job.id, waited.as_millis() as u64));
                    continue;
                }
            }
            let t0 = Instant::now();
            // process_one never panics by contract (its ladder catches);
            // this outer catch makes a violation cost one error
            // response instead of the process.
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                process_one(&mut ctx, &reg, &job.input, &job.opts)
            }));
            match attempt {
                Ok(rec) => {
                    self.records.fetch_add(1, Ordering::Relaxed);
                    match rec.status {
                        RoutineStatus::InputError => {
                            self.input_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        RoutineStatus::EscapedPanic => {
                            self.escaped_panics.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {}
                    }
                    let degraded = rec.status == RoutineStatus::Rejected
                        || rec.gvn_stats.as_ref().is_some_and(|s| s.ladder_failures > 0);
                    if degraded {
                        self.reg.add(Metric::ServeDegraded, 1);
                    }
                    self.reg.add(Metric::ServeAbsorbedPanics, u64::from(rec.absorbed_panics));
                    job.out.send(self, &record_response(job.id, &rec.json_line(self.opts.timings)));
                }
                Err(_) => {
                    // The context may hold arbitrary mid-run state;
                    // clear (free + rebuild) rather than trusting
                    // prepare() after a contract violation.
                    ctx.clear();
                    self.escaped_panics.fetch_add(1, Ordering::Relaxed);
                    job.out.send(
                        self,
                        &error_response(job.id, "internal", "panic escaped the optimizer boundary"),
                    );
                }
            }
            self.reg.observe(
                Metric::ServeRequestNanos,
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
            self.record_worker(index, &ctx);
        }
        let mut merged = self.analysis.lock().expect("serve analysis lock poisoned");
        merged.merge(&reg.snapshot());
    }

    fn record_worker(&self, index: usize, ctx: &GvnContext) {
        let mut workers = self.workers.lock().expect("serve workers lock poisoned");
        workers[index] = WorkerState { runs: ctx.runs(), capacities: ctx.capacities() };
    }

    /// The `stats` response: queue depth, every counter, and the live
    /// per-worker context profile.
    pub(crate) fn stats_response(&self, id: u64) -> String {
        let snap = self.reg.snapshot();
        let mut w = JsonWriter::object();
        w.field_str("event", "serve_response")
            .field_str("reply", "stats")
            .field_u64("id", id)
            .field_u64("queue_depth", self.queue_depth() as u64)
            .field_u64("requests", snap.value(Metric::ServeRequests))
            .field_u64("records", self.records.load(Ordering::Relaxed))
            .field_u64("shed", snap.value(Metric::ServeShed))
            .field_u64("expired", snap.value(Metric::ServeExpired))
            .field_u64("protocol_errors", snap.value(Metric::ServeProtocolErrors))
            .field_u64("degraded", snap.value(Metric::ServeDegraded))
            .field_u64("absorbed_panics", snap.value(Metric::ServeAbsorbedPanics))
            .field_u64("escaped_panics", self.escaped_panics.load(Ordering::Relaxed))
            .field_u64("input_errors", self.input_errors.load(Ordering::Relaxed));
        let workers = self.workers.lock().expect("serve workers lock poisoned");
        let mut arr = String::from("[");
        for (i, ws) in workers.iter().enumerate() {
            if i > 0 {
                arr.push(',');
            }
            let mut o = JsonWriter::object();
            o.field_u64("runs", ws.runs)
                .field_u64("interner_exprs", ws.capacities.interner_exprs as u64)
                .field_u64("interner_table", ws.capacities.interner_table as u64)
                .field_u64("class_slots", ws.capacities.class_slots as u64)
                .field_u64("class_table", ws.capacities.class_table as u64)
                .field_u64("value_slots", ws.capacities.value_slots as u64);
            arr.push_str(&o.finish());
        }
        arr.push(']');
        drop(workers);
        w.field_raw("workers", &arr);
        w.finish()
    }
}
