//! `pgvn serve` — a long-lived, fault-isolated optimization service.
//!
//! The server accepts routines over stdin/stdout ([`serve_duplex`]) or
//! a Unix socket ([`serve_socket`]) using length-prefixed JSON frames
//! (see [`proto`]), dispatches them to a fixed worker pool where each
//! worker owns one pooled, rollback-safe
//! [`GvnContext`](pgvn_core::GvnContext), and answers every request —
//! success, degraded, error, shed or expired — without ever letting a
//! request take down the process. Robustness properties, in order of
//! the layers that enforce them:
//!
//! - **Framing**: malformed, truncated and oversized frames are
//!   rejected with structured `protocol`/`over_limit` error responses;
//!   only a peer disconnect closes a connection, and only that
//!   connection.
//! - **Admission**: the queue is bounded; a full queue answers `shed`
//!   immediately (explicit backpressure, never an unbounded buffer).
//! - **Budgets**: client budget overrides are clamped against the
//!   server's [`ServeLimits`] ceilings, so every request runs under a
//!   finite pass/deadline/work budget no matter what it asked for.
//! - **Isolation**: requests run through the same degradation ladder
//!   as `pgvn batch` under `catch_unwind`; panics, budget blowouts and
//!   verifier rejections become classified records, and a worker whose
//!   contract is violated clears its context and keeps serving.
//! - **Drain**: EOF (duplex) or a `shutdown` request (both transports)
//!   stops admission, finishes the queue, answers everything in
//!   flight, and returns a [`ServeSummary`]. There is no signal
//!   handler — the crate forbids `unsafe` and links no libc, so
//!   SIGTERM cannot be caught; orchestrate shutdown via stdin EOF or
//!   the `shutdown` op (see `docs/SERVE.md`).
//!
//! The per-routine records are produced by the exact same
//! [`process_one`](crate::batch) unit the batch engine uses and depend
//! only on `(input, options)`, so serve output at any worker count is
//! byte-identical to `pgvn batch --jobs 1` on the same corpus — the
//! determinism tests assert it.

mod engine;
pub mod load;
pub mod proto;

use crate::batch::{BatchInput, BatchOptions};
use engine::{ConnOut, Engine, Job};
use pgvn_core::{ContextCapacities, GvnBudget, GvnConfig, Mode, Variant};
use pgvn_telemetry::json::JsonWriter;
use pgvn_telemetry::{Metric, MetricsSnapshot};
use pgvn_transform::PassSpec;
use proto::{
    error_response, parse_request, pong_response, read_frame, shed_response,
    shutting_down_response, FrameError, FrameEvent, Request, RequestOp,
};
use std::io::{Read, Write};
use std::os::unix::net::UnixListener;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Server-enforced ceilings. Client requests may ask for *less* on any
/// axis; asking for more (or for nothing) gets the ceiling. Every
/// request therefore runs under a finite budget.
#[derive(Clone, Copy, Debug)]
pub struct ServeLimits {
    /// Maximum accepted frame payload, bytes. Larger frames are
    /// drained and answered with an `over_limit` error.
    pub max_frame_bytes: u32,
    /// Pass-ceiling cap per request.
    pub max_passes: u32,
    /// Deadline cap per request, milliseconds. Doubles as the
    /// admission-queue wait bound for requests that set `budget_ms`.
    pub max_millis: u64,
    /// Touched-work quota cap per request.
    pub max_touches: u64,
    /// Pipeline rounds cap per request.
    pub max_rounds: usize,
}

impl Default for ServeLimits {
    fn default() -> Self {
        ServeLimits {
            max_frame_bytes: 1 << 20,
            max_passes: 512,
            max_millis: 2000,
            max_touches: 50_000_000,
            max_rounds: 4,
        }
    }
}

impl ServeLimits {
    /// Clamps a client budget against the ceilings: each axis becomes
    /// `min(requested, ceiling)`, or the ceiling when unset.
    pub fn clamp(&self, requested: &GvnBudget) -> GvnBudget {
        GvnBudget {
            max_passes: Some(
                requested.max_passes.map_or(self.max_passes, |p| p.min(self.max_passes)),
            ),
            time_limit: Some(Duration::from_millis(
                requested
                    .time_limit
                    .map_or(self.max_millis, |t| (t.as_millis() as u64).min(self.max_millis)),
            )),
            max_touches: Some(
                requested.max_touches.map_or(self.max_touches, |t| t.min(self.max_touches)),
            ),
        }
    }
}

/// Configuration for one server instance.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker pool size (clamped to at least one).
    pub workers: usize,
    /// Admission-queue bound; a full queue sheds. Zero sheds every
    /// request — useful for deterministic backpressure tests.
    pub queue_capacity: usize,
    /// The budget/frame ceilings.
    pub limits: ServeLimits,
    /// Base configuration for requests that don't override it.
    pub cfg: GvnConfig,
    /// Default pipeline rounds (requests may lower it; the ceiling in
    /// [`ServeLimits::max_rounds`] caps both).
    pub rounds: usize,
    /// Default pass sequence for requests that don't override it.
    /// `None` runs the classic rounds-of-`gvn` pipeline.
    pub passes: Option<PassSpec>,
    /// Splice scheduling-dependent `wall_nanos` into records
    /// (forfeits serve≡batch byte identity, exactly as in batch).
    pub timings: bool,
    /// Run the warm-start pilot through each worker context before it
    /// serves, so table growth happens before the first request.
    pub warm_start: bool,
    /// Run the full lint suite over each request's optimized output as
    /// a post-pass gate, embedding a `check` object in the record —
    /// exactly the batch `--check` gate, applied per request.
    pub check: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 2,
            queue_capacity: 64,
            limits: ServeLimits::default(),
            cfg: GvnConfig::full(),
            rounds: 2,
            passes: None,
            timings: false,
            warm_start: true,
            check: false,
        }
    }
}

/// Everything one server run did, returned when the drain completes.
#[derive(Clone, Debug)]
pub struct ServeSummary {
    /// Optimize requests admitted to parsing (including ones later
    /// shed or expired).
    pub requests: u64,
    /// Requests that produced a routine record.
    pub records: u64,
    /// Requests refused because the admission queue was full.
    pub shed: u64,
    /// Requests whose own deadline elapsed while queued.
    pub expired: u64,
    /// Frames rejected before reaching a worker: bad UTF-8, bad JSON,
    /// oversized, or invalid request shape.
    pub protocol_errors: u64,
    /// Records produced below the top ladder rung (at least one rung
    /// failure, or the identity fallback).
    pub degraded: u64,
    /// Panics the degradation ladder absorbed across all requests.
    pub absorbed_panics: u64,
    /// Contract violations: panics that escaped past `process_one`.
    /// Always zero unless the optimizer itself is broken; makes the
    /// server exit nonzero.
    pub escaped_panics: u64,
    /// Requests whose routine failed to parse or compile.
    pub input_errors: u64,
    /// `ping`/`stats`/`shutdown` requests handled inline.
    pub control: u64,
    /// Responses dropped because the client had disconnected.
    pub hangups: u64,
    /// Response frames delivered.
    pub responses: u64,
    /// Analysis runs per worker context at drain.
    pub worker_runs: Vec<u64>,
    /// Context capacity profile per worker at drain — the pool-health
    /// signal the soak test watches for post-warm-up stability.
    pub worker_capacities: Vec<ContextCapacities>,
    /// Merged per-worker analysis metrics, stable subset.
    pub metrics: MetricsSnapshot,
    /// Serve-domain metrics: counters plus request-latency and
    /// queue-wait histograms.
    pub serve_metrics: MetricsSnapshot,
}

impl ServeSummary {
    /// Whether the run upheld the isolation contract (no escaped
    /// panics). Degraded, shed and error responses are normal service.
    pub fn is_clean(&self) -> bool {
        self.escaped_panics == 0
    }

    /// The `serve_summary` JSON record (no trailing newline).
    pub fn summary_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_str("event", "serve_summary")
            .field_u64("requests", self.requests)
            .field_u64("records", self.records)
            .field_u64("shed", self.shed)
            .field_u64("expired", self.expired)
            .field_u64("protocol_errors", self.protocol_errors)
            .field_u64("degraded", self.degraded)
            .field_u64("absorbed_panics", self.absorbed_panics)
            .field_u64("escaped_panics", self.escaped_panics)
            .field_u64("input_errors", self.input_errors)
            .field_u64("control", self.control)
            .field_u64("hangups", self.hangups)
            .field_u64("responses", self.responses)
            .field_raw("metrics", &self.metrics.to_json())
            .field_raw("serve_metrics", &self.serve_metrics.to_json());
        w.finish()
    }
}

/// Resolves one optimize request into the exact [`BatchOptions`] a
/// worker will run — preset/mode/variant applied, budgets clamped,
/// rounds capped, fault plan attached. Public so the determinism tests
/// and the load harness can reproduce a server's effective options
/// when cross-checking against `run_batch`.
pub fn resolve_request_options(req: &Request, opts: &ServeOptions) -> Result<BatchOptions, String> {
    let mut cfg = match req.config.as_deref() {
        None => opts.cfg.clone(),
        Some("full") => GvnConfig::full(),
        Some("extended") => GvnConfig::extended(),
        Some("click") => GvnConfig::click(),
        Some("sccp") => GvnConfig::sccp(),
        Some("awz") => GvnConfig::awz(),
        Some("basic") => GvnConfig::basic(),
        Some(other) => return Err(format!("unknown config preset {other:?}")),
    };
    cfg = match req.mode.as_deref() {
        None => cfg,
        Some("optimistic") => cfg.mode(Mode::Optimistic),
        Some("balanced") => cfg.mode(Mode::Balanced),
        Some("pessimistic") => cfg.mode(Mode::Pessimistic),
        Some(other) => return Err(format!("unknown mode {other:?}")),
    };
    cfg = match req.variant.as_deref() {
        None => cfg,
        Some("practical") => cfg.variant(Variant::Practical),
        Some("complete") => cfg.variant(Variant::Complete),
        Some(other) => return Err(format!("unknown variant {other:?}")),
    };
    let requested = GvnBudget {
        max_passes: req.budget_passes,
        time_limit: req.budget_ms.map(Duration::from_millis),
        max_touches: req.budget_touches,
    };
    cfg = cfg.budget(opts.limits.clamp(&requested)).fault_plan(req.inject);
    let rounds = req.rounds.unwrap_or(opts.rounds).clamp(1, opts.limits.max_rounds.max(1));
    let passes = match req.passes.as_deref() {
        None => opts.passes.clone(),
        Some(spec) => Some(PassSpec::parse(spec).map_err(|e| format!("passes: {e}"))?),
    };
    Ok(BatchOptions {
        cfg,
        rounds,
        passes,
        jobs: 1,
        timings: opts.timings,
        warm_start: false,
        check: opts.check,
    })
}

/// Materializes the request's routine: shipped source text, or a
/// deterministic generator call for `gen_seed` requests.
fn request_input(req: &Request) -> BatchInput {
    let source = match (&req.source, req.gen_seed) {
        (Some(src), _) => Ok(src.clone()),
        (None, Some(seed)) => {
            let gcfg = crate::workload::GenConfig { seed, ..Default::default() };
            let routine = crate::workload::generate_routine(&req.name, &gcfg);
            Ok(crate::lang::print_routine(&routine))
        }
        // parse_request guarantees one of the two is present.
        (None, None) => Err("request carried neither routine nor gen_seed".to_string()),
    };
    BatchInput { name: req.name.clone(), source }
}

/// Why a connection loop returned.
enum ConnExit {
    /// Peer closed (EOF) or became unreadable.
    Closed,
    /// A `shutdown` request asked the whole server to drain.
    Shutdown,
}

/// Reads frames from one connection until EOF, a fatal I/O error, a
/// `shutdown` request, or the server drain. Every recoverable problem
/// is answered in-band; nothing here panics or kills the server.
fn connection_loop(engine: &Engine, reader: &mut impl Read, out: &Arc<ConnOut>) -> ConnExit {
    let mut stop = || engine.draining();
    loop {
        match read_frame(reader, engine.opts.limits.max_frame_bytes, &mut stop) {
            Ok(FrameEvent::Eof) | Ok(FrameEvent::Stopped) => return ConnExit::Closed,
            Err(FrameError::TooLarge { len, max }) => {
                engine.reg.add(Metric::ServeProtocolErrors, 1);
                out.send(
                    engine,
                    &error_response(
                        0,
                        "over_limit",
                        &format!("frame of {len} bytes exceeds the {max}-byte ceiling"),
                    ),
                );
            }
            Err(e @ FrameError::Truncated { .. }) => {
                // The peer vanished mid-frame; answer best-effort (the
                // write half may still be open) and close.
                engine.reg.add(Metric::ServeProtocolErrors, 1);
                out.send(engine, &error_response(0, "protocol", &e.to_string()));
                return ConnExit::Closed;
            }
            Err(FrameError::Io(_)) => return ConnExit::Closed,
            Ok(FrameEvent::Frame(payload)) => {
                let req = match parse_request(&payload) {
                    Ok(req) => req,
                    Err(msg) => {
                        engine.reg.add(Metric::ServeProtocolErrors, 1);
                        out.send(engine, &error_response(0, "protocol", &msg));
                        continue;
                    }
                };
                match req.op {
                    RequestOp::Ping => {
                        engine.control.fetch_add(1, Ordering::Relaxed);
                        out.send(engine, &pong_response(req.id));
                    }
                    RequestOp::Stats => {
                        engine.control.fetch_add(1, Ordering::Relaxed);
                        out.send(engine, &engine.stats_response(req.id));
                    }
                    RequestOp::Shutdown => {
                        engine.control.fetch_add(1, Ordering::Relaxed);
                        out.send(engine, &shutting_down_response(req.id));
                        return ConnExit::Shutdown;
                    }
                    RequestOp::Optimize => handle_optimize(engine, req, out),
                }
            }
        }
    }
}

/// Admits one optimize request: resolve options, check drain, enqueue
/// or shed.
fn handle_optimize(engine: &Engine, req: Request, out: &Arc<ConnOut>) {
    engine.reg.add(Metric::ServeRequests, 1);
    let opts = match resolve_request_options(&req, &engine.opts) {
        Ok(o) => o,
        Err(msg) => {
            engine.reg.add(Metric::ServeProtocolErrors, 1);
            out.send(engine, &error_response(req.id, "protocol", &msg));
            return;
        }
    };
    if engine.draining() {
        out.send(engine, &error_response(req.id, "draining", "server is shutting down"));
        return;
    }
    let job = Job {
        id: req.id,
        input: request_input(&req),
        opts,
        queue_deadline: req.budget_ms.map(Duration::from_millis),
        enqueued: std::time::Instant::now(),
        out: Arc::clone(out),
    };
    if let Err(job) = engine.submit(job) {
        engine.reg.add(Metric::ServeShed, 1);
        out.send(engine, &shed_response(job.id, engine.opts.queue_capacity));
    }
}

/// Collects the summary once all workers have retired.
fn summarize(engine: &Engine) -> ServeSummary {
    let snap = engine.reg.snapshot();
    let workers = engine.workers.lock().expect("serve workers lock poisoned");
    ServeSummary {
        requests: snap.value(Metric::ServeRequests),
        records: engine.records.load(Ordering::Relaxed),
        shed: snap.value(Metric::ServeShed),
        expired: snap.value(Metric::ServeExpired),
        protocol_errors: snap.value(Metric::ServeProtocolErrors),
        degraded: snap.value(Metric::ServeDegraded),
        absorbed_panics: snap.value(Metric::ServeAbsorbedPanics),
        escaped_panics: engine.escaped_panics.load(Ordering::Relaxed),
        input_errors: engine.input_errors.load(Ordering::Relaxed),
        control: engine.control.load(Ordering::Relaxed),
        hangups: engine.hangups.load(Ordering::Relaxed),
        responses: engine.responses.load(Ordering::Relaxed),
        worker_runs: workers.iter().map(|w| w.runs).collect(),
        worker_capacities: workers.iter().map(|w| w.capacities).collect(),
        metrics: engine.analysis.lock().expect("serve analysis lock poisoned").stable_only(),
        serve_metrics: snap,
    }
}

/// Serves one duplex byte stream (the stdin/stdout transport, and the
/// socketpair-based tests). Returns when the reader reaches EOF or a
/// `shutdown` request arrives, after the worker pool has finished and
/// answered every admitted request.
///
/// Injected faults are routine here, so the process panic hook is
/// silenced for the duration via the refcounted
/// [`silence_panic_hook`](crate::oracle::silence_panic_hook) guard —
/// nested servers, batches and fuzz campaigns compose.
pub fn serve_duplex(
    mut reader: impl Read,
    writer: impl Write + Send + 'static,
    opts: &ServeOptions,
) -> ServeSummary {
    let _hook = crate::oracle::silence_panic_hook();
    let engine = Engine::new(opts.clone());
    let out = ConnOut::new(Box::new(writer));
    std::thread::scope(|s| {
        for index in 0..opts.workers.max(1) {
            let engine = &engine;
            s.spawn(move || engine.worker_loop(index));
        }
        let _ = connection_loop(&engine, &mut reader, &out);
        engine.begin_drain();
    });
    summarize(&engine)
}

/// Serves a Unix socket listener: each accepted connection gets its
/// own scoped reader thread over the shared worker pool. Returns after
/// a `shutdown` request on any connection drains the server. The
/// listener is switched to non-blocking accept polling and every
/// connection gets a short read timeout, so the drain is observed
/// promptly by all loops.
pub fn serve_socket(listener: UnixListener, opts: &ServeOptions) -> std::io::Result<ServeSummary> {
    let _hook = crate::oracle::silence_panic_hook();
    let engine = Engine::new(opts.clone());
    listener.set_nonblocking(true)?;
    std::thread::scope(|s| {
        for index in 0..opts.workers.max(1) {
            let engine = &engine;
            s.spawn(move || engine.worker_loop(index));
        }
        loop {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
                    let writer = match stream.try_clone() {
                        Ok(w) => w,
                        Err(_) => continue,
                    };
                    let engine = &engine;
                    s.spawn(move || {
                        let mut reader = stream;
                        let out = ConnOut::new(Box::new(writer));
                        if let ConnExit::Shutdown = connection_loop(engine, &mut reader, &out) {
                            engine.begin_drain();
                        }
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if engine.draining() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    engine.begin_drain();
                    break;
                }
            }
        }
    });
    Ok(summarize(&engine))
}
