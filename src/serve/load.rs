//! The `pgvn serve-load` harness: N concurrent closed-loop clients ×
//! M generated routines against one socket server, with optional
//! fault-injected traffic mixed in, reporting p50/p99 latency and
//! routines/sec — plus an optional byte-identity cross-check of every
//! clean record against `pgvn batch --jobs 1` on the same corpus.

use crate::batch::{run_batch, BatchInput, BatchOptions};
use crate::serve::proto::{extract_record, parse_request, read_frame, write_frame, FrameEvent};
use crate::serve::{resolve_request_options, serve_socket, ServeOptions, ServeSummary};
use pgvn_core::{FaultKind, FaultPlan, FaultSite};
use pgvn_telemetry::json::JsonWriter;
use std::io;
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

/// How fault-injected requests are mixed into the traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMix {
    /// No injection: every request is clean.
    Clean,
    /// Every `n`-th request (by global index) injects a sticky
    /// `panic@eval`.
    Every(u64),
    /// The full matrix: cycling through every [`FaultKind`] at its
    /// canonical site, alternating transient and sticky, with clean
    /// requests interleaved — one of each per nine requests.
    Matrix,
}

/// The four canonical fault plans the matrix cycles through: every
/// fault class, at the site where it is most meaningful.
pub const MATRIX_FAULTS: [(FaultKind, FaultSite); 4] = [
    (FaultKind::Panic, FaultSite::Eval),
    (FaultKind::Invariant, FaultSite::Eval),
    (FaultKind::Budget, FaultSite::Edges),
    (FaultKind::VerifierReject, FaultSite::Rewrite),
];

/// The fault plan (if any) for the request with global index `idx`.
pub fn mix_plan(mix: FaultMix, idx: u64, seed: u64) -> Option<FaultPlan> {
    match mix {
        FaultMix::Clean => None,
        FaultMix::Every(n) => (n > 0 && idx.is_multiple_of(n))
            .then(|| FaultPlan::new(FaultKind::Panic, FaultSite::Eval).seeded(seed).sticky()),
        FaultMix::Matrix => {
            let slot = idx % 9;
            if slot == 0 {
                return None;
            }
            let (kind, site) = MATRIX_FAULTS[((slot - 1) / 2) as usize];
            let plan = FaultPlan::new(kind, site).seeded(seed ^ idx);
            Some(if (slot - 1) % 2 == 1 { plan.sticky() } else { plan })
        }
    }
}

/// Tuning for one [`run_load`] campaign.
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests per client.
    pub routines: usize,
    /// Server options (worker count, queue bound, ceilings).
    pub serve: ServeOptions,
    /// Master seed for the generated corpus.
    pub seed: u64,
    /// Fault-injection mix.
    pub fault: FaultMix,
    /// Cross-check every clean record against `run_batch --jobs 1` on
    /// the same corpus and count byte mismatches.
    pub check_batch: bool,
    /// Socket path; defaults to a pid-unique file in the temp dir.
    pub socket_path: Option<String>,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            clients: 4,
            routines: 25,
            serve: ServeOptions::default(),
            seed: 2002,
            fault: FaultMix::Clean,
            check_batch: false,
            socket_path: None,
        }
    }
}

/// The outcome of one load campaign.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Server worker count the campaign ran against.
    pub workers: usize,
    /// Requests sent across all clients.
    pub sent: u64,
    /// Responses received across all clients.
    pub received: u64,
    /// Requests never answered (`sent - received`) — the load smoke's
    /// zero-drop criterion.
    pub dropped: u64,
    /// Responses carrying a routine record.
    pub records: u64,
    /// Responses carrying a structured error.
    pub errors: u64,
    /// Responses shed by backpressure.
    pub shed: u64,
    /// Median request latency, nanoseconds.
    pub p50_nanos: u64,
    /// 99th-percentile request latency, nanoseconds.
    pub p99_nanos: u64,
    /// Completed requests per wall-clock second.
    pub routines_per_sec: f64,
    /// Campaign wall time, nanoseconds.
    pub wall_nanos: u64,
    /// Clean records whose bytes differed from the sequential batch
    /// run (only populated with `check_batch`; must be zero).
    pub mismatches: u64,
    /// The server's own summary after the drain.
    pub summary: ServeSummary,
}

impl LoadReport {
    /// Whether the campaign met the harness criteria: nothing dropped,
    /// no mismatches, and the server upheld its isolation contract.
    pub fn is_clean(&self) -> bool {
        self.dropped == 0 && self.mismatches == 0 && self.summary.is_clean()
    }

    /// The `serve_load` JSON record (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_str("event", "serve_load")
            .field_u64("workers", self.workers as u64)
            .field_u64("sent", self.sent)
            .field_u64("received", self.received)
            .field_u64("dropped", self.dropped)
            .field_u64("records", self.records)
            .field_u64("errors", self.errors)
            .field_u64("shed", self.shed)
            .field_u64("p50_nanos", self.p50_nanos)
            .field_u64("p99_nanos", self.p99_nanos)
            .field_f64("routines_per_sec", self.routines_per_sec)
            .field_u64("wall_nanos", self.wall_nanos)
            .field_u64("mismatches", self.mismatches)
            .field_u64("escaped_panics", self.summary.escaped_panics);
        w.finish()
    }

    /// A one-line human summary.
    pub fn human_line(&self) -> String {
        format!(
            "workers {}: {}/{} answered, {} records, {} errors, {} shed, \
             p50 {:.2}ms, p99 {:.2}ms, {:.0} routines/sec{}",
            self.workers,
            self.received,
            self.sent,
            self.records,
            self.errors,
            self.shed,
            self.p50_nanos as f64 / 1e6,
            self.p99_nanos as f64 / 1e6,
            self.routines_per_sec,
            if self.mismatches > 0 { " [BATCH MISMATCH]" } else { "" }
        )
    }
}

/// The request JSON for global index `idx` under `opts`. Exposed so
/// tests can replay the identical corpus.
pub fn load_request_json(opts: &LoadOptions, idx: u64) -> String {
    let gen_seed = crate::oracle::mix64(opts.seed ^ crate::oracle::mix64(idx));
    let mut w = JsonWriter::object();
    w.field_u64("id", idx + 1)
        .field_str("name", &format!("load_{idx}"))
        .field_u64("gen_seed", gen_seed);
    if let Some(plan) = mix_plan(opts.fault, idx, opts.seed) {
        w.field_str("inject", &format!("{}@{}", plan.kind, plan.site))
            .field_u64("inject_seed", plan.seed);
        if plan.sticky {
            w.field_bool("inject_sticky", true);
        }
    }
    w.finish()
}

/// One client's observations.
struct ClientResult {
    sent: u64,
    /// `(global index, latency, response)` per answered request.
    answered: Vec<(u64, u64, String)>,
    error: Option<io::Error>,
}

/// Runs one load campaign: starts a socket server, hammers it with
/// `clients × routines` requests, drains it via the `shutdown` op, and
/// folds everything into a [`LoadReport`]. I/O errors reaching the
/// harness itself (bind/connect failures) abort the campaign; request
/// failures are what the campaign *measures*, never aborts.
pub fn run_load(opts: &LoadOptions) -> io::Result<LoadReport> {
    let path = opts.socket_path.clone().unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("pgvn-serve-load-{}-{}.sock", std::process::id(), opts.seed))
            .display()
            .to_string()
    });
    let _ = std::fs::remove_file(&path);
    let listener = std::os::unix::net::UnixListener::bind(&path)?;
    let t0 = Instant::now();
    let mut client_results: Vec<ClientResult> = Vec::new();
    let mut summary: Option<io::Result<ServeSummary>> = None;
    std::thread::scope(|s| {
        let server = s.spawn(|| serve_socket(listener, &opts.serve));
        let clients: Vec<_> = (0..opts.clients.max(1))
            .map(|c| {
                let path = path.as_str();
                s.spawn(move || run_client(path, opts, c as u64))
            })
            .collect();
        for handle in clients {
            client_results.push(handle.join().expect("load client panicked"));
        }
        // All clients are done; drain the server through the protocol.
        // Without a successful shutdown the scope would wait on the
        // server thread forever, so retry briefly and then give up
        // loudly rather than hang.
        let mut shutdown = Err(io::Error::other("shutdown not attempted"));
        for _ in 0..50 {
            shutdown = (|| -> io::Result<()> {
                let mut conn = UnixStream::connect(path.as_str())?;
                write_frame(&mut conn, br#"{"op":"shutdown"}"#)?;
                let mut never = || false;
                let _ = read_frame(&mut conn, 1 << 20, &mut never);
                Ok(())
            })();
            if shutdown.is_ok() {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        shutdown.expect("load harness could not reach its own server to shut it down");
        summary = Some(server.join().expect("serve thread panicked"));
    });
    let wall = t0.elapsed();
    let _ = std::fs::remove_file(&path);
    let summary = summary.expect("server joined")?;

    let mut sent = 0u64;
    let mut answered: Vec<(u64, u64, String)> = Vec::new();
    let mut client_error: Option<io::Error> = None;
    for res in client_results {
        sent += res.sent;
        answered.extend(res.answered);
        if let Some(e) = res.error {
            client_error.get_or_insert(e);
        }
    }
    if let Some(e) = client_error {
        return Err(e);
    }

    let mut latencies: Vec<u64> = answered.iter().map(|(_, l, _)| *l).collect();
    latencies.sort_unstable();
    let pick = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let i = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[i.min(latencies.len() - 1)]
    };
    let mut records = 0u64;
    let mut errors = 0u64;
    let mut shed = 0u64;
    for (_, _, resp) in &answered {
        if resp.contains("\"reply\":\"record\"") {
            records += 1;
        } else if resp.contains("\"reply\":\"shed\"") {
            shed += 1;
        } else {
            errors += 1;
        }
    }
    let mismatches = if opts.check_batch { batch_mismatches(opts, &answered) } else { 0 };
    let secs = wall.as_secs_f64();
    Ok(LoadReport {
        workers: opts.serve.workers.max(1),
        sent,
        received: answered.len() as u64,
        dropped: sent - answered.len() as u64,
        records,
        errors,
        shed,
        p50_nanos: pick(0.50),
        p99_nanos: pick(0.99),
        routines_per_sec: if secs > 0.0 { answered.len() as f64 / secs } else { 0.0 },
        wall_nanos: u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX),
        mismatches,
        summary,
    })
}

/// One closed-loop client: connect, then send request / await response
/// `routines` times.
fn run_client(path: &str, opts: &LoadOptions, client: u64) -> ClientResult {
    let mut sent = 0u64;
    let mut answered = Vec::new();
    let connect = || -> io::Result<UnixStream> {
        let conn = UnixStream::connect(path)?;
        conn.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(conn)
    };
    let mut conn = match connect() {
        Ok(c) => c,
        Err(e) => return ClientResult { sent, answered, error: Some(e) },
    };
    let routines = opts.routines.max(1) as u64;
    for r in 0..routines {
        let idx = client * routines + r;
        let req = load_request_json(opts, idx);
        let t0 = Instant::now();
        if write_frame(&mut conn, req.as_bytes()).is_err() {
            break;
        }
        sent += 1;
        let mut never = || false;
        match read_frame(&mut conn, 1 << 24, &mut never) {
            Ok(FrameEvent::Frame(payload)) => {
                let latency = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                answered.push((idx, latency, String::from_utf8_lossy(&payload).into_owned()));
            }
            _ => break,
        }
    }
    ClientResult { sent, answered, error: None }
}

/// Replays the clean (non-injected) slice of the corpus through
/// `run_batch --jobs 1` with the server's own resolved options and
/// counts records whose bytes differ from what serve returned.
fn batch_mismatches(opts: &LoadOptions, answered: &[(u64, u64, String)]) -> u64 {
    let mut clean: Vec<(u64, &str)> = answered
        .iter()
        .filter(|(idx, _, resp)| {
            mix_plan(opts.fault, *idx, opts.seed).is_none() && resp.contains("\"reply\":\"record\"")
        })
        .filter_map(|(idx, _, resp)| extract_record(resp).map(|r| (*idx, r)))
        .collect();
    clean.sort_unstable_by_key(|(idx, _)| *idx);
    let inputs: Vec<BatchInput> = clean
        .iter()
        .map(|(idx, _)| {
            let req = parse_request(load_request_json(opts, *idx).as_bytes())
                .expect("harness requests always parse");
            super::request_input(&req)
        })
        .collect();
    let batch_opts: BatchOptions = {
        let probe = parse_request(load_request_json(opts, pick_clean_index(opts)).as_bytes())
            .expect("harness requests always parse");
        resolve_request_options(&probe, &opts.serve).expect("harness options always resolve")
    };
    let batch_opts = BatchOptions { jobs: 1, ..batch_opts };
    let report = run_batch(&inputs, &batch_opts);
    clean
        .iter()
        .zip(report.records.iter())
        .filter(|((_, served), batched)| *served != batched.json)
        .count() as u64
}

/// Any global index the mix leaves clean (for resolving the shared
/// request options).
fn pick_clean_index(opts: &LoadOptions) -> u64 {
    (0..).find(|i| mix_plan(opts.fault, *i, opts.seed).is_none()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_mix_covers_every_class_both_ways() {
        let mut seen = std::collections::BTreeSet::new();
        let mut clean = 0;
        for idx in 0..90 {
            match mix_plan(FaultMix::Matrix, idx, 2002) {
                None => clean += 1,
                Some(p) => {
                    seen.insert((p.kind.name(), p.sticky));
                }
            }
        }
        assert_eq!(clean, 10);
        assert_eq!(seen.len(), 8, "4 classes x sticky/transient: {seen:?}");
        assert!(mix_plan(FaultMix::Clean, 0, 2002).is_none());
        assert!(mix_plan(FaultMix::Every(3), 3, 2002).is_some());
        assert!(mix_plan(FaultMix::Every(3), 4, 2002).is_none());
    }
}
