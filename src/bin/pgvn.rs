//! `pgvn` — command-line driver for the predicated sparse GVN optimizer.
//!
//! ```text
//! pgvn <file> [options]
//! pgvn - [options]                 # read source from stdin
//!
//! options:
//!   --config  full|extended|click|sccp|awz|basic   (default: full)
//!   --mode    optimistic|balanced|pessimistic      (default: optimistic)
//!   --variant practical|complete                   (default: practical)
//!   --ssa     minimal|semi-pruned|pruned           (default: pruned)
//!   --dense                                        disable sparseness
//!   --emit    ir|analysis|optimized|all            (default: optimized)
//!   --run     a,b,c                                execute with arguments
//!   --stats                                        print analysis counters
//!   --trace                                        trace events to stderr
//!   --trace-json <path>                            trace events as JSONL
//!   --profile                                      per-phase wall-clock report
//!   --stats-json                                   stats + strength as JSON
//!
//! pgvn fuzz [options]              # differential-oracle fuzzing
//!
//! options:
//!   --seed N                                       master seed (default: 0)
//!   --iters N                                      iterations (default: 1000)
//!   --mode validate|lattice|both                   (default: both)
//!   --max-failures N                               stop early (default: 10)
//!   --report <path>                                JSONL failure report
//!   --fixture-dir <dir>                            write .pgvn reproducers
//!   --no-shrink                                    keep failures unminimized
//!   --inject-bug                                   self-test: plant a miscompile
//! ```

use pgvn::core::run_traced as gvn_run_traced;
use pgvn::prelude::*;
use pgvn::telemetry::{JsonlSink, Phase, TeeSink, Telemetry, TextSink};
use std::io::Read;
use std::process::ExitCode;

struct Options {
    path: String,
    config: GvnConfig,
    style: SsaStyle,
    emit: Vec<String>,
    run_args: Option<Vec<i64>>,
    stats: bool,
    trace: bool,
    trace_json: Option<String>,
    profile: bool,
    stats_json: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: pgvn <file|-> [--config full|extended|click|sccp|awz|basic]\n\
         \x20           [--mode optimistic|balanced|pessimistic] [--variant practical|complete]\n\
         \x20           [--ssa minimal|semi-pruned|pruned] [--dense]\n\
         \x20           [--emit ir|analysis|optimized|all] [--run a,b,c] [--stats]\n\
         \x20           [--trace] [--trace-json <path>] [--profile] [--stats-json]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut args = std::env::args().skip(1);
    let mut path: Option<String> = None;
    let mut config = GvnConfig::full();
    let mut mode = Mode::Optimistic;
    let mut variant = Variant::Practical;
    let mut dense = false;
    let mut style = SsaStyle::Pruned;
    let mut emit = Vec::new();
    let mut run_args = None;
    let mut stats = false;
    let mut trace = false;
    let mut trace_json = None;
    let mut profile = false;
    let mut stats_json = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--config" => {
                config = match args.next().as_deref() {
                    Some("full") => GvnConfig::full(),
                    Some("extended") => GvnConfig::extended(),
                    Some("click") => GvnConfig::click(),
                    Some("sccp") => GvnConfig::sccp(),
                    Some("awz") => GvnConfig::awz(),
                    Some("basic") => GvnConfig::basic(),
                    _ => usage(),
                };
            }
            "--mode" => {
                mode = match args.next().as_deref() {
                    Some("optimistic") => Mode::Optimistic,
                    Some("balanced") => Mode::Balanced,
                    Some("pessimistic") => Mode::Pessimistic,
                    _ => usage(),
                };
            }
            "--variant" => {
                variant = match args.next().as_deref() {
                    Some("practical") => Variant::Practical,
                    Some("complete") => Variant::Complete,
                    _ => usage(),
                };
            }
            "--ssa" => {
                style = match args.next().as_deref() {
                    Some("minimal") => SsaStyle::Minimal,
                    Some("semi-pruned") => SsaStyle::SemiPruned,
                    Some("pruned") => SsaStyle::Pruned,
                    _ => usage(),
                };
            }
            "--dense" => dense = true,
            "--emit" => match args.next() {
                Some(e) => emit.push(e),
                None => usage(),
            },
            "--run" => {
                let list = args.next().unwrap_or_else(|| usage());
                let parsed: Result<Vec<i64>, _> =
                    list.split(',').filter(|s| !s.is_empty()).map(str::parse).collect();
                match parsed {
                    Ok(v) => run_args = Some(v),
                    Err(_) => usage(),
                }
            }
            "--stats" => stats = true,
            "--trace" => trace = true,
            "--trace-json" => match args.next() {
                Some(p) => trace_json = Some(p),
                None => usage(),
            },
            "--profile" => profile = true,
            "--stats-json" => stats_json = true,
            _ if path.is_none() && !a.starts_with("--") => path = Some(a),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    if emit.is_empty() {
        emit.push("optimized".to_string());
    }
    let config = config.mode(mode).variant(variant).sparse(!dense);
    Options { path, config, style, emit, run_args, stats, trace, trace_json, profile, stats_json }
}

fn wants_source(emit: &[String]) -> bool {
    emit.iter().any(|e| e == "source" || e == "all")
}

fn fuzz_usage() -> ! {
    eprintln!(
        "usage: pgvn fuzz [--seed N] [--iters N] [--mode validate|lattice|both]\n\
         \x20               [--max-failures N] [--report <path>] [--fixture-dir <dir>]\n\
         \x20               [--no-shrink] [--inject-bug]"
    );
    std::process::exit(2);
}

fn fuzz_main(mut args: std::env::Args) -> ExitCode {
    use pgvn::oracle::{fuzz_with, FuzzMode, FuzzOptions};
    use std::io::Write;

    let mut opts = FuzzOptions::default();
    let mut report_path: Option<String> = None;
    let mut fixture_dir: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.seed = v,
                None => fuzz_usage(),
            },
            "--iters" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.iterations = v,
                None => fuzz_usage(),
            },
            "--mode" => {
                opts.mode = match args.next().as_deref() {
                    Some("validate") => FuzzMode::Validate,
                    Some("lattice") => FuzzMode::Lattice,
                    Some("both") => FuzzMode::Both,
                    _ => fuzz_usage(),
                };
            }
            "--max-failures" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.max_failures = v,
                None => fuzz_usage(),
            },
            "--report" => match args.next() {
                Some(p) => report_path = Some(p),
                None => fuzz_usage(),
            },
            "--fixture-dir" => match args.next() {
                Some(p) => fixture_dir = Some(p),
                None => fuzz_usage(),
            },
            "--no-shrink" => opts.shrink = None,
            "--inject-bug" => opts.inject_miscompile = true,
            _ => fuzz_usage(),
        }
    }

    let every = (opts.iterations / 20).max(1);
    let result = fuzz_with(&opts, &mut |i, failure| {
        if let Some(f) = failure {
            eprintln!("pgvn fuzz: FAILURE at iteration {i} ({}): {}", f.kind, f.detail);
        } else if (i + 1) % every == 0 {
            eprintln!("pgvn fuzz: {}/{} iterations clean", i + 1, opts.iterations);
        }
    });

    if let Some(path) = &report_path {
        let mut lines = String::new();
        for f in &result.failures {
            lines.push_str(&f.to_json());
            lines.push('\n');
        }
        let mut w = pgvn::telemetry::json::JsonWriter::object();
        w.field_str("event", "fuzz_summary")
            .field_u64("seed", opts.seed)
            .field_u64("iterations_run", result.iterations_run)
            .field_u64("total_insts", result.total_insts)
            .field_u64("failures", result.failures.len() as u64);
        lines.push_str(&w.finish());
        lines.push('\n');
        let written = std::fs::File::create(path).and_then(|mut f| f.write_all(lines.as_bytes()));
        if let Err(e) = written {
            eprintln!("pgvn fuzz: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(dir) = &fixture_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("pgvn fuzz: cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
        for f in &result.failures {
            let path = format!("{dir}/fuzz-{}-{}.pgvn", f.kind, f.iteration);
            if let Err(e) = std::fs::write(&path, f.fixture()) {
                eprintln!("pgvn fuzz: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("pgvn fuzz: wrote {path}");
        }
    }
    println!(
        "fuzz: {} iterations, {} instructions, {} failure(s)",
        result.iterations_run,
        result.total_insts,
        result.failures.len()
    );
    if result.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    {
        let mut args = std::env::args();
        let _argv0 = args.next();
        if args.next().as_deref() == Some("fuzz") {
            return fuzz_main(args);
        }
    }
    let opts = parse_options();
    let source = if opts.path == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("pgvn: failed to read stdin");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(&opts.path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("pgvn: cannot read {}: {e}", opts.path);
                return ExitCode::FAILURE;
            }
        }
    };

    if wants_source(&opts.emit) {
        match pgvn::lang::parse(&source) {
            Ok(r) => println!("== source (pretty-printed) ==\n{}", pgvn::lang::print_routine(&r)),
            Err(e) => {
                eprintln!("pgvn: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Telemetry: tee the optional text and JSONL sinks, and start the
    // phase timers early enough to cover SSA construction.
    // PGVN_DEBUG_OSC is the back-compat alias for --trace.
    let trace = opts.trace || std::env::var_os("PGVN_DEBUG_OSC").is_some_and(|v| v != "0");
    let mut text_sink = trace.then(TextSink::stderr);
    let mut json_sink = match &opts.trace_json {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(JsonlSink::new(std::io::BufWriter::new(f))),
            Err(e) => {
                eprintln!("pgvn: cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let mut tee = TeeSink::new();
    if let Some(s) = text_sink.as_mut() {
        tee.push(s);
    }
    if let Some(s) = json_sink.as_mut() {
        tee.push(s);
    }
    let mut tel = if tee.is_empty() { Telemetry::off() } else { Telemetry::with_sink(&mut tee) };
    if opts.profile {
        tel.enable_profiling();
    }

    let t0 = tel.clock();
    let func = match compile(&source, opts.style) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("pgvn: {e}");
            return ExitCode::FAILURE;
        }
    };
    tel.record_phase(Phase::SsaBuild, t0);

    let wants = |w: &str| opts.emit.iter().any(|e| e == w || e == "all");

    if wants("ir") {
        println!("== ssa ==\n{func}");
    }

    let results = gvn_run_traced(&func, &opts.config, &mut tel);
    if wants("analysis") {
        let s = results.strength();
        println!("== analysis ==");
        println!("passes:              {}", results.stats.passes);
        println!("unreachable values:  {}", s.unreachable_values);
        println!("constant values:     {}", s.constant_values);
        println!("congruence classes:  {}", s.congruence_classes);
        for b in func.blocks() {
            if !results.is_block_reachable(b) {
                println!("unreachable block:   {b}");
            }
        }
        println!("\n{}", pgvn::core::annotated(&func, &results));
        println!("{}", pgvn::core::class_report(&func, &results));
    }

    let mut optimized = func.clone();
    let report =
        Pipeline::new(opts.config.clone()).rounds(2).optimize_traced(&mut optimized, &mut tel);
    tel.flush();
    if wants("optimized") {
        println!("== optimized ==\n{optimized}");
    }
    if opts.stats {
        println!("== stats ==");
        println!("gvn passes:            {}", report.gvn_stats.passes);
        println!("branches folded:       {}", report.uce.branches_folded);
        println!("blocks removed:        {}", report.uce.blocks_removed);
        println!("constants propagated:  {}", report.constants_propagated);
        println!("redundancies removed:  {}", report.redundancies_eliminated);
        println!("dead insts removed:    {}", report.dead_removed);
    }
    if opts.profile {
        if let Some(p) = tel.profiler() {
            print!("== profile ==\n{p}");
        }
    }
    if opts.stats_json {
        // One machine-readable object: the analysis run's expanded
        // counters plus the strength triple (Figures 10–12 measures).
        let mut w = pgvn::telemetry::json::JsonWriter::object();
        w.field_str("routine", func.name())
            .field_raw("stats", &results.stats.to_json())
            .field_raw("strength", &results.strength().to_json());
        println!("{}", w.finish());
    }

    if let Some(args) = opts.run_args {
        let mut o1 = HashedOpaques::new(0);
        let mut o2 = HashedOpaques::new(0);
        let original = Interpreter::new(&func).run(&args, &mut o1);
        let opt = Interpreter::new(&optimized).run(&args, &mut o2);
        match (original, opt) {
            (Ok(a), Ok(b)) if a == b => println!("result: {a}"),
            (Ok(a), Ok(b)) => {
                eprintln!("pgvn: INTERNAL ERROR: optimization changed result ({a} vs {b})");
                return ExitCode::FAILURE;
            }
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("pgvn: execution failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
