//! `pgvn` — command-line driver for the predicated sparse GVN optimizer.
//!
//! ```text
//! pgvn <file> [options]
//! pgvn - [options]                 # read source from stdin
//!
//! options:
//!   --config  full|extended|click|sccp|awz|basic   (default: full)
//!   --mode    optimistic|balanced|pessimistic      (default: optimistic)
//!   --variant practical|complete                   (default: practical)
//!   --ssa     minimal|semi-pruned|pruned           (default: pruned)
//!   --dense                                        disable sparseness
//!   --passes  gvn,pre,gvn                          explicit pass pipeline
//!   --emit    ir|analysis|optimized|all            (default: optimized)
//!   --run     a,b,c                                execute with arguments
//!   --stats                                        print analysis counters
//!   --trace                                        trace events to stderr
//!   --trace-json <path>                            trace events as JSONL
//!   --profile                                      per-phase wall-clock report
//!   --stats-json                                   stats + strength + resilience as JSON
//!   --budget-passes N                              per-routine pass ceiling
//!   --budget-ms N                                  per-routine wall-clock deadline
//!   --budget-touches N                             per-routine touched-work quota
//!   --inject kind@site                             deterministic fault injection
//!   --inject-seed N / --inject-sticky              fault trigger seed / every rung
//!   --check                                        lint the optimized output (exit 1 on errors)
//!
//! pgvn check [<file>...] [options] # static-analysis lint suite
//!
//! options:
//!   --dir <dir>                                    check every .pgvn file in dir
//!   --gen N                                        or: generate N routines
//!   --seed N                                       generator seed (default: 2002)
//!   --json                                         JSONL records instead of text
//!   --no-gvn                                       skip the GVN-backed lints
//!   --timings                                      append the check_timing record
//!
//! pgvn fuzz [options]              # differential-oracle fuzzing
//!
//! options:
//!   --seed N                                       master seed (default: 0)
//!   --iters N                                      iterations (default: 1000)
//!   --mode validate|lattice|both                   (default: both)
//!   --max-failures N                               stop early (default: 10)
//!   --report <path>                                JSONL failure report
//!   --fixture-dir <dir>                            write .pgvn reproducers
//!   --no-shrink                                    keep failures unminimized
//!   --no-resilient                                 skip the degradation-ladder oracle
//!   --no-diagnostics                               skip the diagnostic-stability oracle
//!   --inject-bug                                   self-test: plant a miscompile
//!   --jobs N                                       worker threads (default: 1)
//!   --max-iters-per-shard N                        iterations per cursor grab (default: 64)
//!   --timings                                      append the fuzz_timing record
//!
//! pgvn batch [options]             # resilient batch optimization
//!
//! options:
//!   --dir <dir>                                    optimize every .pgvn file in dir
//!   --gen N                                        or: generate N routines
//!   --seed N                                       generator seed (default: 2002)
//!   --limit N                                      stop after N routines
//!   --config/--mode/--variant                      as for single-routine mode
//!   --rounds N                                     pipeline rounds (default: 2)
//!   --passes gvn,pre,gvn                           explicit pass pipeline
//!   --budget-passes/--budget-ms/--budget-touches   per-routine budgets
//!   --inject kind@site [--inject-seed N] [--inject-sticky]
//!   --report <path>                                per-routine JSONL report
//!   --jobs N                                       worker threads (default: 1)
//!   --stats-json <path>                            merged GvnStats as JSONL
//!   --no-warm                                      skip the worker warm-start pilot
//!   --check                                        lint each optimized output (post-pass gate)
//!
//! pgvn serve [options]             # long-lived optimization service
//!
//! options:
//!   --socket <path>                                Unix socket (default: stdin/stdout)
//!   --workers N                                    worker pool size (default: 2)
//!   --queue N                                      admission queue bound (default: 64)
//!   --max-frame-bytes N                            frame payload ceiling
//!   --max-budget-passes/-ms/-touches N             per-request budget ceilings
//!   --max-rounds N                                 pipeline rounds ceiling
//!   --config/--mode/--variant/--rounds/--passes    base configuration
//!   --no-warm                                      skip the worker warm-start pilot
//!   --timings                                      wall_nanos in records (non-deterministic)
//!   --check                                        lint each optimized output (post-pass gate)
//!
//! pgvn serve-load [options]        # load-test harness against pgvn serve
//!
//! options:
//!   --clients N                                    concurrent clients (default: 4)
//!   --routines N                                   requests per client (default: 25)
//!   --workers-curve 1,4                            server pool sizes to sweep
//!   --queue N / --seed N                           server queue bound / corpus seed
//!   --fault clean|every:N|matrix                   fault-injected traffic mix
//!   --passes gvn,pre,gvn                           server-default pass pipeline
//!   --check-batch                                  verify records against batch --jobs 1
//!   --report <path>                                JSONL report (default: stdout)
//!
//! Exit codes: 0 success, 1 failures found (fuzz/batch), diagnostics
//! found (check), escaped panics (serve), dropped/mismatched responses
//! (serve-load), or internal error, 2 usage or I/O errors — the full
//! per-surface table is in the README. Batch and serve isolate
//! every routine with `catch_unwind`: one poisoned routine cannot sink
//! the process. Batch reports are byte-identical at any `--jobs`
//! count, and serve records are byte-identical to `batch --jobs 1`.
//! See `docs/SERVE.md` for the framing spec and failure taxonomy.
//! ```

use pgvn::core::{try_run_traced, FaultPlan, GvnBudget};
use pgvn::prelude::*;
use pgvn::telemetry::{JsonlSink, Phase, TeeSink, Telemetry, TextSink};
use std::io::Read;
use std::process::ExitCode;

/// Usage and I/O errors: one-line diagnostic, never a panic backtrace.
const EXIT_USAGE: u8 = 2;

/// Prints a one-line diagnostic and returns the usage/I/O exit code.
fn fail_io(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("pgvn: {msg}");
    ExitCode::from(EXIT_USAGE)
}

/// Parses a `--passes` argument, exiting 2 with a one-line diagnostic
/// on a missing or malformed spec (shared by every subcommand).
fn parse_passes_arg(spec: Option<String>) -> PassSpec {
    let Some(spec) = spec else {
        eprintln!("pgvn: --passes requires a pass list (e.g. gvn,pre,gvn)");
        std::process::exit(2);
    };
    match PassSpec::parse(&spec) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("pgvn: --passes: {msg}");
            std::process::exit(2);
        }
    }
}

struct Options {
    path: String,
    config: GvnConfig,
    passes: Option<PassSpec>,
    style: SsaStyle,
    emit: Vec<String>,
    run_args: Option<Vec<i64>>,
    stats: bool,
    trace: bool,
    trace_json: Option<String>,
    profile: bool,
    stats_json: bool,
    check: bool,
    res: ResilienceFlags,
}

fn usage() -> ! {
    eprintln!(
        "usage: pgvn <file|-> [--config full|extended|click|sccp|awz|basic]\n\
         \x20           [--mode optimistic|balanced|pessimistic] [--variant practical|complete]\n\
         \x20           [--ssa minimal|semi-pruned|pruned] [--dense] [--passes gvn,pre,gvn]\n\
         \x20           [--emit ir|analysis|optimized|all] [--run a,b,c] [--stats]\n\
         \x20           [--trace] [--trace-json <path>] [--profile] [--stats-json]\n\
         \x20           [--budget-passes N] [--budget-ms N] [--budget-touches N]\n\
         \x20           [--inject kind@site] [--inject-seed N] [--inject-sticky] [--check]\n\
         \x20      pgvn check --help | pgvn fuzz --help | pgvn batch --help"
    );
    std::process::exit(2);
}

/// The budget/fault flags shared by the single-routine and batch modes.
#[derive(Default)]
struct ResilienceFlags {
    budget: GvnBudget,
    inject: Option<FaultPlan>,
    inject_seed: u64,
    inject_sticky: bool,
}

impl ResilienceFlags {
    /// Consumes the flag if it matches, pulling its value from `args`.
    /// `Ok(true)` means handled; `Err` carries the one-line diagnostic.
    fn consume(
        &mut self,
        flag: &str,
        args: &mut impl Iterator<Item = String>,
    ) -> Result<bool, String> {
        let mut num = |what: &str| -> Result<u64, String> {
            args.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("{flag} requires a numeric {what}"))
        };
        match flag {
            "--budget-passes" => self.budget.max_passes = Some(num("pass count")? as u32),
            "--budget-ms" => {
                self.budget.time_limit = Some(std::time::Duration::from_millis(num("deadline")?));
            }
            "--budget-touches" => self.budget.max_touches = Some(num("quota")?),
            "--inject" => {
                let spec = args.next().ok_or("--inject requires kind@site")?;
                self.inject = Some(FaultPlan::parse(&spec).ok_or_else(|| {
                    format!(
                        "--inject {spec}: expected kind@site with kind one of \
                         panic|invariant|budget|verifier-reject and site one of \
                         eval|edges|phipred|rewrite"
                    )
                })?);
            }
            "--inject-seed" => self.inject_seed = num("seed")?,
            "--inject-sticky" => self.inject_sticky = true,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// The assembled fault plan, seed and stickiness applied.
    fn fault_plan(&self) -> Option<FaultPlan> {
        self.inject.map(|p| {
            let p = p.seeded(self.inject_seed);
            if self.inject_sticky {
                p.sticky()
            } else {
                p
            }
        })
    }

    /// Applies the budget and fault plan to a configuration.
    fn apply(&self, cfg: GvnConfig) -> GvnConfig {
        cfg.budget(self.budget).fault_plan(self.fault_plan())
    }
}

fn parse_options() -> Options {
    let mut args = std::env::args().skip(1);
    let mut path: Option<String> = None;
    let mut config = GvnConfig::full();
    let mut mode = Mode::Optimistic;
    let mut variant = Variant::Practical;
    let mut dense = false;
    let mut style = SsaStyle::Pruned;
    let mut emit = Vec::new();
    let mut run_args = None;
    let mut stats = false;
    let mut trace = false;
    let mut trace_json = None;
    let mut profile = false;
    let mut stats_json = false;
    let mut check = false;
    let mut passes = None;
    let mut res = ResilienceFlags::default();
    while let Some(a) = args.next() {
        match res.consume(a.as_str(), &mut args) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(msg) => {
                eprintln!("pgvn: {msg}");
                std::process::exit(2);
            }
        }
        match a.as_str() {
            "--passes" => passes = Some(parse_passes_arg(args.next())),
            "--config" => {
                config = match args.next().as_deref() {
                    Some("full") => GvnConfig::full(),
                    Some("extended") => GvnConfig::extended(),
                    Some("click") => GvnConfig::click(),
                    Some("sccp") => GvnConfig::sccp(),
                    Some("awz") => GvnConfig::awz(),
                    Some("basic") => GvnConfig::basic(),
                    _ => usage(),
                };
            }
            "--mode" => {
                mode = match args.next().as_deref() {
                    Some("optimistic") => Mode::Optimistic,
                    Some("balanced") => Mode::Balanced,
                    Some("pessimistic") => Mode::Pessimistic,
                    _ => usage(),
                };
            }
            "--variant" => {
                variant = match args.next().as_deref() {
                    Some("practical") => Variant::Practical,
                    Some("complete") => Variant::Complete,
                    _ => usage(),
                };
            }
            "--ssa" => {
                style = match args.next().as_deref() {
                    Some("minimal") => SsaStyle::Minimal,
                    Some("semi-pruned") => SsaStyle::SemiPruned,
                    Some("pruned") => SsaStyle::Pruned,
                    _ => usage(),
                };
            }
            "--dense" => dense = true,
            "--emit" => match args.next() {
                Some(e) => emit.push(e),
                None => usage(),
            },
            "--run" => {
                let list = args.next().unwrap_or_else(|| usage());
                let parsed: Result<Vec<i64>, _> =
                    list.split(',').filter(|s| !s.is_empty()).map(str::parse).collect();
                match parsed {
                    Ok(v) => run_args = Some(v),
                    Err(_) => usage(),
                }
            }
            "--stats" => stats = true,
            "--trace" => trace = true,
            "--trace-json" => match args.next() {
                Some(p) => trace_json = Some(p),
                None => usage(),
            },
            "--profile" => profile = true,
            "--stats-json" => stats_json = true,
            "--check" => check = true,
            _ if path.is_none() && !a.starts_with("--") => path = Some(a),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    if emit.is_empty() {
        emit.push("optimized".to_string());
    }
    let config = config.mode(mode).variant(variant).sparse(!dense);
    Options {
        path,
        config,
        passes,
        style,
        emit,
        run_args,
        stats,
        trace,
        trace_json,
        profile,
        stats_json,
        check,
        res,
    }
}

fn wants_source(emit: &[String]) -> bool {
    emit.iter().any(|e| e == "source" || e == "all")
}

fn check_usage() -> ! {
    eprintln!(
        "usage: pgvn check [<file>...] [--dir <dir>] [--gen N] [--seed N]\n\
         \x20                [--json] [--no-gvn] [--timings]"
    );
    std::process::exit(2);
}

/// `pgvn check`: the static-analysis lint suite over explicit files, a
/// directory of `.pgvn` sources, or a generated corpus. Prints one line
/// per diagnostic (or JSONL with `--json`) and exits 0 when no
/// error-severity diagnostic was found, 1 otherwise, 2 on usage or I/O
/// errors — warnings and advisories report without failing the run. The
/// lint catalog and JSON schema are documented in `docs/CHECK.md`.
fn check_main(mut args: std::env::Args) -> ExitCode {
    use pgvn::batch::BatchInput;
    use pgvn::check::run_check_inputs;
    use pgvn::transform::CheckOptions;

    let mut files: Vec<String> = Vec::new();
    let mut dir: Option<String> = None;
    let mut gen_count: Option<u64> = None;
    let mut seed: u64 = 2002;
    let mut json = false;
    let mut timings = false;
    let mut copts = CheckOptions::default();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--dir" => match args.next() {
                Some(d) => dir = Some(d),
                None => check_usage(),
            },
            "--gen" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => gen_count = Some(n),
                None => check_usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => check_usage(),
            },
            "--json" => json = true,
            "--no-gvn" => copts = CheckOptions::without_gvn(),
            "--timings" => timings = true,
            _ if !a.starts_with("--") => files.push(a),
            _ => check_usage(),
        }
    }
    if files.is_empty() && dir.is_none() && gen_count.is_none() {
        check_usage();
    }

    // Gather the corpus exactly as `pgvn batch` does: unreadable or
    // unparseable inputs classify as parse_error diagnostics, never
    // early exits.
    let mut inputs: Vec<BatchInput> = files
        .iter()
        .map(|p| BatchInput {
            name: p.clone(),
            source: std::fs::read_to_string(p).map_err(|e| e.to_string()),
        })
        .collect();
    if let Some(dir) = &dir {
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) => return fail_io(format_args!("check: cannot read {dir}: {e}")),
        };
        let mut paths: Vec<std::path::PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "pgvn"))
            .collect();
        paths.sort();
        for p in paths {
            let name = p.display().to_string();
            let source = std::fs::read_to_string(&p).map_err(|e| e.to_string());
            inputs.push(BatchInput { name, source });
        }
    }
    if let Some(n) = gen_count {
        for i in 0..n {
            let gen_seed = pgvn::oracle::mix64(seed ^ pgvn::oracle::mix64(i));
            let gcfg = pgvn::workload::GenConfig { seed: gen_seed, ..Default::default() };
            let routine = pgvn::workload::generate_routine(&format!("check_{i}"), &gcfg);
            inputs.push(BatchInput {
                name: format!("check_{i}"),
                source: Ok(pgvn::lang::print_routine(&routine)),
            });
        }
    }

    let report = run_check_inputs(&inputs, &copts);
    if json {
        for rec in &report.records {
            println!("{}", rec.json_line());
        }
        if timings {
            let mut w = pgvn::telemetry::json::JsonWriter::object();
            w.field_str("event", "check_timing").field_raw("metrics", &report.timing.to_json());
            println!("{}", w.finish());
        }
        println!("{}", report.summary_json());
    } else {
        for rec in &report.records {
            for line in rec.text_lines() {
                println!("{line}");
            }
        }
        eprintln!("{}", report.summary_text());
    }
    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn fuzz_usage() -> ! {
    eprintln!(
        "usage: pgvn fuzz [--seed N] [--iters N] [--mode validate|lattice|both]\n\
         \x20               [--max-failures N] [--report <path>] [--fixture-dir <dir>]\n\
         \x20               [--no-shrink] [--no-resilient] [--no-diagnostics] [--inject-bug]\n\
         \x20               [--jobs N] [--max-iters-per-shard N] [--timings]"
    );
    std::process::exit(2);
}

/// `pgvn fuzz`: the differential oracle, sharded over
/// [`pgvn::oracle::run_campaign_with`]. The report (failure lines, the
/// `fuzz_stats` record, and the `fuzz_summary` record), the shrunk
/// fixtures and the exit code are byte-identical at any `--jobs`; only
/// the optional `fuzz_timing` record (behind `--timings`) and the
/// stderr ticker depend on scheduling.
fn fuzz_main(mut args: std::env::Args) -> ExitCode {
    use pgvn::oracle::{run_campaign_with, CampaignOptions, FuzzMode};
    use std::io::Write;

    let mut copts = CampaignOptions::default();
    let mut timings = false;
    let mut report_path: Option<String> = None;
    let mut fixture_dir: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => copts.fuzz.seed = v,
                None => fuzz_usage(),
            },
            "--iters" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => copts.fuzz.iterations = v,
                None => fuzz_usage(),
            },
            "--mode" => {
                copts.fuzz.mode = match args.next().as_deref() {
                    Some("validate") => FuzzMode::Validate,
                    Some("lattice") => FuzzMode::Lattice,
                    Some("both") => FuzzMode::Both,
                    _ => fuzz_usage(),
                };
            }
            "--max-failures" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => copts.fuzz.max_failures = v,
                None => fuzz_usage(),
            },
            "--report" => match args.next() {
                Some(p) => report_path = Some(p),
                None => fuzz_usage(),
            },
            "--fixture-dir" => match args.next() {
                Some(p) => fixture_dir = Some(p),
                None => fuzz_usage(),
            },
            "--no-shrink" => copts.fuzz.shrink = None,
            "--no-resilient" => copts.fuzz.check_resilient = false,
            "--no-diagnostics" => copts.fuzz.check_diagnostics = false,
            "--inject-bug" => copts.fuzz.inject_miscompile = true,
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => copts.jobs = v,
                None => fuzz_usage(),
            },
            "--max-iters-per-shard" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => copts.max_iters_per_shard = v,
                None => fuzz_usage(),
            },
            "--timings" => timings = true,
            _ => fuzz_usage(),
        }
    }

    let iters = copts.fuzz.iterations;
    let every = (iters / 20).max(1);
    let t0 = std::time::Instant::now();
    // At --jobs 1 this ticker reproduces the sequential progress
    // stream; at higher job counts the ordering follows the schedule.
    let campaign = run_campaign_with(&copts, &move |i, failure| {
        if let Some(f) = failure {
            eprintln!("pgvn fuzz: FAILURE at iteration {i} ({}): {}", f.kind, f.detail);
        } else if (i + 1) % every == 0 {
            eprintln!("pgvn fuzz: {}/{iters} iterations clean", i + 1);
        }
    });
    let result = &campaign.report;
    let elapsed = t0.elapsed();

    if let Some(path) = &report_path {
        let mut lines = String::new();
        for f in &result.failures {
            lines.push_str(&f.to_json());
            lines.push('\n');
        }
        lines.push_str(&campaign.stats_json(copts.fuzz.seed));
        lines.push('\n');
        if timings {
            lines.push_str(&campaign.timing_json());
            lines.push('\n');
        }
        let mut w = pgvn::telemetry::json::JsonWriter::object();
        w.field_str("event", "fuzz_summary")
            .field_u64("seed", copts.fuzz.seed)
            .field_u64("iterations_run", result.iterations_run)
            .field_u64("total_insts", result.total_insts)
            .field_u64("failures", result.failures.len() as u64);
        lines.push_str(&w.finish());
        lines.push('\n');
        let written = std::fs::File::create(path).and_then(|mut f| f.write_all(lines.as_bytes()));
        if let Err(e) = written {
            return fail_io(format_args!("fuzz: cannot write {path}: {e}"));
        }
    }
    if let Some(dir) = &fixture_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            return fail_io(format_args!("fuzz: cannot create {dir}: {e}"));
        }
        for f in &result.failures {
            let path = format!("{dir}/fuzz-{}-{}.pgvn", f.kind, f.iteration);
            if let Err(e) = std::fs::write(&path, f.fixture()) {
                return fail_io(format_args!("fuzz: cannot write {path}: {e}"));
            }
            eprintln!("pgvn fuzz: wrote {path}");
        }
    }
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        eprintln!(
            "pgvn fuzz: {} iteration(s) in {secs:.1}s ({:.0} iters/sec, {} job(s))",
            result.iterations_run,
            result.iterations_run as f64 / secs,
            campaign.worker_iterations.len()
        );
    }
    println!(
        "fuzz: {} iterations, {} instructions, {} failure(s)",
        result.iterations_run,
        result.total_insts,
        result.failures.len()
    );
    if result.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn batch_usage() -> ! {
    eprintln!(
        "usage: pgvn batch (--dir <dir> | --gen N) [--seed N] [--limit N]\n\
         \x20                [--config full|extended|click|sccp|awz|basic]\n\
         \x20                [--mode optimistic|balanced|pessimistic]\n\
         \x20                [--variant practical|complete] [--rounds N]\n\
         \x20                [--budget-passes N] [--budget-ms N] [--budget-touches N]\n\
         \x20                [--inject kind@site] [--inject-seed N] [--inject-sticky]\n\
         \x20                [--report <path>] [--jobs N] [--stats-json <path>] [--timings]\n\
         \x20                [--no-warm] [--passes gvn,pre,gvn] [--check]"
    );
    std::process::exit(2);
}

/// `pgvn batch`: resilient optimization over a suite of routines, one
/// `catch_unwind`-isolated `optimize_resilient` call per routine, with a
/// per-routine JSONL outcome report. One poisoned routine can never sink
/// the batch — every routine ends in a classified record. Processing is
/// delegated to [`pgvn::batch::run_batch`], whose report is
/// byte-identical at any `--jobs` count.
fn batch_main(mut args: std::env::Args) -> ExitCode {
    use pgvn::batch::{run_batch, BatchInput, BatchOptions};
    use std::io::Write;

    let mut dir: Option<String> = None;
    let mut gen_count: Option<u64> = None;
    let mut seed: u64 = 2002;
    let mut limit: Option<usize> = None;
    let mut config = GvnConfig::full();
    let mut mode = Mode::Optimistic;
    let mut variant = Variant::Practical;
    let mut rounds: usize = 2;
    let mut jobs: usize = 1;
    let mut timings = false;
    let mut warm_start = true;
    let mut check = false;
    let mut passes: Option<PassSpec> = None;
    let mut res = ResilienceFlags::default();
    let mut report_path: Option<String> = None;
    let mut stats_path: Option<String> = None;
    while let Some(a) = args.next() {
        match res.consume(a.as_str(), &mut args) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(msg) => {
                eprintln!("pgvn: {msg}");
                std::process::exit(2);
            }
        }
        match a.as_str() {
            "--dir" => match args.next() {
                Some(d) => dir = Some(d),
                None => batch_usage(),
            },
            "--gen" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => gen_count = Some(n),
                None => batch_usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => batch_usage(),
            },
            "--limit" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => limit = Some(v),
                None => batch_usage(),
            },
            "--config" => {
                config = match args.next().as_deref() {
                    Some("full") => GvnConfig::full(),
                    Some("extended") => GvnConfig::extended(),
                    Some("click") => GvnConfig::click(),
                    Some("sccp") => GvnConfig::sccp(),
                    Some("awz") => GvnConfig::awz(),
                    Some("basic") => GvnConfig::basic(),
                    _ => batch_usage(),
                };
            }
            "--mode" => {
                mode = match args.next().as_deref() {
                    Some("optimistic") => Mode::Optimistic,
                    Some("balanced") => Mode::Balanced,
                    Some("pessimistic") => Mode::Pessimistic,
                    _ => batch_usage(),
                };
            }
            "--variant" => {
                variant = match args.next().as_deref() {
                    Some("practical") => Variant::Practical,
                    Some("complete") => Variant::Complete,
                    _ => batch_usage(),
                };
            }
            "--rounds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => rounds = v,
                None => batch_usage(),
            },
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => jobs = v,
                None => batch_usage(),
            },
            "--report" => match args.next() {
                Some(p) => report_path = Some(p),
                None => batch_usage(),
            },
            "--stats-json" => match args.next() {
                Some(p) => stats_path = Some(p),
                None => batch_usage(),
            },
            "--timings" => timings = true,
            "--no-warm" => warm_start = false,
            "--check" => check = true,
            "--passes" => passes = Some(parse_passes_arg(args.next())),
            _ => batch_usage(),
        }
    }
    if dir.is_none() && gen_count.is_none() {
        batch_usage();
    }
    let cfg = res.apply(config.mode(mode).variant(variant));

    // Gather the suite. Unreadable or unparseable inputs become
    // classified records, not early exits.
    let mut inputs: Vec<BatchInput> = Vec::new();
    if let Some(dir) = &dir {
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) => return fail_io(format_args!("batch: cannot read {dir}: {e}")),
        };
        let mut paths: Vec<std::path::PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "pgvn"))
            .collect();
        paths.sort();
        for p in paths {
            let name = p.display().to_string();
            let source = std::fs::read_to_string(&p).map_err(|e| e.to_string());
            inputs.push(BatchInput { name, source });
        }
    }
    if let Some(n) = gen_count {
        for i in 0..n {
            let gen_seed = pgvn::oracle::mix64(seed ^ pgvn::oracle::mix64(i));
            let gcfg = pgvn::workload::GenConfig { seed: gen_seed, ..Default::default() };
            let routine = pgvn::workload::generate_routine(&format!("batch_{i}"), &gcfg);
            inputs.push(BatchInput {
                name: format!("batch_{i}"),
                source: Ok(pgvn::lang::print_routine(&routine)),
            });
        }
    }
    if let Some(n) = limit {
        inputs.truncate(n);
    }

    // Injected panics are classified at the catch_unwind boundary; the
    // default hook would spray a backtrace per routine, so hold the
    // refcounted silencing guard for the duration of the batch (shared
    // with the fuzz campaigns and `pgvn serve`, so nesting composes).
    let batch = {
        let _hook = pgvn::oracle::silence_panic_hook();
        run_batch(&inputs, &BatchOptions { cfg, rounds, passes, jobs, timings, warm_start, check })
    };

    // Records come back in input order whatever the worker count, so
    // both the report and the diagnostics stream are deterministic.
    let mut lines = String::new();
    for rec in &batch.records {
        if let Some(d) = &rec.diagnostic {
            eprintln!("{d}");
        }
        lines.push_str(&rec.json_line(timings));
        lines.push('\n');
    }
    if timings {
        lines.push_str(&batch.timing_json());
        lines.push('\n');
    }
    lines.push_str(&batch.summary_json(seed));
    lines.push('\n');
    if let Some(path) = &report_path {
        let written = std::fs::File::create(path).and_then(|mut f| f.write_all(lines.as_bytes()));
        if let Err(e) = written {
            return fail_io(format_args!("batch: cannot write {path}: {e}"));
        }
    } else {
        print!("{lines}");
    }
    if let Some(path) = &stats_path {
        let mut stats = batch.stats_json(seed);
        stats.push('\n');
        let written = std::fs::File::create(path).and_then(|mut f| f.write_all(stats.as_bytes()));
        if let Err(e) = written {
            return fail_io(format_args!("batch: cannot write {path}: {e}"));
        }
    }
    eprintln!(
        "pgvn batch: {} routine(s): {} optimized, {} identity, \
         {} rejected, {} input error(s), {} escaped panic(s)",
        batch.records.len(),
        batch.optimized,
        batch.identity,
        batch.rejected,
        batch.input_errors,
        batch.escaped_panics
    );
    if check {
        eprintln!("pgvn batch: check gate: {} error diagnostic(s)", batch.check_errors);
    }
    if batch.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn serve_usage() -> ! {
    eprintln!(
        "usage: pgvn serve [--socket <path>] [--workers N] [--queue N]\n\
         \x20                [--max-frame-bytes N] [--max-budget-passes N]\n\
         \x20                [--max-budget-ms N] [--max-budget-touches N] [--max-rounds N]\n\
         \x20                [--config full|extended|click|sccp|awz|basic]\n\
         \x20                [--mode optimistic|balanced|pessimistic]\n\
         \x20                [--variant practical|complete] [--rounds N]\n\
         \x20                [--passes gvn,pre,gvn] [--no-warm] [--timings] [--check]"
    );
    std::process::exit(2);
}

/// `pgvn serve`: the long-lived optimization service. Speaks the
/// length-prefixed JSON protocol of `docs/SERVE.md` over stdin/stdout,
/// or over a Unix socket with `--socket`. Drains on stdin EOF or a
/// `shutdown` request; exits 1 only if the isolation contract was
/// violated (a panic escaped the per-request boundary).
fn serve_main(mut args: std::env::Args) -> ExitCode {
    use pgvn::serve::{serve_duplex, serve_socket, ServeOptions};

    let mut opts = ServeOptions::default();
    let mut socket: Option<String> = None;
    let mut config = GvnConfig::full();
    let mut mode = Mode::Optimistic;
    let mut variant = Variant::Practical;
    while let Some(a) = args.next() {
        let mut num = |flag: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("pgvn: {flag} requires a numeric value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--socket" => match args.next() {
                Some(p) => socket = Some(p),
                None => serve_usage(),
            },
            "--workers" => opts.workers = num("--workers") as usize,
            "--queue" => opts.queue_capacity = num("--queue") as usize,
            "--max-frame-bytes" => opts.limits.max_frame_bytes = num("--max-frame-bytes") as u32,
            "--max-budget-passes" => opts.limits.max_passes = num("--max-budget-passes") as u32,
            "--max-budget-ms" => opts.limits.max_millis = num("--max-budget-ms"),
            "--max-budget-touches" => opts.limits.max_touches = num("--max-budget-touches"),
            "--max-rounds" => opts.limits.max_rounds = num("--max-rounds") as usize,
            "--rounds" => opts.rounds = num("--rounds") as usize,
            "--config" => {
                config = match args.next().as_deref() {
                    Some("full") => GvnConfig::full(),
                    Some("extended") => GvnConfig::extended(),
                    Some("click") => GvnConfig::click(),
                    Some("sccp") => GvnConfig::sccp(),
                    Some("awz") => GvnConfig::awz(),
                    Some("basic") => GvnConfig::basic(),
                    _ => serve_usage(),
                };
            }
            "--mode" => {
                mode = match args.next().as_deref() {
                    Some("optimistic") => Mode::Optimistic,
                    Some("balanced") => Mode::Balanced,
                    Some("pessimistic") => Mode::Pessimistic,
                    _ => serve_usage(),
                };
            }
            "--variant" => {
                variant = match args.next().as_deref() {
                    Some("practical") => Variant::Practical,
                    Some("complete") => Variant::Complete,
                    _ => serve_usage(),
                };
            }
            "--no-warm" => opts.warm_start = false,
            "--timings" => opts.timings = true,
            "--check" => opts.check = true,
            "--passes" => opts.passes = Some(parse_passes_arg(args.next())),
            _ => serve_usage(),
        }
    }
    opts.cfg = config.mode(mode).variant(variant);

    let summary = match &socket {
        Some(path) => {
            let _ = std::fs::remove_file(path);
            let listener = match std::os::unix::net::UnixListener::bind(path) {
                Ok(l) => l,
                Err(e) => return fail_io(format_args!("serve: cannot bind {path}: {e}")),
            };
            eprintln!("pgvn serve: listening on {path} ({} worker(s))", opts.workers.max(1));
            let result = serve_socket(listener, &opts);
            let _ = std::fs::remove_file(path);
            match result {
                Ok(s) => s,
                Err(e) => return fail_io(format_args!("serve: {e}")),
            }
        }
        None => {
            let stdin = std::io::stdin();
            serve_duplex(stdin.lock(), std::io::stdout(), &opts)
        }
    };
    eprintln!(
        "pgvn serve: {} request(s): {} record(s), {} degraded, {} shed, {} expired, \
         {} protocol error(s), {} absorbed panic(s), {} escaped panic(s)",
        summary.requests,
        summary.records,
        summary.degraded,
        summary.shed,
        summary.expired,
        summary.protocol_errors,
        summary.absorbed_panics,
        summary.escaped_panics
    );
    eprintln!("{}", summary.summary_json());
    if summary.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn serve_load_usage() -> ! {
    eprintln!(
        "usage: pgvn serve-load [--clients N] [--routines N] [--workers-curve 1,4]\n\
         \x20                     [--queue N] [--seed N] [--fault clean|every:N|matrix]\n\
         \x20                     [--check-batch] [--report <path>] [--no-warm]\n\
         \x20                     [--passes gvn,pre,gvn]"
    );
    std::process::exit(2);
}

/// `pgvn serve-load`: spins up an in-process socket server per worker
/// count in the curve and hammers it with concurrent clients, printing
/// p50/p99 latency and routines/sec. Exits 1 when any response was
/// dropped, any record mismatched `batch --jobs 1` (with
/// `--check-batch`), or the server's isolation contract was violated.
fn serve_load_main(mut args: std::env::Args) -> ExitCode {
    use pgvn::serve::load::{run_load, FaultMix, LoadOptions};
    use std::io::Write;

    let mut opts = LoadOptions::default();
    let mut curve: Vec<usize> = vec![1, 4];
    let mut report_path: Option<String> = None;
    while let Some(a) = args.next() {
        let mut num = |flag: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("pgvn: {flag} requires a numeric value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--clients" => opts.clients = num("--clients") as usize,
            "--routines" => opts.routines = num("--routines") as usize,
            "--queue" => opts.serve.queue_capacity = num("--queue") as usize,
            "--seed" => opts.seed = num("--seed"),
            "--workers-curve" => {
                let parsed: Option<Vec<usize>> = args
                    .next()
                    .map(|v| v.split(',').map(|s| s.trim().parse().ok()).collect())
                    .unwrap_or(None);
                match parsed {
                    Some(c) if !c.is_empty() => curve = c,
                    _ => serve_load_usage(),
                }
            }
            "--fault" => {
                opts.fault = match args.next().as_deref() {
                    Some("clean") => FaultMix::Clean,
                    Some("matrix") => FaultMix::Matrix,
                    Some(s) => match s.strip_prefix("every:").and_then(|n| n.parse().ok()) {
                        Some(n) => FaultMix::Every(n),
                        None => serve_load_usage(),
                    },
                    None => serve_load_usage(),
                };
            }
            "--check-batch" => opts.check_batch = true,
            "--no-warm" => opts.serve.warm_start = false,
            "--passes" => opts.serve.passes = Some(parse_passes_arg(args.next())),
            "--report" => match args.next() {
                Some(p) => report_path = Some(p),
                None => serve_load_usage(),
            },
            _ => serve_load_usage(),
        }
    }

    let mut lines = String::new();
    let mut all_clean = true;
    for workers in curve {
        opts.serve.workers = workers.max(1);
        let report = match run_load(&opts) {
            Ok(r) => r,
            Err(e) => return fail_io(format_args!("serve-load: {e}")),
        };
        eprintln!("pgvn serve-load: {}", report.human_line());
        if report.dropped > 0 {
            eprintln!("pgvn serve-load: ERROR: {} response(s) dropped", report.dropped);
        }
        if report.mismatches > 0 {
            eprintln!(
                "pgvn serve-load: ERROR: {} record(s) differ from batch --jobs 1",
                report.mismatches
            );
        }
        all_clean &= report.is_clean();
        lines.push_str(&report.to_json());
        lines.push('\n');
    }
    match &report_path {
        Some(path) => {
            let written =
                std::fs::File::create(path).and_then(|mut f| f.write_all(lines.as_bytes()));
            if let Err(e) = written {
                return fail_io(format_args!("serve-load: cannot write {path}: {e}"));
            }
        }
        None => print!("{lines}"),
    }
    if all_clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn perf_usage() -> ! {
    eprintln!(
        "usage: pgvn perf [--seed N] [--routines N] [--repeats N]\n\
         \x20               [--jobs-curve 1,2,4] [--out <path>] [--quick]\n\
         \x20      pgvn perf --compare <old.json> <new.json>\n\
         \x20               [--threshold PCT] [--max-overhead PCT]"
    );
    std::process::exit(2);
}

/// `pgvn perf`: runs the pinned benchmark suite and emits the
/// schema-versioned `BENCH_*.json` artifact, or — with `--compare` —
/// diffs two artifacts and exits nonzero on regression. See
/// `docs/OBSERVABILITY.md` for the artifact schema and thresholds.
fn perf_main(mut args: std::env::Args) -> ExitCode {
    use pgvn::perf::{compare, run_suite, BenchArtifact, CompareThresholds, PerfOptions};
    use std::io::Write;

    let mut opts = PerfOptions::default();
    let mut out_path: Option<String> = None;
    let mut compare_paths: Option<(String, String)> = None;
    let mut thresholds = CompareThresholds::default();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.seed = v,
                None => perf_usage(),
            },
            "--routines" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.routines = v,
                None => perf_usage(),
            },
            "--repeats" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.repeats = v,
                None => perf_usage(),
            },
            "--jobs-curve" => {
                let curve: Option<Vec<usize>> = args
                    .next()
                    .map(|v| v.split(',').map(|s| s.trim().parse().ok()).collect())
                    .unwrap_or(None);
                match curve {
                    Some(c) if !c.is_empty() => opts.jobs_curve = c,
                    _ => perf_usage(),
                }
            }
            "--quick" => {
                let q = PerfOptions::quick();
                opts.routines = q.routines;
                opts.repeats = q.repeats;
            }
            "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => perf_usage(),
            },
            "--compare" => match (args.next(), args.next()) {
                (Some(old), Some(new)) => compare_paths = Some((old, new)),
                _ => perf_usage(),
            },
            "--threshold" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => thresholds.regress_pct = v,
                None => perf_usage(),
            },
            "--max-overhead" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => thresholds.max_overhead_pct = v,
                None => perf_usage(),
            },
            _ => perf_usage(),
        }
    }

    if let Some((old_path, new_path)) = compare_paths {
        let load = |path: &str| -> Result<BenchArtifact, String> {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            BenchArtifact::from_json(&text).map_err(|e| format!("{path}: {e}"))
        };
        let (old, new) = match (load(&old_path), load(&new_path)) {
            (Ok(o), Ok(n)) => (o, n),
            (Err(e), _) | (_, Err(e)) => return fail_io(format_args!("perf: {e}")),
        };
        let regressions = compare(&old, &new, &thresholds);
        if regressions.is_empty() {
            eprintln!(
                "pgvn perf: no regressions against {old_path} \
                 (threshold {:.0}%, overhead ceiling {:.0}%)",
                thresholds.regress_pct, thresholds.max_overhead_pct
            );
            return ExitCode::SUCCESS;
        }
        for r in &regressions {
            eprintln!("pgvn perf: REGRESSION: {r}");
        }
        return ExitCode::FAILURE;
    }

    let artifact = run_suite(&opts);
    eprint!("{}", artifact.summary());
    let mut json = artifact.to_json();
    json.push('\n');
    match &out_path {
        Some(path) => {
            let written =
                std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes()));
            if let Err(e) = written {
                return fail_io(format_args!("perf: cannot write {path}: {e}"));
            }
            eprintln!("pgvn perf: artifact written to {path}");
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    {
        let mut args = std::env::args();
        let _argv0 = args.next();
        match args.next().as_deref() {
            Some("check") => return check_main(args),
            Some("fuzz") => return fuzz_main(args),
            Some("batch") => return batch_main(args),
            Some("perf") => return perf_main(args),
            Some("serve") => return serve_main(args),
            Some("serve-load") => return serve_load_main(args),
            _ => {}
        }
    }
    let opts = parse_options();
    let source = if opts.path == "-" {
        let mut s = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut s) {
            return fail_io(format_args!("failed to read stdin: {e}"));
        }
        s
    } else {
        match std::fs::read_to_string(&opts.path) {
            Ok(s) => s,
            Err(e) => return fail_io(format_args!("cannot read {}: {e}", opts.path)),
        }
    };

    if wants_source(&opts.emit) {
        match pgvn::lang::parse(&source) {
            Ok(r) => println!("== source (pretty-printed) ==\n{}", pgvn::lang::print_routine(&r)),
            Err(e) => return fail_io(e),
        }
    }

    // Telemetry: tee the optional text and JSONL sinks, and start the
    // phase timers early enough to cover SSA construction.
    // PGVN_DEBUG_OSC is the back-compat alias for --trace.
    let trace = opts.trace || std::env::var_os("PGVN_DEBUG_OSC").is_some_and(|v| v != "0");
    let mut text_sink = trace.then(TextSink::stderr);
    let mut json_sink = match &opts.trace_json {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(JsonlSink::new(std::io::BufWriter::new(f))),
            Err(e) => return fail_io(format_args!("cannot create {path}: {e}")),
        },
        None => None,
    };
    let mut tee = TeeSink::new();
    if let Some(s) = text_sink.as_mut() {
        tee.push(s);
    }
    if let Some(s) = json_sink.as_mut() {
        tee.push(s);
    }
    let mut tel = if tee.is_empty() { Telemetry::off() } else { Telemetry::with_sink(&mut tee) };
    if opts.profile {
        tel.enable_profiling();
    }

    let t0 = tel.clock();
    let func = match compile(&source, opts.style) {
        Ok(f) => f,
        Err(e) => return fail_io(e),
    };
    tel.record_phase(Phase::SsaBuild, t0);

    let wants = |w: &str| opts.emit.iter().any(|e| e == w || e == "all");

    if wants("ir") {
        println!("== ssa ==\n{func}");
    }

    // The display analysis run carries the budget but not the fault
    // plan — injected faults exercise the degradation ladder below.
    let analysis_cfg = opts.config.clone().budget(opts.res.budget);
    let results = match try_run_traced(&func, &analysis_cfg, &mut tel) {
        Ok(r) => Some(r),
        Err(e) => {
            eprintln!("pgvn: analysis failed ({}): {e}", e.kind());
            None
        }
    };
    if wants("analysis") {
        if let Some(results) = &results {
            let s = results.strength();
            println!("== analysis ==");
            println!("passes:              {}", results.stats.passes);
            println!("unreachable values:  {}", s.unreachable_values);
            println!("constant values:     {}", s.constant_values);
            println!("congruence classes:  {}", s.congruence_classes);
            for b in func.blocks() {
                if !results.is_block_reachable(b) {
                    println!("unreachable block:   {b}");
                }
            }
            println!("\n{}", pgvn::core::annotated(&func, results));
            println!("{}", pgvn::core::class_report(&func, results));
        }
    }

    // Every optimization goes through the degradation ladder: budgets,
    // panic isolation, verifier gating, identity fallback.
    let mut optimized = func.clone();
    let mut pipeline = Pipeline::new(opts.res.apply(opts.config.clone())).rounds(2);
    if let Some(spec) = &opts.passes {
        pipeline = pipeline.passes(spec.clone());
    }
    let resilience = pipeline.optimize_resilient_traced(&mut optimized, &mut tel);
    tel.flush();
    let report = &resilience.report;
    if !resilience.is_usable() {
        eprintln!("pgvn: optimization rejected the input: {}", resilience.outcome.kind());
        return ExitCode::FAILURE;
    }
    if wants("optimized") {
        println!("== optimized ==\n{optimized}");
    }
    if opts.stats {
        println!("== stats ==");
        println!("gvn passes:            {}", report.gvn_stats.passes);
        println!("branches folded:       {}", report.uce.branches_folded);
        println!("blocks removed:        {}", report.uce.blocks_removed);
        println!("constants propagated:  {}", report.constants_propagated);
        println!("redundancies removed:  {}", report.redundancies_eliminated);
        println!("dead insts removed:    {}", report.dead_removed);
        println!("ladder rung:           {}", report.gvn_stats.ladder_rung);
        println!("ladder failures:       {}", report.gvn_stats.ladder_failures);
    }
    if opts.profile {
        if let Some(p) = tel.profiler() {
            print!("== profile ==\n{p}");
        }
    }
    if opts.stats_json {
        // One machine-readable object: the analysis run's expanded
        // counters, the strength triple (Figures 10–12 measures), and
        // the degradation-ladder record (rung, failures, stats).
        let mut w = pgvn::telemetry::json::JsonWriter::object();
        w.field_str("routine", func.name());
        if let Some(results) = &results {
            w.field_raw("stats", &results.stats.to_json())
                .field_raw("strength", &results.strength().to_json());
        }
        w.field_raw("resilience", &resilience.to_json());
        println!("{}", w.finish());
    }

    if opts.check {
        // The post-pass gate: the committed output must carry no
        // error-severity lint diagnostic. Warnings and advisories print
        // without failing — same contract as `pgvn check`.
        let engine =
            pgvn::transform::check_function(&optimized, &pgvn::transform::CheckOptions::default());
        for d in engine.diagnostics() {
            eprintln!("pgvn: check: {}", d.render_text());
        }
        if engine.has_errors() {
            eprintln!(
                "pgvn: check: {} error diagnostic(s) on optimized output",
                engine.error_count()
            );
            return ExitCode::FAILURE;
        }
    }

    if let Some(args) = opts.run_args {
        let mut o1 = HashedOpaques::new(0);
        let mut o2 = HashedOpaques::new(0);
        let original = Interpreter::new(&func).run(&args, &mut o1);
        let opt = Interpreter::new(&optimized).run(&args, &mut o2);
        match (original, opt) {
            (Ok(a), Ok(b)) if a == b => println!("result: {a}"),
            (Ok(a), Ok(b)) => {
                eprintln!("pgvn: INTERNAL ERROR: optimization changed result ({a} vs {b})");
                return ExitCode::FAILURE;
            }
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("pgvn: execution failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
