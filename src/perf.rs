//! The pinned performance harness behind `pgvn perf`.
//!
//! A perf run measures one **pinned workload**: the same deterministic
//! generator as `pgvn batch --gen` (seed-derived routines, default seed
//! 2002), compiled once and then pushed through several measurement
//! passes:
//!
//! 1. **Single-thread throughput** — a warm-context loop of
//!    [`run_in_context`](pgvn_core::run_in_context) over every routine,
//!    repeated and taking the best (minimum) wall time;
//! 2. **Batch scaling** — [`run_batch`](crate::batch::run_batch) wall
//!    time at each point of a jobs curve (default 1/2/4);
//! 3. **Telemetry overhead** — the same loop with a fully active
//!    [`Telemetry`] (NullSink tracing + metrics) against the untraced
//!    baseline;
//! 4. **Per-phase timing and metrics** — one instrumented sweep with the
//!    [`Profiler`] and a [`MetricsRegistry`] attached;
//! 5. **Pipeline comparison** — the pinned pass pipelines (`gvn` vs
//!    `gvn,pre,gvn`, see `docs/PASSES.md`) over the same suite, each
//!    with wall time, a per-pass phase breakdown, and the redundancy
//!    counters (`redundancies_eliminated`, `pre_inserted`,
//!    `pre_eliminated`) that quantify what PRE buys over plain GVN.
//!
//! The result is a [`BenchArtifact`]: a schema-versioned JSON document
//! (`BENCH_*.json`, committed at the repo root as the CI baseline) that
//! [`compare`] can diff against a later run with noise-tolerant
//! thresholds. Comparison is ratio-based (routines/second), so a
//! baseline produced by a full run stays comparable to a `--quick` CI
//! run. See `docs/OBSERVABILITY.md` for the schema.

use crate::batch::{run_batch, BatchInput, BatchOptions};
use crate::prelude::*;
use pgvn_core::run_in_context;
use pgvn_telemetry::json::{parse, JsonValue, JsonWriter};
use pgvn_telemetry::{MetricsRegistry, MetricsSnapshot, NullSink, Telemetry, PHASES};
use std::time::Instant;

/// Version of the [`BenchArtifact`] JSON layout. Bump on any
/// field-layout change; [`compare`] refuses cross-version diffs.
///
/// v2 added `batch_scaling_cold` — the same jobs curve with worker
/// warm-start disabled, quantifying what the pilot routine buys.
///
/// v3 added `pipelines` — redundancy-elimination and per-pass timing
/// profiles for the pinned pass pipelines (`gvn` vs `gvn,pre,gvn`).
pub const SCHEMA_VERSION: u64 = 3;

/// The pass pipelines every perf run profiles against each other. The
/// first entry is the plain-GVN reference; [`compare`] requires each
/// later entry to eliminate strictly more redundant computations than
/// the first on the pinned workload.
pub const PINNED_PIPELINES: [&str; 2] = ["gvn", "gvn,pre,gvn"];

/// Tuning for one perf run.
#[derive(Clone, Debug)]
pub struct PerfOptions {
    /// Workload seed (same derivation as `pgvn batch --gen`).
    pub seed: u64,
    /// Number of generated routines in the suite.
    pub routines: u64,
    /// Timed repetitions per measurement; the best (minimum) wins.
    pub repeats: u32,
    /// Worker counts for the batch-scaling curve.
    pub jobs_curve: Vec<usize>,
}

impl Default for PerfOptions {
    fn default() -> Self {
        PerfOptions { seed: 2002, routines: 120, repeats: 3, jobs_curve: vec![1, 2, 4] }
    }
}

impl PerfOptions {
    /// A reduced suite for CI and smoke tests: fewer routines, fewer
    /// repeats, same seed and curve.
    pub fn quick() -> Self {
        PerfOptions { routines: 24, repeats: 2, ..Default::default() }
    }
}

/// One point on the batch-scaling curve.
#[derive(Clone, Debug, PartialEq)]
pub struct JobsPoint {
    /// Worker threads used.
    pub jobs: usize,
    /// Best-of-repeats wall time for the whole suite.
    pub best_nanos: u64,
    /// Routines per second at that wall time.
    pub routines_per_sec: f64,
}

/// Inclusive time attributed to one driver/rewrite phase during the
/// instrumented sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseTime {
    /// Stable phase name (see [`pgvn_telemetry::Phase::name`]).
    pub name: String,
    /// Accumulated inclusive nanoseconds.
    pub nanos: u64,
    /// Number of recorded spans.
    pub spans: u64,
}

/// Redundancy-elimination and timing profile of one pass pipeline over
/// the pinned suite (see [`PINNED_PIPELINES`] and `docs/PASSES.md`).
#[derive(Clone, Debug, PartialEq)]
pub struct PipelinePoint {
    /// The pipeline spec string, e.g. `"gvn,pre,gvn"`.
    pub spec: String,
    /// Best-of-repeats wall time for the whole suite under this spec.
    pub best_nanos: u64,
    /// Routines per second at that wall time.
    pub routines_per_sec: f64,
    /// Dominance-based redundancy eliminations across the suite.
    pub redundancies_eliminated: u64,
    /// Computations PRE cloned into predecessors.
    pub pre_inserted: u64,
    /// Partially redundant computations PRE replaced with a φ.
    pub pre_eliminated: u64,
    /// Per-pass inclusive timing from this spec's instrumented sweep.
    pub phases: Vec<PhaseTime>,
}

impl PipelinePoint {
    /// Total redundant computations removed: dominance-based GVN
    /// elimination plus PRE's φ replacements.
    pub fn eliminated_total(&self) -> u64 {
        self.redundancies_eliminated + self.pre_eliminated
    }
}

/// The schema-versioned result of one perf run.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchArtifact {
    /// JSON layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Workload seed.
    pub seed: u64,
    /// Routines in the suite.
    pub routines: u64,
    /// Timed repetitions per measurement.
    pub repeats: u32,
    /// Total instructions across the compiled suite.
    pub total_insts: u64,
    /// Best-of-repeats wall time of the single-thread loop.
    pub single_thread_nanos: u64,
    /// Single-thread throughput in routines per second.
    pub single_thread_routines_per_sec: f64,
    /// The batch-scaling curve, ascending by `jobs`, with worker
    /// warm-start enabled (the default batch configuration).
    pub batch_scaling: Vec<JobsPoint>,
    /// The same curve with warm-start disabled: every worker pays
    /// first-touch table growth inside the measured window. The gap to
    /// [`BenchArtifact::batch_scaling`] is the warm-start win.
    pub batch_scaling_cold: Vec<JobsPoint>,
    /// Per-phase inclusive timing from the instrumented sweep.
    pub phases: Vec<PhaseTime>,
    /// Pipeline comparison points, in [`PINNED_PIPELINES`] order.
    pub pipelines: Vec<PipelinePoint>,
    /// Metrics snapshot from the instrumented sweep.
    pub metrics: MetricsSnapshot,
    /// Best-of-repeats wall time of the untraced baseline loop.
    pub overhead_base_nanos: u64,
    /// Best-of-repeats wall time of the fully instrumented loop.
    pub overhead_instrumented_nanos: u64,
    /// Relative overhead of full telemetry, percent.
    pub telemetry_overhead_pct: f64,
}

/// Noise-tolerant regression thresholds for [`compare`].
#[derive(Clone, Copy, Debug)]
pub struct CompareThresholds {
    /// Maximum tolerated throughput drop, percent (new vs old).
    pub regress_pct: f64,
    /// Maximum tolerated absolute telemetry overhead, percent.
    pub max_overhead_pct: f64,
}

impl Default for CompareThresholds {
    fn default() -> Self {
        CompareThresholds { regress_pct: 25.0, max_overhead_pct: 60.0 }
    }
}

fn elapsed_nanos(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Collects the non-empty phase timings out of a profiled telemetry,
/// in canonical [`PHASES`] order.
fn phase_times(tel: &Telemetry<'_>) -> Vec<PhaseTime> {
    tel.profiler()
        .map(|p| {
            PHASES
                .iter()
                .filter(|&&ph| p.spans(ph) > 0)
                .map(|&ph| PhaseTime {
                    name: ph.name().to_string(),
                    nanos: p.nanos(ph),
                    spans: p.spans(ph),
                })
                .collect()
        })
        .unwrap_or_default()
}

fn routines_per_sec(routines: u64, nanos: u64) -> f64 {
    if nanos == 0 {
        return 0.0;
    }
    routines as f64 * 1.0e9 / nanos as f64
}

/// Generates and compiles the pinned suite. Seed derivation matches
/// `pgvn batch --gen` so the two harnesses exercise the same programs.
fn pinned_suite(opts: &PerfOptions) -> Vec<Function> {
    (0..opts.routines)
        .map(|i| {
            let gen_seed = crate::oracle::mix64(opts.seed ^ crate::oracle::mix64(i));
            let gcfg = crate::workload::GenConfig { seed: gen_seed, ..Default::default() };
            let routine = crate::workload::generate_routine(&format!("perf_{i}"), &gcfg);
            let src = crate::lang::print_routine(&routine);
            compile(&src, SsaStyle::Pruned).expect("pinned workload always compiles")
        })
        .collect()
}

/// The corresponding [`BatchInput`] list for the scaling measurements.
fn pinned_inputs(opts: &PerfOptions) -> Vec<BatchInput> {
    (0..opts.routines)
        .map(|i| {
            let gen_seed = crate::oracle::mix64(opts.seed ^ crate::oracle::mix64(i));
            let gcfg = crate::workload::GenConfig { seed: gen_seed, ..Default::default() };
            let routine = crate::workload::generate_routine(&format!("perf_{i}"), &gcfg);
            BatchInput {
                name: format!("perf_{i}"),
                source: Ok(crate::lang::print_routine(&routine)),
            }
        })
        .collect()
}

/// Runs the full measurement suite and returns the artifact.
pub fn run_suite(opts: &PerfOptions) -> BenchArtifact {
    let cfg = GvnConfig::full();
    let funcs = pinned_suite(opts);
    let total_insts: u64 = funcs.iter().map(|f| f.num_insts() as u64).sum();
    let repeats = opts.repeats.max(1);

    let mut ctx = GvnContext::new();
    // Warm-up sweep: grows every context table to working size so the
    // timed loops measure steady-state reuse, not first-touch growth.
    for f in &funcs {
        run_in_context(&mut ctx, f, &cfg);
    }

    // Pass B: untraced single-thread baseline, best of `repeats`.
    let mut base_nanos = u64::MAX;
    for _ in 0..repeats {
        let t0 = Instant::now();
        for f in &funcs {
            run_in_context(&mut ctx, f, &cfg);
        }
        base_nanos = base_nanos.min(elapsed_nanos(t0));
    }

    // Pass C: the same loop under full telemetry — NullSink tracing,
    // profiling clocks, and a metrics registry all active.
    let mut instr_nanos = u64::MAX;
    for _ in 0..repeats {
        let mut sink = NullSink;
        let reg = MetricsRegistry::new();
        let mut tel = Telemetry::with_sink(&mut sink);
        tel.enable_profiling();
        tel.attach_metrics(&reg);
        let t0 = Instant::now();
        for f in &funcs {
            pgvn_core::run_traced_in_context(&mut ctx, f, &cfg, &mut tel);
        }
        instr_nanos = instr_nanos.min(elapsed_nanos(t0));
    }
    let overhead_pct = if base_nanos > 0 {
        (instr_nanos as f64 - base_nanos as f64) / base_nanos as f64 * 100.0
    } else {
        0.0
    };

    // Pass D: one untimed instrumented sweep for the phase breakdown
    // and the metrics snapshot (separate from pass C so phase totals
    // reflect a single traversal of the suite, not `repeats` of them).
    let reg = MetricsRegistry::new();
    let mut sink = NullSink;
    let mut tel = Telemetry::with_sink(&mut sink);
    tel.enable_profiling();
    tel.attach_metrics(&reg);
    for f in &funcs {
        pgvn_core::run_traced_in_context(&mut ctx, f, &cfg, &mut tel);
    }
    let phases = phase_times(&tel);
    let metrics = reg.snapshot();

    // Pass E: batch scaling across the jobs curve, once with the
    // warm-start pilot (the default) and once with cold contexts so
    // the artifact carries the before/after of the warm-start change.
    let inputs = pinned_inputs(opts);
    let curve = |warm_start: bool| -> Vec<JobsPoint> {
        opts.jobs_curve
            .iter()
            .map(|&jobs| {
                let bopts =
                    BatchOptions { cfg: cfg.clone(), jobs, warm_start, ..Default::default() };
                let mut best = u64::MAX;
                for _ in 0..repeats {
                    let t0 = Instant::now();
                    let report = run_batch(&inputs, &bopts);
                    let nanos = elapsed_nanos(t0);
                    assert!(report.is_clean(), "pinned workload must optimize cleanly");
                    best = best.min(nanos);
                }
                JobsPoint {
                    jobs,
                    best_nanos: best,
                    routines_per_sec: routines_per_sec(opts.routines, best),
                }
            })
            .collect()
    };
    let batch_scaling = curve(true);
    let batch_scaling_cold = curve(false);

    // Pass F: the pinned pipeline comparison. Each spec gets timed
    // repetitions over fresh clones (pipelines mutate the function),
    // then one profiled sweep for the per-pass phase breakdown and the
    // elimination counters. `gvn` is the reference; the PRE pipeline's
    // counters show what partial-redundancy elimination adds.
    let pipelines: Vec<PipelinePoint> = PINNED_PIPELINES
        .iter()
        .map(|&spec_text| {
            let spec: PassSpec = spec_text.parse().expect("pinned pipeline spec parses");
            let pipeline = Pipeline::new(cfg.clone()).passes(spec);
            let mut best = u64::MAX;
            for _ in 0..repeats {
                let mut clones = funcs.clone();
                let t0 = Instant::now();
                for f in &mut clones {
                    pipeline.optimize_with(&mut ctx, f);
                }
                best = best.min(elapsed_nanos(t0));
            }
            let mut sink = NullSink;
            let mut tel = Telemetry::with_sink(&mut sink);
            tel.enable_profiling();
            let (mut eliminated, mut inserted, mut pre_gone) = (0u64, 0u64, 0u64);
            for f in &funcs {
                let mut f = f.clone();
                let rep = pipeline.optimize_traced_with(&mut ctx, &mut f, &mut tel);
                eliminated += rep.redundancies_eliminated as u64;
                inserted += rep.pre_inserted as u64;
                pre_gone += rep.pre_eliminated as u64;
            }
            PipelinePoint {
                spec: spec_text.to_string(),
                best_nanos: best,
                routines_per_sec: routines_per_sec(opts.routines, best),
                redundancies_eliminated: eliminated,
                pre_inserted: inserted,
                pre_eliminated: pre_gone,
                phases: phase_times(&tel),
            }
        })
        .collect();

    BenchArtifact {
        schema_version: SCHEMA_VERSION,
        seed: opts.seed,
        routines: opts.routines,
        repeats,
        total_insts,
        single_thread_nanos: base_nanos,
        single_thread_routines_per_sec: routines_per_sec(opts.routines, base_nanos),
        batch_scaling,
        batch_scaling_cold,
        phases,
        pipelines,
        metrics,
        overhead_base_nanos: base_nanos,
        overhead_instrumented_nanos: instr_nanos,
        telemetry_overhead_pct: overhead_pct,
    }
}

impl BenchArtifact {
    /// Renders the artifact as its canonical JSON document (no trailing
    /// newline). The layout is versioned by `schema_version`.
    pub fn to_json(&self) -> String {
        let mut suite = JsonWriter::object();
        suite
            .field_u64("seed", self.seed)
            .field_u64("routines", self.routines)
            .field_u64("repeats", u64::from(self.repeats))
            .field_u64("total_insts", self.total_insts);
        let mut single = JsonWriter::object();
        single
            .field_u64("best_nanos", self.single_thread_nanos)
            .field_f64("routines_per_sec", self.single_thread_routines_per_sec);
        let render_curve = |points: &[JobsPoint]| {
            format!(
                "[{}]",
                points
                    .iter()
                    .map(|p| {
                        let mut w = JsonWriter::object();
                        w.field_u64("jobs", p.jobs as u64)
                            .field_u64("best_nanos", p.best_nanos)
                            .field_f64("routines_per_sec", p.routines_per_sec);
                        w.finish()
                    })
                    .collect::<Vec<_>>()
                    .join(",")
            )
        };
        let scaling = render_curve(&self.batch_scaling);
        let scaling_cold = render_curve(&self.batch_scaling_cold);
        let render_phases = |times: &[PhaseTime]| {
            let mut phases = JsonWriter::object();
            for ph in times {
                let mut inner = JsonWriter::object();
                inner.field_u64("nanos", ph.nanos).field_u64("spans", ph.spans);
                phases.field_raw(&ph.name, &inner.finish());
            }
            phases.finish()
        };
        let pipelines = format!(
            "[{}]",
            self.pipelines
                .iter()
                .map(|p| {
                    let mut w = JsonWriter::object();
                    w.field_str("spec", &p.spec)
                        .field_u64("best_nanos", p.best_nanos)
                        .field_f64("routines_per_sec", p.routines_per_sec)
                        .field_u64("redundancies_eliminated", p.redundancies_eliminated)
                        .field_u64("pre_inserted", p.pre_inserted)
                        .field_u64("pre_eliminated", p.pre_eliminated)
                        .field_raw("phases", &render_phases(&p.phases));
                    w.finish()
                })
                .collect::<Vec<_>>()
                .join(",")
        );
        let mut overhead = JsonWriter::object();
        overhead
            .field_u64("base_nanos", self.overhead_base_nanos)
            .field_u64("instrumented_nanos", self.overhead_instrumented_nanos)
            .field_f64("pct", self.telemetry_overhead_pct);
        let mut w = JsonWriter::object();
        w.field_u64("schema_version", self.schema_version)
            .field_raw("suite", &suite.finish())
            .field_raw("single_thread", &single.finish())
            .field_raw("batch_scaling", &scaling)
            .field_raw("batch_scaling_cold", &scaling_cold)
            .field_raw("phases", &render_phases(&self.phases))
            .field_raw("pipelines", &pipelines)
            .field_raw("metrics", &self.metrics.to_json())
            .field_raw("overhead", &overhead.finish());
        w.finish()
    }

    /// Parses an artifact back from its JSON document.
    pub fn from_json(text: &str) -> Result<BenchArtifact, String> {
        let v = parse(text)?;
        let u = |path: &[&str]| -> Result<u64, String> {
            let mut cur = &v;
            for key in path {
                cur = cur.get(key).ok_or_else(|| format!("missing field {}", path.join(".")))?;
            }
            cur.as_u64().ok_or_else(|| format!("field {} is not a u64", path.join(".")))
        };
        let f = |path: &[&str]| -> Result<f64, String> {
            let mut cur = &v;
            for key in path {
                cur = cur.get(key).ok_or_else(|| format!("missing field {}", path.join(".")))?;
            }
            cur.as_f64().ok_or_else(|| format!("field {} is not a number", path.join(".")))
        };
        let schema_version = u(&["schema_version"])?;
        let curve = |key: &str, required: bool| -> Result<Vec<JobsPoint>, String> {
            let mut out = Vec::new();
            match v.get(key) {
                Some(JsonValue::Arr(points)) => {
                    for p in points {
                        out.push(JobsPoint {
                            jobs: p
                                .get("jobs")
                                .and_then(JsonValue::as_u64)
                                .ok_or_else(|| format!("{key} point missing jobs"))?
                                as usize,
                            best_nanos: p
                                .get("best_nanos")
                                .and_then(JsonValue::as_u64)
                                .ok_or_else(|| format!("{key} point missing best_nanos"))?,
                            routines_per_sec: p
                                .get("routines_per_sec")
                                .and_then(JsonValue::as_f64)
                                .ok_or_else(|| format!("{key} point missing routines_per_sec"))?,
                        });
                    }
                    Ok(out)
                }
                None if !required => Ok(out),
                _ => Err(format!("missing field {key}")),
            }
        };
        let batch_scaling = curve("batch_scaling", true)?;
        // Absent from pre-v2 artifacts; tolerate so `compare` can still
        // report the schema mismatch instead of a parse failure.
        let batch_scaling_cold = curve("batch_scaling_cold", false)?;
        let parse_phases = |entry: Option<&JsonValue>| -> Result<Vec<PhaseTime>, String> {
            let mut phases = Vec::new();
            if let Some(JsonValue::Obj(map)) = entry {
                for (name, entry) in map {
                    phases.push(PhaseTime {
                        name: name.clone(),
                        nanos: entry
                            .get("nanos")
                            .and_then(JsonValue::as_u64)
                            .ok_or("phase entry missing nanos")?,
                        spans: entry
                            .get("spans")
                            .and_then(JsonValue::as_u64)
                            .ok_or("phase entry missing spans")?,
                    });
                }
            }
            // The object reader is alphabetical; restore canonical
            // report order (unknown phase names from future schemas
            // sort last).
            phases.sort_by_key(|p| {
                PHASES.iter().position(|ph| ph.name() == p.name).unwrap_or(PHASES.len())
            });
            Ok(phases)
        };
        let phases = parse_phases(v.get("phases"))?;
        // Absent from pre-v3 artifacts; tolerated for the same reason
        // as `batch_scaling_cold` above.
        let mut pipelines = Vec::new();
        if let Some(JsonValue::Arr(points)) = v.get("pipelines") {
            for p in points {
                let pu = |key: &str| -> Result<u64, String> {
                    p.get(key)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("pipeline point missing {key}"))
                };
                pipelines.push(PipelinePoint {
                    spec: match p.get("spec") {
                        Some(JsonValue::Str(s)) => s.clone(),
                        _ => return Err("pipeline point missing spec".to_string()),
                    },
                    best_nanos: pu("best_nanos")?,
                    routines_per_sec: p
                        .get("routines_per_sec")
                        .and_then(JsonValue::as_f64)
                        .ok_or("pipeline point missing routines_per_sec")?,
                    redundancies_eliminated: pu("redundancies_eliminated")?,
                    pre_inserted: pu("pre_inserted")?,
                    pre_eliminated: pu("pre_eliminated")?,
                    phases: parse_phases(p.get("phases"))?,
                });
            }
        }
        let metrics = match v.get("metrics") {
            Some(m) => MetricsSnapshot::from_json(&render(m))?,
            None => MetricsSnapshot::default(),
        };
        Ok(BenchArtifact {
            schema_version,
            seed: u(&["suite", "seed"])?,
            routines: u(&["suite", "routines"])?,
            repeats: u(&["suite", "repeats"])? as u32,
            total_insts: u(&["suite", "total_insts"])?,
            single_thread_nanos: u(&["single_thread", "best_nanos"])?,
            single_thread_routines_per_sec: f(&["single_thread", "routines_per_sec"])?,
            batch_scaling,
            batch_scaling_cold,
            phases,
            pipelines,
            metrics,
            overhead_base_nanos: u(&["overhead", "base_nanos"])?,
            overhead_instrumented_nanos: u(&["overhead", "instrumented_nanos"])?,
            telemetry_overhead_pct: f(&["overhead", "pct"])?,
        })
    }

    /// A short human-readable summary (multi-line, for stderr).
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pgvn perf: {} routines ({} insts), seed {}, best of {}",
            self.routines, self.total_insts, self.seed, self.repeats
        );
        let _ = writeln!(
            out,
            "  single-thread: {:.1} routines/s ({:.2} ms)",
            self.single_thread_routines_per_sec,
            self.single_thread_nanos as f64 / 1.0e6
        );
        for p in &self.batch_scaling {
            let speedup = if p.best_nanos > 0 {
                self.batch_scaling[0].best_nanos as f64 / p.best_nanos as f64
            } else {
                0.0
            };
            let cold = self
                .batch_scaling_cold
                .iter()
                .find(|c| c.jobs == p.jobs)
                .map(|c| format!(", cold {:.1} r/s", c.routines_per_sec))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "  batch --jobs {}: {:.1} routines/s ({:.2} ms, {:.2}x{cold})",
                p.jobs,
                p.routines_per_sec,
                p.best_nanos as f64 / 1.0e6,
                speedup
            );
        }
        for p in &self.pipelines {
            let _ = writeln!(
                out,
                "  pipeline {:<12} {:>6} eliminated ({} by pre, {} inserted), {:.1} routines/s",
                p.spec,
                p.eliminated_total(),
                p.pre_eliminated,
                p.pre_inserted,
                p.routines_per_sec
            );
        }
        let _ = writeln!(out, "  telemetry overhead: {:.1}%", self.telemetry_overhead_pct);
        let mut phases: Vec<&PhaseTime> = self.phases.iter().collect();
        phases.sort_by_key(|p| std::cmp::Reverse(p.nanos));
        for p in phases.iter().take(5) {
            let _ = writeln!(
                out,
                "  phase {:<20} {:>10.3} ms  ({} spans)",
                p.name,
                p.nanos as f64 / 1.0e6,
                p.spans
            );
        }
        out
    }
}

/// Renders a parsed [`JsonValue`] back to JSON text (used to hand the
/// `metrics` subtree to [`MetricsSnapshot::from_json`]).
fn render(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".to_string(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        JsonValue::Str(s) => {
            let mut out = String::from("\"");
            pgvn_telemetry::json::escape_into(s, &mut out);
            out.push('"');
            out
        }
        JsonValue::Arr(items) => {
            format!("[{}]", items.iter().map(render).collect::<Vec<_>>().join(","))
        }
        JsonValue::Obj(map) => {
            let fields: Vec<String> = map
                .iter()
                .map(|(k, val)| {
                    let mut key = String::from("\"");
                    pgvn_telemetry::json::escape_into(k, &mut key);
                    key.push('"');
                    format!("{key}:{}", render(val))
                })
                .collect();
            format!("{{{}}}", fields.join(","))
        }
    }
}

/// Diffs `new` against the `old` baseline. Returns one line per
/// regression; an empty vector means the run is clean. Throughput
/// comparisons are ratio-based (routines/second), so artifacts from
/// different suite sizes remain comparable.
pub fn compare(old: &BenchArtifact, new: &BenchArtifact, th: &CompareThresholds) -> Vec<String> {
    let mut regressions = Vec::new();
    if old.schema_version != new.schema_version {
        regressions.push(format!(
            "schema version mismatch: baseline v{}, new v{} — regenerate the baseline",
            old.schema_version, new.schema_version
        ));
        return regressions;
    }
    let floor = 1.0 - th.regress_pct / 100.0;
    let check = |label: &str, old_rps: f64, new_rps: f64, out: &mut Vec<String>| {
        if old_rps > 0.0 && new_rps < old_rps * floor {
            out.push(format!(
                "{label}: {new_rps:.1} routines/s is {:.1}% below baseline {old_rps:.1} \
                 (threshold {:.0}%)",
                (1.0 - new_rps / old_rps) * 100.0,
                th.regress_pct
            ));
        }
    };
    check(
        "single-thread",
        old.single_thread_routines_per_sec,
        new.single_thread_routines_per_sec,
        &mut regressions,
    );
    for op in &old.batch_scaling {
        if let Some(np) = new.batch_scaling.iter().find(|p| p.jobs == op.jobs) {
            check(
                &format!("batch --jobs {}", op.jobs),
                op.routines_per_sec,
                np.routines_per_sec,
                &mut regressions,
            );
        }
    }
    for op in &old.batch_scaling_cold {
        if let Some(np) = new.batch_scaling_cold.iter().find(|p| p.jobs == op.jobs) {
            check(
                &format!("batch --jobs {} (cold)", op.jobs),
                op.routines_per_sec,
                np.routines_per_sec,
                &mut regressions,
            );
        }
    }
    for op in &old.pipelines {
        if let Some(np) = new.pipelines.iter().find(|p| p.spec == op.spec) {
            check(
                &format!("pipeline {}", op.spec),
                op.routines_per_sec,
                np.routines_per_sec,
                &mut regressions,
            );
        }
    }
    // PRE must keep paying for itself: every pipeline beyond the plain
    // `gvn` reference has to eliminate strictly more redundant
    // computations than the reference on the same suite. This is a
    // self-consistency gate on the new run, not a baseline diff, so it
    // holds across suite sizes (quick vs full).
    if let Some(reference) = new.pipelines.first() {
        for p in &new.pipelines[1..] {
            if p.eliminated_total() <= reference.eliminated_total() {
                regressions.push(format!(
                    "pipeline {}: {} eliminations is not strictly more than \
                     the {} reference's {}",
                    p.spec,
                    p.eliminated_total(),
                    reference.spec,
                    reference.eliminated_total()
                ));
            }
        }
    }
    if new.telemetry_overhead_pct > th.max_overhead_pct {
        regressions.push(format!(
            "telemetry overhead {:.1}% exceeds the {:.0}% ceiling",
            new.telemetry_overhead_pct, th.max_overhead_pct
        ));
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    // Small enough to keep the test fast, large enough that the pinned
    // suite contains at least one PRE opportunity (the strict-improvement
    // gate in `compare` needs the PRE pipeline to beat plain gvn).
    fn tiny() -> PerfOptions {
        PerfOptions { seed: 2002, routines: 8, repeats: 1, jobs_curve: vec![1, 2] }
    }

    #[test]
    fn suite_runs_and_artifact_round_trips() {
        let art = run_suite(&tiny());
        assert_eq!(art.schema_version, SCHEMA_VERSION);
        assert_eq!(art.routines, 8);
        assert!(art.total_insts > 0);
        assert!(art.single_thread_routines_per_sec > 0.0);
        assert_eq!(art.batch_scaling.len(), 2);
        assert_eq!(art.batch_scaling_cold.len(), 2, "cold curve mirrors the warm one");
        assert!(!art.phases.is_empty(), "profiled sweep records phases");
        assert_eq!(art.pipelines.len(), PINNED_PIPELINES.len());
        assert_eq!(art.pipelines[0].spec, "gvn");
        assert_eq!(art.pipelines[1].spec, "gvn,pre,gvn");
        assert!(
            art.pipelines.iter().all(|p| !p.phases.is_empty()),
            "every pipeline point carries its per-pass breakdown"
        );
        assert_eq!(art.pipelines[0].pre_eliminated, 0, "the plain-gvn reference never runs pre");
        assert!(
            art.metrics.value(pgvn_telemetry::Metric::DriverRuns) >= 4,
            "instrumented sweep records a run per routine"
        );
        let json = art.to_json();
        pgvn_telemetry::json::parse(&json).expect("artifact is valid JSON");
        let back = BenchArtifact::from_json(&json).expect("artifact parses back");
        assert_eq!(back, art, "artifact JSON round-trips losslessly");
    }

    #[test]
    fn compare_accepts_identical_and_flags_injected_regression() {
        let art = run_suite(&tiny());
        let th = CompareThresholds::default();
        assert!(compare(&art, &art, &th).is_empty(), "self-compare is clean");

        // Inject a synthetic 60% throughput loss on every axis.
        let mut slow = art.clone();
        slow.single_thread_routines_per_sec *= 0.4;
        for p in &mut slow.batch_scaling {
            p.routines_per_sec *= 0.4;
        }
        slow.telemetry_overhead_pct = 95.0;
        let regressions = compare(&art, &slow, &th);
        assert!(
            regressions.len() >= 3,
            "single-thread, scaling points and overhead all flagged: {regressions:?}"
        );

        // A PRE pipeline that stops out-eliminating the reference is a
        // regression even when throughput is fine.
        let mut stale = art.clone();
        if let Some(p) = stale.pipelines.last_mut() {
            p.redundancies_eliminated = 0;
            p.pre_eliminated = 0;
        }
        let regressions = compare(&art, &stale, &th);
        assert!(
            regressions.iter().any(|r| r.contains("not strictly more")),
            "lost PRE eliminations flagged: {regressions:?}"
        );

        // The reverse direction (got faster) stays clean.
        assert!(compare(&slow, &art, &th).iter().all(|r| r.contains("overhead")));
    }

    #[test]
    fn compare_refuses_cross_schema_diffs() {
        let art = run_suite(&tiny());
        let mut future = art.clone();
        future.schema_version = SCHEMA_VERSION + 1;
        let regressions = compare(&art, &future, &CompareThresholds::default());
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("schema version mismatch"));
    }
}
