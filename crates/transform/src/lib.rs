//! # pgvn-transform — optimizations driven by GVN results
//!
//! The paper's algorithm is an *analysis*; "the results of global value
//! numbering can now be used to perform optimizations such as unreachable
//! code elimination, constant propagation, copy propagation and redundancy
//! elimination" (§2). This crate implements those consumers plus dead code
//! elimination, and a [`Pipeline`] that chains them — the stand-in for the
//! HLO optimizer in whose context the paper measures GVN time (Table 1).
//!
//! Every transform preserves semantics; the test suite checks each one
//! against the reference interpreter.
//!
//! ```
//! use pgvn_lang::compile;
//! use pgvn_ssa::SsaStyle;
//! use pgvn_core::GvnConfig;
//! use pgvn_transform::Pipeline;
//!
//! let mut f = compile(
//!     "routine f(a, b) { x = a + b; y = b + a; return x - y; }",
//!     SsaStyle::Pruned,
//! )?;
//! let report = Pipeline::new(GvnConfig::full()).optimize(&mut f);
//! assert!(report.constants_propagated > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod check;
pub mod dce;
pub mod pass;
pub mod pipeline;
pub mod resilient;
pub mod rewrite;

pub use check::{
    check_function, check_function_with, CheckOptions, Lint, LintContext, LintRegistry,
};
pub use dce::eliminate_dead_code;
pub use pass::pre::{eliminate_partial_redundancies, PreStats};
pub use pass::{AnalysisManager, CfgAnalyses, Pass, PassContext, PassId, PassManager, PassSpec};
pub use pipeline::{OptimizeReport, Pipeline};
pub use resilient::{ResilienceReport, ResilientOutcome, RungFailure, RungId};
pub use rewrite::{
    eliminate_redundancies, eliminate_redundancies_with, eliminate_unreachable, forward_copies,
    propagate_constants, UceReport,
};
