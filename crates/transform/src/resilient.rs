//! The degradation ladder: resilient optimization with rollback.
//!
//! [`Pipeline::optimize_resilient`] wraps the ordinary GVN+rewrite
//! pipeline in a containment boundary. Each rung of the ladder runs a
//! progressively weaker (and more robust) configuration against a fresh
//! clone of the input — full predicated GVN, then the stripped-down
//! practical variant, then the one-pass pessimistic emulation
//! (§2.6/§2.9), and finally *verified identity*: return the input
//! unchanged. A rung commits only if its analysis converges within
//! budget, no panic unwinds out of it, and its rewritten function passes
//! the `pgvn-ir` verifier; otherwise the rung's classified [`GvnError`]
//! is recorded, the candidate clone is discarded, and the ladder steps
//! down. One poisoned routine therefore can never sink a batch — the
//! worst case is the routine ships unoptimized. See `docs/ROBUSTNESS.md`.

use crate::pass::{AnalysisManager, PassContext, PassManager};
use crate::pipeline::{OptimizeReport, Pipeline};
use pgvn_core::{FaultKind, FaultSite, GvnConfig, GvnContext, GvnError, Mode, Variant};
use pgvn_ir::{verify, Function};
use pgvn_telemetry::json::JsonWriter;
use pgvn_telemetry::{Metric, Telemetry, TraceEvent};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A rung of the degradation ladder, strongest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RungId {
    /// The caller's configuration, unchanged (normally full predicated
    /// GVN).
    Full,
    /// The practical variant with the §2.7/§2.8 machinery (reassociation,
    /// inference, φ-predication, extensions) disabled — Click-strength.
    Practical,
    /// The one-pass pessimistic emulation (§2.6/§2.9).
    Pessimistic,
    /// No optimization: the verified input is returned unchanged.
    Identity,
}

impl RungId {
    /// Stable rung name for telemetry and JSON records.
    pub fn name(self) -> &'static str {
        match self {
            RungId::Full => "full",
            RungId::Practical => "practical",
            RungId::Pessimistic => "pessimistic",
            RungId::Identity => "identity",
        }
    }

    /// The rung's position on the ladder (0 = strongest), as recorded in
    /// `GvnStats::ladder_rung`.
    pub fn index(self) -> u32 {
        match self {
            RungId::Full => 0,
            RungId::Practical => 1,
            RungId::Pessimistic => 2,
            RungId::Identity => 3,
        }
    }
}

impl std::fmt::Display for RungId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One failed-and-rolled-back rung.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RungFailure {
    /// The rung that failed.
    pub rung: RungId,
    /// Why it failed.
    pub error: GvnError,
}

/// How a resilient optimization ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResilientOutcome {
    /// An analysis rung committed its rewritten function.
    Optimized(RungId),
    /// Every analysis rung failed; the input was returned unchanged
    /// (it still passes the verifier — that is the identity guarantee).
    Identity,
    /// The *input* did not pass the IR verifier; nothing was attempted.
    Rejected(GvnError),
}

impl ResilientOutcome {
    /// Stable outcome tag for JSON records.
    pub fn kind(&self) -> &'static str {
        match self {
            ResilientOutcome::Optimized(_) => "optimized",
            ResilientOutcome::Identity => "identity",
            ResilientOutcome::Rejected(_) => "rejected",
        }
    }

    /// The rung whose output the caller holds (`None` when the input was
    /// rejected outright).
    pub fn rung(&self) -> Option<RungId> {
        match self {
            ResilientOutcome::Optimized(r) => Some(*r),
            ResilientOutcome::Identity => Some(RungId::Identity),
            ResilientOutcome::Rejected(_) => None,
        }
    }
}

/// The full report of one [`Pipeline::optimize_resilient`] call: the
/// classified outcome, every rolled-back rung, and the committed rung's
/// ordinary [`OptimizeReport`] (all-zero for identity/rejected).
#[derive(Clone, Debug, PartialEq)]
pub struct ResilienceReport {
    /// The classified outcome.
    pub outcome: ResilientOutcome,
    /// The rungs that failed and were rolled back, in ladder order.
    pub failures: Vec<RungFailure>,
    /// The committed rung's pipeline report. Its `gvn_stats` carry the
    /// ladder counters (`ladder_rung`, `ladder_failures`).
    pub report: OptimizeReport,
}

impl ResilienceReport {
    /// `true` when the routine ended in a classified state with a
    /// usable function (optimized or identity — not rejected).
    pub fn is_usable(&self) -> bool {
        !matches!(self.outcome, ResilientOutcome::Rejected(_))
    }

    /// Renders the outcome, ladder counters, and per-rung failures as
    /// one JSON object (the per-routine record of `pgvn batch`).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_str("outcome", self.outcome.kind());
        match &self.outcome {
            ResilientOutcome::Optimized(r) => {
                w.field_str("rung", r.name());
            }
            ResilientOutcome::Identity => {
                w.field_str("rung", RungId::Identity.name());
            }
            ResilientOutcome::Rejected(err) => {
                w.field_str("error", err.kind()).field_str("detail", &err.to_string());
            }
        }
        let mut failures = String::from("[");
        for (i, f) in self.failures.iter().enumerate() {
            if i > 0 {
                failures.push(',');
            }
            let mut fw = JsonWriter::object();
            fw.field_str("rung", f.rung.name())
                .field_str("error", f.error.kind())
                .field_str("detail", &f.error.to_string());
            failures.push_str(&fw.finish());
        }
        failures.push(']');
        w.field_raw("failures", &failures);
        w.field_raw("stats", &self.report.gvn_stats.to_json());
        w.finish()
    }
}

/// Weakens `cfg` to the practical rung: the paper's practical variant
/// with every §2.2/§2.7/§2.8 mechanism (the machinery most likely to be
/// implicated in a failure) disabled.
fn practical_rung(cfg: &GvnConfig) -> GvnConfig {
    GvnConfig {
        variant: Variant::Practical,
        global_reassociation: false,
        predicate_inference: false,
        value_inference: false,
        phi_predication: false,
        joint_domination: false,
        phi_op_distribution: false,
        ..cfg.clone()
    }
}

/// Weakens `cfg` to the pessimistic rung: one pass, everything assumed
/// reachable, cyclic φs unique (§2.6/§2.9).
fn pessimistic_rung(cfg: &GvnConfig) -> GvnConfig {
    GvnConfig { mode: Mode::Pessimistic, ..practical_rung(cfg) }
}

/// Renders a caught panic payload as a one-line string.
fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Pipeline {
    /// The analysis rungs this pipeline's ladder will attempt, strongest
    /// first, with rungs whose configuration collapses into an earlier
    /// one removed (e.g. a pipeline already configured pessimistic has a
    /// one-rung ladder).
    pub fn ladder(&self) -> Vec<(RungId, GvnConfig)> {
        let mut rungs = vec![(RungId::Full, self.cfg.clone())];
        for (id, cfg) in [
            (RungId::Practical, practical_rung(&self.cfg)),
            (RungId::Pessimistic, pessimistic_rung(&self.cfg)),
        ] {
            if rungs.iter().all(|(_, existing)| *existing != cfg) {
                rungs.push((id, cfg));
            }
        }
        rungs
    }

    /// [`Pipeline::optimize`] with full failure containment: budgets,
    /// panic isolation, verifier gating, and the degradation ladder.
    /// Never panics and never leaves `func` in a broken state — on any
    /// failure `func` is rolled back to (a clone of) its input, and the
    /// worst classified outcome is `Identity` (unoptimized but verified)
    /// or `Rejected` (the *input* was malformed).
    pub fn optimize_resilient(&self, func: &mut Function) -> ResilienceReport {
        self.optimize_resilient_traced(func, &mut Telemetry::off())
    }

    /// [`Pipeline::optimize_resilient`] against a reusable
    /// [`GvnContext`]: one context serves every rung of the ladder (and
    /// every routine of a batch). This is safe precisely because a
    /// context is rollback-safe — a rung that panics or errors leaves
    /// only scratch state behind, which the next rung's run re-prepares
    /// wholesale.
    pub fn optimize_resilient_with(
        &self,
        ctx: &mut GvnContext,
        func: &mut Function,
    ) -> ResilienceReport {
        self.optimize_resilient_traced_with(ctx, func, &mut Telemetry::off())
    }

    /// [`Pipeline::optimize_resilient`] with observability: each rung's
    /// analysis traces into `tel`, and every rung commit/failure emits a
    /// [`TraceEvent::Rung`].
    pub fn optimize_resilient_traced(
        &self,
        func: &mut Function,
        tel: &mut Telemetry<'_>,
    ) -> ResilienceReport {
        self.optimize_resilient_traced_with(&mut GvnContext::new(), func, tel)
    }

    /// [`Pipeline::optimize_resilient_traced`] against a reusable
    /// [`GvnContext`] (see [`Pipeline::optimize_resilient_with`]).
    pub fn optimize_resilient_traced_with(
        &self,
        ctx: &mut GvnContext,
        func: &mut Function,
        tel: &mut Telemetry<'_>,
    ) -> ResilienceReport {
        // The input gate: the ladder's identity guarantee is "the caller
        // holds a verified function", which is only meaningful if the
        // input verified in the first place.
        if let Err(e) = verify(func) {
            let err = GvnError::VerifierRejected {
                rung: "input".to_string(),
                code: e.code().to_string(),
                error: e.to_string(),
            };
            return ResilienceReport {
                outcome: ResilientOutcome::Rejected(err),
                failures: Vec::new(),
                report: OptimizeReport::default(),
            };
        }
        let pristine = func.clone();
        let mut failures: Vec<RungFailure> = Vec::new();
        // A non-sticky fault plan models a transient/config-specific
        // failure: it is stripped from every rung after the first
        // failure, so the ladder demonstrably recovers one rung down.
        let mut strip_fault = false;
        for (rung, mut rung_cfg) in self.ladder() {
            if strip_fault {
                rung_cfg.fault_plan = None;
            }
            let mut candidate = pristine.clone();
            // AssertUnwindSafe is justified for the context (not just the
            // candidate, which is discarded on failure): all context
            // contents are scratch that the next run re-prepares from
            // zero, so observing it after an unwind cannot expose a
            // broken invariant.
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                self.run_rung(&mut *ctx, &rung_cfg, rung, &mut candidate, tel)
            }));
            let error = match attempt {
                Ok(Ok(mut report)) => {
                    report.gvn_stats.ladder_rung = rung.index();
                    report.gvn_stats.ladder_failures = failures.len() as u32;
                    *func = candidate;
                    tel.emit(|| TraceEvent::Rung {
                        rung: rung.index(),
                        name: rung.name().to_string(),
                        status: "committed".to_string(),
                        detail: String::new(),
                    });
                    tel.observe(Metric::LadderRung, u64::from(rung.index()));
                    tel.flush();
                    return ResilienceReport {
                        outcome: ResilientOutcome::Optimized(rung),
                        failures,
                        report,
                    };
                }
                Ok(Err(err)) => err,
                Err(payload) => GvnError::Panicked { payload: panic_payload(payload.as_ref()) },
            };
            tel.emit(|| TraceEvent::Rung {
                rung: rung.index(),
                name: rung.name().to_string(),
                status: "failed".to_string(),
                detail: format!("{}: {error}", error.kind()),
            });
            // The restore itself: the candidate clone is discarded and
            // the ladder steps down from the pristine input.
            tel.emit(|| TraceEvent::Rollback {
                rung: rung.index(),
                name: rung.name().to_string(),
                error: error.kind().to_string(),
                detail: error.to_string(),
            });
            tel.count(Metric::LadderRollbacks, 1);
            if rung_cfg.fault_plan.is_some_and(|p| !p.sticky) {
                strip_fault = true;
            }
            failures.push(RungFailure { rung, error });
        }
        // The identity rung: `func` still holds the verified input.
        let mut report = OptimizeReport::default();
        report.gvn_stats.ladder_rung = RungId::Identity.index();
        report.gvn_stats.ladder_failures = failures.len() as u32;
        tel.emit(|| TraceEvent::Rung {
            rung: RungId::Identity.index(),
            name: RungId::Identity.name().to_string(),
            status: "committed".to_string(),
            detail: String::new(),
        });
        tel.observe(Metric::LadderRung, u64::from(RungId::Identity.index()));
        tel.flush();
        ResilienceReport { outcome: ResilientOutcome::Identity, failures, report }
    }

    /// One ladder rung: the ordinary GVN+rewrite rounds, but with the
    /// fallible analysis entry point, rewrite-site fault injection, and
    /// a final verifier gate. Runs against the caller's candidate clone;
    /// any `Err` means the candidate must be discarded.
    fn run_rung(
        &self,
        ctx: &mut GvnContext,
        cfg: &GvnConfig,
        rung: RungId,
        func: &mut Function,
        tel: &mut Telemetry<'_>,
    ) -> Result<OptimizeReport, GvnError> {
        let t0 = std::time::Instant::now();
        let mut report = OptimizeReport::default();
        let rewrite_fault = cfg.fault_plan.filter(|p| p.site == FaultSite::Rewrite);
        let spec = self.spec();
        let mut analyses = AnalysisManager::new();
        let mut pcx =
            PassContext::for_rung(ctx, cfg, &mut analyses, tel, &mut report, rewrite_fault);
        PassManager::new().run(&spec, &mut pcx, func)?;
        // An injected verifier-rejection: make the rewritten function
        // ill-formed in a way `pgvn_ir::verify` is guaranteed to catch
        // (a live block with no terminator), proving the gate below
        // actually guards the commit.
        if rewrite_fault.is_some_and(|p| p.kind == FaultKind::VerifierReject) {
            func.add_block();
        }
        if let Err(e) = verify(func) {
            return Err(GvnError::VerifierRejected {
                rung: rung.name().to_string(),
                code: e.code().to_string(),
                error: e.to_string(),
            });
        }
        report.total_nanos = t0.elapsed().as_nanos();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_core::FaultPlan;
    use pgvn_lang::compile;
    use pgvn_ssa::SsaStyle;

    fn sample() -> Function {
        compile(
            "routine f(a, b) { x = a + b; y = b + a; if (x > y) { return 1; } return x - y; }",
            SsaStyle::Pruned,
        )
        .unwrap()
    }

    #[test]
    fn healthy_routine_commits_on_the_full_rung() {
        let mut f = sample();
        let rep = Pipeline::new(GvnConfig::full()).rounds(2).optimize_resilient(&mut f);
        assert_eq!(rep.outcome, ResilientOutcome::Optimized(RungId::Full));
        assert!(rep.failures.is_empty());
        assert_eq!(rep.report.gvn_stats.ladder_rung, 0);
        assert_eq!(rep.report.gvn_stats.ladder_failures, 0);
        verify(&f).expect("committed output verifies");
    }

    #[test]
    fn ladder_dedups_collapsed_rungs() {
        let full = Pipeline::new(GvnConfig::full());
        assert_eq!(full.ladder().len(), 3);
        let pess = Pipeline::new(pessimistic_rung(&GvnConfig::full()));
        assert_eq!(pess.ladder().len(), 1, "already-pessimistic config has a one-rung ladder");
    }

    #[test]
    fn transient_fault_recovers_one_rung_down() {
        let plan = FaultPlan::new(pgvn_core::FaultKind::Invariant, FaultSite::Eval);
        let mut f = sample();
        let rep =
            Pipeline::new(GvnConfig::full().fault_plan(Some(plan))).optimize_resilient(&mut f);
        assert_eq!(rep.outcome, ResilientOutcome::Optimized(RungId::Practical));
        assert_eq!(rep.failures.len(), 1);
        assert_eq!(rep.failures[0].rung, RungId::Full);
        assert_eq!(rep.failures[0].error.kind(), "internal_invariant");
        assert_eq!(rep.report.gvn_stats.ladder_rung, 1);
        assert_eq!(rep.report.gvn_stats.ladder_failures, 1);
        verify(&f).expect("committed output verifies");
    }

    #[test]
    fn sticky_panic_degrades_to_identity() {
        let plan = FaultPlan::new(pgvn_core::FaultKind::Panic, FaultSite::Eval).sticky();
        let original = sample();
        let mut f = original.clone();
        let rep =
            Pipeline::new(GvnConfig::full().fault_plan(Some(plan))).optimize_resilient(&mut f);
        assert_eq!(rep.outcome, ResilientOutcome::Identity);
        assert_eq!(rep.failures.len(), 3, "every analysis rung failed");
        assert!(rep.failures.iter().all(|f| f.error.kind() == "panicked"));
        assert_eq!(rep.report.gvn_stats.ladder_rung, RungId::Identity.index());
        assert_eq!(format!("{original}"), format!("{f}"), "identity returns the input unchanged");
    }

    #[test]
    fn rung_failure_emits_rollback_event_and_metric() {
        use pgvn_telemetry::{MemorySink, MetricsRegistry};

        let plan = FaultPlan::new(pgvn_core::FaultKind::Invariant, FaultSite::Eval);
        let mut f = sample();
        let mut sink = MemorySink::new();
        let reg = MetricsRegistry::new();
        let mut tel = Telemetry::with_sink(&mut sink);
        tel.attach_metrics(&reg);
        let rep = Pipeline::new(GvnConfig::full().fault_plan(Some(plan)))
            .optimize_resilient_traced(&mut f, &mut tel);
        let _ = tel;
        assert_eq!(rep.outcome, ResilientOutcome::Optimized(RungId::Practical));
        let rollbacks: Vec<_> = sink
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Rollback { .. }))
            .cloned()
            .collect();
        assert_eq!(rollbacks.len(), 1, "one failed rung, one rollback event");
        match &rollbacks[0] {
            TraceEvent::Rollback { rung, name, error, detail } => {
                assert_eq!(*rung, 0);
                assert_eq!(name, "full");
                assert_eq!(error, "internal_invariant");
                assert!(detail.contains("injected fault"));
            }
            _ => unreachable!(),
        }
        let snap = reg.snapshot();
        assert_eq!(snap.value(Metric::LadderRollbacks), 1);
        assert_eq!(snap.count(Metric::LadderRung), 1, "one committed rung observed");
        assert_eq!(snap.bucket(Metric::LadderRung, 1), 1, "practical = rung 1");
        // Prepare events surfaced too: one per analysis attempt.
        assert!(sink.events().iter().any(|e| matches!(e, TraceEvent::ContextPrepare { .. })));
    }

    #[test]
    fn report_json_is_parseable() {
        use pgvn_telemetry::json::{parse, JsonValue};

        let plan = FaultPlan::new(pgvn_core::FaultKind::VerifierReject, FaultSite::Rewrite);
        let mut f = sample();
        let rep =
            Pipeline::new(GvnConfig::full().fault_plan(Some(plan))).optimize_resilient(&mut f);
        let v = parse(&rep.to_json()).expect("report renders valid JSON");
        assert_eq!(v.get("outcome").and_then(JsonValue::as_str), Some("optimized"));
        assert_eq!(v.get("rung").and_then(JsonValue::as_str), Some("practical"));
        let failures = match v.get("failures") {
            Some(JsonValue::Arr(a)) => a,
            other => panic!("failures not an array: {other:?}"),
        };
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].get("error").and_then(JsonValue::as_str), Some("verifier_rejected"));
    }
}
