//! The [`AnalysisManager`]: lazily computed, epoch-invalidated CFG
//! analyses shared by the passes of one pipeline run.
//!
//! Every rewrite that consults dominance used to recompute RPO and the
//! dominator tree from scratch. The manager computes them once per
//! *CFG shape*: a cached result is keyed by a modification epoch that
//! passes bump (via [`AnalysisManager::invalidate`]) exactly when they
//! change blocks or edges. Back-to-back passes that only rewrite
//! instructions — constant propagation, redundancy elimination, PRE,
//! cleanup — therefore share one dominator tree.
//!
//! The manager lives for one `Pipeline::optimize*` call (or one ladder
//! rung); it never outlives the function borrow discipline it depends
//! on, and recomputation is always byte-for-byte identical to a fresh
//! compute because [`Rpo`] and [`DomTree`] are deterministic.

use pgvn_analysis::{DomTree, LoopInfo, Rpo};
use pgvn_ir::Function;

/// The CFG-shaped analyses cached together: reverse postorder (which
/// also answers structural reachability) and the dominator tree built
/// from it.
#[derive(Clone, Debug)]
pub struct CfgAnalyses {
    /// Reverse postorder: block order, numbering, structural
    /// reachability, back edges.
    pub rpo: Rpo,
    /// The dominator tree computed from `rpo`.
    pub domtree: DomTree,
}

/// Lazily computes and caches [`CfgAnalyses`] (and, on demand, loop
/// nesting) keyed by a function-modification epoch.
#[derive(Debug, Default)]
pub struct AnalysisManager {
    epoch: u64,
    cached: Option<(u64, CfgAnalyses)>,
    loops: Option<(u64, LoopInfo)>,
    hits: u64,
    misses: u64,
}

impl AnalysisManager {
    /// A fresh manager: nothing cached, epoch zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current modification epoch. Bumped by
    /// [`AnalysisManager::invalidate`]; cached results from earlier
    /// epochs are recomputed on next use.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Declares the CFG modified: every cached analysis is stale and
    /// will be recomputed on next request. Instruction-level edits that
    /// leave blocks and edges alone do **not** require invalidation.
    pub fn invalidate(&mut self) {
        self.epoch += 1;
    }

    /// The RPO + dominator tree for `func`, recomputing only when the
    /// epoch moved since they were last built.
    pub fn cfg(&mut self, func: &Function) -> &CfgAnalyses {
        if matches!(&self.cached, Some((e, _)) if *e == self.epoch) {
            self.hits += 1;
        } else {
            self.misses += 1;
            let rpo = Rpo::compute(func);
            let domtree = DomTree::compute(func, &rpo);
            self.cached = Some((self.epoch, CfgAnalyses { rpo, domtree }));
        }
        &self.cached.as_ref().expect("cfg analyses just ensured").1
    }

    /// The loop forest for `func`, computed from the cached CFG
    /// analyses and cached under the same epoch.
    pub fn loops(&mut self, func: &Function) -> &LoopInfo {
        if matches!(&self.loops, Some((e, _)) if *e == self.epoch) {
            self.hits += 1;
        } else {
            self.cfg(func);
            let (_, an) = self.cached.as_ref().expect("cfg analyses just ensured");
            let loops = LoopInfo::compute(func, &an.rpo, &an.domtree);
            self.loops = Some((self.epoch, loops));
        }
        &self.loops.as_ref().expect("loops just ensured").1
    }

    /// Requests answered from cache since construction (or the last
    /// [`AnalysisManager::take_cache_counts`]).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Requests that recomputed (cold or invalidated).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drains the hit/miss counters (the pass manager reports them into
    /// the metrics sink once per pipeline run).
    pub fn take_cache_counts(&mut self) -> (u64, u64) {
        (std::mem::take(&mut self.hits), std::mem::take(&mut self.misses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_lang::compile;
    use pgvn_ssa::SsaStyle;

    fn sample() -> Function {
        compile(
            "routine f(a, b) { x = a + b; if (x > 0) { y = x * 2; return y; } return x; }",
            SsaStyle::Pruned,
        )
        .unwrap()
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let f = sample();
        let mut am = AnalysisManager::new();
        assert_eq!((am.hits(), am.misses()), (0, 0));
        let entry = f.entry();
        assert!(am.cfg(&f).domtree.is_reachable(entry));
        assert_eq!((am.hits(), am.misses()), (0, 1));
        am.cfg(&f);
        am.cfg(&f);
        assert_eq!((am.hits(), am.misses()), (2, 1));
    }

    #[test]
    fn invalidation_forces_recompute() {
        let f = sample();
        let mut am = AnalysisManager::new();
        am.cfg(&f);
        am.invalidate();
        assert_eq!(am.epoch(), 1);
        am.cfg(&f);
        assert_eq!((am.hits(), am.misses()), (0, 2));
        let (h, m) = am.take_cache_counts();
        assert_eq!((h, m), (0, 2));
        assert_eq!((am.hits(), am.misses()), (0, 0));
    }

    #[test]
    fn loops_share_the_epoch() {
        let f = compile(
            "routine f(n) { s = 0; i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }",
            SsaStyle::Pruned,
        )
        .unwrap();
        let mut am = AnalysisManager::new();
        am.loops(&f);
        let after_first = (am.hits(), am.misses());
        assert_eq!(after_first.1, 1, "one cfg recompute feeds the loop forest");
        am.loops(&f);
        assert_eq!(am.misses(), 1, "second request is a pure hit");
        am.invalidate();
        am.loops(&f);
        assert_eq!(am.misses(), 2, "invalidation rebuilds cfg analyses for loops too");
    }
}
