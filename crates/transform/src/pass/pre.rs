//! Partial redundancy elimination over GVN value numbers.
//!
//! GVN's redundancy elimination replaces a computation only when a
//! congruent *dominating* definition exists. At a merge block that test
//! fails even when every incoming path already computed the value —
//! the classic shape lazy code motion targets (Dasgupta–Gangwani,
//! "Partial Redundancy Elimination using Lazy Code Motion"). This pass
//! closes that gap with the value-based formulation of GVN-PRE: for
//! each pure computation in a block with two or more predecessors it
//! φ-translates the expression through every incoming edge, asks
//! whether a congruent definition is available at the end of each
//! predecessor, and
//!
//! * **full redundancy** — available on every edge: build a φ of the
//!   available definitions and rewrite the computation to a copy of it
//!   (no code grows);
//! * **partial redundancy** — available on at least one edge: clone
//!   the translated expression into each lacking predecessor, provided
//!   that predecessor's only successor is the merge block (no critical
//!   edges, so insertion is non-speculative), then build the φ.
//!
//! Operands must be φs of the merge block (translated to their edge
//! argument), constants (position-independent, re-materialized at
//! insertion sites), or defined outside it (then their definitions
//! dominate every predecessor, so they are usable as-is); a candidate
//! with any other operand computed in the merge block itself is skipped —
//! translating it through a back edge would read the previous
//! iteration's value. All `pure` ops are safe to duplicate because the
//! interpreter's integer semantics are total (`x / 0 == 0`); `opaque`
//! is never duplicated.
//!
//! Everything that consults [`GvnResults`] is snapshotted before the
//! first mutation: values created here (clones and φs) are outside the
//! analysis's value range and must never be queried against it.

use pgvn_analysis::{DomTree, Rpo};
use pgvn_core::GvnResults;
use pgvn_ir::{Block, EntityRef, Function, Inst, InstKind, Value};
use std::collections::HashMap;

/// What one PRE run did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreStats {
    /// Expression clones inserted into lacking predecessors.
    pub inserted: usize,
    /// Merge-point computations replaced by copies of new φ-merges.
    pub eliminated: usize,
}

/// A pre-existing pure computation: its result value and a snapshot of
/// its kind at pass entry (later rewrites never change what the SSA
/// value *means*, so stale kinds stay valid for congruence reasoning).
struct PureDef {
    value: Value,
    kind: InstKind,
}

/// Eliminates partial redundancies at merge blocks (see the module
/// docs). `rpo` and `domtree` must be current for `func`'s CFG;
/// `results` must come from a GVN run over exactly this function.
pub fn eliminate_partial_redundancies(
    func: &mut Function,
    results: &GvnResults,
    rpo: &Rpo,
    domtree: &DomTree,
) -> PreStats {
    let mut stats = PreStats::default();
    // Values the analysis knows about; anything newer is ours and must
    // never reach a `results` query.
    let known = func.value_capacity();
    let congruent = |a: Value, b: Value| -> bool {
        a.index() < known && b.index() < known && results.congruent(a, b)
    };

    let blocks: Vec<Block> = func.blocks().collect();
    // Snapshot every pre-existing pure computation, in block × position
    // order (availability searches pick the first match, so this order
    // is part of the deterministic output).
    let mut pure: Vec<PureDef> = Vec::new();
    for &b in &blocks {
        for &inst in func.block_insts(b) {
            if let k @ (InstKind::Binary(..) | InstKind::Cmp(..) | InstKind::Unary(..)) =
                func.kind(inst)
            {
                if let Some(value) = func.inst_result(inst) {
                    pure.push(PureDef { value, kind: k.clone() });
                }
            }
        }
    }
    // Candidates: pure computations in reachable merge blocks whose
    // class was determined, with every predecessor structurally
    // reachable (the dominator tree has nothing to say about
    // unreachable predecessors).
    let mut worklist: Vec<(Block, Inst, Value)> = Vec::new();
    for &b in &blocks {
        if func.preds(b).len() < 2 || !results.is_block_reachable(b) {
            continue;
        }
        if func.preds(b).iter().any(|&e| !rpo.is_reachable(func.edge_from(e))) {
            continue;
        }
        for &inst in func.block_insts(b) {
            if !matches!(
                func.kind(inst),
                InstKind::Binary(..) | InstKind::Cmp(..) | InstKind::Unary(..)
            ) {
                continue;
            }
            let Some(v) = func.inst_result(inst) else { continue };
            if results.leader_value(v).is_some() {
                worklist.push((b, inst, v));
            }
        }
    }

    // One φ per (merge block, congruence class): a second candidate of
    // the same class reuses the merge built for the first.
    let mut phi_memo: HashMap<(usize, usize), Value> = HashMap::new();

    for (b, inst, v) in worklist {
        let class = results.class_of(v);
        if let Some(&phi) = phi_memo.get(&(b.index(), class.index())) {
            func.replace_kind(inst, InstKind::Copy(phi));
            stats.eliminated += 1;
            continue;
        }
        let kind = func.kind(inst).clone();
        let ops = operands(&kind);
        // φ-translate each operand through each incoming edge.
        let preds = func.preds(b).to_vec();
        let mut per_edge: Vec<Vec<Value>> = Vec::with_capacity(preds.len());
        let mut translatable = true;
        'edges: for (ei, _) in preds.iter().enumerate() {
            let mut tr = Vec::with_capacity(ops.len());
            for &o in &ops {
                if func.def_block(o) == b {
                    let def = func.def(o);
                    match func.kind(def) {
                        InstKind::Phi(args) if args.len() == preds.len() => tr.push(args[ei]),
                        // A constant's value is position-independent:
                        // keep it for congruence matching and clone it
                        // at insertion time (it does not dominate the
                        // predecessors).
                        InstKind::Const(_) => tr.push(o),
                        _ => {
                            // Defined in the merge block itself (or a
                            // malformed φ): unsound to read across a
                            // back edge — skip the candidate.
                            translatable = false;
                            break 'edges;
                        }
                    }
                } else {
                    // Defined outside `b`: its definition dominates
                    // every predecessor (any path to a predecessor
                    // extends to a path to `b`, and the def dominates
                    // `b`), so the value is usable as-is.
                    tr.push(o);
                }
            }
            per_edge.push(tr);
        }
        if !translatable {
            continue;
        }
        let untranslated = per_edge.iter().all(|tr| tr[..] == ops[..]);
        // Availability: a pre-existing definition congruent to the
        // translated expression whose block dominates (or is) the
        // predecessor.
        let avail: Vec<Option<Value>> = preds
            .iter()
            .zip(&per_edge)
            .map(|(&e, tr)| {
                let p = func.edge_from(e);
                pure.iter()
                    .find(|d| {
                        let db = func.def_block(d.value);
                        if db != p && !domtree.strictly_dominates(db, p) {
                            return false;
                        }
                        kinds_congruent(&d.kind, &kind, tr, congruent)
                            || (untranslated && congruent(d.value, v))
                    })
                    .map(|d| d.value)
            })
            .collect();
        if !avail.iter().any(Option::is_some) {
            // No redundancy anywhere: inserting would be pure code
            // motion with nothing saved.
            continue;
        }
        // Every lacking predecessor must admit a non-speculative
        // insertion: its single successor is the merge block.
        let insertable = preds
            .iter()
            .zip(&avail)
            .all(|(&e, a)| a.is_some() || func.succs(func.edge_from(e)).len() == 1);
        if !insertable {
            continue;
        }
        // Commit: clone into lacking predecessors, then φ-merge.
        let mut args = Vec::with_capacity(preds.len());
        for ((&e, a), tr) in preds.iter().zip(&avail).zip(&per_edge) {
            match a {
                Some(w) => args.push(*w),
                None => {
                    let p = func.edge_from(e);
                    // Operands still living in the merge block are
                    // constants (everything else was rejected above);
                    // re-materialize them in the predecessor so the
                    // clone's operands all dominate it.
                    let mut mapped = Vec::with_capacity(tr.len());
                    for &o in tr {
                        if func.def_block(o) == b {
                            let InstKind::Const(c) = *func.kind(func.def(o)) else {
                                unreachable!("only const operands may remain merge-local")
                            };
                            mapped.push(func.insert_before_terminator(p, InstKind::Const(c)));
                        } else {
                            mapped.push(o);
                        }
                    }
                    let clone = func.insert_before_terminator(p, with_operands(&kind, &mapped));
                    stats.inserted += 1;
                    args.push(clone);
                }
            }
        }
        let phi = func.insert_phi(b);
        func.set_phi_args(phi, args);
        func.replace_kind(inst, InstKind::Copy(phi));
        phi_memo.insert((b.index(), class.index()), phi);
        stats.eliminated += 1;
    }
    stats
}

/// The operand values of a pure computation, in argument order.
fn operands(kind: &InstKind) -> Vec<Value> {
    match kind {
        InstKind::Unary(_, a) => vec![*a],
        InstKind::Binary(_, a, b) | InstKind::Cmp(_, a, b) => vec![*a, *b],
        other => unreachable!("not a pure computation: {other:?}"),
    }
}

/// The candidate's kind with its operands replaced by `tr`.
fn with_operands(kind: &InstKind, tr: &[Value]) -> InstKind {
    match kind {
        InstKind::Unary(op, _) => InstKind::Unary(*op, tr[0]),
        InstKind::Binary(op, _, _) => InstKind::Binary(*op, tr[0], tr[1]),
        InstKind::Cmp(op, _, _) => InstKind::Cmp(*op, tr[0], tr[1]),
        other => unreachable!("not a pure computation: {other:?}"),
    }
}

/// `true` when `have` computes the candidate's operation over operands
/// congruent to the translated operands `tr` — i.e. `have` is congruent
/// to the φ-translated expression by congruence closure.
fn kinds_congruent(
    have: &InstKind,
    want: &InstKind,
    tr: &[Value],
    congruent: impl Fn(Value, Value) -> bool,
) -> bool {
    match (have, want) {
        (InstKind::Unary(o1, a1), InstKind::Unary(o2, _)) => o1 == o2 && congruent(*a1, tr[0]),
        (InstKind::Binary(o1, a1, b1), InstKind::Binary(o2, _, _)) => {
            o1 == o2 && congruent(*a1, tr[0]) && congruent(*b1, tr[1])
        }
        (InstKind::Cmp(o1, a1, b1), InstKind::Cmp(o2, _, _)) => {
            o1 == o2 && congruent(*a1, tr[0]) && congruent(*b1, tr[1])
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_analysis::assert_ssa;
    use pgvn_core::{run, GvnConfig};
    use pgvn_ir::{assert_verifies, HashedOpaques, Interpreter};
    use pgvn_lang::compile;
    use pgvn_ssa::SsaStyle;

    fn run_pre(src: &str) -> (Function, Function, PreStats) {
        let original = compile(src, SsaStyle::Pruned).unwrap();
        let mut f = original.clone();
        let results = run(&f, &GvnConfig::full());
        let rpo = Rpo::compute(&f);
        let domtree = DomTree::compute(&f, &rpo);
        let stats = eliminate_partial_redundancies(&mut f, &results, &rpo, &domtree);
        assert_verifies(&f);
        assert_ssa(&f);
        (original, f, stats)
    }

    fn check_equiv(original: &Function, optimized: &Function, args_sets: &[&[i64]]) {
        for args in args_sets {
            let mut o1 = HashedOpaques::new(11);
            let mut o2 = HashedOpaques::new(11);
            let r1 = Interpreter::new(original).run(args, &mut o1).unwrap();
            let r2 = Interpreter::new(optimized).run(args, &mut o2).unwrap();
            assert_eq!(r1, r2, "semantics diverged on {args:?}");
        }
    }

    #[test]
    fn full_redundancy_becomes_a_phi() {
        let src = "routine f(a, b, c) {
            if (c > 0) { x = a + b; } else { x = a + b; }
            y = a + b;
            return x + y;
        }";
        let (original, f, stats) = run_pre(src);
        assert_eq!(stats.eliminated, 1, "\n{f}");
        assert_eq!(stats.inserted, 0, "both arms already compute a+b");
        check_equiv(&original, &f, &[&[1, 2, 3], &[5, -1, -9], &[0, 0, 0]]);
    }

    #[test]
    fn partial_redundancy_inserts_into_the_lacking_arm() {
        let src = "routine f(a, b, c) {
            if (c > 0) { x = a + b; } else { x = a - b; }
            y = a + b;
            return x + y;
        }";
        let (original, f, stats) = run_pre(src);
        assert_eq!(stats.eliminated, 1, "\n{f}");
        assert_eq!(stats.inserted, 1, "one clone in the else arm");
        check_equiv(&original, &f, &[&[1, 2, 3], &[5, -1, -9], &[7, 7, 0]]);
    }

    #[test]
    fn phi_operands_translate_through_the_merge() {
        // y = x + 1 where x is a φ; both arms already compute their
        // translated form, so the merge is fully redundant.
        let src = "routine f(a, c) {
            if (c > 0) { x = a; t = a + 1; } else { x = c; t = c + 1; }
            y = x + 1;
            return y + t;
        }";
        let (original, f, stats) = run_pre(src);
        assert!(stats.eliminated >= 1, "φ-translated availability found\n{f}");
        check_equiv(&original, &f, &[&[1, 5], &[3, -2], &[0, 0]]);
    }

    #[test]
    fn loop_invariant_computation_is_hoisted() {
        // The multiply lives in the loop header (the merge of entry and
        // back edge) and is invariant; availability on the back edge is
        // the computation itself, so PRE hoists a clone into the
        // preheader and the header multiply collapses to a φ.
        let src = "routine f(a, b, n) {
            i = 0;
            s = 0;
            while (i < a * b + n) {
                s = s + i;
                i = i + 1;
            }
            return s;
        }";
        let (original, f, stats) = run_pre(src);
        check_equiv(&original, &f, &[&[3, 4, 5], &[2, 9, 0], &[-1, 8, 3], &[2, 2, -10]]);
        assert!(stats.eliminated >= 1, "loop-invariant multiply merged\n{f}");
        assert!(stats.inserted >= 1, "clone hoisted into the preheader\n{f}");
    }

    #[test]
    fn critical_edges_block_insertion() {
        // The else edge comes straight from the branch block (two
        // successors): inserting there would speculate, so nothing may
        // happen beyond the then-arm availability… which is partial
        // only. The candidate must be skipped.
        let src = "routine f(a, b, c) {
            if (c > 0) { x = a + b; } else { x = c; }
            y = a + b;
            return x + y;
        }";
        let original = compile(src, SsaStyle::Pruned).unwrap();
        let mut f = original.clone();
        let results = run(&f, &GvnConfig::full());
        let rpo = Rpo::compute(&f);
        let domtree = DomTree::compute(&f, &rpo);
        let before = format!("{f}");
        let stats = eliminate_partial_redundancies(&mut f, &results, &rpo, &domtree);
        // Whether the front end materializes an else block decides if
        // insertion is possible; either way the result must verify and
        // agree with the oracle.
        assert_verifies(&f);
        check_equiv(&original, &f, &[&[1, 2, 3], &[1, 2, -3]]);
        if stats.eliminated == 0 {
            assert_eq!(before, format!("{f}"), "no partial work without a commit");
        }
    }

    #[test]
    fn operand_defined_in_the_merge_block_is_skipped() {
        let src = "routine f(a, b, c) {
            if (c > 0) { t = 1; } else { t = 2; }
            u = a + t;
            y = u * b;
            return y;
        }";
        // `y`'s operand `u` is computed in the merge block itself (not a
        // φ), so `y` is untouchable; `u` itself has a φ operand with no
        // availability anywhere, so nothing happens at all.
        let (original, f, stats) = run_pre(src);
        assert_eq!(stats.eliminated, 0, "\n{f}");
        assert_eq!(stats.inserted, 0);
        check_equiv(&original, &f, &[&[1, 2, 3], &[4, 5, -6]]);
    }

    #[test]
    fn same_class_reuses_the_phi() {
        let src = "routine f(a, b, c) {
            if (c > 0) { x = a + b; } else { x = a - b; }
            y = a + b;
            z = a + b;
            return x + y + z;
        }";
        let (original, f, stats) = run_pre(src);
        assert_eq!(stats.eliminated, 2, "both merge computations fold\n{f}");
        assert_eq!(stats.inserted, 1, "one clone serves both");
        check_equiv(&original, &f, &[&[1, 2, 3], &[5, -1, -9]]);
    }
}
