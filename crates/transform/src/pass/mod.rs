//! The pass-manager layer: named passes over a shared [`PassContext`].
//!
//! The paper positions PGVN as one pass inside a production optimizer
//! (HP's HLO); this module supplies the surrounding machinery. A
//! [`Pass`] is a named transform run against a [`PassContext`] — the
//! reusable GVN context, the configuration, a lazily cached
//! [`AnalysisManager`], telemetry, and the accumulating
//! [`OptimizeReport`]. A [`PassManager`] executes a [`PassSpec`]
//! (parsed from a string like `"gvn,pre,gvn"`) and keeps the analysis
//! cache honest: a pass that does not declare
//! [`Pass::preserves_analyses`] invalidates the cache after it runs.
//!
//! Three passes are registered by default:
//!
//! * `gvn` — one full GVN + rewrite round, byte-identical to one round
//!   of the pre-pass-manager [`crate::Pipeline`] (the default pipeline
//!   is `gvn` repeated `rounds` times);
//! * `pre` — partial redundancy elimination over GVN value numbers
//!   (see [`pre`]);
//! * `cleanup` — copy forwarding plus dead-code elimination, for
//!   stripping the copies and dead computations the other passes leave
//!   behind.
//!
//! See `docs/PASSES.md` for the spec grammar and the pass/analysis
//! contracts.

pub mod analyses;
pub mod pre;

pub use analyses::{AnalysisManager, CfgAnalyses};

use crate::dce::eliminate_dead_code;
use crate::pipeline::OptimizeReport;
use crate::rewrite::{
    eliminate_redundancies_with, eliminate_unreachable, forward_copies, propagate_constants,
};
use pgvn_core::{
    run_traced_in_context, try_run_traced_in_context, BudgetKind, FaultKind, FaultPlan, GvnConfig,
    GvnContext, GvnError, GvnResults,
};
use pgvn_ir::Function;
use pgvn_telemetry::{Metric, Phase, Telemetry};
use std::fmt;
use std::time::Instant;

/// A pass registered with the [`PassManager`], identified by its spec
/// name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PassId {
    /// One GVN analysis + rewrite round (`gvn`).
    Gvn,
    /// Partial redundancy elimination over GVN value numbers (`pre`).
    Pre,
    /// Copy forwarding + dead-code elimination (`cleanup`).
    Cleanup,
}

impl PassId {
    /// Every pass in registration order.
    pub const ALL: [PassId; 3] = [PassId::Gvn, PassId::Pre, PassId::Cleanup];

    /// The stable name used in pipeline specs.
    pub fn name(self) -> &'static str {
        match self {
            PassId::Gvn => "gvn",
            PassId::Pre => "pre",
            PassId::Cleanup => "cleanup",
        }
    }

    /// Resolves a spec element to a pass, if the name is known.
    pub fn parse(name: &str) -> Option<PassId> {
        Self::ALL.into_iter().find(|id| id.name() == name)
    }
}

impl fmt::Display for PassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An ordered pass sequence, parsed from a comma-separated spec string.
///
/// The grammar is `pass ("," pass)*` with no empty elements; unknown
/// names, empty elements (doubled or trailing commas), and the empty
/// spec are rejected with a one-line message suitable for CLI
/// diagnostics and serve `error` responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassSpec {
    passes: Vec<PassId>,
}

impl PassSpec {
    /// Parses `spec` (e.g. `"gvn,pre,gvn"`).
    pub fn parse(spec: &str) -> Result<PassSpec, String> {
        let trimmed = spec.trim();
        if trimmed.is_empty() {
            return Err("empty pipeline spec (expected e.g. `gvn,pre,gvn`)".to_string());
        }
        let mut passes = Vec::new();
        for element in trimmed.split(',') {
            let element = element.trim();
            if element.is_empty() {
                return Err(format!("empty pass element in pipeline spec `{trimmed}`"));
            }
            match PassId::parse(element) {
                Some(id) => passes.push(id),
                None => {
                    return Err(format!(
                        "unknown pass `{element}` (known passes: gvn, pre, cleanup)"
                    ))
                }
            }
        }
        Ok(PassSpec { passes })
    }

    /// The classic pipeline: the `gvn` pass repeated `rounds` times
    /// (clamped to at least one). This is what a [`crate::Pipeline`]
    /// without an explicit spec runs.
    pub fn gvn_rounds(rounds: usize) -> PassSpec {
        PassSpec { passes: vec![PassId::Gvn; rounds.max(1)] }
    }

    /// The passes in execution order.
    pub fn passes(&self) -> &[PassId] {
        &self.passes
    }

    /// `true` when the spec contains `pass`.
    pub fn contains(&self, pass: PassId) -> bool {
        self.passes.contains(&pass)
    }
}

impl fmt::Display for PassSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, id) in self.passes.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            f.write_str(id.name())?;
        }
        Ok(())
    }
}

impl std::str::FromStr for PassSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PassSpec::parse(s)
    }
}

/// Rewrite-site fault-injection state, shared by every pass of one
/// ladder rung (the countdown spans rounds, exactly as the
/// pre-pass-manager ladder behaved).
#[derive(Clone, Copy, Debug)]
pub(crate) struct RewriteFault {
    plan: FaultPlan,
    countdown: u64,
}

/// Everything a [`Pass`] runs against: the reusable analysis context,
/// the GVN configuration, the lazily cached CFG analyses, telemetry,
/// and the report the pipeline accumulates.
pub struct PassContext<'a, 'tel> {
    /// The reusable GVN context (arena reuse across runs).
    pub gvn: &'a mut GvnContext,
    /// The GVN configuration analysis runs use.
    pub cfg: &'a GvnConfig,
    /// Lazily computed, epoch-invalidated CFG analyses.
    pub analyses: &'a mut AnalysisManager,
    /// Trace/metrics/profiling sink.
    pub tel: &'a mut Telemetry<'tel>,
    /// The report accumulated across the whole pipeline.
    pub report: &'a mut OptimizeReport,
    /// Whether rewrite stages record profiler phases. The traced
    /// pipeline entry points do; ladder rungs never have (phase timings
    /// there would double-count across rolled-back rungs).
    record_phases: bool,
    /// Whether analysis failures surface as `Err` (ladder rungs) or
    /// panic through [`run_traced_in_context`] (the infallible entry
    /// points).
    fallible: bool,
    /// Rewrite-site fault injection, when this is a faulted rung.
    fault: Option<RewriteFault>,
}

impl<'a, 'tel> PassContext<'a, 'tel> {
    /// A context for the infallible pipeline entry points: phases are
    /// recorded, analysis failures panic, no fault injection.
    pub fn new(
        gvn: &'a mut GvnContext,
        cfg: &'a GvnConfig,
        analyses: &'a mut AnalysisManager,
        tel: &'a mut Telemetry<'tel>,
        report: &'a mut OptimizeReport,
    ) -> Self {
        PassContext {
            gvn,
            cfg,
            analyses,
            tel,
            report,
            record_phases: true,
            fallible: false,
            fault: None,
        }
    }

    /// A context for one degradation-ladder rung: failures are `Err`,
    /// rewrite phases are not recorded, and a rewrite-site fault plan
    /// (if any) is armed with its countdown.
    pub(crate) fn for_rung(
        gvn: &'a mut GvnContext,
        cfg: &'a GvnConfig,
        analyses: &'a mut AnalysisManager,
        tel: &'a mut Telemetry<'tel>,
        report: &'a mut OptimizeReport,
        rewrite_fault: Option<FaultPlan>,
    ) -> Self {
        let fault = rewrite_fault.map(|plan| RewriteFault { plan, countdown: plan.countdown() });
        PassContext { gvn, cfg, analyses, tel, report, record_phases: false, fallible: true, fault }
    }

    /// Runs the GVN analysis on `func`, accumulating `gvn_nanos` and
    /// recording the run's stats into the report (last run wins, as the
    /// pipeline has always reported).
    pub fn run_gvn(&mut self, func: &Function) -> Result<GvnResults, GvnError> {
        let g0 = Instant::now();
        let results = if self.fallible {
            try_run_traced_in_context(self.gvn, func, self.cfg, self.tel)?
        } else {
            run_traced_in_context(self.gvn, func, self.cfg, self.tel)
        };
        self.report.gvn_nanos += g0.elapsed().as_nanos();
        self.report.gvn_stats = results.stats;
        Ok(results)
    }

    /// Starts a phase timer when this context records rewrite phases.
    pub fn phase_clock(&self) -> Option<Instant> {
        if self.record_phases {
            self.tel.clock()
        } else {
            None
        }
    }

    /// Closes a phase span opened by [`PassContext::phase_clock`].
    pub fn record_phase(&mut self, phase: Phase, start: Option<Instant>) {
        if self.record_phases {
            self.tel.record_phase(phase, start);
        }
    }

    /// Fires the rewrite-site fault when its countdown has elapsed
    /// (between analysis and rewrites, like the pre-pass-manager rung
    /// body). Verifier-reject plans are handled at the rung boundary
    /// instead.
    pub(crate) fn inject_rewrite_fault(&mut self) -> Result<(), GvnError> {
        let Some(f) = self.fault.as_mut() else { return Ok(()) };
        if f.plan.kind == FaultKind::VerifierReject {
            return Ok(());
        }
        if f.countdown > 0 {
            f.countdown -= 1;
            return Ok(());
        }
        match f.plan.kind {
            FaultKind::Panic => panic!("pgvn injected fault: panic at site rewrite"),
            FaultKind::Invariant => Err(GvnError::invariant("injected fault at site rewrite")),
            FaultKind::Budget => Err(GvnError::BudgetExceeded {
                budget: BudgetKind::Work,
                limit: 0,
                spent: self.report.gvn_stats.touches,
            }),
            FaultKind::VerifierReject => unreachable!(),
        }
    }
}

/// A named transform over one function.
pub trait Pass {
    /// The stable name, as written in pipeline specs.
    fn name(&self) -> &'static str;

    /// Whether the pass keeps the cached CFG analyses valid — either by
    /// leaving the CFG (blocks and edges) untouched, or by calling
    /// [`AnalysisManager::invalidate`] exactly when it does change it.
    /// A pass answering `false` forces recomputation after every run
    /// (the safe default for new passes).
    fn preserves_analyses(&self) -> bool {
        false
    }

    /// Runs the pass on `func`. `Err` aborts the pipeline (inside the
    /// resilient ladder that means the rung rolls back).
    fn run(&self, pcx: &mut PassContext<'_, '_>, func: &mut Function) -> Result<(), GvnError>;
}

/// One GVN analysis + rewrite round: UCE, constant propagation,
/// redundancy elimination (against the cached dominator tree), copy
/// forwarding, DCE. The default pipeline is this pass repeated.
pub struct GvnPass;

impl Pass for GvnPass {
    fn name(&self) -> &'static str {
        "gvn"
    }

    /// The CFG only changes when UCE folds a branch or removes a block,
    /// and the pass invalidates precisely then.
    fn preserves_analyses(&self) -> bool {
        true
    }

    fn run(&self, pcx: &mut PassContext<'_, '_>, func: &mut Function) -> Result<(), GvnError> {
        let results = pcx.run_gvn(func)?;
        pcx.inject_rewrite_fault()?;
        let p0 = pcx.phase_clock();
        let uce = eliminate_unreachable(func, &results);
        pcx.record_phase(Phase::Uce, p0);
        pcx.report.uce.branches_folded += uce.branches_folded;
        pcx.report.uce.blocks_removed += uce.blocks_removed;
        pcx.report.uce.phis_simplified += uce.phis_simplified;
        if uce.branches_folded > 0 || uce.blocks_removed > 0 {
            pcx.analyses.invalidate();
        }
        let p0 = pcx.phase_clock();
        pcx.report.constants_propagated += propagate_constants(func, &results);
        pcx.record_phase(Phase::ConstantProp, p0);
        let p0 = pcx.phase_clock();
        let eliminated = {
            let an = pcx.analyses.cfg(func);
            eliminate_redundancies_with(func, &results, &an.domtree)
        };
        pcx.report.redundancies_eliminated += eliminated;
        pcx.record_phase(Phase::RedundancyElim, p0);
        let p0 = pcx.phase_clock();
        pcx.report.copies_forwarded += forward_copies(func);
        pcx.record_phase(Phase::CopyForward, p0);
        let p0 = pcx.phase_clock();
        pcx.report.dead_removed += eliminate_dead_code(func);
        pcx.record_phase(Phase::Dce, p0);
        Ok(())
    }
}

/// Partial redundancy elimination over GVN value numbers: runs a fresh
/// analysis, then φ-merges expressions that are available on some (or
/// all) predecessors of a merge block, inserting clones into the
/// lacking predecessors when that is non-speculative. See [`pre`].
pub struct PrePass;

impl Pass for PrePass {
    fn name(&self) -> &'static str {
        "pre"
    }

    /// PRE inserts and rewrites instructions but never touches blocks
    /// or edges.
    fn preserves_analyses(&self) -> bool {
        true
    }

    fn run(&self, pcx: &mut PassContext<'_, '_>, func: &mut Function) -> Result<(), GvnError> {
        let results = pcx.run_gvn(func)?;
        let p0 = pcx.phase_clock();
        let stats = {
            let an = pcx.analyses.cfg(func);
            pre::eliminate_partial_redundancies(func, &results, &an.rpo, &an.domtree)
        };
        pcx.record_phase(Phase::Pre, p0);
        pcx.report.pre_inserted += stats.inserted;
        pcx.report.pre_eliminated += stats.eliminated;
        pcx.tel.count(Metric::PreInserted, stats.inserted as u64);
        pcx.tel.count(Metric::PreEliminated, stats.eliminated as u64);
        Ok(())
    }
}

/// Copy forwarding plus dead-code elimination: strips the copies and
/// dead computations `gvn` and `pre` leave behind. Like every pass it
/// runs under the ladder's verifier gate.
pub struct CleanupPass;

impl Pass for CleanupPass {
    fn name(&self) -> &'static str {
        "cleanup"
    }

    /// Removing instructions never changes the CFG.
    fn preserves_analyses(&self) -> bool {
        true
    }

    fn run(&self, pcx: &mut PassContext<'_, '_>, func: &mut Function) -> Result<(), GvnError> {
        let p0 = pcx.phase_clock();
        let forwarded = forward_copies(func);
        let removed = eliminate_dead_code(func);
        pcx.record_phase(Phase::Cleanup, p0);
        pcx.report.copies_forwarded += forwarded;
        pcx.report.cleanup_removed += removed;
        pcx.tel.count(Metric::CleanupRemoved, removed as u64);
        Ok(())
    }
}

/// The pass registry and sequencer: resolves each [`PassId`] of a
/// [`PassSpec`] to its registered [`Pass`] and runs them in order,
/// invalidating the analysis cache after any pass that does not declare
/// preservation.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl Default for PassManager {
    fn default() -> Self {
        Self::new()
    }
}

impl PassManager {
    /// A manager with the three default passes (`gvn`, `pre`,
    /// `cleanup`) registered.
    pub fn new() -> Self {
        let mut pm = PassManager { passes: Vec::new() };
        pm.register(Box::new(GvnPass));
        pm.register(Box::new(PrePass));
        pm.register(Box::new(CleanupPass));
        pm
    }

    /// Registers a pass. A pass with the same name replaces the earlier
    /// registration.
    pub fn register(&mut self, pass: Box<dyn Pass>) {
        if let Some(existing) = self.passes.iter_mut().find(|p| p.name() == pass.name()) {
            *existing = pass;
        } else {
            self.passes.push(pass);
        }
    }

    /// The registered pass for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was unregistered (never the case for the default
    /// manager, which registers every [`PassId`]).
    pub fn get(&self, id: PassId) -> &dyn Pass {
        self.passes
            .iter()
            .find(|p| p.name() == id.name())
            .map(|p| p.as_ref())
            .unwrap_or_else(|| panic!("pass `{id}` is not registered"))
    }

    /// Runs `spec`'s passes in order against `pcx`, then reports the
    /// analysis-cache hit/miss totals into the metrics sink.
    pub fn run(
        &self,
        spec: &PassSpec,
        pcx: &mut PassContext<'_, '_>,
        func: &mut Function,
    ) -> Result<(), GvnError> {
        let outcome = self.run_inner(spec, pcx, func);
        let (hits, misses) = pcx.analyses.take_cache_counts();
        pcx.tel.count(Metric::AnalysisCacheHits, hits);
        pcx.tel.count(Metric::AnalysisCacheMisses, misses);
        outcome
    }

    fn run_inner(
        &self,
        spec: &PassSpec,
        pcx: &mut PassContext<'_, '_>,
        func: &mut Function,
    ) -> Result<(), GvnError> {
        for &id in spec.passes() {
            let pass = self.get(id);
            pcx.tel.count(Metric::PassRuns, 1);
            pass.run(pcx, func)?;
            if !pass.preserves_analyses() {
                pcx.analyses.invalidate();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_round_trips() {
        let spec = PassSpec::parse("gvn,pre,gvn").unwrap();
        assert_eq!(spec.passes(), &[PassId::Gvn, PassId::Pre, PassId::Gvn]);
        assert_eq!(spec.to_string(), "gvn,pre,gvn");
        assert_eq!("gvn , cleanup".parse::<PassSpec>().unwrap().to_string(), "gvn,cleanup");
        assert!(spec.contains(PassId::Pre));
        assert!(!spec.contains(PassId::Cleanup));
    }

    #[test]
    fn spec_rejects_malformed_inputs() {
        let unknown = PassSpec::parse("gvn,licm").unwrap_err();
        assert!(unknown.contains("unknown pass `licm`"), "{unknown}");
        let trailing = PassSpec::parse("gvn,pre,").unwrap_err();
        assert!(trailing.contains("empty pass element"), "{trailing}");
        let doubled = PassSpec::parse("gvn,,pre").unwrap_err();
        assert!(doubled.contains("empty pass element"), "{doubled}");
        let empty = PassSpec::parse("  ").unwrap_err();
        assert!(empty.contains("empty pipeline spec"), "{empty}");
    }

    #[test]
    fn gvn_rounds_clamps_to_one() {
        assert_eq!(PassSpec::gvn_rounds(0).passes(), &[PassId::Gvn]);
        assert_eq!(PassSpec::gvn_rounds(3).passes().len(), 3);
    }

    #[test]
    fn manager_registers_default_passes() {
        let pm = PassManager::new();
        for id in PassId::ALL {
            assert_eq!(pm.get(id).name(), id.name());
        }
        assert!(pm.get(PassId::Gvn).preserves_analyses());
        assert!(pm.get(PassId::Pre).preserves_analyses());
        assert!(pm.get(PassId::Cleanup).preserves_analyses());
    }
}
