//! The optimization pipeline: the repository's stand-in for the paper's
//! HLO host optimizer.
//!
//! The paper measures GVN inside HP's high-level optimizer (Table 1
//! reports total HLO time vs GVN time). We cannot rebuild HLO; the
//! [`Pipeline`] chains the GVN analysis with all its consumer transforms
//! (UCE → constant propagation → redundancy elimination → copy forwarding
//! → DCE) and optionally iterates, giving the timing harness a realistic
//! surrounding pass context. `EXPERIMENTS.md` documents how the GVN/HLO
//! time share deviates from the paper's <4% because our host pipeline is
//! far thinner than HLO.

use crate::pass::{AnalysisManager, PassContext, PassManager, PassSpec};
use crate::rewrite::UceReport;
use pgvn_core::{GvnConfig, GvnContext, GvnStats};
use pgvn_ir::Function;
use pgvn_telemetry::Telemetry;

/// Aggregate report of one [`Pipeline::optimize`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OptimizeReport {
    /// Statistics from the (last) GVN run.
    pub gvn_stats: GvnStats,
    /// Unreachable-code removal counts.
    pub uce: UceReport,
    /// Instructions rewritten to constants.
    pub constants_propagated: usize,
    /// Instructions rewritten to copies of congruent leaders.
    pub redundancies_eliminated: usize,
    /// Operands forwarded through copies.
    pub copies_forwarded: usize,
    /// Dead instructions removed.
    pub dead_removed: usize,
    /// Expression clones the `pre` pass inserted into predecessors.
    pub pre_inserted: usize,
    /// Merge-point computations the `pre` pass replaced with φ-merges.
    pub pre_eliminated: usize,
    /// Instructions the `cleanup` pass removed.
    pub cleanup_removed: usize,
    /// Time spent inside the GVN analysis, in nanoseconds.
    pub gvn_nanos: u128,
    /// Total pipeline time, in nanoseconds.
    pub total_nanos: u128,
}

/// A GVN-driven optimization pipeline.
#[derive(Clone, Debug)]
pub struct Pipeline {
    pub(crate) cfg: GvnConfig,
    pub(crate) rounds: usize,
    pub(crate) spec: Option<PassSpec>,
}

impl Pipeline {
    /// Creates a single-round pipeline with the given GVN configuration.
    pub fn new(cfg: GvnConfig) -> Self {
        Pipeline { cfg, rounds: 1, spec: None }
    }

    /// Sets how many GVN+rewrite rounds to run (each round can expose
    /// further opportunities for the next). Ignored when an explicit
    /// pass spec is set via [`Pipeline::passes`].
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds.max(1);
        self
    }

    /// Sets an explicit pass sequence (e.g. parsed from
    /// `--passes gvn,pre,gvn`), overriding the default
    /// rounds-of-`gvn` pipeline.
    pub fn passes(mut self, spec: PassSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// The GVN configuration in use.
    pub fn config(&self) -> &GvnConfig {
        &self.cfg
    }

    /// The effective pass sequence: the explicit spec when one was set,
    /// otherwise `gvn` repeated [`Pipeline::rounds`] times.
    pub fn spec(&self) -> PassSpec {
        self.spec.clone().unwrap_or_else(|| PassSpec::gvn_rounds(self.rounds))
    }

    /// Optimizes `func` in place.
    pub fn optimize(&self, func: &mut Function) -> OptimizeReport {
        self.optimize_traced(func, &mut Telemetry::off())
    }

    /// [`Pipeline::optimize`] against a reusable [`GvnContext`]: every
    /// GVN round borrows the context's arenas instead of allocating
    /// fresh ones, so a routine stream sharing one context is
    /// allocation-amortized. Results are identical to [`Pipeline::optimize`].
    pub fn optimize_with(&self, ctx: &mut GvnContext, func: &mut Function) -> OptimizeReport {
        self.optimize_traced_with(ctx, func, &mut Telemetry::off())
    }

    /// [`Pipeline::optimize`] with observability: the GVN runs of every
    /// round trace into `tel`'s sink, and the rewrite stages record
    /// per-phase timings into its profiler.
    pub fn optimize_traced(&self, func: &mut Function, tel: &mut Telemetry<'_>) -> OptimizeReport {
        self.optimize_traced_with(&mut GvnContext::new(), func, tel)
    }

    /// [`Pipeline::optimize_traced`] against a reusable [`GvnContext`].
    pub fn optimize_traced_with(
        &self,
        ctx: &mut GvnContext,
        func: &mut Function,
        tel: &mut Telemetry<'_>,
    ) -> OptimizeReport {
        let t0 = std::time::Instant::now();
        let mut report = OptimizeReport::default();
        let spec = self.spec();
        let mut analyses = AnalysisManager::new();
        let mut pcx = PassContext::new(ctx, &self.cfg, &mut analyses, tel, &mut report);
        PassManager::new().run(&spec, &mut pcx, func).expect("infallible pipeline pass failed");
        report.total_nanos = t0.elapsed().as_nanos();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_ir::{assert_verifies, HashedOpaques, InstKind, Interpreter};
    use pgvn_lang::compile;
    use pgvn_ssa::SsaStyle;

    fn optimize_and_check(src: &str, args_sets: &[Vec<i64>]) -> (Function, OptimizeReport) {
        let original = compile(src, SsaStyle::Minimal).unwrap();
        let mut f = original.clone();
        let report = Pipeline::new(GvnConfig::full()).rounds(2).optimize(&mut f);
        assert_verifies(&f);
        for args in args_sets {
            let mut o1 = HashedOpaques::new(3);
            let mut o2 = HashedOpaques::new(3);
            let r1 = Interpreter::new(&original).run(args, &mut o1).unwrap();
            let r2 = Interpreter::new(&f).run(args, &mut o2).unwrap();
            assert_eq!(r1, r2, "semantics diverged on {args:?}");
        }
        (f, report)
    }

    #[test]
    fn pipeline_shrinks_figure1_to_return_one() {
        let (f, report) = optimize_and_check(
            pgvn_lang::fixtures::FIGURE1,
            &[vec![0, 0, 0], vec![9, 9, 100], vec![5, 5, 9]],
        );
        assert!(report.constants_propagated > 0);
        // After optimization the return must be a constant 1.
        let ret = f
            .blocks()
            .filter_map(|b| f.terminator(b))
            .find_map(|t| match f.kind(t) {
                InstKind::Return(v) => Some(*v),
                _ => None,
            })
            .expect("a return remains");
        assert_eq!(f.value_as_const(ret), Some(1), "\n{f}");
    }

    #[test]
    fn pipeline_removes_unreachable_code() {
        let (f, report) = optimize_and_check(
            "routine f(x) { if (1 == 2) { return x * 3; } return x + 0; }",
            &[vec![4], vec![-9]],
        );
        assert!(report.uce.blocks_removed >= 1);
        assert_eq!(f.num_blocks(), f.blocks().count());
    }

    #[test]
    fn pipeline_dedups_redundant_work() {
        let (f, report) = optimize_and_check(
            "routine f(a, b) {
                x = a * b + a;
                y = a * b + a;
                z = a * b + a;
                return x + y + z;
            }",
            &[vec![2, 3], vec![7, -1]],
        );
        assert!(report.redundancies_eliminated + report.dead_removed > 0);
        // Only one multiply should survive.
        let muls = f
            .blocks()
            .flat_map(|b| f.block_insts(b).to_vec())
            .filter(|&i| matches!(f.kind(i), InstKind::Binary(pgvn_ir::BinOp::Mul, _, _)))
            .count();
        assert_eq!(muls, 1, "\n{f}");
    }

    #[test]
    fn report_times_are_recorded() {
        let mut f = compile("routine f(a) { return a + 1; }", SsaStyle::Minimal).unwrap();
        let report = Pipeline::new(GvnConfig::full()).optimize(&mut f);
        assert!(report.total_nanos >= report.gvn_nanos);
        assert!(report.gvn_nanos > 0);
    }

    #[test]
    fn weaker_configs_also_roundtrip() {
        for cfg in [GvnConfig::click(), GvnConfig::sccp(), GvnConfig::awz(), GvnConfig::basic()] {
            let original = compile(pgvn_lang::fixtures::FIGURE1, SsaStyle::Minimal).unwrap();
            let mut f = original.clone();
            Pipeline::new(cfg.clone()).optimize(&mut f);
            assert_verifies(&f);
            for args in [[3, 3, 9], [0, 1, 2]] {
                let mut o1 = HashedOpaques::new(0);
                let mut o2 = HashedOpaques::new(0);
                let r1 = Interpreter::new(&original).run(&args, &mut o1).unwrap();
                let r2 = Interpreter::new(&f).run(&args, &mut o2).unwrap();
                assert_eq!(r1, r2, "{cfg:?}");
            }
        }
    }
}

#[cfg(test)]
mod round_tests {
    use super::*;
    use pgvn_lang::compile;
    use pgvn_ssa::SsaStyle;

    #[test]
    fn rounds_accumulate_in_the_report() {
        let src = "routine f(a) {
            x = a + a;
            y = a + a;
            z = x - y;
            if (z > 0) { return 99; }
            return z;
        }";
        let mut f1 = compile(src, SsaStyle::Minimal).unwrap();
        let one = Pipeline::new(GvnConfig::full()).optimize(&mut f1);
        let mut f2 = compile(src, SsaStyle::Minimal).unwrap();
        let two = Pipeline::new(GvnConfig::full()).rounds(2).optimize(&mut f2);
        assert!(two.dead_removed >= one.dead_removed);
        assert!(two.constants_propagated >= one.constants_propagated);
        assert!(two.total_nanos >= two.gvn_nanos);
    }

    #[test]
    fn rounds_zero_is_clamped_to_one() {
        let mut f = compile("routine f(a) { return a + 0; }", SsaStyle::Minimal).unwrap();
        let report = Pipeline::new(GvnConfig::full()).rounds(0).optimize(&mut f);
        assert!(report.gvn_stats.passes >= 1, "at least one round ran");
    }
}
