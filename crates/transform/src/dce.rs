//! Dead code elimination.
//!
//! All value-defining instructions in this IR are pure (including
//! `opaque`, which models a side-effect-free unknown input), so any value
//! not transitively demanded by a terminator can be removed.

use pgvn_ir::{EntityRef, Function, Value};

/// Removes instructions whose results are never used (transitively).
/// Returns the number of instructions removed.
pub fn eliminate_dead_code(func: &mut Function) -> usize {
    let mut live = vec![false; func.value_capacity()];
    let mut work: Vec<Value> = Vec::new();
    for b in func.blocks() {
        if let Some(term) = func.terminator(b) {
            func.kind(term).visit_args(|v| work.push(v));
        }
    }
    while let Some(v) = work.pop() {
        if live[v.index()] {
            continue;
        }
        live[v.index()] = true;
        func.kind(func.def(v)).visit_args(|a| work.push(a));
    }
    let mut removed = 0;
    for b in func.blocks().collect::<Vec<_>>() {
        for inst in func.block_insts(b).to_vec() {
            if let Some(v) = func.inst_result(inst) {
                if !live[v.index()] {
                    func.remove_inst(inst);
                    removed += 1;
                }
            }
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_ir::{assert_verifies, BinOp, HashedOpaques, Interpreter};
    use pgvn_lang::compile;
    use pgvn_ssa::SsaStyle;

    #[test]
    fn removes_unused_computations() {
        let mut f = compile("routine f(a) { x = a * 99; return a; }", SsaStyle::Minimal).unwrap();
        let before = f.num_insts();
        let removed = eliminate_dead_code(&mut f);
        assert!(removed >= 2, "mul and const should die; removed {removed}");
        assert!(f.num_insts() < before);
        assert_verifies(&f);
        let r = Interpreter::new(&f).run(&[11], &mut HashedOpaques::new(0)).unwrap();
        assert_eq!(r, 11);
    }

    #[test]
    fn keeps_transitively_used_values() {
        let mut f = pgvn_ir::Function::new("f", 1);
        let b = f.entry();
        let one = f.iconst(b, 1);
        let s = f.binary(b, BinOp::Add, f.param(0), one);
        let t = f.binary(b, BinOp::Mul, s, s);
        f.set_return(b, t);
        assert_eq!(eliminate_dead_code(&mut f), 0);
        assert_verifies(&f);
    }

    #[test]
    fn removes_dead_phis() {
        let src = "routine f(c) {
            if (c > 0) { t = 1; } else { t = 2; }
            return 7;
        }";
        let mut f = compile(src, SsaStyle::Minimal).unwrap();
        let removed = eliminate_dead_code(&mut f);
        assert!(removed >= 1);
        assert!(!f.values().any(|v| f.kind(f.def(v)).is_phi()));
        assert_verifies(&f);
    }
}
