//! GVN-driven rewrites: unreachable code elimination, constant
//! propagation, redundancy elimination and copy forwarding.

use pgvn_analysis::{DomTree, Rpo};
use pgvn_core::GvnResults;
use pgvn_ir::{Block, Function, InstKind, Value};

/// What unreachable code elimination removed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UceReport {
    /// Branches replaced by jumps because one outgoing edge was proven
    /// unreachable.
    pub branches_folded: usize,
    /// Blocks removed outright.
    pub blocks_removed: usize,
    /// φ-functions reduced to copies after losing all but one argument.
    pub phis_simplified: usize,
}

/// Removes code the analysis proved unreachable: folds decided branches,
/// deletes unreachable blocks (fixing φs of their successors), and
/// simplifies φs left with a single argument.
pub fn eliminate_unreachable(func: &mut Function, results: &GvnResults) -> UceReport {
    let mut report = UceReport::default();
    // Fold branches and switches with dead outgoing edges.
    let blocks: Vec<Block> = func.blocks().collect();
    for &b in &blocks {
        if !results.is_block_reachable(b) {
            continue;
        }
        let Some(term) = func.terminator(b) else { continue };
        match func.kind(term) {
            InstKind::Branch(_) => {
                let succs = func.succs(b);
                let alive: Vec<bool> =
                    succs.iter().map(|&e| results.is_edge_reachable(e)).collect();
                match (alive[0], alive[1]) {
                    (true, false) => {
                        func.fold_branch_to(b, 0);
                        report.branches_folded += 1;
                    }
                    (false, true) => {
                        func.fold_branch_to(b, 1);
                        report.branches_folded += 1;
                    }
                    _ => {}
                }
            }
            InstKind::Switch(..) => {
                let alive: Vec<usize> = func
                    .succs(b)
                    .iter()
                    .enumerate()
                    .filter(|&(_, &e)| results.is_edge_reachable(e))
                    .map(|(i, _)| i)
                    .collect();
                if let [only] = alive[..] {
                    func.fold_switch_to(b, only);
                    report.branches_folded += 1;
                }
            }
            _ => {}
        }
    }
    // Remove unreachable blocks.
    for &b in &blocks {
        if b != func.entry() && !results.is_block_reachable(b) {
            func.remove_block(b);
            report.blocks_removed += 1;
        }
    }
    // Simplify φs with a single remaining argument.
    for b in func.blocks().collect::<Vec<_>>() {
        for inst in func.block_insts(b).to_vec() {
            if let InstKind::Phi(args) = func.kind(inst) {
                if args.len() == 1 {
                    let src = args[0];
                    // A φ without a result is malformed IR; leave it for
                    // the verifier gate instead of panicking mid-rewrite.
                    let Some(result) = func.inst_result(inst) else { continue };
                    func.replace_phi_with_copy(result, src);
                    report.phis_simplified += 1;
                }
            }
        }
    }
    report
}

/// Replaces every instruction whose class leader is a constant with a
/// `const` instruction. Returns the number of replacements.
pub fn propagate_constants(func: &mut Function, results: &GvnResults) -> usize {
    let mut n = 0;
    for b in func.blocks().collect::<Vec<_>>() {
        for inst in func.block_insts(b).to_vec() {
            let Some(v) = func.inst_result(inst) else { continue };
            if matches!(func.kind(inst), InstKind::Const(_)) {
                continue;
            }
            if let Some(c) = results.constant_value(v) {
                func.replace_kind(inst, InstKind::Const(c));
                n += 1;
            }
        }
    }
    n
}

/// Replaces instructions congruent to an earlier, dominating definition
/// with a copy of that definition (redundancy/copy elimination). Returns
/// the number of replacements.
///
/// Replacement is performed only when the leader's definition dominates
/// the redundant one, which is guaranteed when the leader's block strictly
/// dominates, or precedes it within the same block.
pub fn eliminate_redundancies(func: &mut Function, results: &GvnResults) -> usize {
    let rpo = Rpo::compute(func);
    let domtree = DomTree::compute(func, &rpo);
    eliminate_redundancies_with(func, results, &domtree)
}

/// [`eliminate_redundancies`] against a caller-supplied dominator tree
/// (the pass manager's [`crate::pass::AnalysisManager`] cache). The tree
/// must be current for `func`'s CFG; instruction-level edits since it
/// was computed are fine because this rewrite consults block dominance
/// only.
pub fn eliminate_redundancies_with(
    func: &mut Function,
    results: &GvnResults,
    domtree: &DomTree,
) -> usize {
    let mut n = 0;
    for b in func.blocks().collect::<Vec<_>>() {
        for inst in func.block_insts(b).to_vec() {
            let Some(v) = func.inst_result(inst) else { continue };
            if matches!(
                func.kind(inst),
                InstKind::Const(_) | InstKind::Copy(_) | InstKind::Param(_)
            ) {
                continue;
            }
            let Some(leader) = results.leader_value(v) else { continue };
            if leader == v {
                continue;
            }
            let lb = func.def_block(leader);
            let dominates = if lb == b {
                let insts = func.block_insts(b);
                let lp = insts.iter().position(|&i| i == func.def(leader));
                let vp = insts.iter().position(|&i| i == inst);
                matches!((lp, vp), (Some(l), Some(x)) if l < x)
            } else {
                domtree.strictly_dominates(lb, b)
            };
            if dominates {
                func.replace_kind(inst, InstKind::Copy(leader));
                n += 1;
            }
        }
    }
    n
}

/// Rewrites every operand through chains of `copy` instructions, making
/// the copies dead. Returns the number of operands rewritten.
pub fn forward_copies(func: &mut Function) -> usize {
    // Resolve copy chains (bounded by the value count; chains are acyclic
    // because SSA definitions precede uses).
    let resolve = |func: &Function, mut v: Value| -> Value {
        let mut guard = 0;
        while let InstKind::Copy(src) = func.kind(func.def(v)) {
            v = *src;
            guard += 1;
            if guard > func.value_capacity() {
                break;
            }
        }
        v
    };
    let mut n = 0;
    for b in func.blocks().collect::<Vec<_>>() {
        for inst in func.block_insts(b).to_vec() {
            let mut kind = func.kind(inst).clone();
            let mut changed = false;
            kind.map_args(|a| {
                let r = resolve(func, a);
                if r != a {
                    changed = true;
                    n += 1;
                }
                r
            });
            if changed {
                func.replace_kind(inst, kind);
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_core::{run, GvnConfig};
    use pgvn_ir::{assert_verifies, HashedOpaques, Interpreter};
    use pgvn_lang::compile;
    use pgvn_ssa::SsaStyle;

    fn check_equiv(src: &str, args_sets: &[&[i64]], f2: &Function) {
        let f1 = compile(src, SsaStyle::Minimal).unwrap();
        for args in args_sets {
            let mut o1 = HashedOpaques::new(7);
            let mut o2 = HashedOpaques::new(7);
            let r1 = Interpreter::new(&f1).run(args, &mut o1).unwrap();
            let r2 = Interpreter::new(f2).run(args, &mut o2).unwrap();
            assert_eq!(r1, r2, "semantics changed for args {args:?}");
        }
    }

    #[test]
    fn uce_removes_dead_branch() {
        let src = "routine f(x) { if (1 > 2) { return 100; } return x; }";
        let mut f = compile(src, SsaStyle::Minimal).unwrap();
        let results = run(&f, &GvnConfig::full());
        let blocks_before = f.num_blocks();
        let report = eliminate_unreachable(&mut f, &results);
        assert!(report.branches_folded >= 1);
        assert!(report.blocks_removed >= 1);
        assert!(f.num_blocks() < blocks_before);
        assert_verifies(&f);
        check_equiv(src, &[&[5], &[-3]], &f);
    }

    #[test]
    fn uce_simplifies_phis() {
        let src = "routine f(x) { t = 3; if (0) { t = x; } return t; }";
        let mut f = compile(src, SsaStyle::Minimal).unwrap();
        let results = run(&f, &GvnConfig::full());
        let report = eliminate_unreachable(&mut f, &results);
        assert!(report.phis_simplified >= 1, "{report:?}");
        assert_verifies(&f);
        check_equiv(src, &[&[5]], &f);
    }

    #[test]
    fn constant_propagation_rewrites_to_consts() {
        let src = "routine f(x) { a = 2 + 3; b = a * 2; return b + x; }";
        let mut f = compile(src, SsaStyle::Minimal).unwrap();
        let results = run(&f, &GvnConfig::full());
        let n = propagate_constants(&mut f, &results);
        assert!(n >= 2, "propagated {n}");
        assert_verifies(&f);
        check_equiv(src, &[&[1], &[100]], &f);
    }

    #[test]
    fn redundancy_elimination_inserts_copies() {
        let src = "routine f(a, b) { x = a * b; y = a * b; return x + y; }";
        let mut f = compile(src, SsaStyle::Minimal).unwrap();
        let results = run(&f, &GvnConfig::full());
        let n = eliminate_redundancies(&mut f, &results);
        assert!(n >= 1, "replaced {n}");
        assert!(f.values().any(|v| matches!(f.kind(f.def(v)), InstKind::Copy(_))));
        assert_verifies(&f);
        check_equiv(src, &[&[3, 4], &[-2, 8]], &f);
    }

    #[test]
    fn redundancy_respects_dominance() {
        // The two computations are in sibling branches: neither dominates
        // the other, so no rewrite may happen across them.
        let src = "routine f(a, b, c) {
            if (c > 0) { x = a + b; return x; }
            y = a + b;
            return y;
        }";
        let mut f = compile(src, SsaStyle::Minimal).unwrap();
        let results = run(&f, &GvnConfig::full());
        let _ = eliminate_redundancies(&mut f, &results);
        assert_verifies(&f);
        pgvn_analysis::assert_ssa(&f);
        check_equiv(src, &[&[1, 2, 5], &[1, 2, -5]], &f);
    }

    #[test]
    fn forward_copies_resolves_chains() {
        let src = "routine f(a, b) { x = a * b; y = a * b; return x + y; }";
        let mut f = compile(src, SsaStyle::Minimal).unwrap();
        let results = run(&f, &GvnConfig::full());
        eliminate_redundancies(&mut f, &results);
        let n = forward_copies(&mut f);
        assert!(n >= 1);
        assert_verifies(&f);
        check_equiv(src, &[&[3, 4]], &f);
    }
}
