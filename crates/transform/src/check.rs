//! The static-analysis lint suite behind `pgvn check`.
//!
//! A [`Lint`] is one named check over a function; the [`LintRegistry`]
//! owns the suite and [`check_function`] drives it, reporting every
//! finding into the shared [`DiagnosticEngine`] from `pgvn-ir`. Lints
//! run on the **cached analyses** of the pipeline's [`AnalysisManager`]
//! — one RPO + dominator tree computation feeds the whole suite — and
//! the two GVN-backed lints reuse the paper's π/predication machinery
//! through an ordinary [`GvnResults`].
//!
//! The suite runs in three phases:
//!
//! 1. **structural** — `pgvn_ir::verify_into`, the verifier's checks
//!    with their stable codes. Any error here stops the run: the
//!    dominance and GVN phases assume structurally well-formed IR.
//! 2. **analysis lints** — SSA dominance-of-uses, φ-cycles with no
//!    concrete source, unreachable blocks, and type/width consistency,
//!    all on the cached [`CfgAnalyses`].
//! 3. **GVN-backed lints** (optional, skipped when any error-severity
//!    diagnostic exists) — predicate-derived constant branches and the
//!    missed-redundancy advisory over the final congruence partition.
//!
//! The code catalog, severities and JSON schema are documented in
//! `docs/CHECK.md`; `docs/ORACLE.md` describes how the fuzzer diffs
//! error-severity diagnostics across optimization.

use crate::pass::{AnalysisManager, CfgAnalyses};
use pgvn_core::{run_in_context, ClassId, GvnConfig, GvnContext, GvnResults};
use pgvn_ir::{
    verify_into, BinOp, Block, Diagnostic, DiagnosticEngine, EntityRef, Function, Inst, InstKind,
};
use std::collections::BTreeMap;

/// Stable codes for the lint-suite diagnostics (the structural codes
/// live in `pgvn_ir::diag::codes`). Documented in `docs/CHECK.md`;
/// renaming one is a breaking change.
pub mod codes {
    /// A use is not dominated by its definition (error).
    pub const SSA_USE_NOT_DOMINATED: &str = "ssa_use_not_dominated";
    /// A φ web never reaches a non-φ definition — use-before-def
    /// through a φ cycle (error).
    pub const PHI_CYCLE_NO_INIT: &str = "phi_cycle_no_init";
    /// A switch lists the same case value more than once (error).
    pub const SWITCH_DUPLICATE_CASE: &str = "switch_duplicate_case";
    /// A block is unreachable from the entry (warn).
    pub const UNREACHABLE_BLOCK: &str = "unreachable_block";
    /// A branch or switch is provably decided by predication (warn).
    pub const CONSTANT_BRANCH: &str = "constant_branch";
    /// A constant shift amount outside `0..=63`, masked at execution
    /// (advisory).
    pub const SHIFT_AMOUNT_OOB: &str = "shift_amount_oob";
    /// A computation congruent to a dominating one — a redundancy GVN
    /// would eliminate (advisory).
    pub const MISSED_REDUNDANCY: &str = "missed_redundancy";
}

/// Everything a lint may consult: the function, the cached CFG
/// analyses, the optional GVN results, and the engine to report into.
pub struct LintContext<'a, 'e> {
    /// The function under check.
    pub func: &'a Function,
    /// The cached RPO + dominator tree from the [`AnalysisManager`].
    pub cfg: &'a CfgAnalyses,
    /// GVN results, present only for the GVN-backed phase.
    pub gvn: Option<&'a GvnResults>,
    /// Where findings go.
    pub engine: &'e mut DiagnosticEngine,
}

/// One check in the suite. Implementations report zero or more
/// [`Diagnostic`]s per run; every code they emit must be stable and
/// listed by [`Lint::codes`].
pub trait Lint {
    /// The lint's stable snake_case name.
    fn name(&self) -> &'static str;
    /// Every diagnostic code this lint can emit.
    fn codes(&self) -> &'static [&'static str];
    /// `true` when the lint consumes [`LintContext::gvn`]; such lints
    /// are skipped when no GVN results are supplied.
    fn needs_gvn(&self) -> bool {
        false
    }
    /// Runs the check.
    fn run(&self, cx: &mut LintContext<'_, '_>);
}

/// The ordered lint suite.
#[derive(Default)]
pub struct LintRegistry {
    lints: Vec<Box<dyn Lint + Send + Sync>>,
}

impl LintRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The full built-in suite, in its canonical run order.
    pub fn full() -> Self {
        let mut reg = Self::new();
        reg.register(Box::new(DominanceLint));
        reg.register(Box::new(PhiCycleLint));
        reg.register(Box::new(UnreachableBlockLint));
        reg.register(Box::new(TypeWidthLint));
        reg.register(Box::new(ConstantBranchLint));
        reg.register(Box::new(MissedRedundancyLint));
        reg
    }

    /// Appends a lint to the suite.
    pub fn register(&mut self, lint: Box<dyn Lint + Send + Sync>) {
        self.lints.push(lint);
    }

    /// The registered lints, in run order.
    pub fn lints(&self) -> impl Iterator<Item = &(dyn Lint + Send + Sync)> {
        self.lints.iter().map(Box::as_ref)
    }

    /// Runs one phase of the suite: lints whose [`Lint::needs_gvn`]
    /// equals `gvn.is_some()`, against the supplied cached analyses.
    pub fn run_phase(
        &self,
        func: &Function,
        cfg: &CfgAnalyses,
        gvn: Option<&GvnResults>,
        engine: &mut DiagnosticEngine,
    ) {
        for lint in &self.lints {
            if lint.needs_gvn() != gvn.is_some() {
                continue;
            }
            let mut cx = LintContext { func, cfg, gvn, engine };
            lint.run(&mut cx);
        }
    }
}

/// Tuning for one [`check_function`] run.
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Configuration for the GVN-backed lints (`constant_branch`,
    /// `missed_redundancy`); `None` skips them — the cheap mode the
    /// fuzz oracle and the `--check` gates use, since every
    /// error-severity lint is GVN-free.
    pub gvn: Option<GvnConfig>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions { gvn: Some(GvnConfig::full()) }
    }
}

impl CheckOptions {
    /// The GVN-free subset: every error- and warn-severity lint except
    /// `constant_branch`, at a fraction of the cost.
    pub fn without_gvn() -> Self {
        CheckOptions { gvn: None }
    }
}

/// Runs the full suite against fresh scratch state. Convenience wrapper
/// over [`check_function_with`] for tests and one-shot callers.
pub fn check_function(func: &Function, opts: &CheckOptions) -> DiagnosticEngine {
    check_function_with(&mut GvnContext::new(), &mut AnalysisManager::new(), func, opts)
}

/// Runs the lint suite against the caller's reusable [`GvnContext`] and
/// [`AnalysisManager`] (the batch/serve hot path reuses both), returning
/// the engine with every finding sorted into presentation order.
pub fn check_function_with(
    ctx: &mut GvnContext,
    analyses: &mut AnalysisManager,
    func: &Function,
    opts: &CheckOptions,
) -> DiagnosticEngine {
    let mut engine = DiagnosticEngine::new();
    let reg = LintRegistry::full();
    // Phase 1: structural. Anything found here means the IR is not safe
    // to analyze further.
    verify_into(func, &mut engine);
    if engine.has_errors() {
        engine.sort();
        return engine;
    }
    // Phase 2: analysis lints on the cached RPO + dominator tree.
    {
        let cfg = analyses.cfg(func);
        reg.run_phase(func, cfg, None, &mut engine);
    }
    // Phase 3: GVN-backed lints — only on IR with no error diagnostics,
    // since the driver assumes valid SSA.
    if let Some(gvn_cfg) = &opts.gvn {
        if !engine.has_errors() {
            let results = run_in_context(ctx, func, gvn_cfg);
            let cfg = analyses.cfg(func);
            reg.run_phase(func, cfg, Some(&results), &mut engine);
        }
    }
    engine.sort();
    engine
}

/// Position of `inst` within its block's instruction list.
fn inst_pos(func: &Function, b: Block, inst: Inst) -> Option<usize> {
    func.block_insts(b).iter().position(|&i| i == inst)
}

/// Whether the definition `def` is available at `use_inst` in
/// `in_block`: same block and earlier (φs define "at the top"), or a
/// reachable strictly-dominating block. Mirrors `pgvn-analysis`'s SSA
/// verifier, against the cached analyses.
fn defined_before(
    func: &Function,
    cfg: &CfgAnalyses,
    def: Inst,
    use_inst: Inst,
    in_block: Block,
) -> bool {
    let def_block = func.inst_block(def);
    if def_block == in_block {
        match (inst_pos(func, in_block, def), inst_pos(func, in_block, use_inst)) {
            (Some(d), Some(u)) => d < u || func.kind(use_inst).is_phi(),
            _ => false,
        }
    } else {
        cfg.rpo.is_reachable(def_block) && cfg.domtree.strictly_dominates(def_block, in_block)
    }
}

/// SSA dominance-of-uses: every operand use dominated by its definition,
/// with φ arguments used at the edge that carries them. Reports **all**
/// violations, unlike the first-failure `pgvn_analysis::verify_ssa`.
struct DominanceLint;

impl Lint for DominanceLint {
    fn name(&self) -> &'static str {
        "ssa_dominance"
    }

    fn codes(&self) -> &'static [&'static str] {
        &[codes::SSA_USE_NOT_DOMINATED]
    }

    fn run(&self, cx: &mut LintContext<'_, '_>) {
        let (func, cfg) = (cx.func, cx.cfg);
        for &b in cfg.rpo.order() {
            for &inst in func.block_insts(b) {
                match func.kind(inst) {
                    InstKind::Phi(args) => {
                        for (i, &arg) in args.iter().enumerate() {
                            let edge = func.preds(b)[i];
                            let pred = func.edge_from(edge);
                            if !cfg.rpo.is_reachable(pred) {
                                continue;
                            }
                            let def_block = func.def_block(arg);
                            let ok = def_block == pred
                                || cfg.domtree.strictly_dominates(def_block, pred)
                                || (def_block == b && cfg.domtree.dominates(b, pred));
                            if !ok {
                                cx.engine.report(
                                    Diagnostic::error(
                                        codes::SSA_USE_NOT_DOMINATED,
                                        format!(
                                            "φ {inst} in {b}: argument {arg} (defined in \
                                             {def_block}) does not dominate predecessor {pred}"
                                        ),
                                    )
                                    .in_block(b)
                                    .at_inst(inst),
                                );
                            }
                        }
                    }
                    kind => {
                        kind.visit_args(|v| {
                            if !defined_before(func, cfg, func.def(v), inst, b) {
                                cx.engine.report(
                                    Diagnostic::error(
                                        codes::SSA_USE_NOT_DOMINATED,
                                        format!(
                                            "{inst} in {b} uses {v} before its definition \
                                             dominates it"
                                        ),
                                    )
                                    .in_block(b)
                                    .at_inst(inst),
                                );
                            }
                        });
                    }
                }
            }
        }
    }
}

/// Use-before-def through φ cycles: a φ whose value, chased through φ
/// arguments, never reaches a non-φ definition has no concrete source —
/// the degenerate webs dominance checking alone cannot see (they hide in
/// self-sustaining loops the reachable-dominance rules skip).
struct PhiCycleLint;

impl Lint for PhiCycleLint {
    fn name(&self) -> &'static str {
        "phi_cycle"
    }

    fn codes(&self) -> &'static [&'static str] {
        &[codes::PHI_CYCLE_NO_INIT]
    }

    fn run(&self, cx: &mut LintContext<'_, '_>) {
        let func = cx.func;
        // grounded[i] = instruction i is a φ known to (transitively)
        // draw from at least one non-φ definition.
        let mut grounded = vec![false; func.inst_capacity()];
        let mut phis: Vec<Inst> = Vec::new();
        for b in func.blocks() {
            for &inst in func.block_insts(b) {
                if func.kind(inst).is_phi() {
                    phis.push(inst);
                }
            }
        }
        // Fixpoint: ground a φ as soon as any argument is a non-φ or a
        // grounded φ. Terminates in ≤ |phis| rounds.
        let mut changed = true;
        while changed {
            changed = false;
            for &phi in &phis {
                if grounded[phi.index()] {
                    continue;
                }
                let InstKind::Phi(args) = func.kind(phi) else { unreachable!() };
                let has_source = args.iter().any(|&a| {
                    let def = func.def(a);
                    !func.kind(def).is_phi() || grounded[def.index()]
                });
                if has_source {
                    grounded[phi.index()] = true;
                    changed = true;
                }
            }
        }
        for &phi in &phis {
            if !grounded[phi.index()] {
                let b = func.inst_block(phi);
                cx.engine.report(
                    Diagnostic::error(
                        codes::PHI_CYCLE_NO_INIT,
                        format!(
                            "φ {phi} in {b} draws only from φs and never reaches a concrete \
                             definition (use-before-def through a φ cycle)"
                        ),
                    )
                    .in_block(b)
                    .at_inst(phi),
                );
            }
        }
    }
}

/// CFG hygiene: live blocks with no path from the entry. Legal IR — the
/// optimizer removes them — but usually a sign of a broken producer.
struct UnreachableBlockLint;

impl Lint for UnreachableBlockLint {
    fn name(&self) -> &'static str {
        "unreachable_blocks"
    }

    fn codes(&self) -> &'static [&'static str] {
        &[codes::UNREACHABLE_BLOCK]
    }

    fn run(&self, cx: &mut LintContext<'_, '_>) {
        for b in cx.func.blocks() {
            if !cx.cfg.rpo.is_reachable(b) {
                cx.engine.report(
                    Diagnostic::warn(
                        codes::UNREACHABLE_BLOCK,
                        format!("block {b} is unreachable from the entry"),
                    )
                    .in_block(b),
                );
            }
        }
    }
}

/// Type/width consistency in an untyped-`i64` IR: switch case values
/// must be unique (the documented `InstKind::Switch` invariant), and a
/// constant shift amount outside `0..=63` is almost certainly not what
/// the producer meant, even though execution masks it.
struct TypeWidthLint;

impl Lint for TypeWidthLint {
    fn name(&self) -> &'static str {
        "type_width"
    }

    fn codes(&self) -> &'static [&'static str] {
        &[codes::SWITCH_DUPLICATE_CASE, codes::SHIFT_AMOUNT_OOB]
    }

    fn run(&self, cx: &mut LintContext<'_, '_>) {
        let func = cx.func;
        for b in func.blocks() {
            for &inst in func.block_insts(b) {
                match func.kind(inst) {
                    InstKind::Switch(_, cases) => {
                        let mut seen: Vec<i64> = Vec::new();
                        let mut reported: Vec<i64> = Vec::new();
                        for &k in cases {
                            if seen.contains(&k) && !reported.contains(&k) {
                                reported.push(k);
                                cx.engine.report(
                                    Diagnostic::error(
                                        codes::SWITCH_DUPLICATE_CASE,
                                        format!(
                                            "switch {inst} in {b} lists case value {k} more \
                                             than once"
                                        ),
                                    )
                                    .in_block(b)
                                    .at_inst(inst),
                                );
                            }
                            seen.push(k);
                        }
                    }
                    InstKind::Binary(op @ (BinOp::Shl | BinOp::Shr), _, amt) => {
                        if let Some(k) = func.value_as_const(*amt) {
                            if !(0..=63).contains(&k) {
                                let masked = k as u32 & 63;
                                cx.engine.report(
                                    Diagnostic::advisory(
                                        codes::SHIFT_AMOUNT_OOB,
                                        format!(
                                            "{op} {inst} in {b} has constant shift amount {k} \
                                             outside 0..=63; execution masks it to {masked}"
                                        ),
                                    )
                                    .in_block(b)
                                    .at_inst(inst),
                                );
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Predicate-derived constant branches: the paper's π/predication
/// machinery (carried in [`GvnResults`] edge reachability and constant
/// values) proves a branch or switch always goes one way.
struct ConstantBranchLint;

impl Lint for ConstantBranchLint {
    fn name(&self) -> &'static str {
        "constant_branch"
    }

    fn codes(&self) -> &'static [&'static str] {
        &[codes::CONSTANT_BRANCH]
    }

    fn needs_gvn(&self) -> bool {
        true
    }

    fn run(&self, cx: &mut LintContext<'_, '_>) {
        let func = cx.func;
        let gvn = cx.gvn.expect("constant_branch runs in the GVN phase");
        for b in func.blocks() {
            if !gvn.is_block_reachable(b) {
                continue;
            }
            let Some(term) = func.terminator(b) else { continue };
            let scrutinee = match func.kind(term) {
                InstKind::Branch(v) | InstKind::Switch(v, _) => *v,
                _ => continue,
            };
            if let Some(k) = gvn.constant_value(scrutinee) {
                cx.engine.report(
                    Diagnostic::warn(
                        codes::CONSTANT_BRANCH,
                        format!(
                            "{term} in {b} branches on {scrutinee}, provably the constant {k}: \
                             only one successor is ever taken"
                        ),
                    )
                    .in_block(b)
                    .at_inst(term),
                );
                continue;
            }
            let total = func.succs(b).len();
            let dead = func.succs(b).iter().filter(|&&e| !gvn.is_edge_reachable(e)).count();
            if dead > 0 {
                cx.engine.report(
                    Diagnostic::warn(
                        codes::CONSTANT_BRANCH,
                        format!(
                            "{term} in {b}: predication proves {dead} of {total} outgoing \
                             edges never taken"
                        ),
                    )
                    .in_block(b)
                    .at_inst(term),
                );
            }
        }
    }
}

/// Missed-redundancy advisory over the final GVN partition: a reachable
/// computation congruent to one that dominates it is a redundancy the
/// GVN-driven rewrite would have eliminated.
struct MissedRedundancyLint;

impl MissedRedundancyLint {
    /// Real computations only: constants, params, copies, φs and opaques
    /// are either canonical or free.
    fn is_computation(kind: &InstKind) -> bool {
        matches!(kind, InstKind::Unary(..) | InstKind::Binary(..) | InstKind::Cmp(..))
    }
}

impl Lint for MissedRedundancyLint {
    fn name(&self) -> &'static str {
        "missed_redundancy"
    }

    fn codes(&self) -> &'static [&'static str] {
        &[codes::MISSED_REDUNDANCY]
    }

    fn needs_gvn(&self) -> bool {
        true
    }

    fn run(&self, cx: &mut LintContext<'_, '_>) {
        let func = cx.func;
        let gvn = cx.gvn.expect("missed_redundancy runs in the GVN phase");
        // Walk values in RPO so dominators are seen before what they
        // dominate; keep every prior member of a class as a candidate.
        let mut members: BTreeMap<ClassId, Vec<Inst>> = BTreeMap::new();
        for &b in cx.cfg.rpo.order() {
            if !gvn.is_block_reachable(b) {
                continue;
            }
            for &inst in func.block_insts(b) {
                if !Self::is_computation(func.kind(inst)) {
                    continue;
                }
                let Some(v) = func.inst_result(inst) else { continue };
                if gvn.is_value_unreachable(v) || gvn.constant_value(v).is_some() {
                    continue;
                }
                let class = gvn.class_of(v);
                let prior = members.entry(class).or_default();
                let redundant_with = prior.iter().copied().find(|&earlier| {
                    let eb = func.inst_block(earlier);
                    if eb == b {
                        matches!(
                            (inst_pos(func, b, earlier), inst_pos(func, b, inst)),
                            (Some(d), Some(u)) if d < u
                        )
                    } else {
                        cx.cfg.domtree.strictly_dominates(eb, b)
                    }
                });
                if let Some(earlier) = redundant_with {
                    cx.engine.report(
                        Diagnostic::advisory(
                            codes::MISSED_REDUNDANCY,
                            format!(
                                "{inst} in {b} recomputes the value of {earlier} in {} \
                                 (same congruence class): redundancy elimination would reuse it",
                                func.inst_block(earlier)
                            ),
                        )
                        .in_block(b)
                        .at_inst(inst),
                    );
                }
                prior.push(inst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_ir::{CmpOp, Severity};
    use pgvn_lang::compile;
    use pgvn_ssa::SsaStyle;

    fn checked(src: &str, opts: &CheckOptions) -> DiagnosticEngine {
        let f = compile(src, SsaStyle::Pruned).expect("compiles");
        check_function(&f, opts)
    }

    #[test]
    fn clean_routine_has_no_findings_without_gvn() {
        let e = checked(
            "routine f(a, b) { x = a + b; if (x > 0) { return x; } return b; }",
            &CheckOptions::without_gvn(),
        );
        assert!(e.is_empty(), "{:?}", e.diagnostics());
    }

    #[test]
    fn registry_lists_the_full_suite() {
        let reg = LintRegistry::full();
        let names: Vec<&str> = reg.lints().map(|l| l.name()).collect();
        assert_eq!(
            names,
            [
                "ssa_dominance",
                "phi_cycle",
                "unreachable_blocks",
                "type_width",
                "constant_branch",
                "missed_redundancy"
            ]
        );
        for lint in reg.lints() {
            assert!(!lint.codes().is_empty(), "{} lists its codes", lint.name());
        }
    }

    #[test]
    fn missed_redundancy_flags_textbook_input() {
        let e = checked(
            "routine f(a, b) { x = a + b; y = a + b; return x * y; }",
            &CheckOptions::default(),
        );
        assert!(
            e.diagnostics().iter().any(|d| d.code() == codes::MISSED_REDUNDANCY),
            "{:?}",
            e.diagnostics()
        );
        assert_eq!(e.error_count(), 0);
    }

    #[test]
    fn constant_branch_flags_predicated_decision() {
        // The π machinery knows a == 5 inside the guarded region, so the
        // inner comparison folds and the inner branch is decided.
        let e = checked(
            "routine f(a) { if (a == 5) { if (a == 5) { return 1; } return 2; } return 0; }",
            &CheckOptions::default(),
        );
        assert!(
            e.diagnostics()
                .iter()
                .any(|d| d.code() == codes::CONSTANT_BRANCH && d.severity() == Severity::Warn),
            "{:?}",
            e.diagnostics()
        );
    }

    #[test]
    fn dominance_violation_is_an_error_with_location() {
        // A value defined on one arm used on the other: structurally
        // fine, dominance-broken.
        let mut f = Function::new("bad", 1);
        let entry = f.entry();
        let (t, e) = (f.add_block(), f.add_block());
        let zero = f.iconst(entry, 0);
        let c = f.cmp(entry, CmpOp::Gt, f.param(0), zero);
        f.set_branch(entry, c, t, e);
        let x = f.iconst(t, 1);
        f.set_return(t, x);
        f.set_return(e, x);
        assert!(pgvn_ir::verify(&f).is_ok());
        let engine = check_function(&f, &CheckOptions::without_gvn());
        let d = engine
            .diagnostics()
            .iter()
            .find(|d| d.code() == codes::SSA_USE_NOT_DOMINATED)
            .expect("dominance violation found");
        assert_eq!(d.severity(), Severity::Error);
        assert_eq!(d.block(), Some(e));
    }

    #[test]
    fn phi_cycle_without_source_is_an_error() {
        // An unreachable self-loop whose φ feeds only itself: dominance
        // checking skips it (unreachable), the φ-cycle lint does not.
        let mut f = Function::new("cycle", 0);
        let entry = f.entry();
        let zero = f.iconst(entry, 0);
        f.set_return(entry, zero);
        let u = f.add_block();
        let phi = f.append_phi(u);
        f.set_jump(u, u);
        f.set_phi_args(phi, vec![phi]);
        assert!(pgvn_ir::verify(&f).is_ok(), "{:?}", pgvn_ir::verify(&f));
        let engine = check_function(&f, &CheckOptions::without_gvn());
        assert!(
            engine.diagnostics().iter().any(|d| d.code() == codes::PHI_CYCLE_NO_INIT),
            "{:?}",
            engine.diagnostics()
        );
        assert!(
            engine.diagnostics().iter().any(|d| d.code() == codes::UNREACHABLE_BLOCK),
            "the self-loop is also unreachable"
        );
    }

    #[test]
    fn structural_errors_stop_the_analysis_phases() {
        let mut f = Function::new("broken", 0);
        let _ = f.iconst(f.entry(), 1);
        let engine = check_function(&f, &CheckOptions::default());
        assert!(engine.has_errors());
        assert!(engine
            .diagnostics()
            .iter()
            .all(|d| d.code() == pgvn_ir::diag::codes::BLOCK_NO_TERMINATOR));
    }
}
