//! Performance metrics: lock-free counters, gauges, and fixed-bucket
//! histograms.
//!
//! Where [`crate::TraceEvent`]s narrate *what happened* and the
//! [`crate::Profiler`] times *how long phases took*, a
//! [`MetricsRegistry`] aggregates *how much work* the hot layers did:
//! worklist dynamics, hash-cons hit rates, inference-cache behavior,
//! degradation-ladder rung occupancy, and batch-engine shard balance.
//! Every metric in the catalog ([`Metric`]) has a fixed kind, a stable
//! snake_case name, and a unit, so snapshots are machine-readable
//! without a schema side-channel (`pgvn perf` embeds them in
//! `BENCH_*.json`).
//!
//! # Lock freedom and sharing
//!
//! All slots are relaxed [`AtomicU64`]s, so recording takes `&self`: a
//! registry can be shared across the parallel batch engine's worker
//! threads without a mutex, and a recording site is one atomic add.
//! There is no cross-metric consistency guarantee — a snapshot taken
//! while workers run is a per-slot-atomic view, which is all the
//! consumers (aggregate reports) need.
//!
//! # Zero cost when off
//!
//! Instrumented code records through [`crate::Telemetry`], whose
//! metrics handle is an `Option<&MetricsRegistry>`: with the default
//! [`crate::Telemetry::off`] every recording call is one untaken
//! branch, mirroring the event-sink design. The
//! `telemetry_overhead/gvn_metrics_off` pair in
//! `crates/bench/benches/micro.rs` guards the claim.
//!
//! # Determinism
//!
//! Counters and histograms are additive and gauges merge by max, so a
//! snapshot merged from per-worker registries is independent of
//! scheduling — *provided the recorded quantities are*. Metrics whose
//! value depends on worker/context history or wall clock (capacity
//! growth, shard sizes, wait times) are marked not [`Metric::stable`];
//! [`MetricsSnapshot::stable_only`] filters to the
//! scheduling-independent subset used by byte-identical batch reports.

use crate::json::{JsonValue, JsonWriter};
use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets per histogram: powers of two. Bucket `0` holds zero, bucket
/// `i` (1 ≤ i < 31) holds `2^(i-1) ..= 2^i - 1`, and the last bucket
/// holds everything from `2^30` up.
pub const NUM_BUCKETS: usize = 32;

/// The shape of one metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonically increasing sum.
    Counter,
    /// A high-water mark (merged by maximum).
    Gauge,
    /// A fixed-bucket distribution with count and sum.
    Histogram,
}

/// The metric catalog. Every metric the system can record, with a
/// stable name, kind, and unit — see `docs/OBSERVABILITY.md` for the
/// full table of where each is emitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Analysis runs completed (driver `finish`).
    DriverRuns,
    /// RPO passes to convergence, per run (driver `finish`).
    DriverPasses,
    /// Touch operations performed (driver `finish`).
    DriverTouches,
    /// Touched instructions actually processed (driver `finish`).
    DriverInstsProcessed,
    /// TOUCHED-instruction worklist size at each pass start.
    DriverTouchedInstsPass,
    /// Congruence-class merges per pass.
    DriverMergesPass,
    /// Expression lookups answered by the hash-cons table.
    InternerHits,
    /// Expression lookups that interned a fresh expression.
    InternerMisses,
    /// Distinct expressions interned, per run.
    InternerExprs,
    /// Hash-cons table capacity growths (rehashes). Zero once a session
    /// context is warm — scheduling-dependent in a batch.
    InternerTableGrowths,
    /// Value-inference queries answered from the per-block memo.
    ViCacheHits,
    /// Value-inference queries that missed the memo and walked.
    ViCacheMisses,
    /// Epoch bumps invalidating the whole value-inference memo.
    ViCacheEvictions,
    /// Pass-manager pass executions. Depends on pipeline length and
    /// retry history, reported by `pgvn perf` — timing domain.
    PassRuns,
    /// CFG-analysis requests answered from the pass-manager cache.
    /// Depends on which passes ran before — timing domain.
    AnalysisCacheHits,
    /// CFG-analysis requests that recomputed (cold or invalidated).
    AnalysisCacheMisses,
    /// Expressions inserted into predecessors by the `pre` pass.
    PreInserted,
    /// Partially redundant expressions replaced by φ-merges (`pre`).
    PreEliminated,
    /// Dead instructions removed by the `cleanup` pass.
    CleanupRemoved,
    /// Committed degradation-ladder rung index, per routine (occupancy).
    LadderRung,
    /// Ladder rungs that failed and were rolled back.
    LadderRollbacks,
    /// `GvnContext::prepare` calls (one per analysis run).
    ContextPrepares,
    /// Prepares that reused every capacity (no allocation growth).
    /// Depends on what the context ran before — scheduling-dependent.
    ContextPrepareReuses,
    /// High-water value-slot capacity of a prepared context.
    ContextValueSlots,
    /// Routines processed by the batch engine.
    BatchRoutines,
    /// Routines processed per worker (shard balance distribution).
    BatchWorkerRoutines,
    /// Nanoseconds the batch merger waited on worker joins.
    BatchMergeWaitNanos,
    /// Per-routine wall-clock nanoseconds in the batch engine.
    BatchRoutineNanos,
    /// Fuzz-campaign iterations in the deterministic report
    /// (`iterations_run` — independent of worker count).
    FuzzIterations,
    /// Instructions across all generated routines in a fuzz campaign.
    FuzzInsts,
    /// Failures in the deterministic fuzz report.
    FuzzFailures,
    /// Shrink predicate evaluations across a campaign's failures
    /// (shrinking runs post-merge, so the count is deterministic).
    FuzzShrinkAttempts,
    /// Iterations processed per campaign worker (shard balance).
    FuzzWorkerIterations,
    /// Wall-clock nanoseconds for a whole fuzz campaign.
    FuzzCampaignNanos,
    /// Iterations processed past the early-stop cutoff and discarded by
    /// the rank-ordering merge (parallel overshoot).
    FuzzOverrunIterations,
    /// Well-formed optimization requests accepted by `pgvn serve`
    /// (before admission control — sheds are counted separately).
    ServeRequests,
    /// Malformed serve traffic: unparseable frames, invalid UTF-8, bad
    /// request JSON, oversized frames.
    ServeProtocolErrors,
    /// Serve requests whose ladder rolled back at least one rung before
    /// committing (the committed record is weaker than asked).
    ServeDegraded,
    /// Panics absorbed by the degradation ladder while processing serve
    /// requests.
    ServeAbsorbedPanics,
    /// Requests refused with a shed response because the admission
    /// queue was full. Load-dependent — timing domain.
    ServeShed,
    /// Requests whose explicit deadline expired while queued (answered
    /// with an expired response, never run). Load-dependent.
    ServeExpired,
    /// High-water admission-queue depth. Load-dependent.
    ServeQueueDepth,
    /// Per-request wall-clock nanoseconds (dequeue to response).
    ServeRequestNanos,
    /// Per-request nanoseconds spent waiting in the admission queue.
    ServeQueueWaitNanos,
    /// Error-severity diagnostics reported by the lint suite
    /// (`pgvn check` and the `--check` gates).
    CheckDiagnosticsError,
    /// Warn-severity diagnostics reported by the lint suite.
    CheckDiagnosticsWarn,
    /// Advisory-severity diagnostics reported by the lint suite.
    CheckDiagnosticsAdvisory,
    /// Per-function wall-clock nanoseconds spent in the lint suite.
    CheckNanos,
}

/// All metrics, in catalog (and snapshot) order.
pub const METRICS: [Metric; 48] = [
    Metric::DriverRuns,
    Metric::DriverPasses,
    Metric::DriverTouches,
    Metric::DriverInstsProcessed,
    Metric::DriverTouchedInstsPass,
    Metric::DriverMergesPass,
    Metric::InternerHits,
    Metric::InternerMisses,
    Metric::InternerExprs,
    Metric::InternerTableGrowths,
    Metric::ViCacheHits,
    Metric::ViCacheMisses,
    Metric::ViCacheEvictions,
    Metric::PassRuns,
    Metric::AnalysisCacheHits,
    Metric::AnalysisCacheMisses,
    Metric::PreInserted,
    Metric::PreEliminated,
    Metric::CleanupRemoved,
    Metric::LadderRung,
    Metric::LadderRollbacks,
    Metric::ContextPrepares,
    Metric::ContextPrepareReuses,
    Metric::ContextValueSlots,
    Metric::BatchRoutines,
    Metric::BatchWorkerRoutines,
    Metric::BatchMergeWaitNanos,
    Metric::BatchRoutineNanos,
    Metric::FuzzIterations,
    Metric::FuzzInsts,
    Metric::FuzzFailures,
    Metric::FuzzShrinkAttempts,
    Metric::FuzzWorkerIterations,
    Metric::FuzzCampaignNanos,
    Metric::FuzzOverrunIterations,
    Metric::ServeRequests,
    Metric::ServeProtocolErrors,
    Metric::ServeDegraded,
    Metric::ServeAbsorbedPanics,
    Metric::ServeShed,
    Metric::ServeExpired,
    Metric::ServeQueueDepth,
    Metric::ServeRequestNanos,
    Metric::ServeQueueWaitNanos,
    Metric::CheckDiagnosticsError,
    Metric::CheckDiagnosticsWarn,
    Metric::CheckDiagnosticsAdvisory,
    Metric::CheckNanos,
];

impl Metric {
    /// Stable snake_case name used in snapshots and `BENCH_*.json`.
    pub fn name(self) -> &'static str {
        match self {
            Metric::DriverRuns => "driver_runs",
            Metric::DriverPasses => "driver_passes",
            Metric::DriverTouches => "driver_touches",
            Metric::DriverInstsProcessed => "driver_insts_processed",
            Metric::DriverTouchedInstsPass => "driver_touched_insts_pass",
            Metric::DriverMergesPass => "driver_merges_pass",
            Metric::InternerHits => "interner_hits",
            Metric::InternerMisses => "interner_misses",
            Metric::InternerExprs => "interner_exprs",
            Metric::InternerTableGrowths => "interner_table_growths",
            Metric::ViCacheHits => "vi_cache_hits",
            Metric::ViCacheMisses => "vi_cache_misses",
            Metric::ViCacheEvictions => "vi_cache_evictions",
            Metric::PassRuns => "pass_runs",
            Metric::AnalysisCacheHits => "analysis_cache_hits",
            Metric::AnalysisCacheMisses => "analysis_cache_misses",
            Metric::PreInserted => "pre_inserted",
            Metric::PreEliminated => "pre_eliminated",
            Metric::CleanupRemoved => "cleanup_removed",
            Metric::LadderRung => "ladder_rung",
            Metric::LadderRollbacks => "ladder_rollbacks",
            Metric::ContextPrepares => "context_prepares",
            Metric::ContextPrepareReuses => "context_prepare_reuses",
            Metric::ContextValueSlots => "context_value_slots",
            Metric::BatchRoutines => "batch_routines",
            Metric::BatchWorkerRoutines => "batch_worker_routines",
            Metric::BatchMergeWaitNanos => "batch_merge_wait_nanos",
            Metric::BatchRoutineNanos => "batch_routine_nanos",
            Metric::FuzzIterations => "fuzz_iterations",
            Metric::FuzzInsts => "fuzz_insts",
            Metric::FuzzFailures => "fuzz_failures",
            Metric::FuzzShrinkAttempts => "fuzz_shrink_attempts",
            Metric::FuzzWorkerIterations => "fuzz_worker_iterations",
            Metric::FuzzCampaignNanos => "fuzz_campaign_nanos",
            Metric::FuzzOverrunIterations => "fuzz_overrun_iterations",
            Metric::ServeRequests => "serve_requests",
            Metric::ServeProtocolErrors => "serve_protocol_errors",
            Metric::ServeDegraded => "serve_degraded",
            Metric::ServeAbsorbedPanics => "serve_absorbed_panics",
            Metric::ServeShed => "serve_shed",
            Metric::ServeExpired => "serve_expired",
            Metric::ServeQueueDepth => "serve_queue_depth",
            Metric::ServeRequestNanos => "serve_request_nanos",
            Metric::ServeQueueWaitNanos => "serve_queue_wait_nanos",
            Metric::CheckDiagnosticsError => "check_diagnostics_error",
            Metric::CheckDiagnosticsWarn => "check_diagnostics_warn",
            Metric::CheckDiagnosticsAdvisory => "check_diagnostics_advisory",
            Metric::CheckNanos => "check_nanos",
        }
    }

    /// The metric's shape.
    pub fn kind(self) -> MetricKind {
        match self {
            Metric::DriverRuns
            | Metric::DriverTouches
            | Metric::DriverInstsProcessed
            | Metric::InternerHits
            | Metric::InternerMisses
            | Metric::InternerTableGrowths
            | Metric::ViCacheHits
            | Metric::ViCacheMisses
            | Metric::ViCacheEvictions
            | Metric::PassRuns
            | Metric::AnalysisCacheHits
            | Metric::AnalysisCacheMisses
            | Metric::PreInserted
            | Metric::PreEliminated
            | Metric::CleanupRemoved
            | Metric::LadderRollbacks
            | Metric::ContextPrepares
            | Metric::ContextPrepareReuses
            | Metric::BatchRoutines
            | Metric::BatchMergeWaitNanos
            | Metric::FuzzIterations
            | Metric::FuzzInsts
            | Metric::FuzzFailures
            | Metric::FuzzShrinkAttempts
            | Metric::FuzzCampaignNanos
            | Metric::FuzzOverrunIterations
            | Metric::ServeRequests
            | Metric::ServeProtocolErrors
            | Metric::ServeDegraded
            | Metric::ServeAbsorbedPanics
            | Metric::ServeShed
            | Metric::ServeExpired
            | Metric::CheckDiagnosticsError
            | Metric::CheckDiagnosticsWarn
            | Metric::CheckDiagnosticsAdvisory => MetricKind::Counter,
            Metric::ContextValueSlots | Metric::ServeQueueDepth => MetricKind::Gauge,
            Metric::DriverPasses
            | Metric::DriverTouchedInstsPass
            | Metric::DriverMergesPass
            | Metric::InternerExprs
            | Metric::LadderRung
            | Metric::BatchWorkerRoutines
            | Metric::BatchRoutineNanos
            | Metric::FuzzWorkerIterations
            | Metric::ServeRequestNanos
            | Metric::ServeQueueWaitNanos
            | Metric::CheckNanos => MetricKind::Histogram,
        }
    }

    /// The unit of the recorded quantity.
    pub fn unit(self) -> &'static str {
        match self {
            Metric::DriverRuns => "runs",
            Metric::DriverPasses => "passes",
            Metric::DriverTouches => "touches",
            Metric::DriverInstsProcessed | Metric::DriverTouchedInstsPass => "insts",
            Metric::DriverMergesPass => "merges",
            Metric::InternerHits | Metric::InternerMisses => "lookups",
            Metric::InternerExprs => "exprs",
            Metric::InternerTableGrowths => "rehashes",
            Metric::ViCacheHits | Metric::ViCacheMisses => "queries",
            Metric::ViCacheEvictions => "epochs",
            Metric::PassRuns => "passes",
            Metric::AnalysisCacheHits | Metric::AnalysisCacheMisses => "requests",
            Metric::PreInserted | Metric::PreEliminated | Metric::CleanupRemoved => "insts",
            Metric::LadderRung => "rung",
            Metric::LadderRollbacks => "rollbacks",
            Metric::ContextPrepares | Metric::ContextPrepareReuses => "prepares",
            Metric::ContextValueSlots => "slots",
            Metric::BatchRoutines | Metric::BatchWorkerRoutines => "routines",
            Metric::BatchMergeWaitNanos | Metric::BatchRoutineNanos | Metric::FuzzCampaignNanos => {
                "nanos"
            }
            Metric::FuzzIterations
            | Metric::FuzzWorkerIterations
            | Metric::FuzzOverrunIterations => "iterations",
            Metric::FuzzInsts => "insts",
            Metric::FuzzFailures => "failures",
            Metric::FuzzShrinkAttempts => "attempts",
            Metric::ServeRequests
            | Metric::ServeProtocolErrors
            | Metric::ServeDegraded
            | Metric::ServeShed
            | Metric::ServeExpired => "requests",
            Metric::ServeAbsorbedPanics => "panics",
            Metric::ServeQueueDepth => "requests",
            Metric::ServeRequestNanos | Metric::ServeQueueWaitNanos | Metric::CheckNanos => "nanos",
            Metric::CheckDiagnosticsError
            | Metric::CheckDiagnosticsWarn
            | Metric::CheckDiagnosticsAdvisory => "diagnostics",
        }
    }

    /// `true` when the metric's value is fully determined by the inputs
    /// processed, independent of scheduling, context history, and wall
    /// clock. Only stable metrics may appear in byte-identical batch
    /// reports; the rest belong to the timing domain (`pgvn perf`).
    pub fn stable(self) -> bool {
        !matches!(
            self,
            Metric::PassRuns
                | Metric::AnalysisCacheHits
                | Metric::AnalysisCacheMisses
                | Metric::InternerTableGrowths
                | Metric::ContextPrepareReuses
                | Metric::ContextValueSlots
                | Metric::BatchRoutines
                | Metric::BatchWorkerRoutines
                | Metric::BatchMergeWaitNanos
                | Metric::BatchRoutineNanos
                | Metric::FuzzWorkerIterations
                | Metric::FuzzCampaignNanos
                | Metric::FuzzOverrunIterations
                | Metric::ServeShed
                | Metric::ServeExpired
                | Metric::ServeQueueDepth
                | Metric::ServeRequestNanos
                | Metric::ServeQueueWaitNanos
                | Metric::CheckNanos
        )
    }

    fn index(self) -> usize {
        METRICS.iter().position(|m| *m == self).unwrap()
    }
}

/// Maps an observed value to its histogram bucket: `0 → 0`, otherwise
/// the value's bit length, clipped to the overflow bucket.
pub fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
}

/// The inclusive upper bound of bucket `i` (`None` for the overflow
/// bucket).
pub fn bucket_bound(i: usize) -> Option<u64> {
    match i {
        0 => Some(0),
        _ if i < NUM_BUCKETS - 1 => Some((1u64 << i) - 1),
        _ => None,
    }
}

/// A lock-free registry of every metric in the catalog.
///
/// Recording methods take `&self` (relaxed atomics), so a registry can
/// be attached to a [`crate::Telemetry`] handle per thread or shared
/// across the batch engine's workers.
#[derive(Debug)]
pub struct MetricsRegistry {
    /// Counter total / gauge high-water mark / histogram observation
    /// count, one slot per metric.
    scalars: Vec<AtomicU64>,
    /// Histogram value sums (zero and unused for scalar metrics).
    sums: Vec<AtomicU64>,
    /// Histogram buckets, `NUM_BUCKETS` per metric.
    buckets: Vec<AtomicU64>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A registry with every slot at zero.
    pub fn new() -> Self {
        MetricsRegistry {
            scalars: (0..METRICS.len()).map(|_| AtomicU64::new(0)).collect(),
            sums: (0..METRICS.len()).map(|_| AtomicU64::new(0)).collect(),
            buckets: (0..METRICS.len() * NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, m: Metric, n: u64) {
        debug_assert_eq!(m.kind(), MetricKind::Counter);
        self.scalars[m.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Raises a gauge to at least `v`.
    #[inline]
    pub fn gauge_max(&self, m: Metric, v: u64) {
        debug_assert_eq!(m.kind(), MetricKind::Gauge);
        self.scalars[m.index()].fetch_max(v, Ordering::Relaxed);
    }

    /// Records one observation of `v` into a histogram.
    #[inline]
    pub fn observe(&self, m: Metric, v: u64) {
        debug_assert_eq!(m.kind(), MetricKind::Histogram);
        let i = m.index();
        self.scalars[i].fetch_add(1, Ordering::Relaxed);
        self.sums[i].fetch_add(v, Ordering::Relaxed);
        self.buckets[i * NUM_BUCKETS + bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Resets every slot to zero.
    pub fn clear(&self) {
        for s in &self.scalars {
            s.store(0, Ordering::Relaxed);
        }
        for s in &self.sums {
            s.store(0, Ordering::Relaxed);
        }
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// A plain-data copy of the current values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            scalars: self.scalars.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
            sums: self.sums.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
            buckets: self.buckets.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`]: plain `u64`s, so it
/// can be diffed, merged, filtered, and serialized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    scalars: Vec<u64>,
    sums: Vec<u64>,
    buckets: Vec<u64>,
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot {
            scalars: vec![0; METRICS.len()],
            sums: vec![0; METRICS.len()],
            buckets: vec![0; METRICS.len() * NUM_BUCKETS],
        }
    }
}

impl MetricsSnapshot {
    /// The counter total or gauge value of `m` (histograms: the
    /// observation count — see [`MetricsSnapshot::count`]).
    pub fn value(&self, m: Metric) -> u64 {
        self.scalars[m.index()]
    }

    /// The number of observations recorded into histogram `m`.
    pub fn count(&self, m: Metric) -> u64 {
        self.scalars[m.index()]
    }

    /// The sum of observations recorded into histogram `m`.
    pub fn sum(&self, m: Metric) -> u64 {
        self.sums[m.index()]
    }

    /// The population of bucket `i` of histogram `m`.
    pub fn bucket(&self, m: Metric, i: usize) -> u64 {
        self.buckets[m.index() * NUM_BUCKETS + i]
    }

    /// `true` when nothing was recorded for `m`.
    pub fn is_zero(&self, m: Metric) -> bool {
        self.scalars[m.index()] == 0 && self.sums[m.index()] == 0
    }

    /// Folds `other` into `self`: counters and histograms add
    /// (saturating), gauges take the maximum. Associative and
    /// commutative, so per-worker snapshots merge order-independently.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for m in METRICS {
            let i = m.index();
            match m.kind() {
                MetricKind::Gauge => self.scalars[i] = self.scalars[i].max(other.scalars[i]),
                _ => self.scalars[i] = self.scalars[i].saturating_add(other.scalars[i]),
            }
            self.sums[i] = self.sums[i].saturating_add(other.sums[i]);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b = b.saturating_add(*o);
        }
    }

    /// The change since `earlier`: counters and histograms subtract
    /// (saturating — `earlier` must be an older snapshot of the same
    /// registry), gauges keep the current value.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for m in METRICS {
            let i = m.index();
            if m.kind() != MetricKind::Gauge {
                out.scalars[i] = self.scalars[i].saturating_sub(earlier.scalars[i]);
            }
            out.sums[i] = self.sums[i].saturating_sub(earlier.sums[i]);
        }
        for (b, e) in out.buckets.iter_mut().zip(&earlier.buckets) {
            *b = b.saturating_sub(*e);
        }
        out
    }

    /// A copy with every non-[`Metric::stable`] metric zeroed — the
    /// scheduling-independent subset safe for byte-identical reports.
    pub fn stable_only(&self) -> MetricsSnapshot {
        let mut out = self.clone();
        for m in METRICS {
            if !m.stable() {
                let i = m.index();
                out.scalars[i] = 0;
                out.sums[i] = 0;
                out.buckets[i * NUM_BUCKETS..(i + 1) * NUM_BUCKETS].fill(0);
            }
        }
        out
    }

    /// One JSON object per recorded metric: counters/gauges as
    /// `{"kind","unit","value"}`, histograms as
    /// `{"kind","unit","count","sum","buckets":[[bound,n],...]}` with
    /// only populated buckets listed (`null` bound = overflow).
    /// Untouched metrics are omitted.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        for m in METRICS {
            if self.is_zero(m) {
                continue;
            }
            let mut inner = JsonWriter::object();
            inner.field_str("unit", m.unit());
            match m.kind() {
                MetricKind::Counter => {
                    inner.field_str("kind", "counter").field_u64("value", self.value(m));
                }
                MetricKind::Gauge => {
                    inner.field_str("kind", "gauge").field_u64("value", self.value(m));
                }
                MetricKind::Histogram => {
                    inner
                        .field_str("kind", "histogram")
                        .field_u64("count", self.count(m))
                        .field_u64("sum", self.sum(m));
                    let mut buckets = String::from("[");
                    let mut first = true;
                    for i in 0..NUM_BUCKETS {
                        let n = self.bucket(m, i);
                        if n == 0 {
                            continue;
                        }
                        if !first {
                            buckets.push(',');
                        }
                        first = false;
                        match bucket_bound(i) {
                            Some(bound) => buckets.push_str(&format!("[{bound},{n}]")),
                            None => buckets.push_str(&format!("[null,{n}]")),
                        }
                    }
                    buckets.push(']');
                    inner.field_raw("buckets", &buckets);
                }
            }
            w.field_raw(m.name(), &inner.finish());
        }
        w.finish()
    }

    /// Parses the output of [`MetricsSnapshot::to_json`]. Unknown metric
    /// names are ignored (forward compatibility); known metrics must
    /// have the right shape.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
        let v = crate::json::parse(text)?;
        let mut out = MetricsSnapshot::default();
        for m in METRICS {
            let Some(entry) = v.get(m.name()) else { continue };
            let i = m.index();
            match m.kind() {
                MetricKind::Counter | MetricKind::Gauge => {
                    out.scalars[i] = entry
                        .get("value")
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("metric `{}`: missing value", m.name()))?;
                }
                MetricKind::Histogram => {
                    out.scalars[i] = entry
                        .get("count")
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("metric `{}`: missing count", m.name()))?;
                    out.sums[i] = entry
                        .get("sum")
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("metric `{}`: missing sum", m.name()))?;
                    let Some(JsonValue::Arr(pairs)) = entry.get("buckets") else {
                        return Err(format!("metric `{}`: missing buckets", m.name()));
                    };
                    for pair in pairs {
                        let JsonValue::Arr(kv) = pair else {
                            return Err(format!("metric `{}`: bad bucket entry", m.name()));
                        };
                        let (bound, n) = match (kv.first(), kv.get(1).and_then(JsonValue::as_u64)) {
                            (Some(b), Some(n)) => (b, n),
                            _ => return Err(format!("metric `{}`: bad bucket pair", m.name())),
                        };
                        let idx = match bound {
                            JsonValue::Null => NUM_BUCKETS - 1,
                            b => bucket_index(
                                b.as_u64()
                                    .ok_or_else(|| format!("metric `{}`: bad bound", m.name()))?,
                            ),
                        };
                        out.buckets[i * NUM_BUCKETS + idx] = n;
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_consistent() {
        for (i, m) in METRICS.iter().enumerate() {
            assert_eq!(m.index(), i);
            assert!(!m.name().is_empty());
            assert!(!m.unit().is_empty());
        }
        let mut names: Vec<_> = METRICS.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), METRICS.len(), "metric names are unique");
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1 << 29), 30);
        assert_eq!(bucket_index((1 << 30) - 1), 30);
        assert_eq!(bucket_index(1 << 30), NUM_BUCKETS - 1, "2^30 overflows");
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        // Bounds agree with the index mapping: a bucket's inclusive
        // upper bound maps back into that bucket, and the next value up
        // maps into the next.
        for i in 0..NUM_BUCKETS - 1 {
            let bound = bucket_bound(i).unwrap();
            assert_eq!(bucket_index(bound), i, "bound {bound} of bucket {i}");
            assert_eq!(bucket_index(bound + 1), i + 1);
        }
        assert_eq!(bucket_bound(NUM_BUCKETS - 1), None, "overflow bucket is unbounded");
    }

    #[test]
    fn counters_gauges_histograms_record() {
        let reg = MetricsRegistry::new();
        reg.add(Metric::InternerHits, 3);
        reg.add(Metric::InternerHits, 4);
        reg.gauge_max(Metric::ContextValueSlots, 10);
        reg.gauge_max(Metric::ContextValueSlots, 7);
        reg.observe(Metric::DriverPasses, 2);
        reg.observe(Metric::DriverPasses, 3);
        let s = reg.snapshot();
        assert_eq!(s.value(Metric::InternerHits), 7);
        assert_eq!(s.value(Metric::ContextValueSlots), 10, "gauge keeps the max");
        assert_eq!(s.count(Metric::DriverPasses), 2);
        assert_eq!(s.sum(Metric::DriverPasses), 5);
        assert_eq!(s.bucket(Metric::DriverPasses, 2), 2, "2 and 3 share bucket 2");
        reg.clear();
        assert_eq!(reg.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn merge_is_order_independent() {
        let mk = |hits: u64, slots: u64, pass: u64| {
            let r = MetricsRegistry::new();
            r.add(Metric::InternerHits, hits);
            r.gauge_max(Metric::ContextValueSlots, slots);
            r.observe(Metric::DriverPasses, pass);
            r.snapshot()
        };
        let (a, b, c) = (mk(1, 5, 2), mk(10, 3, 9), mk(100, 8, 300));
        let fold = |order: [&MetricsSnapshot; 3]| {
            let mut out = MetricsSnapshot::default();
            for s in order {
                out.merge(s);
            }
            out
        };
        let abc = fold([&a, &b, &c]);
        assert_eq!(abc, fold([&c, &a, &b]));
        assert_eq!(abc, fold([&b, &c, &a]));
        assert_eq!(abc.value(Metric::InternerHits), 111);
        assert_eq!(abc.value(Metric::ContextValueSlots), 8);
        assert_eq!(abc.count(Metric::DriverPasses), 3);
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_gauges() {
        let reg = MetricsRegistry::new();
        reg.add(Metric::InternerHits, 5);
        reg.observe(Metric::DriverPasses, 4);
        reg.gauge_max(Metric::ContextValueSlots, 9);
        let before = reg.snapshot();
        reg.add(Metric::InternerHits, 2);
        reg.observe(Metric::DriverPasses, 1);
        let d = reg.snapshot().delta(&before);
        assert_eq!(d.value(Metric::InternerHits), 2);
        assert_eq!(d.count(Metric::DriverPasses), 1);
        assert_eq!(d.bucket(Metric::DriverPasses, 1), 1);
        assert_eq!(d.bucket(Metric::DriverPasses, 3), 0, "earlier observation removed");
        assert_eq!(d.value(Metric::ContextValueSlots), 9, "gauge keeps current value");
    }

    #[test]
    fn stable_only_zeroes_timing_domain_metrics() {
        let reg = MetricsRegistry::new();
        reg.add(Metric::InternerHits, 5);
        reg.add(Metric::InternerTableGrowths, 2);
        reg.observe(Metric::BatchRoutineNanos, 1234);
        let s = reg.snapshot().stable_only();
        assert_eq!(s.value(Metric::InternerHits), 5);
        assert!(s.is_zero(Metric::InternerTableGrowths));
        assert!(s.is_zero(Metric::BatchRoutineNanos));
    }

    #[test]
    fn json_round_trips() {
        let reg = MetricsRegistry::new();
        reg.add(Metric::InternerHits, 42);
        reg.gauge_max(Metric::ContextValueSlots, 17);
        reg.observe(Metric::LadderRung, 0);
        reg.observe(Metric::LadderRung, 3);
        reg.observe(Metric::BatchRoutineNanos, u64::from(u32::MAX));
        let snap = reg.snapshot();
        let json = snap.to_json();
        let round = MetricsSnapshot::from_json(&json).unwrap();
        assert_eq!(round, snap);
        // Untouched metrics are omitted from the text entirely.
        assert!(!json.contains("driver_runs"));
        assert!(MetricsSnapshot::from_json("{}").unwrap().is_zero(Metric::InternerHits));
        assert!(MetricsSnapshot::from_json("nope").is_err());
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        reg.add(Metric::DriverTouches, 1);
                        reg.observe(Metric::DriverMergesPass, 2);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.value(Metric::DriverTouches), 4000);
        assert_eq!(snap.count(Metric::DriverMergesPass), 4000);
        assert_eq!(snap.bucket(Metric::DriverMergesPass, 2), 4000);
    }
}
