//! Hand-rolled JSON writing and a small reader.
//!
//! The build environment is offline, so no serde: [`JsonWriter`] emits
//! one object with correctly escaped strings, and [`parse`] reads a
//! value back — enough for round-trip tests and for consumers that want
//! to recompute the paper's per-instruction averages from a trace.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` per RFC 8259 into `out`.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// An incremental writer for one flat-ish JSON object.
///
/// ```
/// let mut w = pgvn_telemetry::json::JsonWriter::object();
/// w.field_str("kind", "pass");
/// w.field_u64("n", 3);
/// assert_eq!(w.finish(), r#"{"kind":"pass","n":3}"#);
/// ```
#[derive(Debug)]
pub struct JsonWriter {
    buf: String,
    needs_comma: bool,
}

impl JsonWriter {
    /// Starts an object.
    pub fn object() -> Self {
        JsonWriter { buf: String::from("{"), needs_comma: false }
    }

    fn key(&mut self, name: &str) {
        if self.needs_comma {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(name, &mut self.buf);
        self.buf.push_str("\":");
        self.needs_comma = true;
    }

    /// Writes a string field.
    pub fn field_str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        self.buf.push('"');
        escape_into(value, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Writes an unsigned integer field.
    pub fn field_u64(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Writes a signed integer field.
    pub fn field_i64(&mut self, name: &str, value: i64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Writes a float field (JSON has no NaN/Inf; they become null).
    pub fn field_f64(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Writes a boolean field.
    pub fn field_bool(&mut self, name: &str, value: bool) -> &mut Self {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Writes a field whose value is pre-rendered JSON.
    pub fn field_raw(&mut self, name: &str, json: &str) -> &mut Self {
        self.key(name);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A parsed JSON value (reader side; used by tests and consumers).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, kept as f64 (integers round-trip exactly to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value at `key`, when this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0 && n.fract() == 0.0).map(|n| n as u64)
    }

    /// This value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one JSON value from `input`.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or("unterminated escape")? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("short \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogate pairs are not emitted by the
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 character.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes() {
        let mut w = JsonWriter::object();
        w.field_str("k", "a\"b\\c\nd\te\u{1}");
        let s = w.finish();
        assert_eq!(s, "{\"k\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
        let v = parse(&s).unwrap();
        assert_eq!(v.get("k").unwrap().as_str().unwrap(), "a\"b\\c\nd\te\u{1}");
    }

    #[test]
    fn writer_types_round_trip() {
        let mut w = JsonWriter::object();
        w.field_u64("u", u64::MAX >> 12)
            .field_i64("i", -42)
            .field_f64("f", 0.25)
            .field_bool("b", true)
            .field_raw("arr", "[1,2,3]");
        let v = parse(&w.finish()).unwrap();
        assert_eq!(v.get("u").unwrap().as_u64(), Some(u64::MAX >> 12));
        assert_eq!(v.get("i").unwrap().as_f64(), Some(-42.0));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(0.25));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(
            v.get("arr").unwrap(),
            &JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Num(2.0), JsonValue::Num(3.0)])
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn nested_structures_parse() {
        let v = parse(r#"{"a":[{"b":null},2.5],"c":{"d":false}}"#).unwrap();
        assert_eq!(v.get("a").map(|a| matches!(a, JsonValue::Arr(x) if x.len() == 2)), Some(true));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_bool(), Some(false));
    }
}
