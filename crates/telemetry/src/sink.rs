//! Trace sinks: where [`TraceEvent`]s go.
//!
//! The driver is generic over a `&mut dyn TraceSink`; the default
//! [`NullSink`] is never invoked because the [`crate::Telemetry`]
//! handle guards every emit site with a cheap `is_tracing` check, so
//! untraced runs pay only an untaken branch.

use crate::event::TraceEvent;
use std::io::{self, Write};

/// A consumer of trace events.
pub trait TraceSink {
    /// Receives one event. Called only while tracing is enabled.
    fn event(&mut self, ev: &TraceEvent);

    /// Flushes any buffered output. Default: no-op.
    fn flush(&mut self) {}
}

/// Discards everything. The default when tracing is off.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn event(&mut self, _ev: &TraceEvent) {}
}

/// Buffers events in memory; used by tests to assert on sequences.
#[derive(Clone, Debug, Default)]
pub struct MemorySink {
    events: Vec<TraceEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// All events received so far, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drops all buffered events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl TraceSink for MemorySink {
    fn event(&mut self, ev: &TraceEvent) {
        self.events.push(ev.clone());
    }
}

/// Writes one human-readable line per event.
#[derive(Debug)]
pub struct TextSink<W: Write> {
    out: W,
}

impl<W: Write> TextSink<W> {
    /// A text sink writing to `out`.
    pub fn new(out: W) -> Self {
        Self { out }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl TextSink<io::Stderr> {
    /// A text sink on standard error, as enabled by `--trace`.
    pub fn stderr() -> Self {
        Self::new(io::stderr())
    }
}

impl<W: Write> TraceSink for TextSink<W> {
    fn event(&mut self, ev: &TraceEvent) {
        // Trace output is best-effort: a closed pipe must not abort the
        // analysis it is observing.
        let _ = writeln!(self.out, "[pgvn] {ev}");
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Writes one JSON object per line (JSON Lines).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
}

impl<W: Write> JsonlSink<W> {
    /// A JSONL sink writing to `out`.
    pub fn new(out: W) -> Self {
        Self { out }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn event(&mut self, ev: &TraceEvent) {
        let _ = writeln!(self.out, "{}", ev.to_json());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Fans one event stream out to several sinks (e.g. `--trace` plus
/// `--trace-json` in the same run).
#[derive(Default)]
pub struct TeeSink<'a> {
    sinks: Vec<&'a mut dyn TraceSink>,
}

impl<'a> TeeSink<'a> {
    /// An empty tee.
    pub fn new() -> Self {
        Self { sinks: Vec::new() }
    }

    /// Adds a downstream sink.
    pub fn push(&mut self, sink: &'a mut dyn TraceSink) {
        self.sinks.push(sink);
    }

    /// Number of downstream sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// True if there are no downstream sinks.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl TraceSink for TeeSink<'_> {
    fn event(&mut self, ev: &TraceEvent) {
        for sink in &mut self.sinks {
            sink.event(ev);
        }
    }

    fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceEvent {
        TraceEvent::RunEnd { passes: 2, converged: true }
    }

    #[test]
    fn memory_sink_records_in_order() {
        let mut sink = MemorySink::new();
        sink.event(&TraceEvent::RunStart { routine: "f".into(), num_insts: 1, num_blocks: 1 });
        sink.event(&sample());
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.events()[1], sample());
        sink.clear();
        assert!(sink.events().is_empty());
    }

    #[test]
    fn text_sink_writes_prefixed_lines() {
        let mut sink = TextSink::new(Vec::new());
        sink.event(&sample());
        let out = String::from_utf8(sink.into_inner()).unwrap();
        assert!(out.starts_with("[pgvn] "), "{out}");
        assert!(out.ends_with('\n'), "{out}");
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.event(&sample());
        sink.event(&sample());
        let out = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = crate::json::parse(line).unwrap();
            assert_eq!(v.get("event").unwrap().as_str(), Some("run_end"));
        }
    }

    #[test]
    fn tee_sink_duplicates_events() {
        let mut a = MemorySink::new();
        let mut b = MemorySink::new();
        let mut tee = TeeSink::new();
        tee.push(&mut a);
        tee.push(&mut b);
        assert_eq!(tee.len(), 2);
        tee.event(&sample());
        tee.flush();
        drop(tee);
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
    }
}
