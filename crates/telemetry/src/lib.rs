//! Observability for the predicated sparse GVN driver.
//!
//! This crate provides the instrumentation layer that the analysis
//! (`pgvn-core`), the rewrite pipeline (`pgvn-transform`), and the CLI
//! share: structured [`TraceEvent`]s describing each fixed-point pass,
//! pluggable [`TraceSink`]s (text, JSON Lines, in-memory), and a
//! [`Profiler`] of per-[`Phase`] wall-clock timers.
//!
//! It depends on nothing — not even `pgvn-ir` — so it sits at the very
//! bottom of the workspace graph. Events carry display strings and raw
//! counts instead of entity types.
//!
//! # Zero cost when off
//!
//! Instrumented code holds a `&mut Telemetry` and guards every emit
//! site with [`Telemetry::is_tracing`] / [`Telemetry::clock`]. With the
//! default [`Telemetry::off`] handle both are an untaken branch: event
//! payloads are built inside closures that never run, and no `Instant`
//! is ever read. See `crates/bench/benches/micro.rs` for the guardrail.
//!
//! ```
//! use pgvn_telemetry::{MemorySink, Telemetry, TraceEvent};
//!
//! let mut sink = MemorySink::new();
//! let mut tel = Telemetry::with_sink(&mut sink);
//! tel.emit(|| TraceEvent::RunEnd { passes: 2, converged: true });
//! drop(tel);
//! assert_eq!(sink.events().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod sink;

pub use event::TraceEvent;
pub use metrics::{Metric, MetricKind, MetricsRegistry, MetricsSnapshot, METRICS, NUM_BUCKETS};
pub use profile::{Phase, Profiler, PHASES};
pub use sink::{JsonlSink, MemorySink, NullSink, TeeSink, TextSink, TraceSink};

use std::time::Instant;

/// The telemetry handle threaded through the driver and pipeline.
///
/// Bundles an optional trace sink with an optional profiler so
/// instrumented code carries a single parameter. Constructed once per
/// run by the caller ([`Telemetry::off`] for untraced runs) and
/// borrowed mutably for the run's duration; the profiler is read back
/// afterwards via [`Telemetry::profiler`].
#[derive(Default)]
pub struct Telemetry<'a> {
    sink: Option<&'a mut dyn TraceSink>,
    profiler: Option<Profiler>,
    metrics: Option<&'a MetricsRegistry>,
}

impl<'a> Telemetry<'a> {
    /// A disabled handle: no events, no timers, no overhead.
    pub fn off() -> Telemetry<'a> {
        Telemetry { sink: None, profiler: None, metrics: None }
    }

    /// A handle that forwards events to `sink`. Profiling stays off
    /// until [`Telemetry::enable_profiling`].
    pub fn with_sink(sink: &'a mut dyn TraceSink) -> Telemetry<'a> {
        Telemetry { sink: Some(sink), profiler: None, metrics: None }
    }

    /// Attaches a metrics registry: recording calls below start landing
    /// in `reg`. The registry is shared (`&`, lock-free), so multiple
    /// handles — one per batch worker — can feed the same registry.
    pub fn attach_metrics(&mut self, reg: &'a MetricsRegistry) {
        self.metrics = Some(reg);
    }

    /// True if a metrics registry is attached.
    #[inline]
    pub fn is_metering(&self) -> bool {
        self.metrics.is_some()
    }

    /// Adds `n` to counter `m` when a registry is attached; one untaken
    /// branch otherwise.
    #[inline]
    pub fn count(&self, m: Metric, n: u64) {
        if let Some(reg) = self.metrics {
            reg.add(m, n);
        }
    }

    /// Records one observation of `v` into histogram `m` when a
    /// registry is attached.
    #[inline]
    pub fn observe(&self, m: Metric, v: u64) {
        if let Some(reg) = self.metrics {
            reg.observe(m, v);
        }
    }

    /// Raises gauge `m` to at least `v` when a registry is attached.
    #[inline]
    pub fn gauge_max(&self, m: Metric, v: u64) {
        if let Some(reg) = self.metrics {
            reg.gauge_max(m, v);
        }
    }

    /// Turns on the per-phase wall-clock timers.
    pub fn enable_profiling(&mut self) {
        if self.profiler.is_none() {
            self.profiler = Some(Profiler::new());
        }
    }

    /// True if a sink is attached (events will be delivered).
    #[inline]
    pub fn is_tracing(&self) -> bool {
        self.sink.is_some()
    }

    /// True if phase timers are running.
    #[inline]
    pub fn is_profiling(&self) -> bool {
        self.profiler.is_some()
    }

    /// True if tracing, profiling, or metering is on.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.is_tracing() || self.is_profiling() || self.is_metering()
    }

    /// Delivers an event to the sink, if one is attached. The closure
    /// runs only when tracing, so payload construction (string
    /// formatting, counting) costs nothing otherwise.
    #[inline]
    pub fn emit(&mut self, make: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.event(&make());
        }
    }

    /// Starts a span clock, or `None` when not profiling. Pair with
    /// [`Telemetry::record`]:
    ///
    /// ```ignore
    /// let t0 = tel.clock();
    /// expensive_phase();
    /// tel.record(Phase::SymbolicEval, t0);
    /// ```
    #[inline]
    pub fn clock(&self) -> Option<Instant> {
        if self.profiler.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Accumulates the time since `start` (from [`Telemetry::clock`])
    /// into `phase`. No-op when `start` is `None`.
    #[inline]
    pub fn record(&mut self, phase: Phase, start: Option<Instant>) {
        if let (Some(profiler), Some(t0)) = (self.profiler.as_mut(), start) {
            profiler.record(phase, t0);
        }
    }

    /// Like [`Telemetry::record`], but also emits a
    /// [`TraceEvent::Phase`] event. For one-shot phases (construction,
    /// rewrite stages) where per-span events are useful.
    pub fn record_phase(&mut self, phase: Phase, start: Option<Instant>) {
        if let Some(t0) = start {
            let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if let Some(profiler) = self.profiler.as_mut() {
                profiler.add_nanos(phase, nanos);
            }
            self.emit(|| TraceEvent::Phase { phase, nanos });
        }
    }

    /// The accumulated profile, if profiling was enabled.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// Flushes the attached sink, if any.
    pub fn flush(&mut self) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_never_runs_payload_closures() {
        let mut tel = Telemetry::off();
        assert!(!tel.is_active());
        tel.emit(|| unreachable!("payload built while tracing is off"));
        assert!(tel.clock().is_none());
        tel.record(Phase::Cfg, None);
        assert!(tel.profiler().is_none());
    }

    #[test]
    fn sink_handle_delivers_events() {
        let mut sink = MemorySink::new();
        {
            let mut tel = Telemetry::with_sink(&mut sink);
            assert!(tel.is_tracing());
            assert!(!tel.is_profiling());
            tel.emit(|| TraceEvent::RunEnd { passes: 1, converged: true });
            tel.flush();
        }
        assert_eq!(sink.events(), &[TraceEvent::RunEnd { passes: 1, converged: true }]);
    }

    #[test]
    fn profiling_accumulates_and_reads_back() {
        let mut tel = Telemetry::off();
        tel.enable_profiling();
        let t0 = tel.clock();
        assert!(t0.is_some());
        tel.record(Phase::DomTree, t0);
        assert_eq!(tel.profiler().unwrap().spans(Phase::DomTree), 1);
        // enable_profiling is idempotent: re-enabling keeps the data.
        tel.enable_profiling();
        assert_eq!(tel.profiler().unwrap().spans(Phase::DomTree), 1);
    }

    #[test]
    fn record_phase_emits_event_and_accumulates() {
        let mut sink = MemorySink::new();
        {
            let mut tel = Telemetry::with_sink(&mut sink);
            tel.enable_profiling();
            let t0 = tel.clock();
            tel.record_phase(Phase::Uce, t0);
            assert_eq!(tel.profiler().unwrap().spans(Phase::Uce), 1);
        }
        assert_eq!(sink.events().len(), 1);
        assert!(matches!(sink.events()[0], TraceEvent::Phase { phase: Phase::Uce, .. }));
    }

    #[test]
    fn metrics_attach_and_record_through_handle() {
        let reg = MetricsRegistry::new();
        let mut tel = Telemetry::off();
        // Off handle: recording calls are no-ops, not errors.
        tel.count(Metric::DriverRuns, 1);
        tel.observe(Metric::DriverPasses, 3);
        tel.gauge_max(Metric::ContextValueSlots, 5);
        assert!(!tel.is_metering());
        tel.attach_metrics(&reg);
        assert!(tel.is_metering());
        assert!(tel.is_active());
        tel.count(Metric::DriverRuns, 1);
        tel.observe(Metric::DriverPasses, 3);
        tel.gauge_max(Metric::ContextValueSlots, 5);
        let s = reg.snapshot();
        assert_eq!(s.value(Metric::DriverRuns), 1);
        assert_eq!(s.count(Metric::DriverPasses), 1);
        assert_eq!(s.value(Metric::ContextValueSlots), 5);
    }

    #[test]
    fn tracing_without_profiling_has_no_clock() {
        let mut sink = NullSink;
        let tel = Telemetry::with_sink(&mut sink);
        assert!(tel.is_tracing());
        assert!(tel.clock().is_none());
    }
}
