//! Structured trace events for the sparse GVN fixed point.
//!
//! Events are deliberately flat and std-only: entity references are
//! carried as display strings (`"v3"`, `"b2"`, `"i7"`) and raw counts,
//! so the telemetry crate sits below `pgvn-ir` in the dependency graph
//! and any consumer can decode a trace without the compiler's types.

use crate::json::JsonWriter;
use crate::profile::Phase;
use std::fmt;

/// One telemetry event from an analysis or transform run.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// An analysis run began.
    RunStart {
        /// Routine name.
        routine: String,
        /// Live instructions.
        num_insts: u64,
        /// Blocks in the CFG.
        num_blocks: u64,
    },
    /// An RPO pass over the routine began.
    PassStart {
        /// 1-based pass number.
        pass: u32,
        /// Instructions on the touched worklist at pass start.
        touched_insts: u64,
        /// Blocks on the touched worklist at pass start.
        touched_blocks: u64,
    },
    /// An RPO pass completed; deltas cover only this pass.
    PassEnd {
        /// 1-based pass number.
        pass: u32,
        /// Touched instructions actually processed this pass.
        insts_processed: u64,
        /// Touch operations performed this pass (worklist growth).
        touches: u64,
        /// Values that moved between congruence classes this pass.
        class_merges: u64,
        /// Blocks proven reachable so far (cumulative).
        reachable_blocks: u64,
        /// Edges proven reachable so far (cumulative).
        reachable_edges: u64,
        /// Instructions still touched at pass end (next pass's worklist).
        touched_insts: u64,
        /// Blocks still touched at pass end.
        touched_blocks: u64,
        /// Values currently marked changed.
        changed_values: u64,
        /// Whether anything changed during this pass.
        any_change: bool,
        /// Wall-clock nanoseconds of the pass (0 unless profiling).
        nanos: u64,
    },
    /// A value's class moved during a late pass (possible oscillation);
    /// emitted once per re-evaluation that changed a class after the
    /// pass threshold, with the defining expressions before and after.
    Oscillation {
        /// Pass number when the movement happened.
        pass: u32,
        /// The re-evaluated instruction.
        inst: String,
        /// The instruction's block.
        block: String,
        /// Class and leader expression before re-evaluation.
        before: String,
        /// Class and leader expression after re-evaluation.
        after: String,
    },
    /// A one-shot phase completed (construction phases, rewrite stages).
    Phase {
        /// The completed phase.
        phase: Phase,
        /// Wall-clock nanoseconds spent.
        nanos: u64,
    },
    /// An analysis run completed.
    RunEnd {
        /// Total RPO passes.
        passes: u32,
        /// Whether the fixed point was reached under the pass cap.
        converged: bool,
    },
    /// A degradation-ladder rung finished (resilient pipeline): either
    /// the rung's output was committed, or it failed with a classified
    /// error and the pipeline rolled back to the pre-rewrite clone.
    Rung {
        /// 0-based rung index (0 = full predicated GVN).
        rung: u32,
        /// Rung name (`"full"`, `"practical"`, `"pessimistic"`,
        /// `"identity"`).
        name: String,
        /// `"committed"` or `"failed"`.
        status: String,
        /// Failure classification (error kind + message); empty when
        /// committed.
        detail: String,
    },
    /// A degradation-ladder rung failed and its rewrites were rolled
    /// back to the pre-rewrite clone. Follows the corresponding
    /// `Rung { status: "failed" }` event and makes the restore itself —
    /// previously silent — visible in the trace.
    Rollback {
        /// 0-based index of the rung that was rolled back.
        rung: u32,
        /// Name of the rung that was rolled back.
        name: String,
        /// Classified error kind that triggered the rollback.
        error: String,
        /// Human-readable failure detail.
        detail: String,
    },
    /// A `GvnContext` was prepared for a run: scratch state wiped and
    /// resized to the routine. Reports whether every capacity was
    /// already large enough (the warm-context fast path).
    ContextPrepare {
        /// Runs this context has served, including this one.
        runs: u64,
        /// `true` when no scratch structure had to grow.
        reused_capacity: bool,
        /// Value-slot capacity after preparation.
        value_slots: u64,
        /// Interner expression capacity after preparation.
        interner_exprs: u64,
    },
}

impl TraceEvent {
    /// The event's kind tag, as used in the JSON encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. } => "run_start",
            TraceEvent::PassStart { .. } => "pass_start",
            TraceEvent::PassEnd { .. } => "pass_end",
            TraceEvent::Oscillation { .. } => "oscillation",
            TraceEvent::Phase { .. } => "phase",
            TraceEvent::RunEnd { .. } => "run_end",
            TraceEvent::Rung { .. } => "rung",
            TraceEvent::Rollback { .. } => "rollback",
            TraceEvent::ContextPrepare { .. } => "context_prepare",
        }
    }

    /// Renders the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_str("event", self.kind());
        match self {
            TraceEvent::RunStart { routine, num_insts, num_blocks } => {
                w.field_str("routine", routine)
                    .field_u64("num_insts", *num_insts)
                    .field_u64("num_blocks", *num_blocks);
            }
            TraceEvent::PassStart { pass, touched_insts, touched_blocks } => {
                w.field_u64("pass", u64::from(*pass))
                    .field_u64("touched_insts", *touched_insts)
                    .field_u64("touched_blocks", *touched_blocks);
            }
            TraceEvent::PassEnd {
                pass,
                insts_processed,
                touches,
                class_merges,
                reachable_blocks,
                reachable_edges,
                touched_insts,
                touched_blocks,
                changed_values,
                any_change,
                nanos,
            } => {
                w.field_u64("pass", u64::from(*pass))
                    .field_u64("insts_processed", *insts_processed)
                    .field_u64("touches", *touches)
                    .field_u64("class_merges", *class_merges)
                    .field_u64("reachable_blocks", *reachable_blocks)
                    .field_u64("reachable_edges", *reachable_edges)
                    .field_u64("touched_insts", *touched_insts)
                    .field_u64("touched_blocks", *touched_blocks)
                    .field_u64("changed_values", *changed_values)
                    .field_bool("any_change", *any_change)
                    .field_u64("nanos", *nanos);
            }
            TraceEvent::Oscillation { pass, inst, block, before, after } => {
                w.field_u64("pass", u64::from(*pass))
                    .field_str("inst", inst)
                    .field_str("block", block)
                    .field_str("before", before)
                    .field_str("after", after);
            }
            TraceEvent::Phase { phase, nanos } => {
                w.field_str("phase", phase.name()).field_u64("nanos", *nanos);
            }
            TraceEvent::RunEnd { passes, converged } => {
                w.field_u64("passes", u64::from(*passes)).field_bool("converged", *converged);
            }
            TraceEvent::Rung { rung, name, status, detail } => {
                w.field_u64("rung", u64::from(*rung))
                    .field_str("name", name)
                    .field_str("status", status)
                    .field_str("detail", detail);
            }
            TraceEvent::Rollback { rung, name, error, detail } => {
                w.field_u64("rung", u64::from(*rung))
                    .field_str("name", name)
                    .field_str("error", error)
                    .field_str("detail", detail);
            }
            TraceEvent::ContextPrepare { runs, reused_capacity, value_slots, interner_exprs } => {
                w.field_u64("runs", *runs)
                    .field_bool("reused_capacity", *reused_capacity)
                    .field_u64("value_slots", *value_slots)
                    .field_u64("interner_exprs", *interner_exprs);
            }
        }
        w.finish()
    }
}

impl fmt::Display for TraceEvent {
    /// The human-readable one-line form used by the text sink.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::RunStart { routine, num_insts, num_blocks } => {
                write!(f, "run {routine}: {num_insts} insts, {num_blocks} blocks")
            }
            TraceEvent::PassStart { pass, touched_insts, touched_blocks } => {
                write!(f, "pass {pass}: worklist {touched_insts} insts, {touched_blocks} blocks")
            }
            TraceEvent::PassEnd {
                pass,
                insts_processed,
                class_merges,
                reachable_blocks,
                reachable_edges,
                touched_insts,
                touched_blocks,
                any_change,
                ..
            } => {
                write!(
                    f,
                    "pass {pass} done: processed {insts_processed}, merges {class_merges}, \
                     reach {reachable_blocks}b/{reachable_edges}e, \
                     remaining {touched_insts}i/{touched_blocks}b{}",
                    if *any_change { ", changed" } else { ", stable" }
                )
            }
            TraceEvent::Oscillation { pass, inst, block, before, after } => {
                write!(f, "pass {pass}: {inst} in {block} moved {before} -> {after}")
            }
            TraceEvent::Phase { phase, nanos } => {
                write!(f, "phase {}: {:.3} ms", phase.name(), *nanos as f64 / 1.0e6)
            }
            TraceEvent::RunEnd { passes, converged } => {
                write!(
                    f,
                    "run done: {passes} passes, {}",
                    if *converged { "converged" } else { "PASS CAP HIT" }
                )
            }
            TraceEvent::Rung { rung, name, status, detail } => {
                write!(f, "rung {rung} ({name}): {status}")?;
                if !detail.is_empty() {
                    write!(f, " — {detail}")?;
                }
                Ok(())
            }
            TraceEvent::Rollback { rung, name, error, detail } => {
                write!(f, "rollback rung {rung} ({name}): {error}")?;
                if !detail.is_empty() {
                    write!(f, " — {detail}")?;
                }
                Ok(())
            }
            TraceEvent::ContextPrepare { runs, reused_capacity, value_slots, interner_exprs } => {
                write!(
                    f,
                    "context prepare: run {runs}, {} (slots {value_slots}, exprs {interner_exprs})",
                    if *reused_capacity { "capacity reused" } else { "capacity grew" }
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn events_encode_as_json_objects() {
        let ev = TraceEvent::PassEnd {
            pass: 2,
            insts_processed: 10,
            touches: 4,
            class_merges: 3,
            reachable_blocks: 5,
            reachable_edges: 6,
            touched_insts: 1,
            touched_blocks: 0,
            changed_values: 2,
            any_change: true,
            nanos: 1234,
        };
        let v = parse(&ev.to_json()).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("pass_end"));
        assert_eq!(v.get("pass").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("class_merges").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("any_change").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn oscillation_strings_are_escaped() {
        let ev = TraceEvent::Oscillation {
            pass: 70,
            inst: "i3".into(),
            block: "b1".into(),
            before: "c2=\"quoted\"".into(),
            after: "c4=φ[b1](v1, v2)".into(),
        };
        let v = parse(&ev.to_json()).unwrap();
        assert_eq!(v.get("before").unwrap().as_str(), Some("c2=\"quoted\""));
        assert_eq!(v.get("after").unwrap().as_str(), Some("c4=φ[b1](v1, v2)"));
    }

    #[test]
    fn rung_events_encode_and_display() {
        let ev = TraceEvent::Rung {
            rung: 1,
            name: "practical".into(),
            status: "failed".into(),
            detail: "internal_invariant: injected fault at site eval".into(),
        };
        let v = parse(&ev.to_json()).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("rung"));
        assert_eq!(v.get("rung").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("name").unwrap().as_str(), Some("practical"));
        assert_eq!(v.get("status").unwrap().as_str(), Some("failed"));
        assert!(ev.to_string().contains("injected fault"));
        let ok = TraceEvent::Rung {
            rung: 0,
            name: "full".into(),
            status: "committed".into(),
            detail: String::new(),
        };
        assert!(!ok.to_string().contains('—'));
    }

    #[test]
    fn rollback_events_encode_and_display() {
        let ev = TraceEvent::Rollback {
            rung: 0,
            name: "full".into(),
            error: "escaped_panic".into(),
            detail: "index out of bounds".into(),
        };
        let v = parse(&ev.to_json()).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("rollback"));
        assert_eq!(v.get("rung").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("error").unwrap().as_str(), Some("escaped_panic"));
        assert!(ev.to_string().contains("rollback rung 0"));
        assert!(ev.to_string().contains("index out of bounds"));
    }

    #[test]
    fn context_prepare_events_encode_and_display() {
        let ev = TraceEvent::ContextPrepare {
            runs: 7,
            reused_capacity: true,
            value_slots: 128,
            interner_exprs: 256,
        };
        let v = parse(&ev.to_json()).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("context_prepare"));
        assert_eq!(v.get("runs").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("reused_capacity").unwrap().as_bool(), Some(true));
        assert!(ev.to_string().contains("capacity reused"));
        let cold = TraceEvent::ContextPrepare {
            runs: 1,
            reused_capacity: false,
            value_slots: 64,
            interner_exprs: 0,
        };
        assert!(cold.to_string().contains("capacity grew"));
    }

    #[test]
    fn display_is_one_line() {
        let ev = TraceEvent::RunStart { routine: "f".into(), num_insts: 9, num_blocks: 3 };
        let s = ev.to_string();
        assert!(!s.contains('\n'));
        assert!(s.contains("9 insts"), "{s}");
    }
}
