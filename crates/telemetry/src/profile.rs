//! Phase timers for the GVN driver and rewrite pipeline.
//!
//! A [`Profiler`] is a fixed table of monotonic nanosecond accumulators,
//! one per [`Phase`]. Phases may nest (symbolic evaluation includes the
//! inference walks it triggers), so the reported times are *inclusive*
//! and do not sum to wall clock.

use crate::json::JsonWriter;
use std::fmt;
use std::time::Instant;

/// A named span of work inside an analysis or transform run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// CFG construction: successor/predecessor maps, RPO, ranks.
    Cfg,
    /// Dominator and post-dominator tree construction.
    DomTree,
    /// SSA construction from the AST (measured by the CLI front end).
    SsaBuild,
    /// All RPO fixed-point passes together.
    Passes,
    /// Symbolic evaluation of touched instructions (includes nested
    /// inference time).
    SymbolicEval,
    /// Congruence finding and class moves.
    CongruenceMerge,
    /// Predicate inference walks up the dominator tree.
    PredicateInference,
    /// Value inference walks up the dominator tree.
    ValueInference,
    /// Block-predicate computation and φ-predication.
    PhiPredication,
    /// Outgoing-edge reachability processing.
    EdgeProcessing,
    /// Unreachable-code elimination (rewrite).
    Uce,
    /// Constant propagation (rewrite).
    ConstantProp,
    /// Redundancy elimination (rewrite).
    RedundancyElim,
    /// Copy forwarding (rewrite).
    CopyForward,
    /// Dead-code elimination (rewrite).
    Dce,
    /// Partial redundancy elimination (the `pre` pass).
    Pre,
    /// Copy-forward + DCE cleanup (the `cleanup` pass).
    Cleanup,
}

/// All phases, in report order.
pub const PHASES: [Phase; 17] = [
    Phase::Cfg,
    Phase::DomTree,
    Phase::SsaBuild,
    Phase::Passes,
    Phase::SymbolicEval,
    Phase::CongruenceMerge,
    Phase::PredicateInference,
    Phase::ValueInference,
    Phase::PhiPredication,
    Phase::EdgeProcessing,
    Phase::Uce,
    Phase::ConstantProp,
    Phase::RedundancyElim,
    Phase::CopyForward,
    Phase::Dce,
    Phase::Pre,
    Phase::Cleanup,
];

impl Phase {
    /// Stable snake_case name used in JSON output and reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Cfg => "cfg",
            Phase::DomTree => "domtree",
            Phase::SsaBuild => "ssa_build",
            Phase::Passes => "passes",
            Phase::SymbolicEval => "symbolic_eval",
            Phase::CongruenceMerge => "congruence_merge",
            Phase::PredicateInference => "predicate_inference",
            Phase::ValueInference => "value_inference",
            Phase::PhiPredication => "phi_predication",
            Phase::EdgeProcessing => "edge_processing",
            Phase::Uce => "uce",
            Phase::ConstantProp => "constant_prop",
            Phase::RedundancyElim => "redundancy_elim",
            Phase::CopyForward => "copy_forward",
            Phase::Dce => "dce",
            Phase::Pre => "pre",
            Phase::Cleanup => "cleanup",
        }
    }

    fn index(self) -> usize {
        PHASES.iter().position(|p| *p == self).unwrap()
    }
}

/// Accumulated inclusive time and span count per phase.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    nanos: [u64; PHASES.len()],
    spans: [u64; PHASES.len()],
}

impl Profiler {
    /// A profiler with all accumulators at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the elapsed time since `start` to `phase`.
    pub fn record(&mut self, phase: Phase, start: Instant) {
        let i = phase.index();
        self.nanos[i] = self.nanos[i]
            .saturating_add(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        self.spans[i] += 1;
    }

    /// Adds raw nanoseconds to `phase` (one span).
    pub fn add_nanos(&mut self, phase: Phase, nanos: u64) {
        let i = phase.index();
        self.nanos[i] = self.nanos[i].saturating_add(nanos);
        self.spans[i] += 1;
    }

    /// Total inclusive nanoseconds recorded for `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Number of spans recorded for `phase`.
    pub fn spans(&self, phase: Phase) -> u64 {
        self.spans[phase.index()]
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.iter().all(|&n| n == 0)
    }

    /// One JSON object mapping phase names to `{nanos, spans}`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        for phase in PHASES {
            let i = phase.index();
            if self.spans[i] == 0 {
                continue;
            }
            let mut inner = JsonWriter::object();
            inner.field_u64("nanos", self.nanos[i]).field_u64("spans", self.spans[i]);
            w.field_raw(phase.name(), &inner.finish());
        }
        w.finish()
    }
}

impl fmt::Display for Profiler {
    /// A fixed-width table of phases with at least one span, report order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<22} {:>12} {:>10}", "phase", "ms", "spans")?;
        for phase in PHASES {
            let i = phase.index();
            if self.spans[i] == 0 {
                continue;
            }
            writeln!(
                f,
                "{:<22} {:>12.3} {:>10}",
                phase.name(),
                self.nanos[i] as f64 / 1.0e6,
                self.spans[i]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn record_accumulates() {
        let mut p = Profiler::new();
        assert!(p.is_empty());
        p.add_nanos(Phase::Cfg, 100);
        p.add_nanos(Phase::Cfg, 50);
        assert_eq!(p.nanos(Phase::Cfg), 150);
        assert_eq!(p.spans(Phase::Cfg), 2);
        assert_eq!(p.nanos(Phase::Dce), 0);
        assert!(!p.is_empty());
    }

    #[test]
    fn record_elapsed_is_nonzero() {
        let mut p = Profiler::new();
        let t0 = Instant::now();
        std::hint::black_box((0..1000).sum::<u64>());
        p.record(Phase::Passes, t0);
        assert_eq!(p.spans(Phase::Passes), 1);
    }

    #[test]
    fn json_skips_empty_phases() {
        let mut p = Profiler::new();
        p.add_nanos(Phase::SymbolicEval, 42);
        let v = parse(&p.to_json()).unwrap();
        let eval = v.get("symbolic_eval").expect("recorded phase present");
        assert_eq!(eval.get("nanos").unwrap().as_u64(), Some(42));
        assert_eq!(eval.get("spans").unwrap().as_u64(), Some(1));
        assert!(v.get("dce").is_none(), "unrecorded phases omitted");
    }

    #[test]
    fn display_lists_recorded_phases_only() {
        let mut p = Profiler::new();
        p.add_nanos(Phase::Uce, 2_000_000);
        let s = p.to_string();
        assert!(s.contains("uce"), "{s}");
        assert!(!s.contains("domtree"), "{s}");
    }
}
