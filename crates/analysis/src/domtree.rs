//! Dominator and postdominator trees.
//!
//! Dominators are computed with the Cooper–Harvey–Kennedy iterative
//! algorithm over RPO ("A Simple, Fast Dominance Algorithm"), which is the
//! standard practical choice and asymptotically adequate for this paper:
//! all dominance queries in the GVN core are tree walks.
//!
//! Postdominators are computed by running the same engine on the reversed
//! CFG from a virtual exit that succeeds every `return` block. Blocks from
//! which no exit is reachable (infinite loops) have no postdominator and
//! `postdominates` reports `false` for them, which conservatively disables
//! φ-predication there — exactly the safe behaviour.

use crate::order::Rpo;
use pgvn_ir::{Block, EntityRef, Function, InstKind};

/// The immediate-dominator tree of the blocks reachable from the entry.
#[derive(Clone, Debug)]
pub struct DomTree {
    idom: Vec<Option<Block>>,
    /// DFS interval numbering of the dominator tree for O(1) dominance
    /// queries.
    pre: Vec<u32>,
    post: Vec<u32>,
    depth: Vec<u32>,
    reachable: Vec<bool>,
}

/// Generic CHK solver over an abstract graph given in RPO.
///
/// `order` lists nodes in reverse postorder (roots first); `preds(i)` yields
/// predecessor *positions in `order`* of the node at position `i`.
fn chk_solve(n: usize, preds: &dyn Fn(usize, &mut Vec<usize>)) -> Vec<usize> {
    const UNDEF: usize = usize::MAX;
    let mut idom = vec![UNDEF; n];
    if n == 0 {
        return idom;
    }
    idom[0] = 0;
    let mut buf = Vec::new();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 1..n {
            buf.clear();
            preds(i, &mut buf);
            let mut new_idom = UNDEF;
            for &p in buf.iter() {
                if idom[p] == UNDEF {
                    continue;
                }
                new_idom = if new_idom == UNDEF {
                    p
                } else {
                    // intersect
                    let mut a = p;
                    let mut b = new_idom;
                    while a != b {
                        while a > b {
                            a = idom[a];
                        }
                        while b > a {
                            b = idom[b];
                        }
                    }
                    a
                };
            }
            if new_idom != UNDEF && idom[i] != new_idom {
                idom[i] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

/// Assigns DFS pre/post intervals and depths over an idom forest.
fn tree_intervals(
    n_cap: usize,
    nodes: &[Block],
    idom: &[Option<Block>],
) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut children: Vec<Vec<Block>> = vec![Vec::new(); n_cap];
    let mut roots = Vec::new();
    for &b in nodes {
        match idom[b.index()] {
            Some(p) if p != b => children[p.index()].push(b),
            _ => roots.push(b),
        }
    }
    let mut pre = vec![0u32; n_cap];
    let mut post = vec![0u32; n_cap];
    let mut depth = vec![0u32; n_cap];
    let mut clock = 0u32;
    for root in roots {
        let mut stack = vec![(root, 0usize, 0u32)];
        clock += 1;
        pre[root.index()] = clock;
        depth[root.index()] = 0;
        while let Some(&mut (b, ref mut next, d)) = stack.last_mut() {
            if *next < children[b.index()].len() {
                let c = children[b.index()][*next];
                *next += 1;
                clock += 1;
                pre[c.index()] = clock;
                depth[c.index()] = d + 1;
                stack.push((c, 0, d + 1));
            } else {
                clock += 1;
                post[b.index()] = clock;
                stack.pop();
            }
        }
    }
    (pre, post, depth)
}

pub(crate) fn chk_solve_public(n: usize, preds: &dyn Fn(usize, &mut Vec<usize>)) -> Vec<usize> {
    chk_solve(n, preds)
}

pub(crate) fn tree_intervals_public(
    n_cap: usize,
    nodes: &[Block],
    idom: &[Option<Block>],
) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    tree_intervals(n_cap, nodes, idom)
}

impl DomTree {
    /// Computes the dominator tree of `func` using the precomputed `rpo`.
    pub fn compute(func: &Function, rpo: &Rpo) -> Self {
        let order = rpo.order();
        let n = order.len();
        let preds = |i: usize, out: &mut Vec<usize>| {
            for &e in func.preds(order[i]) {
                let p = func.edge_from(e);
                if rpo.is_reachable(p) {
                    out.push(rpo.number(p) as usize);
                }
            }
        };
        let idom_pos = chk_solve(n, &preds);
        let cap = func.block_capacity();
        let mut idom: Vec<Option<Block>> = vec![None; cap];
        let mut reachable = vec![false; cap];
        for (i, &b) in order.iter().enumerate() {
            reachable[b.index()] = true;
            if idom_pos[i] != usize::MAX {
                idom[b.index()] = Some(order[idom_pos[i]]);
            }
        }
        let (pre, post, depth) = tree_intervals(cap, order, &idom);
        DomTree { idom, pre, post, depth, reachable }
    }

    /// The immediate dominator of `b`. The entry block's idom is itself;
    /// unreachable blocks return `None`.
    pub fn idom(&self, b: Block) -> Option<Block> {
        self.idom[b.index()]
    }

    /// Returns `true` if `a` dominates `b` (reflexive). Unreachable blocks
    /// dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: Block, b: Block) -> bool {
        if !self.reachable[a.index()] || !self.reachable[b.index()] {
            return false;
        }
        self.pre[a.index()] <= self.pre[b.index()] && self.post[b.index()] <= self.post[a.index()]
    }

    /// Returns `true` if `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: Block, b: Block) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Depth of `b` in the dominator tree (entry = 0).
    pub fn depth(&self, b: Block) -> u32 {
        self.depth[b.index()]
    }

    /// Returns `true` if `b` was reachable when the tree was computed.
    pub fn is_reachable(&self, b: Block) -> bool {
        self.reachable[b.index()]
    }
}

/// The postdominator tree, rooted at a virtual exit.
#[derive(Clone, Debug)]
pub struct PostDomTree {
    ipdom: Vec<Option<Block>>,
    pre: Vec<u32>,
    post: Vec<u32>,
    /// Blocks with a path to some `return`.
    exits_reach: Vec<bool>,
}

impl PostDomTree {
    /// Computes the postdominator tree of `func`.
    ///
    /// Only blocks that are statically reachable *and* can reach a `return`
    /// participate; for all other blocks [`PostDomTree::postdominates`]
    /// answers `false`.
    pub fn compute(func: &Function, rpo: &Rpo) -> Self {
        let cap = func.block_capacity();
        // Reverse postorder of the *reverse* CFG from the virtual exit,
        // i.e. postorder of reachable return blocks backwards.
        let mut order: Vec<Block> = Vec::new(); // reverse graph RPO (exit-first)
        let mut state = vec![0u8; cap];
        let mut stack: Vec<(Block, usize)> = Vec::new();
        let exit_blocks: Vec<Block> = rpo
            .order()
            .iter()
            .copied()
            .filter(|&b| {
                matches!(func.terminator(b).map(|t| func.kind(t)), Some(InstKind::Return(_)))
            })
            .collect();
        let mut postorder = Vec::new();
        for &x in &exit_blocks {
            if state[x.index()] != 0 {
                continue;
            }
            state[x.index()] = 1;
            stack.push((x, 0));
            while let Some(&mut (b, ref mut next)) = stack.last_mut() {
                let preds = func.preds(b);
                if *next < preds.len() {
                    let p = func.edge_from(preds[*next]);
                    *next += 1;
                    if state[p.index()] == 0 && rpo.is_reachable(p) {
                        state[p.index()] = 1;
                        stack.push((p, 0));
                    }
                } else {
                    state[b.index()] = 2;
                    postorder.push(b);
                    stack.pop();
                }
            }
        }
        postorder.reverse();
        order.extend(postorder);

        let pos_of = {
            let mut m = vec![usize::MAX; cap];
            for (i, &b) in order.iter().enumerate() {
                m[b.index()] = i;
            }
            m
        };
        // Virtual exit: every exit block's "predecessor set" in the reverse
        // graph gains the virtual root. We emulate the virtual root by
        // seeding all exit blocks as roots (idom = position 0 handling in
        // chk_solve requires a single root), so instead add a phantom node
        // at position 0.
        let n = order.len() + 1; // position 0 = virtual exit
        let preds = |i: usize, out: &mut Vec<usize>| {
            if i == 0 {
                return;
            }
            let b = order[i - 1];
            // Reverse-graph predecessors are CFG successors.
            for &e in func.succs(b) {
                let s = func.edge_to(e);
                if pos_of[s.index()] != usize::MAX {
                    out.push(pos_of[s.index()] + 1);
                }
            }
            if matches!(func.terminator(b).map(|t| func.kind(t)), Some(InstKind::Return(_))) {
                out.push(0);
            }
        };
        let idom_pos = chk_solve(n, &preds);
        let mut ipdom: Vec<Option<Block>> = vec![None; cap];
        let mut exits_reach = vec![false; cap];
        for (i, &b) in order.iter().enumerate() {
            exits_reach[b.index()] = true;
            let p = idom_pos[i + 1];
            if p != usize::MAX && p != 0 {
                ipdom[b.index()] = Some(order[p - 1]);
            }
            // p == 0 means the virtual exit is the immediate postdominator.
        }
        let (pre, post, _) = tree_intervals(cap, &order, &{
            // For interval purposes, parent = ipdom; blocks whose ipdom is
            // the virtual exit become roots.
            let mut parents: Vec<Option<Block>> = vec![None; cap];
            for &b in &order {
                parents[b.index()] = ipdom[b.index()];
            }
            parents
        });
        PostDomTree { ipdom, pre, post, exits_reach }
    }

    /// The immediate postdominator of `b`, or `None` when it is the virtual
    /// exit (or `b` cannot reach an exit).
    pub fn ipdom(&self, b: Block) -> Option<Block> {
        self.ipdom[b.index()]
    }

    /// Returns `true` if `a` postdominates `b` (reflexive).
    pub fn postdominates(&self, a: Block, b: Block) -> bool {
        if !self.exits_reach[a.index()] || !self.exits_reach[b.index()] {
            return false;
        }
        self.pre[a.index()] <= self.pre[b.index()] && self.post[b.index()] <= self.post[a.index()]
    }
}

/// Reference implementation: the set-based O(n²) dominator algorithm, used
/// only in differential tests against [`DomTree`].
pub fn naive_dominators(func: &Function, rpo: &Rpo) -> Vec<Vec<Block>> {
    let order = rpo.order();
    let n = order.len();
    let mut dom: Vec<Vec<bool>> = vec![vec![true; n]; n];
    dom[0] = vec![false; n];
    dom[0][0] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for i in 1..n {
            let mut inter = vec![true; n];
            let mut any = false;
            for &e in func.preds(order[i]) {
                let p = func.edge_from(e);
                if !rpo.is_reachable(p) {
                    continue;
                }
                any = true;
                let pi = rpo.number(p) as usize;
                for k in 0..n {
                    inter[k] = inter[k] && dom[pi][k];
                }
            }
            if !any {
                inter = vec![false; n];
            }
            inter[i] = true;
            if inter != dom[i] {
                dom[i] = inter;
                changed = true;
            }
        }
    }
    dom.into_iter()
        .map(|row| row.iter().enumerate().filter(|(_, &d)| d).map(|(k, _)| order[k]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_ir::CmpOp;

    fn diamond_with_loop() -> (Function, Vec<Block>) {
        // 0:entry -> 1:head; head -> 2:then | 3:else; both -> 4:latch -> head
        // head -> 5:exit (via a second branch in then... keep simple):
        // entry->head; head -> body|exit; body -> then|else; then->latch;
        // else->latch; latch->head(back)
        let mut f = Function::new("g", 2);
        let entry = f.entry();
        let head = f.add_block();
        let body = f.add_block();
        let then_b = f.add_block();
        let else_b = f.add_block();
        let latch = f.add_block();
        let exit = f.add_block();
        f.set_jump(entry, head);
        let c1 = f.cmp(head, CmpOp::Lt, f.param(0), f.param(1));
        f.set_branch(head, c1, body, exit);
        let c2 = f.cmp(body, CmpOp::Eq, f.param(0), f.param(1));
        f.set_branch(body, c2, then_b, else_b);
        f.set_jump(then_b, latch);
        f.set_jump(else_b, latch);
        f.set_jump(latch, head);
        let z = f.iconst(exit, 0);
        f.set_return(exit, z);
        (f, vec![entry, head, body, then_b, else_b, latch, exit])
    }

    #[test]
    fn idoms_of_diamond_with_loop() {
        let (f, b) = diamond_with_loop();
        let rpo = Rpo::compute(&f);
        let dt = DomTree::compute(&f, &rpo);
        assert_eq!(dt.idom(b[0]), Some(b[0]));
        assert_eq!(dt.idom(b[1]), Some(b[0])); // head <- entry
        assert_eq!(dt.idom(b[2]), Some(b[1])); // body <- head
        assert_eq!(dt.idom(b[3]), Some(b[2])); // then <- body
        assert_eq!(dt.idom(b[4]), Some(b[2])); // else <- body
        assert_eq!(dt.idom(b[5]), Some(b[2])); // latch <- body
        assert_eq!(dt.idom(b[6]), Some(b[1])); // exit <- head
    }

    #[test]
    fn dominates_queries() {
        let (f, b) = diamond_with_loop();
        let rpo = Rpo::compute(&f);
        let dt = DomTree::compute(&f, &rpo);
        assert!(dt.dominates(b[0], b[6]));
        assert!(dt.dominates(b[1], b[5]));
        assert!(dt.dominates(b[2], b[5]));
        assert!(!dt.dominates(b[3], b[5])); // then does not dominate latch
        assert!(dt.dominates(b[3], b[3]));
        assert!(!dt.strictly_dominates(b[3], b[3]));
        assert!(dt.strictly_dominates(b[1], b[2]));
        assert!(dt.depth(b[0]) < dt.depth(b[1]));
    }

    #[test]
    fn matches_naive_dominators() {
        let (f, _) = diamond_with_loop();
        let rpo = Rpo::compute(&f);
        let dt = DomTree::compute(&f, &rpo);
        let naive = naive_dominators(&f, &rpo);
        for (i, &b) in rpo.order().iter().enumerate() {
            for &a in rpo.order() {
                let expect = naive[i].contains(&a);
                assert_eq!(dt.dominates(a, b), expect, "dominates({a},{b})");
            }
        }
    }

    #[test]
    fn postdominators_of_diamond_with_loop() {
        let (f, b) = diamond_with_loop();
        let rpo = Rpo::compute(&f);
        let pdt = PostDomTree::compute(&f, &rpo);
        // exit postdominates everything.
        for &x in &b {
            assert!(pdt.postdominates(b[6], x), "exit should postdominate {x}");
        }
        // head postdominates body/then/else/latch/entry.
        assert!(pdt.postdominates(b[1], b[0]));
        assert!(pdt.postdominates(b[1], b[2]));
        assert!(pdt.postdominates(b[1], b[5]));
        // latch postdominates then and else but not head.
        assert!(pdt.postdominates(b[5], b[3]));
        assert!(pdt.postdominates(b[5], b[4]));
        assert!(!pdt.postdominates(b[5], b[1]));
        // then does not postdominate body.
        assert!(!pdt.postdominates(b[3], b[2]));
        // ipdom chain: then -> latch -> head.
        assert_eq!(pdt.ipdom(b[3]), Some(b[5]));
        assert_eq!(pdt.ipdom(b[5]), Some(b[1]));
        // exit's ipdom is the virtual exit.
        assert_eq!(pdt.ipdom(b[6]), None);
    }

    #[test]
    fn infinite_loop_blocks_have_no_postdominator() {
        let mut f = Function::new("spin", 0);
        let entry = f.entry();
        let l = f.add_block();
        f.set_jump(entry, l);
        f.set_jump(l, l);
        let rpo = Rpo::compute(&f);
        let pdt = PostDomTree::compute(&f, &rpo);
        assert!(!pdt.postdominates(l, entry));
        assert!(!pdt.postdominates(l, l));
    }

    #[test]
    fn single_block_function() {
        let mut f = Function::new("k", 0);
        let v = f.iconst(f.entry(), 7);
        f.set_return(f.entry(), v);
        let rpo = Rpo::compute(&f);
        let dt = DomTree::compute(&f, &rpo);
        let pdt = PostDomTree::compute(&f, &rpo);
        assert!(dt.dominates(f.entry(), f.entry()));
        assert!(pdt.postdominates(f.entry(), f.entry()));
        assert_eq!(pdt.ipdom(f.entry()), None);
    }
}
