//! Dominance frontiers (Cytron et al.), used by SSA construction.

use crate::domtree::DomTree;
use crate::order::Rpo;
use pgvn_ir::{Block, EntityRef, Function};

/// The dominance frontier of every reachable block.
#[derive(Clone, Debug)]
pub struct DominanceFrontiers {
    df: Vec<Vec<Block>>,
}

impl DominanceFrontiers {
    /// Computes dominance frontiers from the dominator tree.
    pub fn compute(func: &Function, rpo: &Rpo, domtree: &DomTree) -> Self {
        let mut df: Vec<Vec<Block>> = vec![Vec::new(); func.block_capacity()];
        for &b in rpo.order() {
            if func.preds(b).len() < 2 {
                continue;
            }
            let idom_b = domtree.idom(b).expect("reachable block has an idom");
            for &e in func.preds(b) {
                let p = func.edge_from(e);
                if !rpo.is_reachable(p) {
                    continue;
                }
                let mut runner = p;
                while runner != idom_b {
                    if !df[runner.index()].contains(&b) {
                        df[runner.index()].push(b);
                    }
                    runner = domtree.idom(runner).expect("reachable block has an idom");
                }
            }
        }
        DominanceFrontiers { df }
    }

    /// The dominance frontier of `b`.
    pub fn frontier(&self, b: Block) -> &[Block] {
        &self.df[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_ir::{CmpOp, Function};

    #[test]
    fn diamond_frontier_is_join() {
        let mut f = Function::new("d", 2);
        let entry = f.entry();
        let (t, e, j) = (f.add_block(), f.add_block(), f.add_block());
        let c = f.cmp(entry, CmpOp::Lt, f.param(0), f.param(1));
        f.set_branch(entry, c, t, e);
        f.set_jump(t, j);
        f.set_jump(e, j);
        let z = f.iconst(j, 0);
        f.set_return(j, z);
        let rpo = Rpo::compute(&f);
        let dt = DomTree::compute(&f, &rpo);
        let df = DominanceFrontiers::compute(&f, &rpo, &dt);
        assert_eq!(df.frontier(t), &[j]);
        assert_eq!(df.frontier(e), &[j]);
        assert!(df.frontier(entry).is_empty());
        assert!(df.frontier(j).is_empty());
    }

    #[test]
    fn loop_header_in_own_frontier() {
        let mut f = Function::new("l", 1);
        let entry = f.entry();
        let (head, body, exit) = (f.add_block(), f.add_block(), f.add_block());
        f.set_jump(entry, head);
        let c = f.cmp(head, CmpOp::Lt, f.param(0), f.param(0));
        f.set_branch(head, c, body, exit);
        f.set_jump(body, head);
        let z = f.iconst(exit, 0);
        f.set_return(exit, z);
        let rpo = Rpo::compute(&f);
        let dt = DomTree::compute(&f, &rpo);
        let df = DominanceFrontiers::compute(&f, &rpo, &dt);
        assert_eq!(df.frontier(head), &[head]);
        assert_eq!(df.frontier(body), &[head]);
        assert!(df.frontier(exit).is_empty());
    }
}
