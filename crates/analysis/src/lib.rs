//! # pgvn-analysis — CFG analyses for the pgvn project
//!
//! Control-flow analyses required by the predicated sparse GVN algorithm
//! of Gargi (PLDI 2002):
//!
//! - [`Rpo`] — reverse postorder numbering and RPO back edge
//!   classification (§2.5 of the paper);
//! - [`Ranks`] — the `RANK` mapping over values (§2.2);
//! - [`DomTree`] / [`PostDomTree`] — dominator and postdominator trees
//!   (Cooper–Harvey–Kennedy);
//! - [`DominanceFrontiers`] — for SSA construction;
//! - [`ReachableDomTree`] — the incrementally maintained dominator tree of
//!   the reachable subgraph used by the paper's *complete* algorithm;
//! - [`LoopInfo`] — natural loops and the loop-connectedness statistic
//!   from the complexity analysis (§4);
//! - [`verify_ssa`] — the dominance-aware SSA well-formedness check.
//!
//! ```
//! use pgvn_ir::{Function, CmpOp};
//! use pgvn_analysis::{Rpo, DomTree};
//!
//! let mut f = Function::new("f", 2);
//! let entry = f.entry();
//! let (t, e) = (f.add_block(), f.add_block());
//! let c = f.cmp(entry, CmpOp::Lt, f.param(0), f.param(1));
//! f.set_branch(entry, c, t, e);
//! f.set_return(t, f.param(0));
//! f.set_return(e, f.param(1));
//!
//! let rpo = Rpo::compute(&f);
//! let domtree = DomTree::compute(&f, &rpo);
//! assert!(domtree.dominates(entry, t));
//! assert!(!domtree.dominates(t, e));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod domtree;
pub mod frontiers;
pub mod graph;
pub mod loops;
pub mod order;
pub mod reachable_dom;
pub mod ssa_verify;

pub use domtree::{naive_dominators, DomTree, PostDomTree};
pub use frontiers::DominanceFrontiers;
pub use graph::{generic_rpo, GenericDomTree};
pub use loops::LoopInfo;
pub use order::{Ranks, Rpo, UNREACHABLE_RPO};
pub use reachable_dom::{full_domtree, ReachableDomTree};
pub use ssa_verify::{assert_ssa, verify_ssa};
