//! Dominance-aware SSA verification.
//!
//! Complements the structural checks in [`pgvn_ir::verify()`] with the SSA
//! dominance property: every use of a value is dominated by its definition.
//! A φ argument counts as used at the end of the corresponding predecessor
//! block (the paper adopts the same convention: "an argument of a
//! φ-function is considered to be used at the edge which carries it").

use crate::domtree::DomTree;
use crate::order::Rpo;
use pgvn_ir::{Block, Function, Inst, InstKind, Value};

fn defined_before(
    func: &Function,
    rpo: &Rpo,
    domtree: &DomTree,
    def: Inst,
    use_inst: Inst,
    in_block: Block,
) -> bool {
    let def_block = func.inst_block(def);
    if def_block == in_block {
        // Same block: definition must come first; φs define "at the top".
        let insts = func.block_insts(in_block);
        let def_pos = insts.iter().position(|&i| i == def);
        let use_pos = insts.iter().position(|&i| i == use_inst);
        match (def_pos, use_pos) {
            (Some(d), Some(u)) => d < u || func.kind(use_inst).is_phi(),
            _ => false,
        }
    } else {
        rpo.is_reachable(def_block) && domtree.strictly_dominates(def_block, in_block)
    }
}

/// Verifies the SSA dominance property for all statically reachable code.
///
/// # Errors
///
/// Returns a [`pgvn_ir::VerifyError`]-style message describing the first violation:
/// a use not dominated by its definition, either as an ordinary operand or
/// as a φ argument at its carrying edge.
pub fn verify_ssa(func: &Function) -> Result<(), String> {
    let rpo = Rpo::compute(func);
    let domtree = DomTree::compute(func, &rpo);
    for &b in rpo.order() {
        for &inst in func.block_insts(b) {
            match func.kind(inst) {
                InstKind::Phi(args) => {
                    for (i, &arg) in args.iter().enumerate() {
                        let edge = func.preds(b)[i];
                        let pred = func.edge_from(edge);
                        if !rpo.is_reachable(pred) {
                            continue;
                        }
                        let def = func.def(arg);
                        let def_block = func.inst_block(def);
                        let ok =
                            def_block == pred || domtree.strictly_dominates(def_block, pred) || {
                                // φ defined in the same block as its own use
                                // through a back edge is fine if def dominates
                                // pred (covered above); self-block check:
                                def_block == b
                                    && func.kind(def).is_phi()
                                    && domtree.dominates(b, pred)
                            };
                        if !(ok || (def_block == b && domtree.dominates(b, pred))) {
                            return Err(format!(
                                "φ {inst} in {b}: argument {arg} (defined in {def_block}) \
                                 does not dominate predecessor {pred}"
                            ));
                        }
                    }
                }
                kind => {
                    let mut bad: Option<Value> = None;
                    kind.visit_args(|v| {
                        if bad.is_none()
                            && !defined_before(func, &rpo, &domtree, func.def(v), inst, b)
                        {
                            bad = Some(v);
                        }
                    });
                    if let Some(v) = bad {
                        return Err(format!(
                            "{inst} in {b} uses {v} before its definition dominates it"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Runs both structural and SSA verification; panics on failure.
///
/// # Panics
///
/// Panics with the violation message when either check fails.
#[track_caller]
pub fn assert_ssa(func: &Function) {
    if let Err(e) = pgvn_ir::verify(func) {
        panic!("{e}\n{func}");
    }
    if let Err(e) = verify_ssa(func) {
        panic!("ssa verification failed: {e}\n{func}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_ir::{BinOp, CmpOp, Function};

    #[test]
    fn valid_loop_passes() {
        let mut f = Function::new("count", 1);
        let entry = f.entry();
        let (head, body, exit) = (f.add_block(), f.add_block(), f.add_block());
        let zero = f.iconst(entry, 0);
        f.set_jump(entry, head);
        let i = f.append_phi(head);
        let c = f.cmp(head, CmpOp::Lt, i, f.param(0));
        f.set_branch(head, c, body, exit);
        let one = f.iconst(body, 1);
        let i2 = f.binary(body, BinOp::Add, i, one);
        f.set_jump(body, head);
        f.set_phi_args(i, vec![zero, i2]);
        f.set_return(exit, i);
        assert_eq!(verify_ssa(&f), Ok(()));
        assert_ssa(&f);
    }

    #[test]
    fn use_before_def_in_same_block_rejected() {
        // Build by hand: swap instruction order via direct construction is
        // not possible through the safe API, so simulate the classic error:
        // a value defined on the `then` arm used on the `else` arm.
        let mut f = Function::new("bad", 1);
        let entry = f.entry();
        let (t, e) = (f.add_block(), f.add_block());
        let zero = f.iconst(entry, 0);
        let c = f.cmp(entry, CmpOp::Gt, f.param(0), zero);
        f.set_branch(entry, c, t, e);
        let x = f.iconst(t, 1);
        f.set_return(t, x);
        // e uses x, but t does not dominate e.
        f.set_return(e, x);
        assert!(pgvn_ir::verify(&f).is_ok(), "structurally fine");
        let err = verify_ssa(&f).unwrap_err();
        assert!(err.contains("before its definition"), "{err}");
    }

    #[test]
    fn phi_arg_must_dominate_pred() {
        let mut f = Function::new("badphi", 1);
        let entry = f.entry();
        let (t, e, j) = (f.add_block(), f.add_block(), f.add_block());
        let zero = f.iconst(entry, 0);
        let c = f.cmp(entry, CmpOp::Gt, f.param(0), zero);
        f.set_branch(entry, c, t, e);
        let x = f.iconst(t, 1);
        f.set_jump(t, j);
        let y = f.iconst(e, 2);
        f.set_jump(e, j);
        let p = f.append_phi(j);
        // Wrong: x comes from t but we claim it arrives via e's edge.
        f.set_phi_args(p, vec![y, x]);
        f.set_return(j, p);
        let err = verify_ssa(&f).unwrap_err();
        assert!(err.contains("does not dominate predecessor"), "{err}");
    }
}
