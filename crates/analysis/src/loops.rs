//! Loop structure and the loop-connectedness statistic.
//!
//! The paper's complexity bound is O(C·E²·(E+I)) where *C* is the loop
//! connectedness of the SSA def-use graph — "the maximum number of back
//! edges in any acyclic path of the graph" (§1.3 footnote). Computing that
//! quantity exactly is intractable in general; for the reducible CFGs
//! produced by structured programs it coincides with the maximum loop
//! nesting depth, which is what [`LoopInfo::connectedness`] reports (the
//! same proxy compilers conventionally use).

use crate::domtree::DomTree;
use crate::order::Rpo;
use pgvn_ir::{Block, EntityRef, Function};

/// Natural-loop information derived from RPO back edges.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// Loop nesting depth per block (0 = not in any loop).
    depth: Vec<u32>,
    /// Loop headers in RPO order.
    headers: Vec<Block>,
}

impl LoopInfo {
    /// Computes natural loops from the back edges of `rpo`.
    ///
    /// Back edges whose destination does not dominate their origin
    /// (irreducible edges) still count as loops for the depth statistic:
    /// their body is approximated by the blocks between destination and
    /// origin in RPO.
    pub fn compute(func: &Function, rpo: &Rpo, domtree: &DomTree) -> Self {
        let cap = func.block_capacity();
        let mut depth = vec![0u32; cap];
        let mut headers = Vec::new();
        for e in func.edges() {
            if !rpo.is_back_edge(e) {
                continue;
            }
            let header = func.edge_to(e);
            let latch = func.edge_from(e);
            if !headers.contains(&header) {
                headers.push(header);
            }
            let mut members: Vec<Block> = Vec::new();
            if domtree.dominates(header, latch) {
                // Natural loop: header + all blocks reaching the latch
                // without passing through the header.
                let mut stack = vec![latch];
                members.push(header);
                while let Some(b) = stack.pop() {
                    if members.contains(&b) {
                        continue;
                    }
                    members.push(b);
                    for &pe in func.preds(b) {
                        let p = func.edge_from(pe);
                        if rpo.is_reachable(p) {
                            stack.push(p);
                        }
                    }
                }
            } else {
                // Irreducible: approximate by the RPO interval.
                let lo = rpo.number(header);
                let hi = rpo.number(latch);
                for &b in rpo.order() {
                    if rpo.number(b) >= lo && rpo.number(b) <= hi {
                        members.push(b);
                    }
                }
            }
            for b in members {
                depth[b.index()] += 1;
            }
        }
        headers.sort_by_key(|&h| rpo.number(h));
        LoopInfo { depth, headers }
    }

    /// Loop nesting depth of `b` (0 when `b` is in no loop).
    pub fn depth(&self, b: Block) -> u32 {
        self.depth[b.index()]
    }

    /// Loop headers, ordered by RPO number.
    pub fn headers(&self) -> &[Block] {
        &self.headers
    }

    /// The loop-connectedness proxy: maximum loop nesting depth.
    pub fn connectedness(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_ir::CmpOp;

    #[test]
    fn nested_loops_have_increasing_depth() {
        // entry -> h1; h1 -> h2 | exit; h2 -> body | l1; body -> h2 (back);
        // l1 -> h1 (back)
        let mut f = Function::new("n", 1);
        let entry = f.entry();
        let h1 = f.add_block();
        let h2 = f.add_block();
        let body = f.add_block();
        let l1 = f.add_block();
        let exit = f.add_block();
        f.set_jump(entry, h1);
        let c1 = f.cmp(h1, CmpOp::Lt, f.param(0), f.param(0));
        f.set_branch(h1, c1, h2, exit);
        let c2 = f.cmp(h2, CmpOp::Gt, f.param(0), f.param(0));
        f.set_branch(h2, c2, body, l1);
        f.set_jump(body, h2);
        f.set_jump(l1, h1);
        let z = f.iconst(exit, 0);
        f.set_return(exit, z);

        let rpo = Rpo::compute(&f);
        let dt = DomTree::compute(&f, &rpo);
        let li = LoopInfo::compute(&f, &rpo, &dt);
        assert_eq!(li.depth(entry), 0);
        assert_eq!(li.depth(exit), 0);
        assert_eq!(li.depth(h1), 1);
        assert_eq!(li.depth(h2), 2);
        assert_eq!(li.depth(body), 2);
        assert_eq!(li.depth(l1), 1);
        assert_eq!(li.connectedness(), 2);
        assert_eq!(li.headers(), &[h1, h2]);
    }

    #[test]
    fn acyclic_function_has_zero_connectedness() {
        let mut f = Function::new("a", 1);
        let v = f.iconst(f.entry(), 3);
        f.set_return(f.entry(), v);
        let rpo = Rpo::compute(&f);
        let dt = DomTree::compute(&f, &rpo);
        let li = LoopInfo::compute(&f, &rpo, &dt);
        assert_eq!(li.connectedness(), 0);
        assert!(li.headers().is_empty());
    }
}
