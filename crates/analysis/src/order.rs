//! Reverse postorder (RPO) numbering and RPO back edge classification.
//!
//! The paper numbers blocks in reverse post order, processes instructions
//! in RPO passes, and approximates back edges by *RPO back edges*: an edge
//! whose destination does not follow its origin in RPO (§2.5). Ranks
//! (§2.2) are also assigned in RPO.

use pgvn_ir::{Block, Edge, EntityRef, EntitySet, Function, Inst, SecondaryMap, Value};

/// Reverse postorder of the blocks reachable from the entry, with the
/// derived orderings the paper's algorithm consumes.
#[derive(Clone, Debug)]
pub struct Rpo {
    order: Vec<Block>,
    number: SecondaryMap<Block, u32>,
    backward: EntitySet<Edge>,
    reachable: EntitySet<Block>,
}

/// Blocks unreachable from the entry get this sentinel RPO number; it
/// sorts after every real number.
pub const UNREACHABLE_RPO: u32 = u32::MAX;

impl Rpo {
    /// Computes the RPO of `func` over blocks statically reachable from the
    /// entry.
    pub fn compute(func: &Function) -> Self {
        let cap = func.block_capacity();
        let mut state = vec![0u8; cap]; // 0 = unvisited, 1 = on stack, 2 = done
        let mut postorder: Vec<Block> = Vec::new();
        // Iterative DFS with an explicit stack of (block, next successor index).
        let mut stack: Vec<(Block, usize)> = vec![(func.entry(), 0)];
        state[func.entry().index()] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = func.succs(b);
            if *next < succs.len() {
                let s = func.edge_to(succs[*next]);
                *next += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                postorder.push(b);
                stack.pop();
            }
        }
        postorder.reverse();
        let order = postorder;

        let mut number = SecondaryMap::with_capacity(UNREACHABLE_RPO, cap);
        let mut reachable = EntitySet::with_capacity(cap);
        for (i, &b) in order.iter().enumerate() {
            number[b] = i as u32;
            reachable.insert(b);
        }

        let mut backward = EntitySet::with_capacity(func.edge_capacity());
        for e in func.edges() {
            let from = func.edge_from(e);
            let to = func.edge_to(e);
            if reachable.contains(from) && reachable.contains(to) && number[to] <= number[from] {
                backward.insert(e);
            }
        }
        Rpo { order, number, backward, reachable }
    }

    /// Blocks in reverse postorder.
    pub fn order(&self) -> &[Block] {
        &self.order
    }

    /// The RPO number of `b`, or [`UNREACHABLE_RPO`] if `b` is statically
    /// unreachable.
    pub fn number(&self, b: Block) -> u32 {
        self.number[b]
    }

    /// Returns `true` if `b` is statically reachable from the entry.
    pub fn is_reachable(&self, b: Block) -> bool {
        self.reachable.contains(b)
    }

    /// Returns `true` if `e` is an RPO back edge (its destination's RPO
    /// number does not exceed its origin's).
    pub fn is_back_edge(&self, e: Edge) -> bool {
        self.backward.contains(e)
    }

    /// The set of RPO back edges (the paper's `BACKWARD` set).
    pub fn back_edges(&self) -> &EntitySet<Edge> {
        &self.backward
    }
}

/// The paper's `RANK` mapping (§2.2): values are ranked `1..` in an RPO
/// traversal of the CFG so that lower ranks correspond to earlier
/// definitions. Rank 0 is reserved for constants.
#[derive(Clone, Debug)]
pub struct Ranks {
    rank: SecondaryMap<Value, u32>,
    inst_rpo: SecondaryMap<Inst, u32>,
}

impl Ranks {
    /// Assigns ranks to all values of `func` in RPO.
    pub fn assign(func: &Function, rpo: &Rpo) -> Self {
        let mut rank = SecondaryMap::with_capacity(0, func.value_capacity());
        let mut inst_rpo = SecondaryMap::with_capacity(u32::MAX, func.inst_capacity());
        let mut next = 0u32;
        let mut inst_no = 0u32;
        for &b in rpo.order() {
            for &inst in func.block_insts(b) {
                inst_rpo[inst] = inst_no;
                inst_no += 1;
                if let Some(v) = func.inst_result(inst) {
                    next += 1;
                    rank[v] = next;
                }
            }
        }
        Ranks { rank, inst_rpo }
    }

    /// The rank of `v`; values in statically unreachable blocks keep rank 0.
    pub fn rank(&self, v: Value) -> u32 {
        self.rank[v]
    }

    /// A global RPO position for instructions (used to order worklists).
    pub fn inst_position(&self, inst: Inst) -> u32 {
        self.inst_rpo[inst]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_ir::CmpOp;

    /// entry -> head -> body -> head (back edge); head -> exit.
    fn looped() -> (Function, Block, Block, Block) {
        let mut f = Function::new("l", 1);
        let entry = f.entry();
        let (head, body, exit) = (f.add_block(), f.add_block(), f.add_block());
        f.set_jump(entry, head);
        let i = f.append_phi(head);
        let c = f.cmp(head, CmpOp::Lt, i, f.param(0));
        f.set_branch(head, c, body, exit);
        f.set_jump(body, head);
        f.set_phi_args(i, vec![f.param(0), i]);
        let r = f.iconst(exit, 0);
        f.set_return(exit, r);
        (f, head, body, exit)
    }

    #[test]
    fn rpo_orders_entry_first() {
        let (f, head, body, exit) = looped();
        let rpo = Rpo::compute(&f);
        assert_eq!(rpo.order()[0], f.entry());
        assert_eq!(rpo.number(f.entry()), 0);
        assert!(rpo.number(head) < rpo.number(body));
        assert!(rpo.number(head) < rpo.number(exit));
        assert_eq!(rpo.order().len(), 4);
    }

    #[test]
    fn back_edge_detected() {
        let (f, head, body, _exit) = looped();
        let rpo = Rpo::compute(&f);
        let back = f.edges().find(|&e| f.edge_from(e) == body && f.edge_to(e) == head).unwrap();
        assert!(rpo.is_back_edge(back));
        assert_eq!(rpo.back_edges().len(), 1);
        for e in f.edges() {
            if e != back {
                assert!(!rpo.is_back_edge(e), "{e} misclassified");
            }
        }
    }

    #[test]
    fn unreachable_block_excluded() {
        let (mut f, _, _, _) = looped();
        let orphan = f.add_block();
        let v = f.iconst(orphan, 1);
        f.set_return(orphan, v);
        let rpo = Rpo::compute(&f);
        assert!(!rpo.is_reachable(orphan));
        assert_eq!(rpo.number(orphan), UNREACHABLE_RPO);
        assert_eq!(rpo.order().len(), 4);
    }

    #[test]
    fn self_loop_is_back_edge() {
        let mut f = Function::new("s", 0);
        let entry = f.entry();
        let l = f.add_block();
        f.set_jump(entry, l);
        f.set_jump(l, l);
        let rpo = Rpo::compute(&f);
        let self_edge = f.edges().find(|&e| f.edge_from(e) == l && f.edge_to(e) == l).unwrap();
        assert!(rpo.is_back_edge(self_edge));
    }

    #[test]
    fn ranks_increase_in_rpo() {
        let (f, head, _body, exit) = looped();
        let rpo = Rpo::compute(&f);
        let ranks = Ranks::assign(&f, &rpo);
        // Param in entry ranks below φ in head, which ranks below const in exit.
        let phi = f.block_insts(head)[0];
        let phi_v = f.inst_result(phi).unwrap();
        let exit_c = f.inst_result(f.block_insts(exit)[0]).unwrap();
        assert!(ranks.rank(f.param(0)) < ranks.rank(phi_v));
        assert!(ranks.rank(phi_v) < ranks.rank(exit_c));
        assert!(ranks.rank(f.param(0)) >= 1, "value ranks start at 1");
    }

    #[test]
    fn inst_positions_follow_rpo() {
        let (f, head, body, _exit) = looped();
        let rpo = Rpo::compute(&f);
        let ranks = Ranks::assign(&f, &rpo);
        let head_first = f.block_insts(head)[0];
        let body_first = f.block_insts(body)[0];
        assert!(ranks.inst_position(head_first) < ranks.inst_position(body_first));
    }
}
