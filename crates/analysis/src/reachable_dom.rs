//! The reachable dominator tree used by the paper's *complete* algorithm.
//!
//! The complete algorithm (§2.7) determines dominance from "the dominator
//! tree of the currently reachable portion of the CFG", built incrementally
//! as blocks and edges become reachable. The paper cites Sreedhar–Gao–Lee
//! incremental dominator computation and budgets O(E²) total time for it
//! (§4).
//!
//! **Substitution** (documented in `DESIGN.md`): instead of the SGL
//! edge-insertion algorithm we recompute the CHK dominator tree over the
//! currently reachable subgraph whenever the reachable edge set has grown
//! since the last query. Each recomputation is near-linear and at most
//! O(E) recomputations happen per GVN run, matching the paper's O(E²)
//! budget while keeping the exact same query interface and results (the
//! dominator tree of a graph does not depend on how it was built).

use crate::domtree::DomTree;
use crate::order::Rpo;
use pgvn_ir::{Block, Edge, EntityRef, EntitySet, Function};

/// Maintains the dominator tree of the subgraph induced by a growing set
/// of reachable edges.
#[derive(Debug)]
pub struct ReachableDomTree {
    /// Edges currently considered reachable.
    reachable_edges: EntitySet<Edge>,
    dirty: bool,
    idom: Vec<Option<Block>>,
    pre: Vec<u32>,
    post: Vec<u32>,
    in_tree: Vec<bool>,
}

impl ReachableDomTree {
    /// Creates the tree with only the entry block reachable.
    pub fn new(func: &Function) -> Self {
        let cap = func.block_capacity();
        let mut t = ReachableDomTree {
            reachable_edges: EntitySet::with_capacity(func.edge_capacity()),
            dirty: true,
            idom: vec![None; cap],
            pre: vec![0; cap],
            post: vec![0; cap],
            in_tree: vec![false; cap],
        };
        t.recompute(func);
        t
    }

    /// Marks `e` reachable; the tree refreshes lazily on the next query.
    pub fn add_edge(&mut self, e: Edge) {
        if self.reachable_edges.insert(e) {
            self.dirty = true;
        }
    }

    fn refresh(&mut self, func: &Function) {
        if self.dirty {
            self.recompute(func);
        }
    }

    fn recompute(&mut self, func: &Function) {
        // RPO over the subgraph following only reachable edges.
        let cap = func.block_capacity();
        let mut state = vec![0u8; cap];
        let mut postorder = Vec::new();
        let mut stack: Vec<(Block, usize)> = vec![(func.entry(), 0)];
        state[func.entry().index()] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = func.succs(b);
            if *next < succs.len() {
                let e = succs[*next];
                *next += 1;
                if !self.reachable_edges.contains(e) {
                    continue;
                }
                let s = func.edge_to(e);
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                postorder.push(b);
                stack.pop();
            }
        }
        postorder.reverse();
        let order = postorder;
        let number = {
            let mut m = vec![usize::MAX; cap];
            for (i, &b) in order.iter().enumerate() {
                m[b.index()] = i;
            }
            m
        };
        let preds = |i: usize, out: &mut Vec<usize>| {
            for &e in func.preds(order[i]) {
                if !self.reachable_edges.contains(e) {
                    continue;
                }
                let p = func.edge_from(e);
                if number[p.index()] != usize::MAX {
                    out.push(number[p.index()]);
                }
            }
        };
        let idom_pos = crate::domtree::chk_solve_public(order.len(), &preds);
        self.idom.iter_mut().for_each(|x| *x = None);
        self.in_tree.iter_mut().for_each(|x| *x = false);
        for (i, &b) in order.iter().enumerate() {
            self.in_tree[b.index()] = true;
            if idom_pos[i] != usize::MAX {
                self.idom[b.index()] = Some(order[idom_pos[i]]);
            }
        }
        let (pre, post, _) = crate::domtree::tree_intervals_public(cap, &order, &self.idom);
        self.pre = pre;
        self.post = post;
        self.dirty = false;
    }

    /// The immediate dominator of `b` in the reachable subgraph. The entry
    /// returns itself; blocks not currently reachable return `None`.
    pub fn idom(&mut self, func: &Function, b: Block) -> Option<Block> {
        self.refresh(func);
        self.idom[b.index()]
    }

    /// Returns `true` if `a` dominates `b` within the reachable subgraph.
    pub fn dominates(&mut self, func: &Function, a: Block, b: Block) -> bool {
        self.refresh(func);
        if !self.in_tree[a.index()] || !self.in_tree[b.index()] {
            return false;
        }
        self.pre[a.index()] <= self.pre[b.index()] && self.post[b.index()] <= self.post[a.index()]
    }

    /// Returns `true` if `b` is in the currently reachable subgraph.
    pub fn is_reachable(&mut self, func: &Function, b: Block) -> bool {
        self.refresh(func);
        self.in_tree[b.index()]
    }
}

/// Convenience: the full-graph dominator tree as a `(Rpo, DomTree)` pair.
pub fn full_domtree(func: &Function) -> (Rpo, DomTree) {
    let rpo = Rpo::compute(func);
    let dt = DomTree::compute(func, &rpo);
    (rpo, dt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_ir::CmpOp;

    #[test]
    fn starts_with_entry_only() {
        let mut f = Function::new("f", 1);
        let entry = f.entry();
        let b = f.add_block();
        f.set_jump(entry, b);
        let z = f.iconst(b, 0);
        f.set_return(b, z);
        let mut rdt = ReachableDomTree::new(&f);
        assert!(rdt.is_reachable(&f, entry));
        assert!(!rdt.is_reachable(&f, b));
        assert_eq!(rdt.idom(&f, entry), Some(entry));
        assert_eq!(rdt.idom(&f, b), None);
    }

    #[test]
    fn grows_as_edges_become_reachable() {
        // entry -> (t | e) -> j; initially only the true edge reachable,
        // so j's idom is t; after adding the false path, j's idom becomes
        // entry.
        let mut f = Function::new("f", 2);
        let entry = f.entry();
        let (t, e, j) = (f.add_block(), f.add_block(), f.add_block());
        let c = f.cmp(entry, CmpOp::Lt, f.param(0), f.param(1));
        let (te, ee) = f.set_branch(entry, c, t, e);
        let tj = f.set_jump(t, j);
        let ej = f.set_jump(e, j);
        let z = f.iconst(j, 0);
        f.set_return(j, z);

        let mut rdt = ReachableDomTree::new(&f);
        rdt.add_edge(te);
        rdt.add_edge(tj);
        assert!(rdt.is_reachable(&f, j));
        assert_eq!(rdt.idom(&f, j), Some(t));
        assert!(rdt.dominates(&f, t, j));

        rdt.add_edge(ee);
        rdt.add_edge(ej);
        assert_eq!(rdt.idom(&f, j), Some(entry));
        assert!(!rdt.dominates(&f, t, j));
        assert!(rdt.dominates(&f, entry, j));
    }

    #[test]
    fn matches_full_tree_when_everything_reachable() {
        let mut f = Function::new("f", 2);
        let entry = f.entry();
        let (a, b, c_blk) = (f.add_block(), f.add_block(), f.add_block());
        let c = f.cmp(entry, CmpOp::Gt, f.param(0), f.param(1));
        f.set_branch(entry, c, a, b);
        f.set_jump(a, c_blk);
        f.set_jump(b, c_blk);
        let z = f.iconst(c_blk, 0);
        f.set_return(c_blk, z);
        let mut rdt = ReachableDomTree::new(&f);
        for e in f.edges() {
            rdt.add_edge(e);
        }
        let (_, dt) = full_domtree(&f);
        for x in f.blocks() {
            assert_eq!(rdt.idom(&f, x), dt.idom(x), "idom({x})");
            for y in f.blocks() {
                assert_eq!(rdt.dominates(&f, x, y), dt.dominates(x, y), "dom({x},{y})");
            }
        }
    }
}
