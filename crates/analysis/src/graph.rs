//! Graph-generic dominance utilities.
//!
//! The analyses in the rest of this crate are specialized to
//! [`pgvn_ir::Function`]. SSA *construction*, however, runs on the pre-SSA
//! variable CFG (`pgvn-ssa`'s `VarFunction`), which is not a `Function`
//! yet. This module provides the same algorithms over an abstract graph
//! given as adjacency closures: nodes are `0..n`, node `root` is the entry.

/// Reverse postorder of the nodes reachable from `root`.
///
/// `succs(u, out)` must push `u`'s successors into `out`.
pub fn generic_rpo(n: usize, root: usize, succs: &dyn Fn(usize, &mut Vec<usize>)) -> Vec<usize> {
    let mut state = vec![0u8; n];
    let mut postorder = Vec::new();
    let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
    let mut succ_buf: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut fetched = vec![false; n];
    state[root] = 1;
    while let Some(&mut (u, ref mut next)) = stack.last_mut() {
        if !fetched[u] {
            succs(u, &mut succ_buf[u]);
            fetched[u] = true;
        }
        if *next < succ_buf[u].len() {
            let v = succ_buf[u][*next];
            *next += 1;
            if state[v] == 0 {
                state[v] = 1;
                stack.push((v, 0));
            }
        } else {
            state[u] = 2;
            postorder.push(u);
            stack.pop();
        }
    }
    postorder.reverse();
    postorder
}

/// A dominator tree over an abstract graph.
#[derive(Clone, Debug)]
pub struct GenericDomTree {
    /// Immediate dominator per node (`usize::MAX` for unreachable; root
    /// maps to itself).
    idom: Vec<usize>,
    /// Nodes in reverse postorder.
    order: Vec<usize>,
    pre: Vec<u32>,
    post: Vec<u32>,
}

impl GenericDomTree {
    /// Computes dominators of the graph with `n` nodes rooted at `root`.
    ///
    /// `preds(u, out)` must push `u`'s predecessors into `out`.
    /// `succs(u, out)` must push `u`'s successors into `out`.
    pub fn compute(
        n: usize,
        root: usize,
        succs: &dyn Fn(usize, &mut Vec<usize>),
        preds: &dyn Fn(usize, &mut Vec<usize>),
    ) -> Self {
        let order = generic_rpo(n, root, succs);
        let mut number = vec![usize::MAX; n];
        for (i, &u) in order.iter().enumerate() {
            number[u] = i;
        }
        let pred_pos = |i: usize, out: &mut Vec<usize>| {
            let mut raw = Vec::new();
            preds(order[i], &mut raw);
            for p in raw {
                if number[p] != usize::MAX {
                    out.push(number[p]);
                }
            }
        };
        let idom_pos = crate::domtree::chk_solve_public(order.len(), &pred_pos);
        let mut idom = vec![usize::MAX; n];
        for (i, &u) in order.iter().enumerate() {
            if idom_pos[i] != usize::MAX {
                idom[u] = order[idom_pos[i]];
            }
        }
        // Intervals over the tree.
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &u in &order {
            let p = idom[u];
            if p != usize::MAX && p != u {
                children[p].push(u);
            }
        }
        let mut pre = vec![0u32; n];
        let mut post = vec![0u32; n];
        let mut clock = 0u32;
        let mut stack = vec![(root, 0usize)];
        clock += 1;
        pre[root] = clock;
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            if *next < children[u].len() {
                let c = children[u][*next];
                *next += 1;
                clock += 1;
                pre[c] = clock;
                stack.push((c, 0));
            } else {
                clock += 1;
                post[u] = clock;
                stack.pop();
            }
        }
        GenericDomTree { idom, order, pre, post }
    }

    /// Nodes in reverse postorder.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The immediate dominator of `u`, or `None` for unreachable nodes.
    /// The root's idom is itself.
    pub fn idom(&self, u: usize) -> Option<usize> {
        (self.idom[u] != usize::MAX).then_some(self.idom[u])
    }

    /// Returns `true` if `u` is reachable from the root.
    pub fn is_reachable(&self, u: usize) -> bool {
        self.idom[u] != usize::MAX
    }

    /// Returns `true` if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        self.is_reachable(a)
            && self.is_reachable(b)
            && self.pre[a] <= self.pre[b]
            && self.post[b] <= self.post[a]
    }

    /// Children of `u` in the dominator tree, in RPO order.
    pub fn children(&self, u: usize) -> Vec<usize> {
        self.order.iter().copied().filter(|&c| c != u && self.idom[c] == u).collect()
    }

    /// Dominance frontiers of every node (Cytron's algorithm).
    ///
    /// `preds(u, out)` must push `u`'s predecessors into `out`.
    pub fn frontiers(&self, preds: &dyn Fn(usize, &mut Vec<usize>)) -> Vec<Vec<usize>> {
        let n = self.idom.len();
        let mut df: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut buf = Vec::new();
        for &b in &self.order {
            buf.clear();
            preds(b, &mut buf);
            let reachable_preds: Vec<usize> =
                buf.iter().copied().filter(|&p| self.is_reachable(p)).collect();
            if reachable_preds.len() < 2 {
                continue;
            }
            let idom_b = self.idom[b];
            for p in reachable_preds {
                let mut runner = p;
                while runner != idom_b {
                    if !df[runner].contains(&b) {
                        df[runner].push(b);
                    }
                    runner = self.idom[runner];
                }
            }
        }
        df
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -> 1 -> {2, 3} -> 4 -> 1 (back), 1 -> 5
    fn graph() -> (usize, Vec<Vec<usize>>) {
        let succs = vec![
            vec![1],       // 0
            vec![2, 3, 5], // 1 (pretend 3-way)
            vec![4],       // 2
            vec![4],       // 3
            vec![1],       // 4
            vec![],        // 5
        ];
        (6, succs)
    }

    #[allow(clippy::type_complexity)]
    fn closures(
        succs: &[Vec<usize>],
    ) -> (impl Fn(usize, &mut Vec<usize>) + '_, impl Fn(usize, &mut Vec<usize>) + '_) {
        let s = move |u: usize, out: &mut Vec<usize>| out.extend(succs[u].iter().copied());
        let p = move |u: usize, out: &mut Vec<usize>| {
            for (v, ss) in succs.iter().enumerate() {
                if ss.contains(&u) {
                    out.push(v);
                }
            }
        };
        (s, p)
    }

    #[test]
    fn rpo_starts_at_root() {
        let (n, succs) = graph();
        let (s, _) = closures(&succs);
        let order = generic_rpo(n, 0, &s);
        assert_eq!(order[0], 0);
        assert_eq!(order.len(), 6);
        let pos = |u: usize| order.iter().position(|&x| x == u).unwrap();
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(4) || pos(3) < pos(4));
    }

    #[test]
    fn dominators_of_loop_diamond() {
        let (n, succs) = graph();
        let (s, p) = closures(&succs);
        let dt = GenericDomTree::compute(n, 0, &s, &p);
        assert_eq!(dt.idom(0), Some(0));
        assert_eq!(dt.idom(1), Some(0));
        assert_eq!(dt.idom(2), Some(1));
        assert_eq!(dt.idom(3), Some(1));
        assert_eq!(dt.idom(4), Some(1));
        assert_eq!(dt.idom(5), Some(1));
        assert!(dt.dominates(1, 4));
        assert!(!dt.dominates(2, 4));
        let mut kids = dt.children(1);
        kids.sort_unstable();
        assert_eq!(kids, vec![2, 3, 4, 5]);
    }

    #[test]
    fn frontiers_of_loop_diamond() {
        let (n, succs) = graph();
        let (s, p) = closures(&succs);
        let dt = GenericDomTree::compute(n, 0, &s, &p);
        let df = dt.frontiers(&p);
        assert_eq!(df[2], vec![4]);
        assert_eq!(df[3], vec![4]);
        assert!(df[4].contains(&1)); // back edge puts header in latch's DF
        assert!(df[5].is_empty());
    }

    #[test]
    fn unreachable_nodes_excluded() {
        let succs = vec![vec![1], vec![], vec![1]]; // node 2 unreachable
        let (s, p) = closures(&succs);
        let dt = GenericDomTree::compute(3, 0, &s, &p);
        assert!(!dt.is_reachable(2));
        assert_eq!(dt.idom(2), None);
        assert!(!dt.dominates(2, 1));
        // Node 1's idom ignores the unreachable predecessor 2.
        assert_eq!(dt.idom(1), Some(0));
    }
}
