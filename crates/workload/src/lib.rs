//! # pgvn-workload — the synthetic evaluation workload
//!
//! The paper's measurements run on the SPEC CINT2000 C benchmarks through
//! HP's PA-RISC compiler. Neither is available to this reproduction, so —
//! per the substitution policy in `DESIGN.md` — this crate generates a
//! deterministic, seeded stand-in suite: ten benchmark profiles named and
//! proportioned after the paper's Table 1 rows, whose routines contain
//! the same *kinds* of opportunities the paper's analyses exploit
//! (redundancies, dead branches, inference guards, φ-predication
//! diamonds, cyclic values).
//!
//! ```
//! use pgvn_workload::{spec_suite, SuiteConfig};
//!
//! let suite = spec_suite(SuiteConfig { scale: 0.01, ..Default::default() });
//! assert_eq!(suite.len(), 10);
//! let f = suite[0].routine(0);
//! pgvn_ir::verify(&f)?;
//! # Ok::<(), pgvn_ir::VerifyError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gen;
pub mod histogram;
pub mod suite;

pub use gen::{generate_function, generate_routine, GenConfig};
pub use histogram::Histogram;
pub use suite::{
    dump_benchmark, spec_suite, Benchmark, BenchmarkProfile, SuiteConfig, SPEC_CINT2000,
};
