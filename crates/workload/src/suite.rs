//! The SPEC CINT2000 stand-in suite.
//!
//! The paper evaluates on the SPEC CINT2000 C benchmarks compiled by HP's
//! PA-RISC compiler — neither of which is available here. As documented in
//! `DESIGN.md`, the suite is *simulated*: each benchmark is a named
//! profile (routine count, size distribution, structural character) that
//! deterministically generates routines through [`crate::generate_function`].
//! Routine counts are proportioned like the real suite (176.gcc dominates,
//! 181.mcf is tiny), scaled by [`SuiteConfig::scale`]; 256.bzip2 is
//! excluded exactly as in the paper (§5).

use crate::gen::{generate_function, GenConfig};
use pgvn_ir::Function;
use pgvn_ssa::SsaStyle;

/// The shape of one benchmark's generated routines.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name (SPEC CINT2000 naming).
    pub name: &'static str,
    /// Routine count at scale 1.0.
    pub base_routines: usize,
    /// Mean statements per routine.
    pub mean_stmts: usize,
    /// Probability weight for loops (loop-heavy codes like vpr/twolf).
    pub loop_prob: f64,
    /// Probability weight for inference opportunities (branchy codes).
    pub inference_prob: f64,
    /// Probability of opaque leaves (call-heavy codes like perlbmk/gap).
    pub opaque_prob: f64,
}

/// The ten profiles used throughout the evaluation (paper Table 1/2 rows).
pub const SPEC_CINT2000: [BenchmarkProfile; 10] = [
    BenchmarkProfile {
        name: "164.gzip",
        base_routines: 63,
        mean_stmts: 45,
        loop_prob: 0.45,
        inference_prob: 0.12,
        opaque_prob: 0.06,
    },
    BenchmarkProfile {
        name: "175.vpr",
        base_routines: 255,
        mean_stmts: 42,
        loop_prob: 0.40,
        inference_prob: 0.14,
        opaque_prob: 0.07,
    },
    BenchmarkProfile {
        name: "176.gcc",
        base_routines: 2019,
        mean_stmts: 55,
        loop_prob: 0.25,
        inference_prob: 0.20,
        opaque_prob: 0.10,
    },
    BenchmarkProfile {
        name: "181.mcf",
        base_routines: 24,
        mean_stmts: 40,
        loop_prob: 0.50,
        inference_prob: 0.10,
        opaque_prob: 0.04,
    },
    BenchmarkProfile {
        name: "186.crafty",
        base_routines: 106,
        mean_stmts: 70,
        loop_prob: 0.30,
        inference_prob: 0.18,
        opaque_prob: 0.05,
    },
    BenchmarkProfile {
        name: "197.parser",
        base_routines: 323,
        mean_stmts: 38,
        loop_prob: 0.28,
        inference_prob: 0.18,
        opaque_prob: 0.08,
    },
    BenchmarkProfile {
        name: "253.perlbmk",
        base_routines: 1059,
        mean_stmts: 40,
        loop_prob: 0.22,
        inference_prob: 0.16,
        opaque_prob: 0.12,
    },
    BenchmarkProfile {
        name: "254.gap",
        base_routines: 854,
        mean_stmts: 44,
        loop_prob: 0.26,
        inference_prob: 0.15,
        opaque_prob: 0.11,
    },
    BenchmarkProfile {
        name: "255.vortex",
        base_routines: 923,
        mean_stmts: 36,
        loop_prob: 0.20,
        inference_prob: 0.17,
        opaque_prob: 0.12,
    },
    BenchmarkProfile {
        name: "300.twolf",
        base_routines: 167,
        mean_stmts: 60,
        loop_prob: 0.42,
        inference_prob: 0.13,
        opaque_prob: 0.06,
    },
];

/// Suite-wide generation settings.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SuiteConfig {
    /// Fraction of each benchmark's base routine count to generate
    /// (1.0 reproduces the full ~5800-routine suite; tests use less).
    pub scale: f64,
    /// Global seed; combined with the benchmark name and routine index.
    pub seed: u64,
    /// SSA construction style for the generated functions.
    pub style: SsaStyle,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig { scale: 0.1, seed: 0x5EED, style: SsaStyle::Minimal }
    }
}

/// One generated benchmark: its profile and routine factory.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// The profile this benchmark was generated from.
    pub profile: BenchmarkProfile,
    cfg: SuiteConfig,
    count: usize,
}

impl Benchmark {
    /// Number of routines this benchmark generates.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Returns `true` if no routines would be generated.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The (identifier-safe) name of routine `i`.
    fn routine_name(&self, i: usize) -> String {
        format!("b{}_{i}", self.profile.name.replace('.', "_"))
    }

    /// The generator configuration of routine `i` (shared by
    /// [`Benchmark::routine`] and [`dump_benchmark`]).
    fn gen_config(&self, i: usize, seed: u64) -> GenConfig {
        let p = &self.profile;
        // Mix of sizes: mostly near the mean, a heavy tail of big ones.
        let bucket = i % 10;
        let target = match bucket {
            0..=5 => p.mean_stmts / 2 + (i % 7) * p.mean_stmts / 8,
            6..=8 => p.mean_stmts + (i % 5) * p.mean_stmts / 4,
            _ => p.mean_stmts * 3,
        };
        GenConfig {
            seed,
            num_params: 2 + i % 3,
            target_stmts: target.max(6),
            max_depth: 3 + (i % 3),
            loop_prob: p.loop_prob,
            inference_prob: p.inference_prob,
            opaque_prob: p.opaque_prob,
            ..GenConfig::default()
        }
    }

    /// Generates routine `i` (deterministic in the suite config).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn routine(&self, i: usize) -> Function {
        assert!(i < self.count, "routine index out of range");
        let p = &self.profile;
        let seed = self
            .cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(fxhash(p.name))
            .wrapping_add(i as u64);
        let gen = self.gen_config(i, seed);
        generate_function(&self.routine_name(i), &gen, self.cfg.style)
    }

    /// Iterates over all routines.
    pub fn routines(&self) -> impl Iterator<Item = Function> + '_ {
        (0..self.count).map(|i| self.routine(i))
    }
}

fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Writes every routine of `bench` as a `.pg` source file under `dir`
/// (using the `pgvn-lang` pretty-printer), so the suite can be inspected
/// or replayed through the `pgvn` CLI.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn dump_benchmark(bench: &Benchmark, dir: &std::path::Path) -> std::io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    let mut written = 0;
    for i in 0..bench.len() {
        let seed = bench
            .cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(fxhash(bench.profile.name))
            .wrapping_add(i as u64);
        let gen = bench.gen_config(i, seed);
        let routine = crate::generate_routine(&bench.routine_name(i), &gen);
        let text = pgvn_lang::print_routine(&routine);
        std::fs::write(dir.join(format!("{}.pg", bench.routine_name(i))), text)?;
        written += 1;
    }
    Ok(written)
}

/// Builds the scaled SPEC CINT2000 stand-in suite.
pub fn spec_suite(cfg: SuiteConfig) -> Vec<Benchmark> {
    SPEC_CINT2000
        .iter()
        .map(|&profile| Benchmark {
            profile,
            cfg,
            count: ((profile.base_routines as f64 * cfg.scale).round() as usize).max(1),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_ten_benchmarks_scaled() {
        let suite = spec_suite(SuiteConfig { scale: 0.01, ..Default::default() });
        assert_eq!(suite.len(), 10);
        let gcc = suite.iter().find(|b| b.profile.name == "176.gcc").unwrap();
        let mcf = suite.iter().find(|b| b.profile.name == "181.mcf").unwrap();
        assert!(gcc.len() > mcf.len(), "gcc dominates the suite");
        assert_eq!(mcf.len(), 1, "scale floor is one routine");
    }

    #[test]
    fn routines_are_deterministic() {
        let cfg = SuiteConfig { scale: 0.02, ..Default::default() };
        let a = spec_suite(cfg)[0].routine(0);
        let b = spec_suite(cfg)[0].routine(0);
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn different_benchmarks_differ() {
        let cfg = SuiteConfig { scale: 0.02, ..Default::default() };
        let suite = spec_suite(cfg);
        assert_ne!(suite[0].routine(0).to_string(), suite[1].routine(0).to_string());
    }

    #[test]
    fn dumped_sources_recompile_equivalently() {
        use pgvn_ir::{HashedOpaques, Interpreter};
        let cfg = SuiteConfig { scale: 0.004, ..Default::default() };
        let bench = &spec_suite(cfg)[0];
        let dir = std::env::temp_dir().join("pgvn-suite-dump-test");
        let n = dump_benchmark(bench, &dir).expect("dump succeeds");
        assert_eq!(n, bench.len());
        for i in 0..bench.len() {
            let name = format!("b{}_{i}.pg", bench.profile.name.replace('.', "_"));
            let text = std::fs::read_to_string(dir.join(&name)).expect("file written");
            // Negative literals print as `0 - n`, so the recompiled
            // function is not textually identical — check semantics.
            let reparsed = pgvn_lang::compile(&text, cfg.style).expect("recompiles");
            let original = bench.routine(i);
            for args in [[0i64, 0, 0], [5, -3, 9]] {
                let mut o1 = HashedOpaques::new(7);
                let mut o2 = HashedOpaques::new(7);
                let a = Interpreter::new(&original).fuel(5_000_000).run(&args, &mut o1).unwrap();
                let b = Interpreter::new(&reparsed).fuel(5_000_000).run(&args, &mut o2).unwrap();
                assert_eq!(a, b, "{name} args {args:?}");
            }
        }
    }

    #[test]
    fn all_small_scale_routines_verify() {
        let cfg = SuiteConfig { scale: 0.005, ..Default::default() };
        for bench in spec_suite(cfg) {
            for f in bench.routines() {
                pgvn_ir::verify(&f).unwrap_or_else(|e| panic!("{}: {e}", f.name()));
            }
        }
    }
}
