//! Seeded random generation of structured routines.
//!
//! The generator produces ASTs in the `pgvn-lang` source language with
//! *bounded* loops (every generated loop has a dedicated counter and a
//! small constant trip count), so generated routines always terminate —
//! a requirement for the interpreter-based soundness property tests.
//!
//! Besides generic arithmetic/control structure, the generator plants the
//! specific opportunities the paper's analyses exploit, each with its own
//! probability knob:
//!
//! - textual redundancies (for plain value numbering);
//! - constant-guarded dead branches (for unreachable code elimination,
//!   some requiring constant propagation to expose);
//! - commuted/reassociated expression twins (for global reassociation);
//! - equality guards over variables and constants (for value inference)
//!   and comparison guards (for predicate inference);
//! - repeated same-predicate diamonds (for φ-predication);
//! - loop-invariant cyclic updates and twin counters (for optimistic
//!   value numbering of cyclic values).

use pgvn_ir::{BinOp, CmpOp, UnOp};
use pgvn_lang::{Expr, Routine, Stmt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs for routine generation.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// RNG seed; equal configs generate identical routines.
    pub seed: u64,
    /// Number of routine parameters.
    pub num_params: usize,
    /// Approximate number of statements to generate.
    pub target_stmts: usize,
    /// Maximum nesting depth of control structures.
    pub max_depth: usize,
    /// Probability that a control statement is a loop (vs a conditional).
    pub loop_prob: f64,
    /// Probability of planting a redundancy pair at a statement slot.
    pub redundancy_prob: f64,
    /// Probability of planting a constant-guarded dead branch.
    pub unreachable_prob: f64,
    /// Probability of planting an inference opportunity.
    pub inference_prob: f64,
    /// Probability of planting a φ-predication diamond pair.
    pub diamond_prob: f64,
    /// Probability of planting correlated branch conditions: repeated,
    /// nested or complementary guards over the same compare, which only
    /// predicate inference can fold.
    pub correlated_prob: f64,
    /// Probability of planting cyclic-value patterns inside loops.
    pub cyclic_prob: f64,
    /// Probability that a leaf expression is an opaque call.
    pub opaque_prob: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0,
            num_params: 3,
            target_stmts: 40,
            max_depth: 4,
            loop_prob: 0.3,
            redundancy_prob: 0.15,
            unreachable_prob: 0.08,
            inference_prob: 0.15,
            diamond_prob: 0.08,
            correlated_prob: 0.1,
            cyclic_prob: 0.35,
            opaque_prob: 0.08,
        }
    }
}

struct Gen {
    rng: StdRng,
    cfg: GenConfig,
    vars: Vec<String>,
    next_var: usize,
    next_opaque: u32,
    stmts_budget: isize,
}

impl Gen {
    fn fresh_var(&mut self) -> String {
        let name = format!("t{}", self.next_var);
        self.next_var += 1;
        self.vars.push(name.clone());
        name
    }

    /// A variable kept out of the reuse pool, so the generated body can
    /// never reassign it. Used for loop counters: termination of every
    /// generated loop depends on the counter being updated exactly once.
    fn fresh_hidden_var(&mut self) -> String {
        let name = format!("h{}", self.next_var);
        self.next_var += 1;
        name
    }

    fn pick_var(&mut self) -> String {
        let i = self.rng.gen_range(0..self.vars.len());
        self.vars[i].clone()
    }

    fn small_const(&mut self) -> i64 {
        *[0, 1, 2, 3, 4, 5, 7, 9, 10, 16, -1, -3, 100]
            .get(self.rng.gen_range(0..13))
            .expect("index in range")
    }

    fn leaf(&mut self) -> Expr {
        let r: f64 = self.rng.gen();
        if r < self.cfg.opaque_prob {
            let t = self.next_opaque;
            self.next_opaque += 1;
            Expr::Opaque(t)
        } else if r < 0.45 {
            Expr::Int(self.small_const())
        } else {
            Expr::Var(self.pick_var())
        }
    }

    fn expr(&mut self, depth: usize) -> Expr {
        if depth == 0 || self.rng.gen_bool(0.35) {
            return self.leaf();
        }
        let ops = [
            BinOp::Add,
            BinOp::Add,
            BinOp::Add,
            BinOp::Sub,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
        ];
        match self.rng.gen_range(0..10) {
            0 => Expr::Unary(
                if self.rng.gen_bool(0.6) { UnOp::Neg } else { UnOp::Not },
                Box::new(self.expr(depth - 1)),
            ),
            1 => Expr::Cmp(
                self.cmp_op(),
                Box::new(self.expr(depth - 1)),
                Box::new(self.expr(depth - 1)),
            ),
            _ => {
                let op = ops[self.rng.gen_range(0..ops.len())];
                Expr::Binary(op, Box::new(self.expr(depth - 1)), Box::new(self.expr(depth - 1)))
            }
        }
    }

    fn cmp_op(&mut self) -> CmpOp {
        CmpOp::ALL[self.rng.gen_range(0..6)]
    }

    fn predicate(&mut self) -> Expr {
        // Comparisons between a variable and a constant or another
        // variable — the shapes inference understands.
        let lhs = Expr::Var(self.pick_var());
        let rhs = if self.rng.gen_bool(0.6) {
            Expr::Int(self.small_const())
        } else {
            Expr::Var(self.pick_var())
        };
        Expr::Cmp(self.cmp_op(), Box::new(lhs), Box::new(rhs))
    }

    fn assign_random(&mut self) -> Stmt {
        let e = self.expr(3);
        let var = if self.rng.gen_bool(0.5) && !self.vars.is_empty() {
            self.pick_var()
        } else {
            self.fresh_var()
        };
        Stmt::Assign(var, e)
    }

    /// `a = E; b = E; use = a - b` — a textual redundancy pair.
    fn plant_redundancy(&mut self, out: &mut Vec<Stmt>) {
        let e = self.expr(2);
        let a = self.fresh_var();
        let b = self.fresh_var();
        let u = self.fresh_var();
        out.push(Stmt::Assign(a.clone(), e.clone()));
        out.push(Stmt::Assign(b.clone(), e));
        out.push(Stmt::Assign(
            u,
            Expr::Binary(BinOp::Sub, Box::new(Expr::Var(a)), Box::new(Expr::Var(b))),
        ));
    }

    /// A commuted/reassociated twin: `a = x + y + c; b = c + y + x`.
    fn plant_reassociation(&mut self, out: &mut Vec<Stmt>) {
        let x = self.pick_var();
        let y = self.pick_var();
        let c = self.small_const();
        let a = self.fresh_var();
        let b = self.fresh_var();
        let lhs = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Binary(
                BinOp::Add,
                Box::new(Expr::Var(x.clone())),
                Box::new(Expr::Var(y.clone())),
            )),
            Box::new(Expr::Int(c)),
        );
        let rhs = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Binary(BinOp::Add, Box::new(Expr::Int(c)), Box::new(Expr::Var(y)))),
            Box::new(Expr::Var(x)),
        );
        out.push(Stmt::Assign(a.clone(), lhs));
        out.push(Stmt::Assign(b.clone(), rhs));
        let u = self.fresh_var();
        out.push(Stmt::Assign(
            u,
            Expr::Binary(BinOp::Sub, Box::new(Expr::Var(a)), Box::new(Expr::Var(b))),
        ));
    }

    /// A dead branch guarded by a constant condition; with probability
    /// one half the constant is derived (needs constant propagation).
    fn plant_unreachable(&mut self, depth: usize, out: &mut Vec<Stmt>) {
        let body = vec![self.assign_random(), self.assign_random()];
        if self.rng.gen_bool(0.5) {
            // Direct: if (3 > 5) …
            out.push(Stmt::If(
                Expr::Cmp(CmpOp::Gt, Box::new(Expr::Int(3)), Box::new(Expr::Int(5))),
                body,
                Vec::new(),
            ));
        } else {
            // Derived: k = 2; if (k > 5) …
            let k = self.fresh_var();
            out.push(Stmt::Assign(k.clone(), Expr::Int(2)));
            out.push(Stmt::If(
                Expr::Cmp(CmpOp::Gt, Box::new(Expr::Var(k)), Box::new(Expr::Int(5))),
                body,
                if depth > 0 && self.rng.gen_bool(0.3) {
                    vec![self.assign_random()]
                } else {
                    Vec::new()
                },
            ));
        }
    }

    /// A switch over a variable: exercises multi-way edges, case-edge
    /// equality predicates (value inference) and switch φ-predication.
    fn plant_switch(&mut self, depth: usize, out: &mut Vec<Stmt>) {
        let x = self.pick_var();
        let r = self.fresh_var();
        let n_cases = self.rng.gen_range(2..5usize);
        let mut cases = Vec::new();
        let mut used = Vec::new();
        for _ in 0..n_cases {
            let mut c = self.small_const();
            while used.contains(&c) {
                c = c.wrapping_add(1);
            }
            used.push(c);
            let body = if depth > 0 && self.rng.gen_bool(0.3) {
                self.stmts(depth - 1, 2)
            } else {
                vec![Stmt::Assign(r.clone(), self.expr(2))]
            };
            cases.push((c, body));
        }
        let default = if self.rng.gen_bool(0.7) {
            vec![Stmt::Assign(r.clone(), self.expr(2))]
        } else {
            Vec::new()
        };
        out.push(Stmt::Switch(Expr::Var(x), cases, default));
    }

    /// `if (x == C) { y = x op D }` — value inference makes y constant; or
    /// `if (x < C) { y = (x >= C) }` — predicate inference folds y.
    fn plant_inference(&mut self, out: &mut Vec<Stmt>) {
        let x = self.pick_var();
        let y = self.fresh_var();
        if self.rng.gen_bool(0.5) {
            let c = self.small_const();
            let d = self.small_const();
            out.push(Stmt::If(
                Expr::Cmp(CmpOp::Eq, Box::new(Expr::Var(x.clone())), Box::new(Expr::Int(c))),
                vec![Stmt::Assign(
                    y,
                    Expr::Binary(BinOp::Add, Box::new(Expr::Var(x)), Box::new(Expr::Int(d))),
                )],
                Vec::new(),
            ));
        } else {
            let c = self.small_const();
            out.push(Stmt::If(
                Expr::Cmp(CmpOp::Lt, Box::new(Expr::Var(x.clone())), Box::new(Expr::Int(c))),
                vec![Stmt::Assign(
                    y,
                    Expr::Cmp(CmpOp::Ge, Box::new(Expr::Var(x)), Box::new(Expr::Int(c))),
                )],
                Vec::new(),
            ));
        }
    }

    /// Correlated branch conditions over one compare `x ⋈ c`:
    ///
    /// - *twin guards*: two separate `if (x ⋈ c)` regions, the second
    ///   re-evaluating the guard — predicate inference knows the compare
    ///   is true on the guarded path and folds it;
    /// - *nested guards*: `if (x ⋈ c) { if (x ⋈ c) … else … }` — the
    ///   inner else-arm is unreachable to predicate inference only;
    /// - *complementary guards*: `if (x ⋈ c) … ; if (x !⋈ c) { y = (x ⋈ c) }`
    ///   — the negated guard dominates a compare known false.
    fn plant_correlated(&mut self, out: &mut Vec<Stmt>) {
        let x = self.pick_var();
        let op = self.cmp_op();
        let c = self.small_const();
        let cond = |op: CmpOp, x: &str, c: i64| {
            Expr::Cmp(op, Box::new(Expr::Var(x.to_string())), Box::new(Expr::Int(c)))
        };
        match self.rng.gen_range(0..3) {
            0 => {
                let a = self.fresh_var();
                let b = self.fresh_var();
                out.push(Stmt::If(
                    cond(op, &x, c),
                    vec![Stmt::Assign(a, self.expr(2))],
                    Vec::new(),
                ));
                out.push(self.assign_random());
                out.push(Stmt::If(
                    cond(op, &x, c),
                    vec![Stmt::Assign(b, cond(op, &x, c))],
                    Vec::new(),
                ));
            }
            1 => {
                let a = self.fresh_var();
                let b = self.fresh_var();
                out.push(Stmt::If(
                    cond(op, &x, c),
                    vec![Stmt::If(
                        cond(op, &x, c),
                        vec![Stmt::Assign(a, self.expr(2))],
                        vec![Stmt::Assign(b, self.expr(2))],
                    )],
                    Vec::new(),
                ));
            }
            _ => {
                let neg = op.negated();
                let a = self.fresh_var();
                let y = self.fresh_var();
                out.push(Stmt::If(
                    cond(op, &x, c),
                    vec![Stmt::Assign(a, self.expr(2))],
                    Vec::new(),
                ));
                out.push(Stmt::If(
                    cond(neg, &x, c),
                    vec![Stmt::Assign(y, cond(op, &x, c))],
                    Vec::new(),
                ));
            }
        }
    }

    /// Two diamonds over the same predicate selecting the same values —
    /// only φ-predication proves the two merged results congruent.
    fn plant_diamonds(&mut self, out: &mut Vec<Stmt>) {
        let p = self.pick_var();
        let c = self.small_const();
        let x = self.pick_var();
        let y = self.pick_var();
        let a = self.fresh_var();
        let b = self.fresh_var();
        let cond = || Expr::Cmp(CmpOp::Lt, Box::new(Expr::Var(p.clone())), Box::new(Expr::Int(c)));
        out.push(Stmt::If(
            cond(),
            vec![Stmt::Assign(a.clone(), Expr::Var(x.clone()))],
            vec![Stmt::Assign(a.clone(), Expr::Var(y.clone()))],
        ));
        out.push(self.assign_random());
        out.push(Stmt::If(
            cond(),
            vec![Stmt::Assign(b.clone(), Expr::Var(x))],
            vec![Stmt::Assign(b.clone(), Expr::Var(y))],
        ));
        let u = self.fresh_var();
        out.push(Stmt::Assign(
            u,
            Expr::Binary(BinOp::Sub, Box::new(Expr::Var(a)), Box::new(Expr::Var(b))),
        ));
    }

    /// A bounded loop; its body may carry planted cyclic patterns.
    fn bounded_loop(&mut self, depth: usize) -> Vec<Stmt> {
        let counter = self.fresh_hidden_var();
        let trip = self.rng.gen_range(1..8i64);
        let mut body = Vec::new();
        let mut prologue: Vec<Stmt> = vec![Stmt::Assign(counter.clone(), Expr::Int(0))];
        if self.rng.gen_bool(self.cfg.cyclic_prob) {
            if self.rng.gen_bool(0.5) {
                // Loop-invariant cyclic value: inv = inv + 0 each trip.
                let inv = self.fresh_var();
                prologue.push(Stmt::Assign(inv.clone(), Expr::Int(self.small_const())));
                body.push(Stmt::Assign(
                    inv.clone(),
                    Expr::Binary(BinOp::Add, Box::new(Expr::Var(inv)), Box::new(Expr::Int(0))),
                ));
            } else {
                // Twin cyclic counters: congruent under optimism only.
                let c1 = self.fresh_var();
                let c2 = self.fresh_var();
                prologue.push(Stmt::Assign(c1.clone(), Expr::Int(0)));
                prologue.push(Stmt::Assign(c2.clone(), Expr::Int(0)));
                let step = self.rng.gen_range(1..4i64);
                for c in [&c1, &c2] {
                    body.push(Stmt::Assign(
                        c.clone(),
                        Expr::Binary(
                            BinOp::Add,
                            Box::new(Expr::Var(c.clone())),
                            Box::new(Expr::Int(step)),
                        ),
                    ));
                }
                let u = self.fresh_var();
                body.push(Stmt::Assign(
                    u,
                    Expr::Binary(BinOp::Sub, Box::new(Expr::Var(c1)), Box::new(Expr::Var(c2))),
                ));
            }
        }
        body.extend(self.stmts(depth.saturating_sub(1), 3));
        // Occasional break/continue guarded by a data condition.
        if self.rng.gen_bool(0.25) {
            let guard = self.predicate();
            let exit = if self.rng.gen_bool(0.5) { Stmt::Break } else { Stmt::Continue };
            body.push(Stmt::If(guard, vec![exit], Vec::new()));
        }
        // The counter update comes last so `continue` still terminates…
        // no: `continue` would skip it. Put the update first instead, and
        // test `counter <= trip` so the body runs `trip` times.
        let mut full_body = vec![Stmt::Assign(
            counter.clone(),
            Expr::Binary(BinOp::Add, Box::new(Expr::Var(counter.clone())), Box::new(Expr::Int(1))),
        )];
        full_body.extend(body);
        let cond =
            Expr::Cmp(CmpOp::Lt, Box::new(Expr::Var(counter.clone())), Box::new(Expr::Int(trip)));
        let mut out = prologue;
        if self.rng.gen_bool(0.2) {
            out.push(Stmt::DoWhile(full_body, cond));
        } else {
            out.push(Stmt::While(cond, full_body));
        }
        out
    }

    fn stmts(&mut self, depth: usize, count: usize) -> Vec<Stmt> {
        let mut out = Vec::new();
        for _ in 0..count {
            if self.stmts_budget <= 0 {
                break;
            }
            self.gen_stmt(depth, &mut out);
        }
        out
    }

    fn gen_stmt(&mut self, depth: usize, out: &mut Vec<Stmt>) {
        let before = out.len();
        let r: f64 = self.rng.gen();
        let mut acc = self.cfg.redundancy_prob;
        if r < acc {
            if self.rng.gen_bool(0.5) {
                self.plant_redundancy(out);
            } else {
                self.plant_reassociation(out);
            }
        } else if r < {
            acc += self.cfg.unreachable_prob;
            acc
        } {
            self.plant_unreachable(depth, out);
        } else if r < {
            acc += self.cfg.inference_prob;
            acc
        } {
            self.plant_inference(out);
        } else if r < {
            acc += self.cfg.diamond_prob;
            acc
        } {
            self.plant_diamonds(out);
        } else if r < {
            acc += self.cfg.correlated_prob;
            acc
        } {
            self.plant_correlated(out);
        } else if depth > 0 && r < acc + 0.25 {
            if self.rng.gen_bool(self.cfg.loop_prob) {
                out.extend(self.bounded_loop(depth));
            } else if self.rng.gen_bool(0.18) {
                self.plant_switch(depth, out);
            } else {
                let cond = self.predicate();
                let n_then = self.rng.gen_range(1..4);
                let then = self.stmts(depth - 1, n_then);
                let otherwise = if self.rng.gen_bool(0.5) {
                    let n_else = self.rng.gen_range(1..3);
                    self.stmts(depth - 1, n_else)
                } else {
                    Vec::new()
                };
                out.push(Stmt::If(cond, then, otherwise));
            }
        } else {
            out.push(self.assign_random());
        }
        self.stmts_budget -= (out.len() - before) as isize;
    }
}

/// Generates a deterministic random routine from `cfg`.
///
/// # Examples
///
/// ```
/// use pgvn_workload::{generate_routine, GenConfig};
///
/// let r1 = generate_routine("r0", &GenConfig { seed: 42, ..Default::default() });
/// let r2 = generate_routine("r0", &GenConfig { seed: 42, ..Default::default() });
/// assert_eq!(r1, r2, "same seed, same routine");
/// ```
pub fn generate_routine(name: &str, cfg: &GenConfig) -> Routine {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(cfg.seed),
        cfg: cfg.clone(),
        vars: (0..cfg.num_params).map(|i| format!("p{i}")).collect(),
        next_var: 0,
        next_opaque: 0,
        stmts_budget: cfg.target_stmts as isize,
    };
    let mut body = Vec::new();
    while g.stmts_budget > 0 {
        g.gen_stmt(g.cfg.max_depth, &mut body);
    }
    // Return a hash of the visible state so nothing is trivially dead.
    let mut ret = Expr::Int(0);
    let vars = g.vars.clone();
    for (i, v) in vars.iter().enumerate() {
        if i % 3 == 0 || i + 4 >= vars.len() {
            ret = Expr::Binary(
                if i % 2 == 0 { BinOp::Add } else { BinOp::Xor },
                Box::new(ret),
                Box::new(Expr::Var(v.clone())),
            );
        }
    }
    body.push(Stmt::Return(ret));
    Routine {
        name: name.to_string(),
        params: (0..cfg.num_params).map(|i| format!("p{i}")).collect(),
        body,
    }
}

/// Generates and compiles a routine to SSA.
pub fn generate_function(
    name: &str,
    cfg: &GenConfig,
    style: pgvn_ssa::SsaStyle,
) -> pgvn_ir::Function {
    let routine = generate_routine(name, cfg);
    let vf = pgvn_lang::lower(&routine);
    pgvn_ssa::build_ssa(&vf, style).expect("generated routines are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_ir::{HashedOpaques, Interpreter};
    use pgvn_ssa::SsaStyle;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig { seed: 7, ..Default::default() };
        let a = generate_routine("x", &cfg);
        let b = generate_routine("x", &cfg);
        assert_eq!(a, b);
        let c = generate_routine("x", &GenConfig { seed: 8, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn generated_routines_compile_and_verify() {
        for seed in 0..30 {
            let cfg = GenConfig { seed, target_stmts: 30, ..Default::default() };
            let f = generate_function(&format!("g{seed}"), &cfg, SsaStyle::Minimal);
            pgvn_ir::verify(&f).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            pgvn_analysis::verify_ssa(&f).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generated_routines_terminate() {
        for seed in 0..30 {
            let cfg = GenConfig { seed, target_stmts: 40, ..Default::default() };
            let f = generate_function(&format!("g{seed}"), &cfg, SsaStyle::Minimal);
            let interp = Interpreter::new(&f).fuel(2_000_000);
            for args in [[0, 0, 0], [1, -5, 100], [7, 7, 7]] {
                interp
                    .run(&args, &mut HashedOpaques::new(seed))
                    .unwrap_or_else(|e| panic!("seed {seed} args {args:?}: {e}"));
            }
        }
    }

    #[test]
    fn correlated_branches_reward_predicate_inference() {
        // With only correlated patterns planted, the full algorithm
        // (with predicate inference) must fold compares that the click
        // emulation (no inference) cannot — on at least one seed.
        let mut inference_won = false;
        for seed in 0..20 {
            let cfg = GenConfig {
                seed,
                target_stmts: 20,
                correlated_prob: 0.9,
                redundancy_prob: 0.0,
                unreachable_prob: 0.0,
                inference_prob: 0.0,
                diamond_prob: 0.0,
                opaque_prob: 0.0,
                ..Default::default()
            };
            let f = generate_function(&format!("c{seed}"), &cfg, SsaStyle::Pruned);
            let full = pgvn_core::run(&f, &pgvn_core::GvnConfig::full());
            let click = pgvn_core::run(&f, &pgvn_core::GvnConfig::click());
            let constants = |r: &pgvn_core::GvnResults| {
                f.values().filter(|&v| r.constant_value(v).is_some()).count()
            };
            if constants(&full) > constants(&click) {
                inference_won = true;
                break;
            }
        }
        assert!(inference_won, "no seed produced an inference-only constant");
    }

    #[test]
    fn sizes_track_target() {
        let small = generate_function(
            "s",
            &GenConfig { seed: 1, target_stmts: 10, ..Default::default() },
            SsaStyle::Minimal,
        );
        let large = generate_function(
            "l",
            &GenConfig { seed: 1, target_stmts: 200, ..Default::default() },
            SsaStyle::Minimal,
        );
        assert!(large.num_insts() > small.num_insts() * 3);
    }
}
