//! Improvement histograms, matching the presentation of the paper's
//! Figures 10–12.
//!
//! The paper plots, for each strength measure, the number of routines at
//! each absolute improvement ("the practical algorithm discovered 100 more
//! unreachable values … in 1 routine", with the 0-improvement count in the
//! legend). [`Histogram`] collects improvement deltas per routine and
//! renders that distribution as text.

use std::collections::BTreeMap;
use std::fmt;

/// A distribution of per-routine improvements.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<i64, usize>,
    total: usize,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one routine's improvement `delta`.
    pub fn add(&mut self, delta: i64) {
        *self.counts.entry(delta).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total routines recorded.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Routines with exactly zero improvement (the paper's legend value).
    pub fn zeros(&self) -> usize {
        self.counts.get(&0).copied().unwrap_or(0)
    }

    /// Routines with strictly positive improvement.
    pub fn improved(&self) -> usize {
        self.counts.range(1..).map(|(_, &c)| c).sum()
    }

    /// Routines with strictly negative improvement (the paper reports 6
    /// such routines against Click's algorithm, due to value inference).
    pub fn regressed(&self) -> usize {
        self.counts.range(..0).map(|(_, &c)| c).sum()
    }

    /// Sum of all improvements.
    pub fn total_improvement(&self) -> i64 {
        self.counts.iter().map(|(&d, &c)| d * c as i64).sum()
    }

    /// Iterates over `(improvement, routine count)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, usize)> + '_ {
        self.counts.iter().map(|(&d, &c)| (d, c))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "  0x {} routines; improved {}; regressed {}; net improvement {:+}",
            self.zeros(),
            self.improved(),
            self.regressed(),
            self.total_improvement()
        )?;
        for (delta, count) in self.iter() {
            if delta == 0 {
                continue;
            }
            let bar = "#".repeat(count.min(60));
            writeln!(f, "  {delta:>6}x {count:>6} {bar}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_summaries() {
        let mut h = Histogram::new();
        for d in [0, 0, 0, 1, 2, 2, -1] {
            h.add(d);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.zeros(), 3);
        assert_eq!(h.improved(), 3);
        assert_eq!(h.regressed(), 1);
        assert_eq!(h.total_improvement(), 4);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(-1, 1), (0, 3), (1, 1), (2, 2)]);
    }

    #[test]
    fn display_is_nonempty() {
        let mut h = Histogram::new();
        h.add(0);
        h.add(5);
        let s = h.to_string();
        assert!(s.contains("0x 1 routines"), "{s}");
        assert!(s.contains("5x"), "{s}");
    }
}
