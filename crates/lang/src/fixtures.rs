//! The paper's example programs, written in the source language.
//!
//! Shared between the integration tests, the examples and the benchmark
//! harness so every consumer exercises exactly the same routines.
//!
//! A note on [`FIGURE1`]: the published figure distinguishes `=` from `≠`
//! typographically. Reconstructing the routine from the paper's own
//! inference walkthrough (§1.3 and §2.10) fixes the reading: line 08 must
//! be `if (I ≠ 1) I ← 2` (so the optimistic assumption `I₂ = 1` makes the
//! assignment unreachable and `I₅ = 1`), line 12 must be
//! `if (I ≠ 1) P ← 2 else if (X ≤ 9) P ← I` (so `P₁₁ = φ(0, 1, 0)`), and
//! line 15 must be `if (Y ≤ 9) Q ← 1` (so `PREDICATE[14]` equals
//! `PREDICATE[11]` and `Q₁₄ ≅ P₁₁`). Under that reading the invariant
//! `I = 1` also holds dynamically for every input, as the paper claims.

/// Figure 1: the routine `R` that the unified algorithm proves to always
/// return 1 through a chain of inferences spanning optimistic value
/// numbering, unreachable code elimination, value inference, predicate
/// inference, φ-predication, constant folding and global reassociation.
pub const FIGURE1: &str = "routine R(X, Y, Z) {
    I = 1;
    J = 1;
    while (true) {
        if (J > 9) break;
        J = J + 1;
        if (I != 1) { I = 2; }
        if (Y == X) {
            P = 0;
            if (X >= 1) {
                if (I != 1) { P = 2; } else { if (X <= 9) { P = I; } }
            }
            Q = 0;
            if (I <= Y) {
                if (Y <= 9) { Q = 1; }
            }
            if (Z > I) {
                I = P + (X + 2) + (Z < 1) - (I + Y) - Q;
            }
        }
    }
    return I;
}";

/// Figure 6: the value-inference chain. `X1 = K3 + 1` is congruent to
/// `I1 + 1` because `K3 = J2` and `J2 = I1` hold on the path, and value
/// inference substitutes the lower-ranked variable at each step.
pub const FIGURE6: &str = "routine fig6(I, J, K) {
    if (K == J) {
        if (J == I) {
            X = K + 1;
            return X;
        }
    }
    return 0;
}";

/// Figure 13: Briggs/Torczon/Cooper's pre-pass example. A unified
/// algorithm discovers that both `I1` and `J1` are congruent to 0 inside
/// the `K1 = 0` branch; the pre-pass approach only discovers `I1`.
pub const FIGURE13: &str = "routine fig13(K) {
    L = K + 0;
    if (K == 0) {
        I = K;
        J = L;
        return I + J;
    }
    return 1;
}";

/// Figure 14 case (a): Rüthing–Knoop–Steffen's φ-distribution example.
/// `K3 = φ(I1+1, I2+1)` and `L3 = φ(I1,I2) + 1` are congruent only for
/// algorithms that distribute operations over φs (the paper lists this as
/// a possible extension of global reassociation).
pub const FIGURE14A: &str = "routine fig14a(c) {
    if (c) {
        I = opaque(1);
        K = I + 1;
    } else {
        I = opaque(2);
        K = I + 1;
    }
    L = I + 1;
    return K - L;
}";

/// Figure 14 case (b): the variant with swapped constants that defeats
/// even the φ-distribution transformation in its simple form.
pub const FIGURE14B: &str = "routine fig14b(c) {
    if (c) {
        I = 1;
        J = 2;
    } else {
        I = 2;
        J = 1;
    }
    K = I + J;
    L = 3;
    return K - L;
}";

/// §2.7's smaller value-inference illustration from the text: after
/// `L1 = K1 + 0` and a branch on `K1 = 0`, both `I1 = K1` and `J1 = L1`
/// name the constant 0.
pub const SIMPLE_INFERENCE: &str = "routine simple_inf(K) {
    if (K == 0) {
        return K + 5;
    }
    return 5;
}";

/// Builds the Figure 9 worst case for value inference: a ladder of `n`
/// equality guards `if (I1 == I2) if (I2 == I3) ... J = I1`, which makes
/// `Infer value at block` climb the dominator tree O(n²) times in total.
pub fn figure9(n: usize) -> String {
    use std::fmt::Write;
    assert!(n >= 2, "figure 9 needs at least two values");
    let mut s = String::from("routine fig9(");
    for i in 1..=n {
        if i > 1 {
            s.push_str(", ");
        }
        write!(s, "I{i}").unwrap();
    }
    s.push_str(") {\n");
    for i in 1..n {
        writeln!(s, "    if (I{} == I{}) {{", i, i + 1).unwrap();
    }
    writeln!(s, "    J = I{n} + 1;\n    return J;").unwrap();
    for _ in 1..n {
        s.push_str("    }\n");
    }
    s.push_str("    return 0;\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn all_fixtures_parse() {
        for (name, src) in [
            ("figure1", FIGURE1),
            ("figure6", FIGURE6),
            ("figure13", FIGURE13),
            ("figure14a", FIGURE14A),
            ("figure14b", FIGURE14B),
            ("simple_inference", SIMPLE_INFERENCE),
        ] {
            parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn figure9_generates_parsable_ladders() {
        for n in [2, 3, 10] {
            let src = figure9(n);
            let r = parse(&src).unwrap_or_else(|e| panic!("n={n}: {e}\n{src}"));
            assert_eq!(r.params.len(), n);
        }
    }
}
