//! Pretty-printer for the AST: emits source text that re-parses to the
//! same tree.
//!
//! Used by the CLI's `--emit source`, by the workload generator to dump
//! generated programs, and by the round-trip property test
//! (`parse(print(r)) == r`).

use crate::ast::{Expr, Routine, Stmt};
use pgvn_ir::{BinOp, UnOp};
use std::fmt::Write;

/// Renders a routine as parseable source text.
pub fn print_routine(r: &Routine) -> String {
    let mut out = String::new();
    write!(out, "routine {}(", r.name).unwrap();
    for (i, p) in r.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(p);
    }
    out.push_str(") {\n");
    print_stmts(&mut out, &r.body, 1);
    out.push_str("}\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_stmts(out: &mut String, stmts: &[Stmt], depth: usize) {
    for s in stmts {
        print_stmt(out, s, depth);
    }
}

fn print_block(out: &mut String, stmts: &[Stmt], depth: usize) {
    out.push_str("{\n");
    print_stmts(out, stmts, depth + 1);
    indent(out, depth);
    out.push('}');
}

fn print_stmt(out: &mut String, s: &Stmt, depth: usize) {
    indent(out, depth);
    match s {
        Stmt::Assign(name, e) => {
            write!(out, "{name} = ").unwrap();
            print_expr(out, e, 0);
            out.push_str(";\n");
        }
        Stmt::Expr(e) => {
            print_expr(out, e, 0);
            out.push_str(";\n");
        }
        Stmt::Return(e) => {
            out.push_str("return ");
            print_expr(out, e, 0);
            out.push_str(";\n");
        }
        Stmt::Break => out.push_str("break;\n"),
        Stmt::Continue => out.push_str("continue;\n"),
        Stmt::If(c, then, otherwise) => {
            out.push_str("if (");
            print_expr(out, c, 0);
            out.push_str(") ");
            print_block(out, then, depth);
            if !otherwise.is_empty() {
                out.push_str(" else ");
                print_block(out, otherwise, depth);
            }
            out.push('\n');
        }
        Stmt::While(c, body) => {
            out.push_str("while (");
            print_expr(out, c, 0);
            out.push_str(") ");
            print_block(out, body, depth);
            out.push('\n');
        }
        Stmt::DoWhile(body, c) => {
            out.push_str("do ");
            print_block(out, body, depth);
            out.push_str(" while (");
            print_expr(out, c, 0);
            out.push_str(");\n");
        }
        Stmt::Switch(scrutinee, cases, default) => {
            out.push_str("switch (");
            print_expr(out, scrutinee, 0);
            out.push_str(") {\n");
            for (value, body) in cases {
                indent(out, depth + 1);
                write!(out, "case {value}: ").unwrap();
                print_block(out, body, depth + 1);
                out.push('\n');
            }
            if !default.is_empty() {
                indent(out, depth + 1);
                out.push_str("default: ");
                print_block(out, default, depth + 1);
                out.push('\n');
            }
            indent(out, depth);
            out.push_str("}\n");
        }
    }
}

/// Binding strength of each expression form, mirroring the parser's
/// precedence levels (higher binds tighter).
fn precedence(e: &Expr) -> u8 {
    match e {
        // Negative literals print as `0 - n`, so they bind like
        // subtraction and pick up parentheses from the standard rule.
        Expr::Int(v) if *v < 0 => 8,
        Expr::Int(_) | Expr::Var(_) | Expr::Opaque(_) => 11,
        Expr::Unary(..) | Expr::LogicalNot(_) => 10,
        Expr::Binary(op, ..) => match op {
            BinOp::Mul | BinOp::Div | BinOp::Rem => 9,
            BinOp::Add | BinOp::Sub => 8,
            BinOp::Shl | BinOp::Shr => 7,
            BinOp::And => 4,
            BinOp::Xor => 3,
            BinOp::Or => 2,
        },
        Expr::Cmp(op, ..) => {
            if matches!(op, pgvn_ir::CmpOp::Eq | pgvn_ir::CmpOp::Ne) {
                5
            } else {
                6
            }
        }
        Expr::LogicalAnd(..) => 1,
        Expr::LogicalOr(..) => 0,
    }
}

fn print_expr(out: &mut String, e: &Expr, min_prec: u8) {
    let prec = precedence(e);
    let needs_parens = prec < min_prec;
    if needs_parens {
        out.push('(');
    }
    match e {
        Expr::Int(v) => {
            if *v < 0 {
                // `-n` would reparse as a unary expression; `0 - n`
                // reparses to an equivalent tree and reaches a printing
                // fixpoint after one round.
                write!(out, "0 - {}", (*v as i128).unsigned_abs()).unwrap();
            } else {
                write!(out, "{v}").unwrap();
            }
        }
        Expr::Var(name) => out.push_str(name),
        Expr::Opaque(t) => {
            write!(out, "opaque({t})").unwrap();
        }
        Expr::Unary(op, a) => {
            out.push_str(match op {
                UnOp::Neg => "-",
                UnOp::Not => "~",
            });
            print_expr(out, a, 10);
        }
        Expr::LogicalNot(a) => {
            out.push('!');
            print_expr(out, a, 10);
        }
        Expr::Binary(op, a, b) => {
            let p = precedence(e);
            print_expr(out, a, p);
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::And => "&",
                BinOp::Or => "|",
                BinOp::Xor => "^",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
            };
            write!(out, " {sym} ").unwrap();
            // Left-associative: the right operand needs strictly higher
            // binding to avoid regrouping.
            print_expr(out, b, p + 1);
        }
        Expr::Cmp(op, a, b) => {
            let p = precedence(e);
            print_expr(out, a, p);
            write!(out, " {} ", op.symbol()).unwrap();
            print_expr(out, b, p + 1);
        }
        Expr::LogicalAnd(a, b) => {
            print_expr(out, a, 1);
            out.push_str(" && ");
            print_expr(out, b, 2);
        }
        Expr::LogicalOr(a, b) => {
            print_expr(out, a, 0);
            out.push_str(" || ");
            print_expr(out, b, 1);
        }
    }
    if needs_parens {
        out.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let r1 = parse(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let printed = print_routine(&r1);
        let r2 = parse(&printed).unwrap_or_else(|e| panic!("reparse: {e}\n{printed}"));
        // Negative literals print as (0 - n); compare semantically by
        // printing again (fixpoint after one round).
        assert_eq!(print_routine(&r2), printed, "print not a fixpoint:\n{printed}");
    }

    #[test]
    fn prints_minimal_routine() {
        let r = parse("routine f(a) { return a; }").unwrap();
        let s = print_routine(&r);
        assert_eq!(s, "routine f(a) {\n    return a;\n}\n");
    }

    #[test]
    fn roundtrips_fixtures() {
        for src in [
            crate::fixtures::FIGURE1,
            crate::fixtures::FIGURE6,
            crate::fixtures::FIGURE13,
            crate::fixtures::FIGURE14A,
            crate::fixtures::FIGURE14B,
            crate::fixtures::SIMPLE_INFERENCE,
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn roundtrips_precedence_sensitive_expressions() {
        for src in [
            "routine f(a, b) { return (a + b) * 2; }",
            "routine f(a, b) { return a + b * 2; }",
            "routine f(a) { return -(a + 1); }",
            "routine f(a) { return -a + 1; }",
            "routine f(a, b) { return a - (b - 1); }",
            "routine f(a, b) { return a - b - 1; }",
            "routine f(a, b) { return a < b == (b < a); }",
            "routine f(a, b) { return (a & 3) + 1; }",
            "routine f(a, b) { return a << (b + 1) >> 2; }",
            "routine f(a) { return !(a > 1) && a < 9 || a == 4; }",
            "routine f(a) { return ~-a; }",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn roundtrips_all_statement_forms() {
        let src = "routine f(n) {
            s = 0;
            i = 0;
            while (i < n) {
                if (i % 2 == 0) { s = s + i; } else { s = s - 1; }
                i = i + 1;
                if (s > 100) break;
                if (s < 0) continue;
            }
            do { s = s - 1; } while (s > 10);
            switch (s) {
                case 0: { s = 1; }
                case -2: { s = 2; }
                default: { opaque(7); }
            }
            return s;
        }";
        roundtrip(src);
    }

    #[test]
    fn printed_source_preserves_semantics() {
        use pgvn_ir::{HashedOpaques, Interpreter};
        let src = crate::fixtures::FIGURE1;
        let r = parse(src).unwrap();
        let printed = print_routine(&r);
        let f1 = crate::compile(src, pgvn_ssa::SsaStyle::Minimal).unwrap();
        let f2 = crate::compile(&printed, pgvn_ssa::SsaStyle::Minimal).unwrap();
        for args in [[5, 5, 9], [0, 0, 0], [9, 9, 100]] {
            let a = Interpreter::new(&f1).run(&args, &mut HashedOpaques::new(0)).unwrap();
            let b = Interpreter::new(&f2).run(&args, &mut HashedOpaques::new(0)).unwrap();
            assert_eq!(a, b);
        }
    }
}
