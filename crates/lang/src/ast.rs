//! Abstract syntax tree for the pgvn source language.

use pgvn_ir::{BinOp, CmpOp, UnOp};

/// A routine definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Routine {
    /// Routine name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `name = expr;`
    Assign(String, Expr),
    /// `if (cond) then [else otherwise]`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) body`
    While(Expr, Vec<Stmt>),
    /// `do body while (cond);` — the *until* form the paper mentions in §3.
    DoWhile(Vec<Stmt>, Expr),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `switch (e) { case N: … default: … }` — no fallthrough: each arm
    /// jumps to the end of the switch.
    Switch(Expr, Vec<(i64, Vec<Stmt>)>, Vec<Stmt>),
    /// `return expr;`
    Return(Expr),
    /// `expr;` — evaluated for effect (only useful with `opaque`).
    Expr(Expr),
}

/// An expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal (`true` = 1, `false` = 0).
    Int(i64),
    /// Variable reference.
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary arithmetic/bitwise operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Comparison (yields 0/1).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical negation `!e` (yields 0/1).
    LogicalNot(Box<Expr>),
    /// Non-short-circuit logical and: `(a != 0) & (b != 0)`.
    LogicalAnd(Box<Expr>, Box<Expr>),
    /// Non-short-circuit logical or: `(a != 0) | (b != 0)`.
    LogicalOr(Box<Expr>, Box<Expr>),
    /// `opaque(token)` — an unknown value the analysis cannot see through.
    Opaque(u32),
}
