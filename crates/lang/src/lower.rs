//! Lowering from the AST to the mutable-variable CFG ([`VarFunction`]).
//!
//! Structured control flow becomes explicit blocks and edges:
//! `if`/`else` produces a diamond, `while` a header-guarded loop (branch at
//! the top), `do`-`while` a bottom-tested loop — the "until" shape whose
//! effect on predicate/value inference the paper discusses in §3.
//! `break`/`continue` jump to the innermost loop's exit/continue blocks.
//!
//! A routine that falls off the end returns 0.

use crate::ast::{Expr, Routine, Stmt};
use pgvn_ir::CmpOp;
use pgvn_ssa::{Var, VarExpr, VarFunction, VarStmt, VarTerm};
use std::collections::HashMap;

struct Lowerer {
    vf: VarFunction,
    vars: HashMap<String, Var>,
    /// (continue target, break target) per enclosing loop.
    loops: Vec<(usize, usize)>,
    cur: usize,
    /// Set once the current block has been terminated; subsequent
    /// statements in the same source block land in a fresh unreachable
    /// block (classic dead-code-after-break handling).
    done: bool,
}

impl Lowerer {
    fn var(&mut self, name: &str) -> Var {
        if let Some(&v) = self.vars.get(name) {
            return v;
        }
        let v = self.vf.add_var(name);
        self.vars.insert(name.to_string(), v);
        v
    }

    fn fresh_block_if_done(&mut self) {
        if self.done {
            self.cur = self.vf.add_block();
            self.done = false;
        }
    }

    fn terminate(&mut self, term: VarTerm) {
        self.vf.terminate(self.cur, term);
        self.done = true;
    }

    fn expr(&mut self, e: &Expr) -> VarExpr {
        match e {
            Expr::Int(v) => VarExpr::Const(*v),
            Expr::Var(name) => VarExpr::Var(self.var(name)),
            Expr::Unary(op, a) => VarExpr::Unary(*op, Box::new(self.expr(a))),
            Expr::Binary(op, a, b) => {
                VarExpr::Binary(*op, Box::new(self.expr(a)), Box::new(self.expr(b)))
            }
            Expr::Cmp(op, a, b) => {
                VarExpr::Cmp(*op, Box::new(self.expr(a)), Box::new(self.expr(b)))
            }
            Expr::LogicalNot(a) => {
                let av = self.expr(a);
                VarExpr::Cmp(CmpOp::Eq, Box::new(av), Box::new(VarExpr::Const(0)))
            }
            Expr::LogicalAnd(a, b) => {
                let av = self.truth(a);
                let bv = self.truth(b);
                VarExpr::Binary(pgvn_ir::BinOp::And, Box::new(av), Box::new(bv))
            }
            Expr::LogicalOr(a, b) => {
                let av = self.truth(a);
                let bv = self.truth(b);
                VarExpr::Binary(pgvn_ir::BinOp::Or, Box::new(av), Box::new(bv))
            }
            Expr::Opaque(t) => VarExpr::Opaque(*t),
        }
    }

    /// Lowers `e` to a 0/1 truth value, skipping the `!= 0` normalization
    /// when the lowered expression is already a comparison.
    fn truth(&mut self, e: &Expr) -> VarExpr {
        let v = self.expr(e);
        match v {
            VarExpr::Cmp(..) => v,
            VarExpr::Const(c) => VarExpr::Const((c != 0) as i64),
            other => VarExpr::Cmp(CmpOp::Ne, Box::new(other), Box::new(VarExpr::Const(0))),
        }
    }

    fn stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        self.fresh_block_if_done();
        match s {
            Stmt::Assign(name, e) => {
                let ve = self.expr(e);
                let var = self.var(name);
                self.vf.assign(self.cur, var, ve);
            }
            Stmt::Expr(e) => {
                let ve = self.expr(e);
                self.vf.push(self.cur, VarStmt::Eval(ve));
            }
            Stmt::Return(e) => {
                let ve = self.expr(e);
                self.terminate(VarTerm::Return(ve));
            }
            Stmt::Break => {
                let (_, brk) = *self.loops.last().expect("break outside loop");
                self.terminate(VarTerm::Jump(brk));
            }
            Stmt::Continue => {
                let (cont, _) = *self.loops.last().expect("continue outside loop");
                self.terminate(VarTerm::Jump(cont));
            }
            Stmt::If(cond, then, otherwise) => {
                let cv = self.expr(cond);
                let then_b = self.vf.add_block();
                let join = self.vf.add_block();
                let else_b = if otherwise.is_empty() { join } else { self.vf.add_block() };
                self.terminate(VarTerm::Branch(cv, then_b, else_b));
                self.cur = then_b;
                self.done = false;
                self.stmts(then);
                if !self.done {
                    self.terminate(VarTerm::Jump(join));
                }
                if !otherwise.is_empty() {
                    self.cur = else_b;
                    self.done = false;
                    self.stmts(otherwise);
                    if !self.done {
                        self.terminate(VarTerm::Jump(join));
                    }
                }
                self.cur = join;
                self.done = false;
            }
            Stmt::While(cond, body) => {
                let head = self.vf.add_block();
                let body_b = self.vf.add_block();
                let exit = self.vf.add_block();
                self.terminate(VarTerm::Jump(head));
                self.cur = head;
                self.done = false;
                let cv = self.expr(cond);
                self.terminate(VarTerm::Branch(cv, body_b, exit));
                self.cur = body_b;
                self.done = false;
                self.loops.push((head, exit));
                self.stmts(body);
                self.loops.pop();
                if !self.done {
                    self.terminate(VarTerm::Jump(head));
                }
                self.cur = exit;
                self.done = false;
            }
            Stmt::Switch(scrutinee, cases, default) => {
                let sv = self.expr(scrutinee);
                let join = self.vf.add_block();
                let mut case_targets: Vec<(i64, usize)> = Vec::new();
                let mut bodies: Vec<(usize, &Vec<Stmt>)> = Vec::new();
                for (value, body) in cases {
                    let blk = self.vf.add_block();
                    case_targets.push((*value, blk));
                    bodies.push((blk, body));
                }
                let default_blk = if default.is_empty() {
                    join
                } else {
                    let blk = self.vf.add_block();
                    bodies.push((blk, default));
                    blk
                };
                self.terminate(VarTerm::Switch(sv, case_targets, default_blk));
                for (blk, body) in bodies {
                    self.cur = blk;
                    self.done = false;
                    self.stmts(body);
                    if !self.done {
                        self.terminate(VarTerm::Jump(join));
                    }
                }
                self.cur = join;
                self.done = false;
            }
            Stmt::DoWhile(body, cond) => {
                let body_b = self.vf.add_block();
                let check = self.vf.add_block();
                let exit = self.vf.add_block();
                self.terminate(VarTerm::Jump(body_b));
                self.cur = body_b;
                self.done = false;
                self.loops.push((check, exit));
                self.stmts(body);
                self.loops.pop();
                if !self.done {
                    self.terminate(VarTerm::Jump(check));
                }
                self.cur = check;
                self.done = false;
                let cv = self.expr(cond);
                self.terminate(VarTerm::Branch(cv, body_b, exit));
                self.cur = exit;
                self.done = false;
            }
        }
    }
}

/// Lowers a parsed routine to the mutable-variable CFG.
///
/// # Panics
///
/// Panics on `break`/`continue` outside a loop (rejecting these
/// syntactically would require scope tracking in the parser; the lowering
/// treats them as programming errors in the input).
pub fn lower(routine: &Routine) -> VarFunction {
    let param_refs: Vec<&str> = routine.params.iter().map(String::as_str).collect();
    let vf = VarFunction::new(routine.name.clone(), &param_refs);
    let mut vars = HashMap::new();
    for (i, p) in routine.params.iter().enumerate() {
        vars.insert(p.clone(), vf.param_vars()[i]);
    }
    let mut l = Lowerer { vf, vars, loops: Vec::new(), cur: 0, done: false };
    l.stmts(&routine.body);
    if !l.done {
        l.terminate(VarTerm::Return(VarExpr::Const(0)));
    }
    l.vf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use pgvn_ir::{HashedOpaques, Interpreter};
    use pgvn_ssa::{build_ssa, SsaStyle};

    fn run(src: &str, args: &[i64]) -> i64 {
        let r = parse(src).unwrap();
        let vf = lower(&r);
        let f = build_ssa(&vf, SsaStyle::Minimal).unwrap();
        pgvn_analysis::assert_ssa(&f);
        Interpreter::new(&f).run(args, &mut HashedOpaques::new(0)).unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run("routine f(a, b) { return a + b * 2; }", &[3, 4]), 11);
        assert_eq!(run("routine f(a) { return (a + 1) * (a - 1); }", &[5]), 24);
        assert_eq!(run("routine f(a) { return -a; }", &[9]), -9);
        assert_eq!(run("routine f() { return 7 / 2 + 7 % 2; }", &[]), 4);
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(run("routine f(a) { return a < 10 && a > 0; }", &[5]), 1);
        assert_eq!(run("routine f(a) { return a < 10 && a > 0; }", &[-5]), 0);
        assert_eq!(run("routine f(a) { return !a; }", &[0]), 1);
        assert_eq!(run("routine f(a) { return !a; }", &[3]), 0);
        assert_eq!(run("routine f(a, b) { return a == 1 || b == 1; }", &[0, 1]), 1);
    }

    #[test]
    fn if_else_chains() {
        let src = "routine sign(x) {
            if (x > 0) { return 1; }
            else if (x < 0) { return -1; }
            return 0;
        }";
        assert_eq!(run(src, &[42]), 1);
        assert_eq!(run(src, &[-42]), -1);
        assert_eq!(run(src, &[0]), 0);
    }

    #[test]
    fn while_loop_with_break_continue() {
        let src = "routine f(n) {
            s = 0;
            i = 0;
            while (true) {
                i = i + 1;
                if (i > n) break;
                if (i % 2 == 0) continue;
                s = s + i;
            }
            return s;
        }";
        assert_eq!(run(src, &[5]), 9); // 1 + 3 + 5
        assert_eq!(run(src, &[0]), 0);
    }

    #[test]
    fn do_while_executes_at_least_once() {
        let src = "routine f(n) {
            c = 0;
            do { c = c + 1; } while (c < n);
            return c;
        }";
        assert_eq!(run(src, &[3]), 3);
        assert_eq!(run(src, &[-5]), 1);
    }

    #[test]
    fn nested_loops() {
        let src = "routine f(a, b) {
            s = 0;
            i = 0;
            while (i < a) {
                j = 0;
                while (j < b) { s = s + 1; j = j + 1; }
                i = i + 1;
            }
            return s;
        }";
        assert_eq!(run(src, &[4, 6]), 24);
    }

    #[test]
    fn fall_off_end_returns_zero() {
        assert_eq!(run("routine f(a) { b = a; }", &[5]), 0);
    }

    #[test]
    fn dead_code_after_return_is_tolerated() {
        assert_eq!(run("routine f() { return 1; x = 2; return x; }", &[]), 1);
    }

    #[test]
    fn unassigned_variable_reads_zero() {
        assert_eq!(run("routine f() { return ghost + 1; }", &[]), 1);
    }

    #[test]
    #[should_panic(expected = "break outside loop")]
    fn break_outside_loop_panics() {
        let r = parse("routine f() { break; return 0; }").unwrap();
        let _ = lower(&r);
    }

    #[test]
    fn opaque_is_stable_within_a_run() {
        assert_eq!(run("routine f() { return opaque(9) - opaque(9); }", &[]), 0);
    }

    #[test]
    fn paper_figure1_routine_returns_one() {
        // The paper's Figure 1 routine R: it always returns 1 (the GVN
        // algorithm later proves this statically; here we just execute it).
        let src = crate::fixtures::FIGURE1;
        for args in
            [[0, 0, 0], [5, 5, 9], [3, 3, -4], [9, 9, 100], [1, 2, 3], [-7, -7, 50], [12, 12, 2]]
        {
            assert_eq!(run(src, &args), 1, "args {args:?}");
        }
    }
}
