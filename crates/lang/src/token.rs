//! Lexer for the pgvn source language.

use std::error::Error;
use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// An identifier.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// `routine`
    Routine,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `do`
    Do,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `return`
    Return,
    /// `true`
    True,
    /// `false`
    False,
    /// `opaque`
    Opaque,
    /// `switch`
    Switch,
    /// `case`
    Case,
    /// `default`
    Default,
    /// `:`
    Colon,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Routine => write!(f, "routine"),
            Token::If => write!(f, "if"),
            Token::Else => write!(f, "else"),
            Token::While => write!(f, "while"),
            Token::Do => write!(f, "do"),
            Token::Break => write!(f, "break"),
            Token::Continue => write!(f, "continue"),
            Token::Return => write!(f, "return"),
            Token::True => write!(f, "true"),
            Token::False => write!(f, "false"),
            Token::Opaque => write!(f, "opaque"),
            Token::Switch => write!(f, "switch"),
            Token::Case => write!(f, "case"),
            Token::Default => write!(f, "default"),
            Token::Colon => write!(f, ":"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Assign => write!(f, "="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Amp => write!(f, "&"),
            Token::Pipe => write!(f, "|"),
            Token::Caret => write!(f, "^"),
            Token::Tilde => write!(f, "~"),
            Token::Bang => write!(f, "!"),
            Token::Shl => write!(f, "<<"),
            Token::Shr => write!(f, ">>"),
            Token::EqEq => write!(f, "=="),
            Token::NotEq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
        }
    }
}

/// A lexing error with a line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// 1-based source line.
    pub line: u32,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl Error for LexError {}

/// Tokenizes `src`. `//` comments run to end of line.
///
/// # Errors
///
/// Returns a [`LexError`] on unknown characters or malformed literals.
pub fn lex(src: &str) -> Result<Vec<(Token, u32)>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let v: i64 = text.parse().map_err(|_| LexError {
                    line,
                    message: format!("integer literal `{text}` out of range"),
                })?;
                out.push((Token::Int(v), line));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "routine" => Token::Routine,
                    "if" => Token::If,
                    "else" => Token::Else,
                    "while" => Token::While,
                    "do" => Token::Do,
                    "break" => Token::Break,
                    "continue" => Token::Continue,
                    "return" => Token::Return,
                    "true" => Token::True,
                    "false" => Token::False,
                    "opaque" => Token::Opaque,
                    "switch" => Token::Switch,
                    "case" => Token::Case,
                    "default" => Token::Default,
                    _ => Token::Ident(word.to_string()),
                };
                out.push((tok, line));
            }
            _ => {
                let two = |a: char, b: char| c == a && bytes.get(i + 1) == Some(&(b as u8));
                let (tok, len) = if two('<', '<') {
                    (Token::Shl, 2)
                } else if two('>', '>') {
                    (Token::Shr, 2)
                } else if two('=', '=') {
                    (Token::EqEq, 2)
                } else if two('!', '=') {
                    (Token::NotEq, 2)
                } else if two('<', '=') {
                    (Token::Le, 2)
                } else if two('>', '=') {
                    (Token::Ge, 2)
                } else if two('&', '&') {
                    (Token::AndAnd, 2)
                } else if two('|', '|') {
                    (Token::OrOr, 2)
                } else {
                    let t = match c {
                        '(' => Token::LParen,
                        ')' => Token::RParen,
                        '{' => Token::LBrace,
                        '}' => Token::RBrace,
                        ',' => Token::Comma,
                        ':' => Token::Colon,
                        ';' => Token::Semi,
                        '=' => Token::Assign,
                        '+' => Token::Plus,
                        '-' => Token::Minus,
                        '*' => Token::Star,
                        '/' => Token::Slash,
                        '%' => Token::Percent,
                        '&' => Token::Amp,
                        '|' => Token::Pipe,
                        '^' => Token::Caret,
                        '~' => Token::Tilde,
                        '!' => Token::Bang,
                        '<' => Token::Lt,
                        '>' => Token::Gt,
                        _ => {
                            return Err(LexError {
                                line,
                                message: format!("unexpected character `{c}`"),
                            });
                        }
                    };
                    (t, 1)
                };
                out.push((tok, line));
                i += len;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("routine foo if xif"),
            vec![Token::Routine, Token::Ident("foo".into()), Token::If, Token::Ident("xif".into())]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("0 42 9223372036854775807"),
            vec![Token::Int(0), Token::Int(42), Token::Int(i64::MAX)]
        );
        assert!(lex("9223372036854775808").is_err());
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("<= >= == != << >> && ||"),
            vec![
                Token::Le,
                Token::Ge,
                Token::EqEq,
                Token::NotEq,
                Token::Shl,
                Token::Shr,
                Token::AndAnd,
                Token::OrOr
            ]
        );
    }

    #[test]
    fn one_char_operators_and_punct() {
        assert_eq!(
            toks("( ) { } , ; = + - * / % & | ^ ~ ! < >"),
            vec![
                Token::LParen,
                Token::RParen,
                Token::LBrace,
                Token::RBrace,
                Token::Comma,
                Token::Semi,
                Token::Assign,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent,
                Token::Amp,
                Token::Pipe,
                Token::Caret,
                Token::Tilde,
                Token::Bang,
                Token::Lt,
                Token::Gt,
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let ts = lex("a // comment\nb").unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].1, 1);
        assert_eq!(ts[1].1, 2);
    }

    #[test]
    fn unknown_character_errors() {
        let e = lex("a $ b").unwrap_err();
        assert!(e.to_string().contains("unexpected character"));
        assert_eq!(e.line, 1);
    }
}
