//! # pgvn-lang — front end for the pgvn project
//!
//! A small imperative language — assignments, `if`/`else`, `while`,
//! `do`-`while`, `break`/`continue`, `return`, integer expressions and the
//! `opaque(k)` intrinsic — sufficient to express every example program in
//! Gargi's PLDI 2002 paper verbatim (see [`fixtures`]).
//!
//! The pipeline is `source → tokens → AST → VarFunction → SSA Function`:
//!
//! ```
//! use pgvn_lang::compile;
//! use pgvn_ssa::SsaStyle;
//! use pgvn_ir::{Interpreter, HashedOpaques};
//!
//! let f = compile("routine triple(x) { return x * 3; }", SsaStyle::Pruned)?;
//! let r = Interpreter::new(&f).run(&[14], &mut HashedOpaques::new(0))?;
//! assert_eq!(r, 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod fixtures;
pub mod lower;
pub mod parser;
pub mod printer;
pub mod token;

pub use ast::{Expr, Routine, Stmt};
pub use lower::lower;
pub use parser::{parse, ParseError};
pub use printer::print_routine;
pub use token::{lex, LexError, Token};

use pgvn_ir::Function;
use pgvn_ssa::{build_ssa, SsaStyle};

/// A front-end error: parsing or SSA construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// Lexical or syntactic error.
    Parse(ParseError),
    /// SSA construction failed.
    Build(pgvn_ssa::BuildError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Build(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<pgvn_ssa::BuildError> for CompileError {
    fn from(e: pgvn_ssa::BuildError) -> Self {
        CompileError::Build(e)
    }
}

/// Compiles a routine from source text to an SSA [`Function`].
///
/// # Errors
///
/// Returns a [`CompileError`] on parse failure or malformed control flow.
pub fn compile(src: &str, style: SsaStyle) -> Result<Function, CompileError> {
    let routine = parse(src)?;
    let vf = lower(&routine);
    Ok(build_ssa(&vf, style)?)
}
