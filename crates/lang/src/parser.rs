//! Recursive-descent parser for the pgvn source language.
//!
//! Grammar (statements):
//!
//! ```text
//! routine   := "routine" IDENT "(" [IDENT ("," IDENT)*] ")" block
//! block     := "{" stmt* "}"
//! stmt      := IDENT "=" expr ";"
//!            | "if" "(" expr ")" stmt-or-block ["else" stmt-or-block]
//!            | "while" "(" expr ")" stmt-or-block
//!            | "do" stmt-or-block "while" "(" expr ")" ";"
//!            | "break" ";" | "continue" ";" | "return" expr ";"
//!            | expr ";"
//! ```
//!
//! Expression precedence, loosest first: `||`, `&&`, `|`, `^`, `&`,
//! equality, relational, shifts, additive, multiplicative, unary.

use crate::ast::{Expr, Routine, Stmt};
use crate::token::{lex, LexError, Token};
use pgvn_ir::{BinOp, CmpOp, UnOp};
use std::error::Error;
use std::fmt;

/// A parse error with a line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line (0 at end of input).
    pub line: u32,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { line: e.line, message: e.message }
    }
}

struct Parser {
    toks: Vec<(Token, u32)>,
    pos: usize,
    /// Auto-assigned tokens for `opaque()` with no argument.
    next_opaque: u32,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos)
            .map(|&(_, l)| l)
            .unwrap_or_else(|| self.toks.last().map(|&(_, l)| l).unwrap_or(0))
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line(), message: message.into() }
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn eat(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.error(format!("expected `{want}`, found `{t}`"))),
            None => Err(self.error(format!("expected `{want}`, found end of input"))),
        }
    }

    fn at(&mut self, want: &Token) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            Some(t) => Err(ParseError {
                line: self.toks[self.pos - 1].1,
                message: format!("expected identifier, found `{t}`"),
            }),
            None => Err(self.error("expected identifier, found end of input")),
        }
    }

    fn routine(&mut self) -> Result<Routine, ParseError> {
        self.eat(&Token::Routine)?;
        let name = self.ident()?;
        self.eat(&Token::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                params.push(self.ident()?);
                if !self.at(&Token::Comma) {
                    break;
                }
            }
        }
        self.eat(&Token::RParen)?;
        let body = self.block()?;
        Ok(Routine { name, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.eat(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Token::RBrace) {
            if self.peek().is_none() {
                return Err(self.error("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        self.eat(&Token::RBrace)?;
        Ok(stmts)
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.peek() == Some(&Token::LBrace) {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Token::If) => {
                self.pos += 1;
                self.eat(&Token::LParen)?;
                let cond = self.expr()?;
                self.eat(&Token::RParen)?;
                let then = self.stmt_or_block()?;
                let otherwise =
                    if self.at(&Token::Else) { self.stmt_or_block()? } else { Vec::new() };
                Ok(Stmt::If(cond, then, otherwise))
            }
            Some(Token::While) => {
                self.pos += 1;
                self.eat(&Token::LParen)?;
                let cond = self.expr()?;
                self.eat(&Token::RParen)?;
                let body = self.stmt_or_block()?;
                Ok(Stmt::While(cond, body))
            }
            Some(Token::Do) => {
                self.pos += 1;
                let body = self.stmt_or_block()?;
                self.eat(&Token::While)?;
                self.eat(&Token::LParen)?;
                let cond = self.expr()?;
                self.eat(&Token::RParen)?;
                self.eat(&Token::Semi)?;
                Ok(Stmt::DoWhile(body, cond))
            }
            Some(Token::Switch) => {
                self.pos += 1;
                self.eat(&Token::LParen)?;
                let scrutinee = self.expr()?;
                self.eat(&Token::RParen)?;
                self.eat(&Token::LBrace)?;
                let mut cases: Vec<(i64, Vec<Stmt>)> = Vec::new();
                let mut default = Vec::new();
                let mut saw_default = false;
                loop {
                    match self.peek() {
                        Some(Token::Case) => {
                            self.pos += 1;
                            let neg = self.at(&Token::Minus);
                            let raw = match self.bump() {
                                Some(Token::Int(v)) => v,
                                _ => return Err(self.error("expected integer case value")),
                            };
                            let value = if neg { raw.wrapping_neg() } else { raw };
                            if cases.iter().any(|&(c, _)| c == value) {
                                return Err(self.error(format!("duplicate case value {value}")));
                            }
                            self.eat(&Token::Colon)?;
                            cases.push((value, self.stmt_or_block()?));
                        }
                        Some(Token::Default) => {
                            if saw_default {
                                return Err(self.error("duplicate default case"));
                            }
                            self.pos += 1;
                            self.eat(&Token::Colon)?;
                            default = self.stmt_or_block()?;
                            saw_default = true;
                        }
                        Some(Token::RBrace) => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.error("expected `case`, `default` or `}` in switch")),
                    }
                }
                Ok(Stmt::Switch(scrutinee, cases, default))
            }
            Some(Token::Break) => {
                self.pos += 1;
                self.eat(&Token::Semi)?;
                Ok(Stmt::Break)
            }
            Some(Token::Continue) => {
                self.pos += 1;
                self.eat(&Token::Semi)?;
                Ok(Stmt::Continue)
            }
            Some(Token::Return) => {
                self.pos += 1;
                let e = self.expr()?;
                self.eat(&Token::Semi)?;
                Ok(Stmt::Return(e))
            }
            Some(Token::Ident(_))
                if self.toks.get(self.pos + 1).map(|(t, _)| t) == Some(&Token::Assign) =>
            {
                let name = self.ident()?;
                self.eat(&Token::Assign)?;
                let e = self.expr()?;
                self.eat(&Token::Semi)?;
                Ok(Stmt::Assign(name, e))
            }
            Some(_) => {
                let e = self.expr()?;
                self.eat(&Token::Semi)?;
                Ok(Stmt::Expr(e))
            }
            None => Err(self.error("expected statement, found end of input")),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.logical_or()
    }

    fn logical_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.logical_and()?;
        while self.at(&Token::OrOr) {
            let rhs = self.logical_and()?;
            lhs = Expr::LogicalOr(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_or()?;
        while self.at(&Token::AndAnd) {
            let rhs = self.bit_or()?;
            lhs = Expr::LogicalAnd(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_xor()?;
        while self.at(&Token::Pipe) {
            let rhs = self.bit_xor()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_xor(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_and()?;
        while self.at(&Token::Caret) {
            let rhs = self.bit_and()?;
            lhs = Expr::Binary(BinOp::Xor, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.equality()?;
        while self.at(&Token::Amp) {
            let rhs = self.equality()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                Some(Token::EqEq) => CmpOp::Eq,
                Some(Token::NotEq) => CmpOp::Ne,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.relational()?;
            lhs = Expr::Cmp(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.shift()?;
        loop {
            let op = match self.peek() {
                Some(Token::Lt) => CmpOp::Lt,
                Some(Token::Le) => CmpOp::Le,
                Some(Token::Gt) => CmpOp::Gt,
                Some(Token::Ge) => CmpOp::Ge,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.shift()?;
            lhs = Expr::Cmp(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Some(Token::Shl) => BinOp::Shl,
                Some(Token::Shr) => BinOp::Shr,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.additive()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Rem,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Minus) => {
                self.pos += 1;
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)))
            }
            Some(Token::Tilde) => {
                self.pos += 1;
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            Some(Token::Bang) => {
                self.pos += 1;
                Ok(Expr::LogicalNot(Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Token::Int(v)) => Ok(Expr::Int(v)),
            Some(Token::True) => Ok(Expr::Int(1)),
            Some(Token::False) => Ok(Expr::Int(0)),
            Some(Token::Ident(s)) => Ok(Expr::Var(s)),
            Some(Token::Opaque) => {
                self.eat(&Token::LParen)?;
                let token = if self.peek() == Some(&Token::RParen) {
                    let t = self.next_opaque;
                    self.next_opaque += 1;
                    t
                } else {
                    match self.bump() {
                        Some(Token::Int(v)) if (0..=u32::MAX as i64).contains(&v) => v as u32,
                        _ => {
                            return Err(
                                self.error("opaque() takes a small non-negative integer token")
                            )
                        }
                    }
                };
                self.eat(&Token::RParen)?;
                Ok(Expr::Opaque(token))
            }
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.eat(&Token::RParen)?;
                Ok(e)
            }
            Some(t) => Err(ParseError {
                line: self.toks[self.pos - 1].1,
                message: format!("expected expression, found `{t}`"),
            }),
            None => Err(self.error("expected expression, found end of input")),
        }
    }
}

/// Parses a single routine from source text.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first lexical or syntactic
/// problem.
///
/// # Examples
///
/// ```
/// let r = pgvn_lang::parse("routine id(x) { return x; }")?;
/// assert_eq!(r.name, "id");
/// assert_eq!(r.params, vec!["x".to_string()]);
/// # Ok::<(), pgvn_lang::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Routine, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0, next_opaque: 1_000_000 };
    let r = p.routine()?;
    if p.pos != p.toks.len() {
        return Err(p.error("trailing input after routine"));
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_routine() {
        let r = parse("routine f() { return 0; }").unwrap();
        assert_eq!(r.name, "f");
        assert!(r.params.is_empty());
        assert_eq!(r.body, vec![Stmt::Return(Expr::Int(0))]);
    }

    #[test]
    fn parses_params_and_assignment() {
        let r = parse("routine f(a, b) { c = a + b; return c; }").unwrap();
        assert_eq!(r.params, vec!["a", "b"]);
        match &r.body[0] {
            Stmt::Assign(name, Expr::Binary(BinOp::Add, _, _)) => assert_eq!(name, "c"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let r = parse("routine f(a) { return 1 + a * 2; }").unwrap();
        match &r.body[0] {
            Stmt::Return(Expr::Binary(BinOp::Add, l, rr)) => {
                assert_eq!(**l, Expr::Int(1));
                assert!(matches!(**rr, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_cmp_over_logical() {
        let r = parse("routine f(a, b) { return a < 1 && b > 2; }").unwrap();
        match &r.body[0] {
            Stmt::Return(Expr::LogicalAnd(l, rr)) => {
                assert!(matches!(**l, Expr::Cmp(CmpOp::Lt, _, _)));
                assert!(matches!(**rr, Expr::Cmp(CmpOp::Gt, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_else_and_loops() {
        let src = "routine f(n) {
            i = 0;
            while (i < n) {
                if (i == 3) break; else i = i + 1;
            }
            do { i = i - 1; } while (i > 0);
            return i;
        }";
        let r = parse(src).unwrap();
        assert_eq!(r.body.len(), 4);
        assert!(matches!(r.body[1], Stmt::While(_, _)));
        assert!(matches!(r.body[2], Stmt::DoWhile(_, _)));
    }

    #[test]
    fn dangling_else_binds_to_nearest_if() {
        let r =
            parse("routine f(a,b) { if (a) if (b) return 1; else return 2; return 3; }").unwrap();
        match &r.body[0] {
            Stmt::If(_, then, outer_else) => {
                assert!(outer_else.is_empty());
                match &then[0] {
                    Stmt::If(_, _, inner_else) => assert_eq!(inner_else.len(), 1),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn opaque_with_and_without_token() {
        let r = parse("routine f() { a = opaque(7); b = opaque(); return a + b; }").unwrap();
        match (&r.body[0], &r.body[1]) {
            (Stmt::Assign(_, Expr::Opaque(7)), Stmt::Assign(_, Expr::Opaque(t))) => {
                assert!(*t >= 1_000_000);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_operators() {
        let r = parse("routine f(a) { return -a + ~a + !a; }").unwrap();
        assert!(matches!(r.body[0], Stmt::Return(_)));
    }

    #[test]
    fn true_false_literals() {
        let r = parse("routine f() { while (true) { break; } return false; }").unwrap();
        assert!(matches!(&r.body[0], Stmt::While(Expr::Int(1), _)));
        assert!(matches!(&r.body[1], Stmt::Return(Expr::Int(0))));
    }

    #[test]
    fn error_messages_carry_lines() {
        let e = parse("routine f() {\n  x = ;\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("expected expression"));
        let e2 = parse("routine f() { return 0; } extra").unwrap_err();
        assert!(e2.message.contains("trailing"));
    }

    #[test]
    fn expression_statement() {
        let r = parse("routine f() { opaque(3); return 0; }").unwrap();
        assert!(matches!(&r.body[0], Stmt::Expr(Expr::Opaque(3))));
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;

    fn err(src: &str) -> String {
        parse(src).unwrap_err().to_string()
    }

    #[test]
    fn switch_error_paths() {
        assert!(err("routine f(x) { switch (x) { case y: { } } return 0; }")
            .contains("integer case value"));
        assert!(err("routine f(x) { switch (x) { default: {} default: {} } return 0; }")
            .contains("duplicate default"));
        assert!(err("routine f(x) { switch (x) { banana } return 0; }").contains("expected `case`"));
        assert!(
            err("routine f(x) { switch (x) { case 1 { } } return 0; }").contains("expected `:`")
        );
    }

    #[test]
    fn structural_error_paths() {
        assert!(err("routine f( { return 0; }").contains("expected identifier"));
        assert!(err("routine f() { return 0 }").contains("expected `;`"));
        assert!(err("routine f() { if return 0; }").contains("expected `(`"));
        assert!(err("routine f() { do { } }").contains("expected `while`"));
        assert!(err("routine f() {").contains("unterminated block"));
        assert!(err("routine f() { opaque(x); return 0; }").contains("non-negative integer token"));
    }

    #[test]
    fn missing_routine_keyword() {
        assert!(err("fn f() {}").contains("expected `routine`"));
    }

    #[test]
    fn empty_input() {
        assert!(err("").contains("end of input"));
    }
}
