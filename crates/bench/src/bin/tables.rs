//! Regenerates the paper's tables and figures on the synthetic suite.
//!
//! ```text
//! cargo run --release -p pgvn-bench --bin tables -- [all|table1|table2|
//!     figure10|figure11|figure12|stats|ablations] [--scale X]
//! ```
//!
//! The default scale of 0.25 generates about 1450 routines (the paper's
//! suite has ~5800); `--scale 1.0` reproduces the full size.

use pgvn_bench::{
    collect_distributions, compare_strength, standard_suite, table1_timings, table2_timings,
    total_strength, Improvements,
};
use pgvn_core::{GvnConfig, Mode, Variant};
use pgvn_ssa::SsaStyle;
use pgvn_workload::{spec_suite, Benchmark, Histogram, SuiteConfig};

fn ms(nanos: u128) -> f64 {
    nanos as f64 / 1.0e6
}

fn ratio(a: u128, b: u128) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

fn print_table1(suite: &[Benchmark]) {
    println!("## Table 1 — HLO and GVN time: optimistic vs balanced vs pessimistic");
    println!("(times in milliseconds on the synthetic suite; paper shape: E/D ≈ B/D,");
    println!(" B/E in 1.39–1.90, K = I/H ≈ 1.00)");
    println!();
    println!(
        "{:<14} {:>9} {:>9} {:>6} {:>9} {:>9} {:>6} {:>6} {:>9} {:>9} {:>6} {:>6}",
        "Benchmark",
        "HLO(opt)",
        "GVN(opt)",
        "B/A%",
        "HLO(bal)",
        "GVN(bal)",
        "E/D%",
        "B/E",
        "HLO(pes)",
        "GVN(pes)",
        "I/H%",
        "E/I"
    );
    let rows = table1_timings(suite);
    let mut tot_a = 0u128;
    let mut tot_b = 0u128;
    let mut tot_d = 0u128;
    let mut tot_e = 0u128;
    let mut tot_h = 0u128;
    let mut tot_i = 0u128;
    for r in &rows {
        let (a, b) = (r.optimistic.hlo_nanos, r.optimistic.gvn_nanos);
        let (d, e) = (r.balanced.hlo_nanos, r.balanced.gvn_nanos);
        let (h, i) = (r.pessimistic.hlo_nanos, r.pessimistic.gvn_nanos);
        tot_a += a;
        tot_b += b;
        tot_d += d;
        tot_e += e;
        tot_h += h;
        tot_i += i;
        println!(
            "{:<14} {:>9.2} {:>9.2} {:>5.1}% {:>9.2} {:>9.2} {:>5.1}% {:>6.2} {:>9.2} {:>9.2} {:>5.1}% {:>6.2}",
            r.name,
            ms(a),
            ms(b),
            100.0 * ratio(b, a),
            ms(d),
            ms(e),
            100.0 * ratio(e, d),
            ratio(b, e),
            ms(h),
            ms(i),
            100.0 * ratio(i, h),
            ratio(e, i),
        );
    }
    println!(
        "{:<14} {:>9.2} {:>9.2} {:>5.1}% {:>9.2} {:>9.2} {:>5.1}% {:>6.2} {:>9.2} {:>9.2} {:>5.1}% {:>6.2}",
        "All",
        ms(tot_a),
        ms(tot_b),
        100.0 * ratio(tot_b, tot_a),
        ms(tot_d),
        ms(tot_e),
        100.0 * ratio(tot_e, tot_d),
        ratio(tot_b, tot_e),
        ms(tot_h),
        ms(tot_i),
        100.0 * ratio(tot_i, tot_h),
        ratio(tot_e, tot_i),
    );
    println!();
}

fn print_table2(suite: &[Benchmark]) {
    println!("## Table 2 — GVN time: Dense vs Sparse vs Basic");
    println!("(paper shape: A/B in 1.23–1.57, B/C in 1.15–1.32)");
    println!();
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>6} {:>6}",
        "Benchmark", "Dense A", "Sparse B", "Basic C", "A/B", "B/C"
    );
    let rows = table2_timings(suite);
    let mut ta = 0u128;
    let mut tb = 0u128;
    let mut tc = 0u128;
    for r in &rows {
        let (a, b, c) = (r.dense.gvn_nanos, r.sparse.gvn_nanos, r.basic.gvn_nanos);
        ta += a;
        tb += b;
        tc += c;
        println!(
            "{:<14} {:>10.2} {:>10.2} {:>10.2} {:>6.2} {:>6.2}",
            r.name,
            ms(a),
            ms(b),
            ms(c),
            ratio(a, b),
            ratio(b, c)
        );
    }
    println!(
        "{:<14} {:>10.2} {:>10.2} {:>10.2} {:>6.2} {:>6.2}",
        "All",
        ms(ta),
        ms(tb),
        ms(tc),
        ratio(ta, tb),
        ratio(tb, tc)
    );
    println!();
}

fn print_figure(title: &str, note: &str, imp: &Improvements) {
    println!("## {title}");
    println!("({note})");
    println!();
    println!("Unreachable values improvement distribution:");
    print!("{}", imp.unreachable);
    println!("Constant values improvement distribution:");
    print!("{}", imp.constants);
    println!("Congruence classes reduction distribution:");
    print!("{}", imp.classes);
    println!();
}

/// Renders a per-routine count histogram. Counts up to `exact_to` get
/// their own row; the tail is folded into power-of-two buckets so
/// long-tailed visit distributions stay readable.
fn print_count_histogram(title: &str, h: &Histogram, exact_to: i64) {
    println!("{title} (routines at each count):");
    let mut bucketed: Vec<(i64, i64, usize)> = Vec::new();
    for (count, routines) in h.iter() {
        let (lo, hi) = if count <= exact_to {
            (count, count)
        } else {
            // Power-of-two bucket [2^k, 2^(k+1)) above the exact range.
            let k = 63 - (count as u64).leading_zeros();
            (1i64 << k, (1i64 << (k + 1)) - 1)
        };
        match bucketed.last_mut() {
            Some((l, _, n)) if *l == lo => *n += routines,
            _ => bucketed.push((lo, hi, routines)),
        }
    }
    for (lo, hi, routines) in bucketed {
        let label = if lo == hi { format!("{lo}") } else { format!("{lo}-{hi}") };
        let bar = "#".repeat(routines.min(60));
        println!("  {label:>11}x {routines:>6} {bar}");
    }
}

fn print_stats(suite: &[Benchmark]) {
    println!("## §4/§5 scalar statistics (full algorithm, optimistic)");
    println!("(paper: 1.98 passes/routine; 0.91 / 0.38 / 0.16 blocks visited per");
    println!(" instruction by value inference / predicate inference / φ-predication)");
    println!();
    let (s, dist) = collect_distributions(suite, &GvnConfig::full());
    println!("routines:                      {}", s.routines);
    println!("instructions:                  {}", s.insts);
    println!("passes per routine:            {:.2}", s.passes_per_routine());
    println!("value-inference visits/inst:   {:.2}", s.vi_per_inst());
    println!("predicate-inference visits/inst: {:.2}", s.pi_per_inst());
    println!("phi-predication visits/inst:   {:.2}", s.pp_per_inst());
    println!();
    print_count_histogram("RPO passes per routine", &dist.passes, 16);
    print_count_histogram("Value-inference visits per routine", &dist.vi_visits, 8);
    print_count_histogram("Predicate-inference visits per routine", &dist.pi_visits, 8);
    print_count_histogram("Phi-predication visits per routine", &dist.pp_visits, 8);
    println!();
}

fn print_ablations(suite: &[Benchmark]) {
    println!("## Ablations (suite-wide strength totals; DESIGN.md E13)");
    println!();
    println!("{:<38} {:>12} {:>10} {:>10}", "Configuration", "unreachable", "constants", "classes");
    let show = |name: &str, cfg: &GvnConfig| {
        let s = total_strength(suite, cfg);
        println!(
            "{:<38} {:>12} {:>10} {:>10}",
            name, s.unreachable_values, s.constant_values, s.congruence_classes
        );
    };
    show("full (optimistic, practical)", &GvnConfig::full());
    show("complete variant", &GvnConfig::full().variant(Variant::Complete));
    show("balanced", &GvnConfig::full().mode(Mode::Balanced));
    show("pessimistic", &GvnConfig::full().mode(Mode::Pessimistic));
    let mut c = GvnConfig::full();
    c.value_inference = false;
    show("- value inference", &c);
    let mut c = GvnConfig::full();
    c.predicate_inference = false;
    show("- predicate inference", &c);
    let mut c = GvnConfig::full();
    c.phi_predication = false;
    show("- phi-predication", &c);
    let mut c = GvnConfig::full();
    c.global_reassociation = false;
    show("- global reassociation", &c);
    let mut c = GvnConfig::full();
    c.value_inference_constants_only = true;
    show("value inference: constants only", &c);
    show("+ §6 φ-distribution + §7 joint dom.", &GvnConfig::extended());
    show("click emulation (basic)", &GvnConfig::click());
    show("wegman-zadeck sccp emulation", &GvnConfig::sccp());
    show("awz/simpson emulation", &GvnConfig::awz());
    println!();
    // SSA-style ablation (§3: pruned SSA can reduce effectiveness).
    println!("SSA construction style (full algorithm):");
    for (label, style) in [
        ("minimal SSA", SsaStyle::Minimal),
        ("semi-pruned SSA", SsaStyle::SemiPruned),
        ("pruned SSA", SsaStyle::Pruned),
    ] {
        let scale_suite = spec_suite(SuiteConfig {
            scale: suite.iter().map(Benchmark::len).sum::<usize>() as f64 / 5793.0,
            style,
            ..Default::default()
        });
        let s = total_strength(&scale_suite, &GvnConfig::full());
        println!(
            "{:<38} {:>12} {:>10} {:>10}",
            label, s.unreachable_values, s.constant_values, s.congruence_classes
        );
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.25;
    let mut what: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it.next().and_then(|s| s.parse().ok()).expect("--scale takes a number");
            }
            other => what.push(other.to_string()),
        }
    }
    if what.is_empty() {
        what.push("all".to_string());
    }
    let all = what.iter().any(|w| w == "all");
    let wants = |w: &str| all || what.iter().any(|x| x == w);

    eprintln!("# pgvn evaluation (scale {scale})");
    let suite = standard_suite(scale);
    let n: usize = suite.iter().map(Benchmark::len).sum();
    eprintln!("# suite: {} benchmarks, {} routines", suite.len(), n);
    println!();

    if wants("table1") {
        print_table1(&suite);
    }
    if wants("table2") {
        print_table2(&suite);
    }
    if wants("figure10") {
        let imp = compare_strength(&suite, &GvnConfig::full(), &GvnConfig::click());
        print_figure(
            "Figure 10 — full algorithm vs Click's strongest algorithm",
            "paper shape: overwhelming mass at 0, long positive tail, a few \
             value-inference regressions in congruence classes",
            &imp,
        );
    }
    if wants("figure11") {
        let imp = compare_strength(&suite, &GvnConfig::full(), &GvnConfig::sccp());
        print_figure(
            "Figure 11 — full algorithm vs Wegman–Zadeck SCCP",
            "paper shape: mass at 0 with a positive tail in unreachable and constants",
            &imp,
        );
    }
    if wants("figure12") {
        let imp =
            compare_strength(&suite, &GvnConfig::full(), &GvnConfig::full().mode(Mode::Balanced));
        print_figure(
            "Figure 12 — optimistic vs balanced value numbering",
            "paper shape: balanced is almost as strong; small positive tail only",
            &imp,
        );
    }
    if wants("stats") {
        print_stats(&suite);
    }
    if wants("ablations") {
        print_ablations(&suite);
    }
}
