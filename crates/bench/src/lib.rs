//! # pgvn-bench — the evaluation harness
//!
//! Measurement machinery that regenerates every table and figure of the
//! paper's §5 on the synthetic SPEC CINT2000 stand-in suite:
//!
//! - **Table 1** — HLO (pipeline) and GVN time under optimistic, balanced
//!   and pessimistic value numbering, with the paper's ratio columns;
//! - **Table 2** — GVN time with sparseness disabled ("Dense"), enabled
//!   ("Sparse") and with the §1.3 analyses disabled ("Basic");
//! - **Figures 10/11/12** — distributions of per-routine improvements in
//!   unreachable values, constant values and congruence classes of the
//!   full algorithm over Click's algorithm, over Wegman–Zadeck SCCP, and
//!   of optimistic over balanced value numbering;
//! - **§4/§5 scalar statistics** — passes per routine and blocks visited
//!   per instruction by each inference.
//!
//! Run `cargo run --release -p pgvn-bench --bin tables -- all` to print
//! everything.

use pgvn_core::{run, GvnConfig, GvnStats, Mode, Strength};
use pgvn_transform::Pipeline;
use pgvn_workload::{spec_suite, Benchmark, Histogram, SuiteConfig};
use std::time::Instant;

/// Per-benchmark timing of one configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct BenchTiming {
    /// Total pipeline ("HLO" stand-in) time in nanoseconds.
    pub hlo_nanos: u128,
    /// Total GVN analysis time in nanoseconds.
    pub gvn_nanos: u128,
    /// Routines measured.
    pub routines: usize,
}

impl BenchTiming {
    /// GVN share of total pipeline time.
    pub fn gvn_share(&self) -> f64 {
        if self.hlo_nanos == 0 {
            0.0
        } else {
            self.gvn_nanos as f64 / self.hlo_nanos as f64
        }
    }
}

/// Times the full pipeline and its embedded GVN for every routine of a
/// benchmark under `cfg`.
pub fn time_pipeline(bench: &Benchmark, cfg: &GvnConfig) -> BenchTiming {
    let mut t = BenchTiming::default();
    for i in 0..bench.len() {
        let mut f = bench.routine(i);
        let report = Pipeline::new(cfg.clone()).optimize(&mut f);
        t.hlo_nanos += report.total_nanos;
        t.gvn_nanos += report.gvn_nanos;
        t.routines += 1;
    }
    t
}

/// Times just the GVN analysis for every routine of a benchmark.
pub fn time_gvn(bench: &Benchmark, cfg: &GvnConfig) -> BenchTiming {
    let mut t = BenchTiming::default();
    for i in 0..bench.len() {
        let f = bench.routine(i);
        let g0 = Instant::now();
        let results = run(&f, cfg);
        let nanos = g0.elapsed().as_nanos();
        assert!(results.stats.converged, "{} did not converge", f.name());
        t.gvn_nanos += nanos;
        t.hlo_nanos += nanos;
        t.routines += 1;
    }
    t
}

/// The three per-routine improvement histograms of a Figure 10/11/12-style
/// comparison.
#[derive(Clone, Debug, Default)]
pub struct Improvements {
    /// Additional unreachable values found by the stronger configuration.
    pub unreachable: Histogram,
    /// Additional constant values.
    pub constants: Histogram,
    /// Reduction in congruence classes (positive = fewer classes).
    pub classes: Histogram,
}

/// Compares two configurations per routine across a suite.
pub fn compare_strength(suite: &[Benchmark], strong: &GvnConfig, weak: &GvnConfig) -> Improvements {
    let mut imp = Improvements::default();
    for bench in suite {
        for i in 0..bench.len() {
            let f = bench.routine(i);
            let s = run(&f, strong).strength();
            let w = run(&f, weak).strength();
            imp.unreachable.add(s.unreachable_values as i64 - w.unreachable_values as i64);
            imp.constants.add(s.constant_values as i64 - w.constant_values as i64);
            imp.classes.add(w.congruence_classes as i64 - s.congruence_classes as i64);
        }
    }
    imp
}

/// Aggregated GVN statistics over a suite (the paper's §4/§5 scalars).
#[derive(Clone, Copy, Debug, Default)]
pub struct SuiteStats {
    /// Total passes over all routines.
    pub passes: u64,
    /// Total routines.
    pub routines: u64,
    /// Total instructions.
    pub insts: u64,
    /// Total value-inference block visits.
    pub vi_visits: u64,
    /// Total predicate-inference block visits.
    pub pi_visits: u64,
    /// Total φ-predication block visits.
    pub pp_visits: u64,
}

impl SuiteStats {
    /// Accumulates one routine's stats.
    pub fn absorb(&mut self, s: &GvnStats) {
        self.passes += u64::from(s.passes);
        self.routines += 1;
        self.insts += s.num_insts;
        self.vi_visits += s.value_inference_visits;
        self.pi_visits += s.predicate_inference_visits;
        self.pp_visits += s.phi_predication_visits;
    }

    /// Average passes per routine (paper: 1.98).
    pub fn passes_per_routine(&self) -> f64 {
        self.passes as f64 / self.routines.max(1) as f64
    }

    /// Average value-inference block visits per instruction (paper: 0.91).
    pub fn vi_per_inst(&self) -> f64 {
        self.vi_visits as f64 / self.insts.max(1) as f64
    }

    /// Average predicate-inference block visits per instruction (0.38).
    pub fn pi_per_inst(&self) -> f64 {
        self.pi_visits as f64 / self.insts.max(1) as f64
    }

    /// Average φ-predication block visits per instruction (0.16).
    pub fn pp_per_inst(&self) -> f64 {
        self.pp_visits as f64 / self.insts.max(1) as f64
    }
}

/// Collects suite-wide scalar statistics under `cfg`.
pub fn collect_stats(suite: &[Benchmark], cfg: &GvnConfig) -> SuiteStats {
    let mut out = SuiteStats::default();
    for bench in suite {
        for i in 0..bench.len() {
            let f = bench.routine(i);
            let results = run(&f, cfg);
            out.absorb(&results.stats);
        }
    }
    out
}

/// Per-routine distributions behind the §4/§5 averages: the scalar
/// "1.98 passes per routine" hides the shape, these histograms show it.
#[derive(Clone, Debug, Default)]
pub struct SuiteDistributions {
    /// RPO passes per routine.
    pub passes: Histogram,
    /// Value-inference block visits per routine.
    pub vi_visits: Histogram,
    /// Predicate-inference block visits per routine.
    pub pi_visits: Histogram,
    /// φ-predication block visits per routine.
    pub pp_visits: Histogram,
}

/// Collects both the suite-wide scalars and the per-routine
/// distributions in one sweep under `cfg`.
pub fn collect_distributions(
    suite: &[Benchmark],
    cfg: &GvnConfig,
) -> (SuiteStats, SuiteDistributions) {
    let mut stats = SuiteStats::default();
    let mut dist = SuiteDistributions::default();
    for bench in suite {
        for i in 0..bench.len() {
            let f = bench.routine(i);
            let s = run(&f, cfg).stats;
            stats.absorb(&s);
            dist.passes.add(i64::from(s.passes));
            dist.vi_visits.add(s.value_inference_visits as i64);
            dist.pi_visits.add(s.predicate_inference_visits as i64);
            dist.pp_visits.add(s.phi_predication_visits as i64);
        }
    }
    (stats, dist)
}

/// Builds the standard evaluation suite at the given scale.
pub fn standard_suite(scale: f64) -> Vec<Benchmark> {
    spec_suite(SuiteConfig { scale, ..Default::default() })
}

/// A convenience bundle for per-mode comparisons (Table 1 rows).
#[derive(Clone, Debug)]
pub struct ModeTimings {
    /// Benchmark name.
    pub name: &'static str,
    /// Optimistic pipeline/GVN time.
    pub optimistic: BenchTiming,
    /// Balanced pipeline/GVN time.
    pub balanced: BenchTiming,
    /// Pessimistic pipeline/GVN time.
    pub pessimistic: BenchTiming,
}

/// Times the three value-numbering modes for every benchmark (Table 1).
pub fn table1_timings(suite: &[Benchmark]) -> Vec<ModeTimings> {
    suite
        .iter()
        .map(|bench| ModeTimings {
            name: bench.profile.name,
            optimistic: time_pipeline(bench, &GvnConfig::full()),
            balanced: time_pipeline(bench, &GvnConfig::full().mode(Mode::Balanced)),
            pessimistic: time_pipeline(bench, &GvnConfig::full().mode(Mode::Pessimistic)),
        })
        .collect()
}

/// Dense / sparse / basic timings per benchmark (Table 2).
#[derive(Clone, Debug)]
pub struct SparsenessTimings {
    /// Benchmark name.
    pub name: &'static str,
    /// Full algorithm with sparseness disabled.
    pub dense: BenchTiming,
    /// Full sparse algorithm.
    pub sparse: BenchTiming,
    /// Sparse with reassociation/inference/φ-predication disabled.
    pub basic: BenchTiming,
}

/// Times the sparseness/feature tradeoffs for every benchmark (Table 2).
pub fn table2_timings(suite: &[Benchmark]) -> Vec<SparsenessTimings> {
    suite
        .iter()
        .map(|bench| SparsenessTimings {
            name: bench.profile.name,
            dense: time_gvn(bench, &GvnConfig::full().sparse(false)),
            sparse: time_gvn(bench, &GvnConfig::full()),
            basic: time_gvn(bench, &GvnConfig::basic()),
        })
        .collect()
}

/// Strength of a configuration summed over a whole suite (used by the
/// ablation report).
pub fn total_strength(suite: &[Benchmark], cfg: &GvnConfig) -> Strength {
    let mut total = Strength::default();
    for bench in suite {
        for i in 0..bench.len() {
            let s = run(&bench.routine(i), cfg).strength();
            total.unreachable_values += s.unreachable_values;
            total.constant_values += s.constant_values;
            total.congruence_classes += s.congruence_classes;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_suite() -> Vec<Benchmark> {
        standard_suite(0.004)
    }

    #[test]
    fn timings_accumulate() {
        let suite = tiny_suite();
        let t = time_pipeline(&suite[0], &GvnConfig::full());
        assert_eq!(t.routines, suite[0].len());
        assert!(t.hlo_nanos >= t.gvn_nanos);
        assert!(t.gvn_share() > 0.0 && t.gvn_share() <= 1.0);
    }

    #[test]
    fn comparison_histograms_cover_all_routines() {
        let suite = tiny_suite();
        let total: usize = suite.iter().map(Benchmark::len).sum();
        let imp = compare_strength(&suite, &GvnConfig::full(), &GvnConfig::click());
        assert_eq!(imp.unreachable.total(), total);
        assert_eq!(imp.constants.total(), total);
        assert_eq!(imp.classes.total(), total);
        // Full must not lose unreachable values vs Click anywhere.
        assert_eq!(imp.unreachable.regressed(), 0);
    }

    #[test]
    fn stats_aggregate() {
        let suite = tiny_suite();
        let s = collect_stats(&suite, &GvnConfig::full());
        assert!(s.routines > 0);
        assert!(s.passes_per_routine() >= 1.0);
        assert!(s.vi_per_inst() >= 0.0);
    }

    #[test]
    fn distributions_cover_all_routines_and_match_scalars() {
        let suite = tiny_suite();
        let total: usize = suite.iter().map(Benchmark::len).sum();
        let (stats, dist) = collect_distributions(&suite, &GvnConfig::full());
        assert_eq!(stats.routines as usize, total);
        for h in [&dist.passes, &dist.vi_visits, &dist.pi_visits, &dist.pp_visits] {
            assert_eq!(h.total(), total);
        }
        // The histograms must sum back to the scalar totals.
        assert_eq!(dist.passes.total_improvement() as u64, stats.passes);
        assert_eq!(dist.vi_visits.total_improvement() as u64, stats.vi_visits);
        assert_eq!(dist.pi_visits.total_improvement() as u64, stats.pi_visits);
        assert_eq!(dist.pp_visits.total_improvement() as u64, stats.pp_visits);
        // Every routine makes at least one pass.
        assert_eq!(dist.passes.zeros(), 0);
    }

    #[test]
    fn mode_timings_have_all_benchmarks() {
        let suite = tiny_suite();
        let rows = table1_timings(&suite);
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r.optimistic.routines > 0);
            assert_eq!(r.optimistic.routines, r.balanced.routines);
        }
    }
}
