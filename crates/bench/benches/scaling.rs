//! Scaling behaviour: GVN time as routine size grows, sparse vs dense.
//!
//! The sparse formulation's advantage grows with routine size (the dense
//! driver re-processes every instruction each pass); this bench makes the
//! trend measurable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pgvn_core::{run, GvnConfig};
use pgvn_workload::{generate_function, GenConfig};

fn bench_size_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("size_scaling");
    for stmts in [25usize, 100, 400] {
        let cfg = GenConfig { seed: 99, target_stmts: stmts, ..Default::default() };
        let f = generate_function("s", &cfg, pgvn_ssa::SsaStyle::Minimal);
        group.throughput(Throughput::Elements(f.num_insts() as u64));
        group.bench_with_input(BenchmarkId::new("sparse", stmts), &f, |b, f| {
            b.iter(|| run(f, &GvnConfig::full()).num_congruence_classes());
        });
        group.bench_with_input(BenchmarkId::new("dense", stmts), &f, |b, f| {
            b.iter(|| run(f, &GvnConfig::full().sparse(false)).num_congruence_classes());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_size_scaling);
criterion_main!(benches);
