//! Microbenchmarks of the substrates: RPO + dominators, postdominators,
//! SSA construction, the front end, and the telemetry guardrail (an
//! untraced `run` vs `run_traced` with a disabled handle must be within
//! noise of each other — the `gvn_untraced`/`gvn_telemetry_off` pair
//! below is the check behind the "<2% overhead" claim in
//! `docs/OBSERVABILITY.md`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgvn_analysis::{DomTree, PostDomTree, Rpo};
use pgvn_core::{run, run_traced, GvnConfig};
use pgvn_lang::{lower, parse};
use pgvn_ssa::{build_ssa, SsaStyle};
use pgvn_telemetry::{MetricsRegistry, Telemetry};
use pgvn_workload::{generate_routine, GenConfig};

fn bench_analyses(c: &mut Criterion) {
    let mut group = c.benchmark_group("cfg_analyses");
    for stmts in [50usize, 200, 800] {
        let cfg = GenConfig { seed: 11, target_stmts: stmts, ..Default::default() };
        let routine = generate_routine("m", &cfg);
        let vf = lower(&routine);
        let f = build_ssa(&vf, SsaStyle::Minimal).expect("builds");
        group.bench_with_input(BenchmarkId::new("rpo_domtree", stmts), &f, |bencher, f| {
            bencher.iter(|| {
                let rpo = Rpo::compute(f);
                DomTree::compute(f, &rpo).idom(f.entry())
            });
        });
        group.bench_with_input(BenchmarkId::new("postdoms", stmts), &f, |bencher, f| {
            bencher.iter(|| {
                let rpo = Rpo::compute(f);
                PostDomTree::compute(f, &rpo).ipdom(f.entry())
            });
        });
        group.bench_with_input(BenchmarkId::new("ssa_construction", stmts), &vf, |bencher, vf| {
            bencher.iter(|| build_ssa(vf, SsaStyle::Pruned).expect("builds").num_insts());
        });
    }
    group.finish();
}

fn bench_frontend(c: &mut Criterion) {
    let src = pgvn_lang::fixtures::FIGURE1;
    c.bench_function("parse_figure1", |bencher| {
        bencher.iter(|| parse(src).expect("parses").body.len());
    });
}

fn bench_telemetry_off(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    for stmts in [200usize, 800] {
        let gen = GenConfig { seed: 23, target_stmts: stmts, ..Default::default() };
        let routine = generate_routine("t", &gen);
        let f = build_ssa(&lower(&routine), SsaStyle::Pruned).expect("builds");
        let cfg = GvnConfig::full();
        group.bench_with_input(BenchmarkId::new("gvn_untraced", stmts), &f, |bencher, f| {
            bencher.iter(|| run(f, &cfg).stats.passes);
        });
        group.bench_with_input(BenchmarkId::new("gvn_telemetry_off", stmts), &f, |bencher, f| {
            bencher.iter(|| run_traced(f, &cfg, &mut Telemetry::off()).stats.passes);
        });
        // The metrics mirror of the same guard: a handle with no
        // registry attached must also sit within noise of `gvn_untraced`
        // (the recording sites are one untaken branch), while
        // `gvn_metrics_on` shows the full metered cost for reference.
        group.bench_with_input(BenchmarkId::new("gvn_metrics_off", stmts), &f, |bencher, f| {
            bencher.iter(|| {
                let mut tel = Telemetry::off();
                run_traced(f, &cfg, &mut tel).stats.passes
            });
        });
        group.bench_with_input(BenchmarkId::new("gvn_metrics_on", stmts), &f, |bencher, f| {
            let reg = MetricsRegistry::new();
            bencher.iter(|| {
                let mut tel = Telemetry::off();
                tel.attach_metrics(&reg);
                run_traced(f, &cfg, &mut tel).stats.passes
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analyses, bench_frontend, bench_telemetry_off);
criterion_main!(benches);
