//! Criterion bench for the paper's worst cases.
//!
//! Figure 9: a ladder of n equality guards makes value inference climb the
//! dominator tree O(n²) times in total — time should grow superlinearly
//! with n. Also times the Figure 1 headline routine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgvn_core::{run, GvnConfig};
use pgvn_lang::{compile, fixtures};
use pgvn_ssa::SsaStyle;

fn bench_figure9_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure9_value_inference_worst_case");
    for n in [8usize, 16, 32, 64] {
        let src = fixtures::figure9(n);
        let f = compile(&src, SsaStyle::Minimal).expect("ladder compiles");
        group.bench_with_input(BenchmarkId::from_parameter(n), &f, |bencher, f| {
            bencher.iter(|| run(f, &GvnConfig::full()).stats.value_inference_visits);
        });
    }
    group.finish();
}

fn bench_figure1(c: &mut Criterion) {
    let f = compile(fixtures::FIGURE1, SsaStyle::Minimal).expect("figure 1 compiles");
    c.bench_function("figure1_full_algorithm", |bencher| {
        bencher.iter(|| run(&f, &GvnConfig::full()).num_congruence_classes());
    });
}

criterion_group!(benches, bench_figure9_ladder, bench_figure1);
criterion_main!(benches);
