//! Criterion bench for the feature ablations (DESIGN.md E13): the cost of
//! each unified analysis, and of the SSA construction styles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgvn_bench::standard_suite;
use pgvn_core::{run, GvnConfig, Variant};
use pgvn_ssa::SsaStyle;
use pgvn_workload::{spec_suite, SuiteConfig};

fn bench_feature_cost(c: &mut Criterion) {
    let suite = standard_suite(0.02);
    let funcs: Vec<_> = suite
        .iter()
        .find(|b| b.profile.name == "176.gcc")
        .expect("gcc profile exists")
        .routines()
        .collect();
    let mut group = c.benchmark_group("feature_ablations_gcc");
    let mut no_vi = GvnConfig::full();
    no_vi.value_inference = false;
    let mut no_pi = GvnConfig::full();
    no_pi.predicate_inference = false;
    let mut no_pp = GvnConfig::full();
    no_pp.phi_predication = false;
    let mut no_ra = GvnConfig::full();
    no_ra.global_reassociation = false;
    for (label, cfg) in [
        ("full", GvnConfig::full()),
        ("no_value_inference", no_vi),
        ("no_predicate_inference", no_pi),
        ("no_phi_predication", no_pp),
        ("no_reassociation", no_ra),
        ("complete_variant", GvnConfig::full().variant(Variant::Complete)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &funcs, |bencher, funcs| {
            bencher.iter(|| {
                let mut acc = 0usize;
                for f in funcs {
                    acc += run(f, &cfg).num_congruence_classes();
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_ssa_styles(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssa_style_ablation");
    for (label, style) in [
        ("minimal", SsaStyle::Minimal),
        ("semi_pruned", SsaStyle::SemiPruned),
        ("pruned", SsaStyle::Pruned),
    ] {
        let suite = spec_suite(SuiteConfig { scale: 0.01, style, ..Default::default() });
        let funcs: Vec<_> = suite.iter().flat_map(|b| b.routines().collect::<Vec<_>>()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(label), &funcs, |bencher, funcs| {
            bencher.iter(|| {
                let mut acc = 0usize;
                for f in funcs {
                    acc += run(f, &GvnConfig::full()).num_congruence_classes();
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_feature_cost, bench_ssa_styles);
criterion_main!(benches);
