//! Sharded-fuzz-campaign throughput: iterations/sec through
//! `pgvn::oracle::run_campaign` at one worker and at the machine's
//! parallelism, plus the determinism contract the numbers rest on — the
//! parallel campaign must reproduce the sequential report, stats record,
//! and shrunk fixtures byte for byte.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pgvn::oracle::{
    run_campaign, CampaignOptions, CampaignReport, FuzzMode, FuzzOptions, ShrinkOptions,
    ValidatorOptions,
};

const SEED: u64 = 2002;

fn campaign_opts(iterations: u64, jobs: usize) -> CampaignOptions {
    CampaignOptions {
        fuzz: FuzzOptions {
            seed: SEED,
            iterations,
            mode: FuzzMode::Both,
            validator: ValidatorOptions { fuel: 1 << 14, vectors: 3, ..Default::default() },
            shrink: Some(ShrinkOptions { max_attempts: 300 }),
            ..Default::default()
        },
        jobs,
        max_iters_per_shard: 8,
    }
}

fn available_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn observable(c: &CampaignReport) -> String {
    let mut out: String = c.report.failures.iter().map(|f| f.to_json() + "\n").collect();
    out.push_str(&c.stats_json(SEED));
    out
}

/// The parallel speedup claim, asserted only where it can hold: with at
/// least four hardware threads, `--jobs N` must clear 2× the sequential
/// iterations/sec. Single-core machines still check determinism below.
fn assert_parallel_speedup(iterations: u64) {
    let jobs = available_jobs();
    if jobs < 4 {
        eprintln!("fuzz bench: {jobs} hardware thread(s) — skipping the 2x speedup assertion");
        return;
    }
    let time = |jobs: usize| {
        let opts = campaign_opts(iterations, jobs);
        run_campaign(&opts); // warm-up
        let t0 = std::time::Instant::now();
        for _ in 0..3 {
            criterion::black_box(run_campaign(&opts));
        }
        t0.elapsed()
    };
    let seq = time(1);
    let par = time(jobs.min(8));
    assert!(
        par.as_secs_f64() * 2.0 <= seq.as_secs_f64(),
        "parallel campaign must reach 2x throughput: sequential {seq:?}, parallel {par:?}"
    );
}

fn bench_fuzz_campaign_throughput(c: &mut Criterion) {
    let iterations = 48;

    // Determinism is part of the contract being measured: the parallel
    // campaign must reproduce the sequential report byte for byte.
    let seq = run_campaign(&campaign_opts(iterations, 1));
    let par = run_campaign(&campaign_opts(iterations, available_jobs().max(4)));
    assert_eq!(seq.report, par.report, "parallel campaign diverged from sequential");
    assert_eq!(observable(&seq), observable(&par));

    assert_parallel_speedup(iterations);

    let mut group = c.benchmark_group("fuzz_campaign_throughput");
    group.throughput(Throughput::Elements(iterations));
    for jobs in [1, available_jobs()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("jobs_{jobs}")),
            &iterations,
            |bencher, &iterations| {
                let opts = campaign_opts(iterations, jobs);
                bencher.iter(|| run_campaign(&opts).report.total_insts);
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fuzz_campaign_throughput);
criterion_main!(benches);
