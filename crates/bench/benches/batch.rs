//! Batch-engine throughput: routines/sec through `pgvn::batch::run_batch`
//! at one worker and at the machine's parallelism, plus the session
//! guarantees the numbers rest on — byte-identical parallel output and
//! allocation-amortized contexts (a warmed [`pgvn::core::GvnContext`]
//! must not grow on second-and-later routines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pgvn::batch::{run_batch, BatchInput, BatchOptions};
use pgvn::core::{run_in_context, GvnConfig, GvnContext};
use pgvn::prelude::*;

fn corpus(n: u64, seed: u64) -> Vec<BatchInput> {
    (0..n)
        .map(|i| {
            let gen_seed = pgvn::oracle::mix64(seed ^ pgvn::oracle::mix64(i));
            let gcfg = pgvn::workload::GenConfig { seed: gen_seed, ..Default::default() };
            let routine = pgvn::workload::generate_routine(&format!("batch_{i}"), &gcfg);
            BatchInput {
                name: format!("batch_{i}"),
                source: Ok(pgvn::lang::print_routine(&routine)),
            }
        })
        .collect()
}

fn available_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The capacity-reuse guarantee behind the throughput numbers: after the
/// first pass over a corpus, replaying it performs no per-routine growth
/// of the interner, partition or any other arena.
fn assert_warm_context_stops_growing(inputs: &[BatchInput]) {
    let cfg = GvnConfig::full();
    let funcs: Vec<_> = inputs
        .iter()
        .map(|i| compile(i.source.as_ref().unwrap(), SsaStyle::Pruned).unwrap())
        .collect();
    let mut ctx = GvnContext::new();
    for f in &funcs {
        run_in_context(&mut ctx, f, &cfg);
    }
    let warm = ctx.capacities();
    let runs = ctx.runs();
    for f in &funcs {
        run_in_context(&mut ctx, f, &cfg);
        assert_eq!(ctx.capacities(), warm, "a warm context must not grow per routine");
    }
    assert_eq!(ctx.runs(), runs + funcs.len() as u64);
}

/// The parallel speedup claim, asserted only where it can hold: with at
/// least four hardware threads, `--jobs N` must clear 2× the sequential
/// routines/sec. Single-core machines still check determinism above.
fn assert_parallel_speedup(inputs: &[BatchInput], opts: &BatchOptions) {
    let jobs = available_jobs();
    if jobs < 4 {
        eprintln!("batch bench: {jobs} hardware thread(s) — skipping the 2x speedup assertion");
        return;
    }
    let time = |jobs: usize| {
        let opts = BatchOptions { jobs, ..opts.clone() };
        run_batch(inputs, &opts); // warm-up
        let t0 = std::time::Instant::now();
        for _ in 0..3 {
            criterion::black_box(run_batch(inputs, &opts));
        }
        t0.elapsed()
    };
    let seq = time(1);
    let par = time(jobs.min(8));
    assert!(
        par.as_secs_f64() * 2.0 <= seq.as_secs_f64(),
        "parallel batch must reach 2x throughput: sequential {seq:?}, parallel {par:?}"
    );
}

fn bench_batch_throughput(c: &mut Criterion) {
    let inputs = corpus(32, 2002);
    let opts = BatchOptions::default();

    assert_warm_context_stops_growing(&inputs);

    // Determinism is part of the contract being measured: the parallel
    // run must reproduce the sequential report byte for byte.
    let seq = run_batch(&inputs, &BatchOptions { jobs: 1, ..opts.clone() });
    let par = run_batch(&inputs, &BatchOptions { jobs: available_jobs().max(4), ..opts.clone() });
    let joined = |r: &pgvn::batch::BatchReport| {
        r.records.iter().map(|rec| rec.json.as_str()).collect::<Vec<_>>().join("\n")
    };
    assert_eq!(joined(&seq), joined(&par), "parallel batch diverged from sequential");
    assert_eq!(seq.stats_json(2002), par.stats_json(2002));

    assert_parallel_speedup(&inputs, &opts);

    let mut group = c.benchmark_group("batch_throughput");
    group.throughput(Throughput::Elements(inputs.len() as u64));
    for jobs in [1, available_jobs()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("jobs_{jobs}")),
            &inputs,
            |bencher, inputs| {
                let opts = BatchOptions { jobs, ..opts.clone() };
                bencher.iter(|| run_batch(inputs, &opts).optimized);
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_throughput);
criterion_main!(benches);
