//! Criterion bench for Table 2: the sparse formulation vs the dense
//! brute-force reapplication, and the "Basic" feature set.
//!
//! Paper shape: Dense/Sparse in 1.23–1.57, Sparse(full)/Sparse(basic) in
//! 1.15–1.32.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgvn_bench::standard_suite;
use pgvn_core::{run, GvnConfig};

fn bench_sparseness(c: &mut Criterion) {
    let suite = standard_suite(0.02);
    let mut group = c.benchmark_group("table2_sparseness");
    for bench in suite.iter().filter(|b| matches!(b.profile.name, "176.gcc" | "254.gap")) {
        let funcs: Vec<_> = bench.routines().collect();
        for (label, cfg) in [
            ("dense", GvnConfig::full().sparse(false)),
            ("sparse", GvnConfig::full()),
            ("basic", GvnConfig::basic()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, bench.profile.name),
                &funcs,
                |bencher, funcs| {
                    bencher.iter(|| {
                        let mut acc = 0usize;
                        for f in funcs {
                            acc += run(f, &cfg).num_congruence_classes();
                        }
                        acc
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sparseness);
criterion_main!(benches);
