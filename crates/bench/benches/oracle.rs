//! Throughput of the differential oracle: validated routines per second
//! for each fuzzing mode, and the cost of its two building blocks (the
//! reference interpreter under the outcome wrapper, and the lattice
//! refinement checks). These numbers bound how many iterations the CI
//! fuzz job and local `pgvn fuzz` campaigns can afford.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pgvn_oracle::{
    check_lattice, default_relations, fuzz, run_outcome, validate_function, FuzzMode, FuzzOptions,
    ValidatorOptions,
};
use pgvn_ssa::SsaStyle;
use pgvn_workload::{generate_function, GenConfig};

fn routines(count: u64, stmts: usize) -> Vec<pgvn_ir::Function> {
    (0..count)
        .map(|seed| {
            let cfg = GenConfig { seed, target_stmts: stmts, ..Default::default() };
            generate_function(&format!("bench{seed}"), &cfg, SsaStyle::Pruned)
        })
        .collect()
}

fn bench_campaign_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_campaign");
    const ITERS: u64 = 12;
    group.throughput(Throughput::Elements(ITERS));
    for mode in [FuzzMode::Validate, FuzzMode::Lattice, FuzzMode::Both] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let opts =
                        FuzzOptions { seed: 7, iterations: ITERS, mode, ..Default::default() };
                    let report = fuzz(&opts);
                    assert!(report.is_clean());
                    report.total_insts
                });
            },
        );
    }
    group.finish();
}

fn bench_building_blocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_parts");
    let funcs = routines(8, 25);
    group.throughput(Throughput::Elements(funcs.len() as u64));
    group.bench_with_input(BenchmarkId::from_parameter("validate"), &funcs, |b, funcs| {
        let opts = ValidatorOptions::default();
        b.iter(|| {
            for f in funcs {
                validate_function(f, &opts).expect("clean");
            }
        });
    });
    group.bench_with_input(BenchmarkId::from_parameter("lattice"), &funcs, |b, funcs| {
        let relations = default_relations();
        b.iter(|| {
            for f in funcs {
                check_lattice(f, &relations).expect("clean");
            }
        });
    });
    group.bench_with_input(BenchmarkId::from_parameter("interpret"), &funcs, |b, funcs| {
        b.iter(|| {
            let mut acc = 0u64;
            for f in funcs {
                let args = vec![3i64; f.params().len()];
                acc ^= match run_outcome(f, &args, 0, 1 << 18) {
                    pgvn_oracle::Outcome::Return(v) => v as u64,
                    _ => 1,
                };
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_campaign_modes, bench_building_blocks);
criterion_main!(benches);
