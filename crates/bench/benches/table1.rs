//! Criterion bench for Table 1: GVN time under optimistic, balanced and
//! pessimistic value numbering, per benchmark profile.
//!
//! The paper's headline ratios: balanced runs as fast as pessimistic
//! (E/I ≈ 1.00) and 1.39–1.90× faster than optimistic (B/E).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgvn_bench::standard_suite;
use pgvn_core::{run, GvnConfig, Mode};

fn bench_modes(c: &mut Criterion) {
    let suite = standard_suite(0.02);
    let mut group = c.benchmark_group("table1_modes");
    for bench in
        suite.iter().filter(|b| matches!(b.profile.name, "164.gzip" | "176.gcc" | "300.twolf"))
    {
        let funcs: Vec<_> = bench.routines().collect();
        for (label, cfg) in [
            ("optimistic", GvnConfig::full()),
            ("balanced", GvnConfig::full().mode(Mode::Balanced)),
            ("pessimistic", GvnConfig::full().mode(Mode::Pessimistic)),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, bench.profile.name),
                &funcs,
                |bencher, funcs| {
                    bencher.iter(|| {
                        let mut acc = 0usize;
                        for f in funcs {
                            acc += run(f, &cfg).num_congruence_classes();
                        }
                        acc
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
