//! Interpreter-backed translation validation.
//!
//! For each configuration under test, the routine is cloned, pushed
//! through the full transform pipeline, and executed side by side with
//! the original on the same argument/opaque-value vectors. The observable
//! [`Outcome`]s must agree: equal returned values, matching traps, and
//! matching divergence.
//!
//! Fuel asymmetry is handled explicitly. The optimized routine runs with
//! a *larger* budget than the original (optimization may insert copies,
//! but should never multiply work), and when the original diverges while
//! the optimized routine returns, the original is retried with a much
//! larger budget before the disagreement counts as a miscompile — the
//! optimizer is allowed to make a deep computation affordable, never to
//! terminate a truly diverging one.

use crate::outcome::{mix64, run_outcome, Outcome};
use pgvn_core::GvnConfig;
use pgvn_ir::Function;
use pgvn_transform::Pipeline;
use std::fmt;

/// How a routine failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Failure {
    /// The optimized routine no longer passes the IR verifier.
    Verify {
        /// Name of the configuration whose pipeline broke the IR.
        config: String,
        /// The verifier's message.
        error: String,
    },
    /// The analysis hit its pass cap before the fixed point.
    NotConverged {
        /// Name of the configuration that failed to converge.
        config: String,
    },
    /// Original and optimized executions disagree.
    Mismatch {
        /// Name of the configuration whose pipeline miscompiled.
        config: String,
        /// The argument vector that exposed the disagreement.
        args: Vec<i64>,
        /// The opaque-value seed of the exposing run.
        opaque_seed: u64,
        /// What the original routine did.
        original: Outcome,
        /// What the optimized routine did.
        optimized: Outcome,
    },
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Verify { config, error } => {
                write!(f, "[{config}] optimized IR rejected by verifier: {error}")
            }
            Failure::NotConverged { config } => {
                write!(f, "[{config}] analysis did not converge")
            }
            Failure::Mismatch { config, args, opaque_seed, original, optimized } => write!(
                f,
                "[{config}] args {args:?}, opaques #{opaque_seed}: original {original}, \
                 optimized {optimized}"
            ),
        }
    }
}

impl Failure {
    /// The name of the configuration involved in the failure.
    pub fn config(&self) -> &str {
        match self {
            Failure::Verify { config, .. }
            | Failure::NotConverged { config }
            | Failure::Mismatch { config, .. } => config,
        }
    }
}

/// Tuning for one validation run.
#[derive(Clone, Debug)]
pub struct ValidatorOptions {
    /// Fuel budget for the original routine, in executed instructions.
    /// The optimized routine gets four times this; divergence retries get
    /// sixty-four times.
    pub fuel: u64,
    /// Number of argument/opaque vectors per configuration.
    pub vectors: usize,
    /// Pipeline rounds (GVN + rewrites per round).
    pub rounds: usize,
    /// Seed for deriving argument vectors and opaque values.
    pub input_seed: u64,
    /// The configurations whose pipelines are validated.
    pub configs: Vec<(String, GvnConfig)>,
}

impl Default for ValidatorOptions {
    fn default() -> Self {
        ValidatorOptions {
            fuel: 1 << 18,
            vectors: 4,
            rounds: 2,
            input_seed: 0,
            configs: default_validation_configs(),
        }
    }
}

/// The configurations validated by default: the full algorithm, the §6/§7
/// extensions, the three §2.9 emulations, and the two weaker modes.
pub fn default_validation_configs() -> Vec<(String, GvnConfig)> {
    use pgvn_core::Mode;
    vec![
        ("full".to_string(), GvnConfig::full()),
        ("extended".to_string(), GvnConfig::extended()),
        ("click".to_string(), GvnConfig::click()),
        ("sccp".to_string(), GvnConfig::sccp()),
        ("awz".to_string(), GvnConfig::awz()),
        ("balanced".to_string(), GvnConfig::full().mode(Mode::Balanced)),
        ("pessimistic".to_string(), GvnConfig::full().mode(Mode::Pessimistic)),
    ]
}

/// Derives `vectors` argument vectors (plus per-vector opaque seeds) for
/// a routine with `num_params` parameters. The first vectors cover the
/// interesting boundary region (zeros, ones, sign mix, extremes); the
/// rest are pseudorandom, alternating between small values (likely to
/// hit planted constants/guards) and full-width values.
pub fn argument_vectors(num_params: usize, vectors: usize, seed: u64) -> Vec<(Vec<i64>, u64)> {
    let mut out = Vec::with_capacity(vectors);
    let fixed: [&dyn Fn(usize) -> i64; 4] =
        [&|_| 0, &|_| 1, &|i| if i % 2 == 0 { -1 } else { 2 }, &|i| {
            if i % 2 == 0 {
                i64::MAX
            } else {
                i64::MIN
            }
        }];
    for (k, gen) in fixed.iter().enumerate().take(vectors) {
        out.push(((0..num_params).map(gen).collect(), mix64(seed ^ k as u64)));
    }
    let mut state = mix64(seed);
    while out.len() < vectors {
        let small = out.len() % 2 == 0;
        let args = (0..num_params)
            .map(|_| {
                state = mix64(state);
                if small {
                    (state % 23) as i64 - 11
                } else {
                    state as i64
                }
            })
            .collect();
        state = mix64(state);
        out.push((args, state));
    }
    out
}

/// Validates every configured pipeline against the original `func`,
/// returning the first failure.
///
/// # Errors
///
/// [`Failure::NotConverged`] if an analysis run hit its pass cap,
/// [`Failure::Verify`] if a pipeline produced ill-formed IR, and
/// [`Failure::Mismatch`] if original and optimized executions disagree.
pub fn validate_function(func: &Function, opts: &ValidatorOptions) -> Result<(), Failure> {
    validate_function_with(&mut pgvn_core::GvnContext::new(), func, opts)
}

/// [`validate_function`] against a reusable [`pgvn_core::GvnContext`]:
/// every configured pipeline run borrows the same session arenas, so a
/// fuzz campaign amortizes allocation across its whole iteration stream.
pub fn validate_function_with(
    ctx: &mut pgvn_core::GvnContext,
    func: &Function,
    opts: &ValidatorOptions,
) -> Result<(), Failure> {
    let vectors = argument_vectors(func.params().len(), opts.vectors, opts.input_seed);
    let originals: Vec<Outcome> =
        vectors.iter().map(|(args, os)| run_outcome(func, args, *os, opts.fuel)).collect();
    for (name, cfg) in &opts.configs {
        let mut optimized = func.clone();
        let report =
            Pipeline::new(cfg.clone()).rounds(opts.rounds).optimize_with(ctx, &mut optimized);
        if !report.gvn_stats.converged {
            return Err(Failure::NotConverged { config: name.clone() });
        }
        if let Err(e) = pgvn_ir::verify(&optimized) {
            return Err(Failure::Verify { config: name.clone(), error: e.to_string() });
        }
        agree_on_vectors(func, &optimized, name, &vectors, &originals, opts.fuel)?;
    }
    Ok(())
}

/// Validates an *already-optimized* routine against the original: the
/// IR verifier plus outcome agreement on the derived vectors, without
/// running any pipeline. This is the gate a resilient-ladder output
/// (`Pipeline::optimize_resilient`) goes through in fuzz campaigns —
/// whatever rung committed, the function the caller holds must verify
/// and agree with the original.
///
/// # Errors
///
/// [`Failure::Verify`] if `optimized` is ill-formed, and
/// [`Failure::Mismatch`] if the executions disagree on any vector.
pub fn validate_optimized(
    original: &Function,
    optimized: &Function,
    config: &str,
    opts: &ValidatorOptions,
) -> Result<(), Failure> {
    if let Err(e) = pgvn_ir::verify(optimized) {
        return Err(Failure::Verify { config: config.to_string(), error: e.to_string() });
    }
    let vectors = argument_vectors(original.params().len(), opts.vectors, opts.input_seed);
    let originals: Vec<Outcome> =
        vectors.iter().map(|(args, os)| run_outcome(original, args, *os, opts.fuel)).collect();
    agree_on_vectors(original, optimized, config, &vectors, &originals, opts.fuel)
}

/// The shared outcome-agreement core: original vs optimized on each
/// vector, with the documented fuel asymmetry (4× for the optimized
/// routine, 64× divergence retries for the original).
fn agree_on_vectors(
    original: &Function,
    optimized: &Function,
    config: &str,
    vectors: &[(Vec<i64>, u64)],
    originals: &[Outcome],
    fuel: u64,
) -> Result<(), Failure> {
    for ((args, os), &before) in vectors.iter().zip(originals) {
        let after = run_outcome(optimized, args, *os, fuel.saturating_mul(4));
        let agree = match (before, after) {
            (Outcome::Return(a), Outcome::Return(b)) => a == b,
            (Outcome::Diverge, Outcome::Diverge) => true,
            (Outcome::Trap(a), Outcome::Trap(b)) => a == b,
            // The original may simply have been starved: retry with a
            // much larger budget and require the same value.
            (Outcome::Diverge, Outcome::Return(b)) => {
                run_outcome(original, args, *os, fuel.saturating_mul(64)) == Outcome::Return(b)
            }
            _ => false,
        };
        if !agree {
            return Err(Failure::Mismatch {
                config: config.to_string(),
                args: args.clone(),
                opaque_seed: *os,
                original: before,
                optimized: after,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_lang::compile;
    use pgvn_ssa::SsaStyle;

    fn func(src: &str) -> Function {
        compile(src, SsaStyle::Pruned).unwrap()
    }

    #[test]
    fn clean_pipelines_validate() {
        for src in [
            "routine f(a, b) { x = a + b; y = b + a; return x - y; }",
            pgvn_lang::fixtures::FIGURE1,
            "routine g(n) { s = 0; i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }",
        ] {
            validate_function(&func(src), &ValidatorOptions::default())
                .unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn injected_miscompile_is_caught() {
        // With the debug knob on, constant folding of `2 + 3` yields 6;
        // constant propagation rewrites the return and execution must
        // disagree.
        let f = func("routine f() { return 2 + 3; }");
        let opts = ValidatorOptions {
            configs: vec![("bug".to_string(), GvnConfig::full().miscompile(true))],
            ..Default::default()
        };
        let err = validate_function(&f, &opts).unwrap_err();
        match err {
            Failure::Mismatch { ref original, ref optimized, .. } => {
                assert_eq!(*original, Outcome::Return(5));
                assert_eq!(*optimized, Outcome::Return(6));
            }
            other => panic!("expected mismatch, got {other}"),
        }
    }

    #[test]
    fn argument_vectors_are_deterministic_and_sized() {
        let a = argument_vectors(3, 6, 42);
        let b = argument_vectors(3, 6, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert!(a.iter().all(|(args, _)| args.len() == 3));
        assert_ne!(a, argument_vectors(3, 6, 43));
        // Zero-parameter routines still get distinct opaque seeds.
        let z = argument_vectors(0, 4, 7);
        let seeds: std::collections::HashSet<u64> = z.iter().map(|&(_, s)| s).collect();
        assert_eq!(seeds.len(), 4);
    }
}
