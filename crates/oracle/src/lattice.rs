//! Emulation-lattice checking: the paper's precision ordering, verified
//! per routine.
//!
//! §2.9 argues that the unified algorithm run at full strength finds
//! every congruence its emulations find (`full ⊒ click ⊒ awz`), and §1.1
//! orders the value-numbering modes (`optimistic ⊒ balanced ⊒
//! pessimistic`). Following the partition-refinement framing of Pai and
//! of Saleena–Paleri, these are *refinement* statements over the
//! congruence partitions extracted by [`pgvn_core::GvnResults::partition`]:
//! every pair a weaker run proves congruent must be congruent (or ⊥) in
//! the stronger run, every constant found by the weaker run must be found
//! identically by the stronger, and every block the weaker run proves
//! unreachable must be unreachable for the stronger.
//!
//! One caveat from the paper itself (§2.7, observed by the existing
//! property tests): *value inference* replaces operands by congruent
//! definitions chosen per mode, which "usually finds more congruences in
//! practice, but this cannot be guaranteed". The default relations
//! therefore compare the mode chain with value inference disabled, and
//! compare `full` against the emulations only where the ordering is
//! guaranteed (the emulations have no inference of their own).

use pgvn_core::{GvnConfig, GvnResults, Mode};
use pgvn_ir::Function;
use std::fmt;

/// One ordered pair of configurations with the checks to apply.
#[derive(Clone, Debug)]
pub struct Relation {
    /// Name of the configuration expected to be at least as strong.
    pub stronger: (String, GvnConfig),
    /// Name of the configuration expected to be no stronger.
    pub weaker: (String, GvnConfig),
    /// Check partition refinement (weaker congruences ⊆ stronger).
    pub congruences: bool,
    /// Check the constant subset (weaker constants ⊆ stronger).
    pub constants: bool,
    /// Check the unreachable subset (weaker unreachable ⊆ stronger).
    pub reachability: bool,
}

/// A violated ordering between two configurations on one routine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatticeViolation {
    /// Name of the stronger configuration.
    pub stronger: String,
    /// Name of the weaker configuration.
    pub weaker: String,
    /// Human-readable description of the violated claim.
    pub detail: String,
}

impl fmt::Display for LatticeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ⊒ {} violated: {}", self.stronger, self.weaker, self.detail)
    }
}

/// The default relation set: the §2.9 emulation chain and the §1.1 mode
/// chain (the latter with value inference off — see the module docs).
pub fn default_relations() -> Vec<Relation> {
    let full = GvnConfig::full();
    let mut vi_off = GvnConfig::full();
    vi_off.value_inference = false;
    let rel = |s: (&str, GvnConfig), w: (&str, GvnConfig), cong: bool, cons: bool| Relation {
        stronger: (s.0.to_string(), s.1),
        weaker: (w.0.to_string(), w.1),
        congruences: cong,
        constants: cons,
        reachability: true,
    };
    vec![
        // The emulation chain. `click` and `awz` share every analysis
        // except the ones `click` adds, and neither has inference, so
        // partition refinement is exact.
        rel(("click", GvnConfig::click()), ("awz", GvnConfig::awz()), true, true),
        // `full` has predicate/value inference, which folds values only
        // where dominated by a guard — two textually identical compares,
        // one inside the guarded region and one outside, are congruent to
        // `click` but land in different classes under `full` (one folds to
        // a constant). With value inference on, NOTHING about `full` vs
        // `click` is monotone — not even reachability: a 10k-iteration
        // campaign found routines where VI substitution inside a guarded
        // region rewrites a cyclic φ's argument keys, breaking a cyclic
        // congruence `click` keeps, losing the derived constant and with
        // it an unreachable edge (§2.7 "cannot be guaranteed", and
        // tests/fixtures/oracle/lattice-vi-reachability.pgvn). The
        // refinement claim is therefore made only with value inference
        // off, where the extra analyses strictly add facts.
        rel(("full-vi-off", vi_off.clone()), ("click", GvnConfig::click()), false, true),
        // SCCP: everything it proves constant the full algorithm must
        // prove constant too (§2.9); its partition is otherwise trivial.
        rel(("full", full), ("sccp", GvnConfig::sccp()), false, true),
        // The mode chain, value inference off (§2.7 caveat).
        rel(
            ("optimistic-vi-off", vi_off.clone()),
            ("balanced-vi-off", vi_off.clone().mode(Mode::Balanced)),
            true,
            true,
        ),
        rel(
            ("balanced-vi-off", vi_off.clone().mode(Mode::Balanced)),
            ("pessimistic-vi-off", vi_off.mode(Mode::Pessimistic)),
            true,
            true,
        ),
    ]
}

fn check_pair(
    func: &Function,
    rel: &Relation,
    stronger: &GvnResults,
    weaker: &GvnResults,
) -> Result<(), LatticeViolation> {
    let fail = |detail: String| {
        Err(LatticeViolation {
            stronger: rel.stronger.0.clone(),
            weaker: rel.weaker.0.clone(),
            detail,
        })
    };
    if rel.reachability {
        for b in func.blocks() {
            if !weaker.is_block_reachable(b) && stronger.is_block_reachable(b) {
                return fail(format!("{b} unreachable under the weaker config only"));
            }
        }
        for e in func.edges() {
            if !weaker.is_edge_reachable(e) && stronger.is_edge_reachable(e) {
                return fail(format!("{e} unreachable under the weaker config only"));
            }
        }
    }
    if rel.congruences || rel.constants {
        let sp = stronger.partition();
        let wp = weaker.partition();
        if rel.congruences {
            if let Some((a, b)) = wp.refinement_violation(&sp) {
                return fail(format!("congruence {a} ~ {b} found by the weaker config only"));
            }
        }
        if rel.constants {
            if let Some((v, k, sk)) = wp.constant_violation(&sp) {
                return fail(format!(
                    "constant {v} = {k} found by the weaker config; stronger has {sk:?}"
                ));
            }
        }
    }
    Ok(())
}

/// Runs every configuration named by `relations` once on `func` and
/// checks each relation.
///
/// # Errors
///
/// Returns the first [`LatticeViolation`]; also reports non-convergence
/// of any run as a violation of that run against itself.
pub fn check_lattice(func: &Function, relations: &[Relation]) -> Result<(), LatticeViolation> {
    check_lattice_with(&mut pgvn_core::GvnContext::new(), func, relations)
}

/// [`check_lattice`] against a reusable [`pgvn_core::GvnContext`]: the
/// per-configuration analysis runs share the session's arenas.
pub fn check_lattice_with(
    ctx: &mut pgvn_core::GvnContext,
    func: &Function,
    relations: &[Relation],
) -> Result<(), LatticeViolation> {
    use std::collections::HashMap;
    let mut cache: HashMap<String, GvnResults> = HashMap::new();
    let mut results_for = |name: &str, cfg: &GvnConfig| -> GvnResults {
        cache
            .entry(name.to_string())
            .or_insert_with(|| pgvn_core::run_in_context(ctx, func, cfg))
            .clone()
    };
    for rel in relations {
        let s = results_for(&rel.stronger.0, &rel.stronger.1);
        let w = results_for(&rel.weaker.0, &rel.weaker.1);
        for (name, r) in [(&rel.stronger.0, &s), (&rel.weaker.0, &w)] {
            if !r.stats.converged {
                return Err(LatticeViolation {
                    stronger: name.clone(),
                    weaker: name.clone(),
                    detail: "analysis did not converge".to_string(),
                });
            }
        }
        check_pair(func, rel, &s, &w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_lang::compile;
    use pgvn_ssa::SsaStyle;

    fn func(src: &str) -> Function {
        compile(src, SsaStyle::Pruned).unwrap()
    }

    #[test]
    fn paper_fixtures_respect_the_lattice() {
        for src in [
            pgvn_lang::fixtures::FIGURE1,
            pgvn_lang::fixtures::FIGURE6,
            pgvn_lang::fixtures::FIGURE13,
            pgvn_lang::fixtures::SIMPLE_INFERENCE,
        ] {
            check_lattice(&func(src), &default_relations()).unwrap_or_else(|v| panic!("{v}"));
        }
    }

    #[test]
    fn inverted_relation_is_detected() {
        // Deliberately claim AWZ ⊒ Click on a routine where Click folds a
        // constant AWZ cannot: the checker must object.
        let f = func("routine f() { x = 2 + 3; return x; }");
        let wrong = vec![Relation {
            stronger: ("awz".to_string(), GvnConfig::awz()),
            weaker: ("click".to_string(), GvnConfig::click()),
            congruences: false,
            constants: true,
            reachability: false,
        }];
        let v = check_lattice(&f, &wrong).unwrap_err();
        assert!(v.detail.contains("constant"), "{v}");
    }
}
