//! Sharded fuzz campaigns: the parallel driver behind `pgvn fuzz
//! --jobs N`, in the style of the batch engine (`src/batch.rs`).
//!
//! A campaign shards the iteration space `0..iterations` over
//! `std::thread::scope` workers. Work is handed out in chunks through a
//! shared atomic cursor; each worker owns a private
//! [`GvnContext`](pgvn_core::GvnContext), so a whole shard is
//! allocation-amortized and no worker ever blocks on another's output.
//!
//! ## Determinism
//!
//! `--jobs 1` and `--jobs N` produce **identical** reports — same JSONL
//! bytes, same shrunk fixtures, same exit code. Three properties carry
//! the guarantee:
//!
//! 1. **Per-iteration seeding.** Iteration `i` derives its generator
//!    seed as `mix64(seed ^ mix64(i))` inside [`run_iteration`], so
//!    shard assignment cannot change what any iteration generates, and
//!    the oracle verdict is a pure function of `(options, i)`.
//! 2. **Input-order merge.** Worker outputs are merged back in
//!    ascending iteration order (via [`FuzzReport::merge`]), then the
//!    sequential campaign loop is replayed over the merged records —
//!    including the `max_failures` cutoff — so the final report is the
//!    one a sequential run would have produced.
//! 3. **Shrink after the parallel phase.** Failures are minimized only
//!    after the merge, in ascending iteration order, each against a
//!    fresh context ([`shrink_pending`]), so fixture bytes cannot
//!    depend on scheduling.
//!
//! ## Early stop (`max_failures`)
//!
//! Workers cooperate through a monotonically decreasing iteration
//! *bound*: whenever the set of discovered failures reaches
//! `max_failures`, the bound drops to the k-th smallest failure
//! iteration seen so far. Because the k-th smallest of a subset can
//! only overestimate the k-th smallest of the full set, the bound never
//! drops below the true sequential cutoff — every iteration the
//! sequential run would have executed is executed here too, while
//! iterations beyond the bound are skipped. Workers racing past the
//! cutoff before the bound tightens merely *over*-process; the merge
//! rank-orders the records and discards everything past the sequential
//! cutoff, so the reported failures are exactly the first
//! `max_failures` by iteration index. The overshoot is observable only
//! in the timing domain ([`Metric::FuzzOverrunIterations`]).
//!
//! ## Metrics
//!
//! Like the batch engine, measurements live in two domains. Stable
//! metrics (iterations, instructions, failures, shrink attempts) are
//! recorded post-merge from the deterministic report, so they are
//! byte-identical at any `--jobs`; scheduling-dependent measurements
//! (per-worker shard profile, campaign wall time, overrun) go to a
//! separate timing snapshot surfaced only by
//! [`CampaignReport::timing_json`] (the CLI's `--timings` flag).

use crate::fuzz::{
    run_iteration, shrink_pending, silence_panic_hook, FuzzFailure, FuzzReport, IterationOutcome,
    PendingFailure,
};
use crate::FuzzOptions;
use pgvn_core::GvnContext;
use pgvn_telemetry::json::JsonWriter;
use pgvn_telemetry::{Metric, MetricsRegistry, MetricsSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Tuning for one sharded campaign.
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// The campaign itself: seed, iteration count, oracles, shrinker.
    pub fuzz: FuzzOptions,
    /// Worker threads. Clamped to at least one; values above the
    /// iteration count just leave the extra workers idle.
    pub jobs: usize,
    /// Maximum iterations a worker claims per cursor grab (the
    /// `--max-iters-per-shard` CLI flag). Smaller chunks rebalance
    /// better and tighten the early-stop overrun; larger chunks lower
    /// cursor traffic. Clamped to at least one.
    pub max_iters_per_shard: u64,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions { fuzz: FuzzOptions::default(), jobs: 1, max_iters_per_shard: 64 }
    }
}

/// The merged outcome of a sharded campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// The deterministic fuzz report — identical at any job count.
    pub report: FuzzReport,
    /// Stable campaign metrics, recorded from the merged report —
    /// identical at any job count.
    pub metrics: MetricsSnapshot,
    /// Scheduling/timing measurements: shard profile, wall time,
    /// early-stop overrun. Varies run to run; never part of the
    /// deterministic output.
    pub timing: MetricsSnapshot,
    /// Iterations processed per worker, sorted ascending — the shard
    /// imbalance profile behind [`Metric::FuzzWorkerIterations`].
    pub worker_iterations: Vec<u64>,
}

impl CampaignReport {
    /// The `fuzz_stats` JSONL record (no trailing newline): the
    /// deterministic campaign aggregate plus its stable metrics —
    /// byte-identical at any `--jobs`.
    pub fn stats_json(&self, seed: u64) -> String {
        let mut w = JsonWriter::object();
        w.field_str("event", "fuzz_stats")
            .field_u64("seed", seed)
            .field_u64("iterations_run", self.report.iterations_run)
            .field_u64("total_insts", self.report.total_insts)
            .field_u64("failures", self.report.failures.len() as u64)
            .field_raw("metrics", &self.metrics.to_json());
        w.finish()
    }

    /// The timing-domain JSONL record: shard balance, wall time, and
    /// overrun. Deliberately separate from
    /// [`CampaignReport::stats_json`] because every field here varies
    /// with scheduling and clock.
    pub fn timing_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_str("event", "fuzz_timing").field_u64("jobs", self.worker_iterations.len() as u64);
        let workers = format!(
            "[{}]",
            self.worker_iterations.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
        );
        w.field_raw("worker_iterations", &workers);
        w.field_raw("metrics", &self.timing.to_json());
        w.finish()
    }
}

/// Runs a sharded campaign with the default (silent) progress callback.
pub fn run_campaign(opts: &CampaignOptions) -> CampaignReport {
    run_campaign_with(opts, &|_, _| {})
}

/// Runs a sharded fuzz campaign. `progress` is invoked from worker
/// threads after every compiled iteration with the iteration index and
/// the (pre-shrink) failure it produced, if any — at `jobs > 1` the
/// invocation order follows the schedule, so treat it as a live ticker,
/// not a deterministic stream. The returned report is deterministic;
/// see the module docs for the contract.
pub fn run_campaign_with(
    opts: &CampaignOptions,
    progress: &(dyn Fn(u64, Option<&FuzzFailure>) + Sync),
) -> CampaignReport {
    let t0 = Instant::now();
    let _hook = silence_panic_hook();
    let fuzz = &opts.fuzz;
    let jobs = opts.jobs.max(1).min(usize::try_from(fuzz.iterations.max(1)).unwrap_or(usize::MAX));
    let chunk = opts.max_iters_per_shard.max(1);
    let cursor = AtomicU64::new(0);
    // Early-stop bound: iterations strictly above it can never appear
    // in the report. `u64::MAX` means "no bound yet". Only ever
    // lowered, and never below the sequential cutoff (module docs).
    let bound = AtomicU64::new(u64::MAX);
    let failure_iters: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let timing_reg = MetricsRegistry::new();
    let mut outcomes: Vec<IterationOutcome> = Vec::new();
    let mut worker_iterations: Vec<u64> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    let mut ctx = GvnContext::new();
                    let mut produced: Vec<IterationOutcome> = Vec::new();
                    'claim: loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= fuzz.iterations {
                            break;
                        }
                        let end = start.saturating_add(chunk).min(fuzz.iterations);
                        for i in start..end {
                            // Everything at or below the bound must be
                            // processed; everything above it is dead
                            // weight. The cursor is monotonic, so once
                            // this worker sees `i` past the bound every
                            // unclaimed iteration is past it too.
                            if fuzz.max_failures != 0 && i > bound.load(Ordering::Relaxed) {
                                break 'claim;
                            }
                            let out = run_iteration(&mut ctx, fuzz, i);
                            if let Some(p) = &out.failure {
                                if fuzz.max_failures != 0 {
                                    let mut fi =
                                        failure_iters.lock().unwrap_or_else(|e| e.into_inner());
                                    fi.push(i);
                                    fi.sort_unstable();
                                    if fi.len() >= fuzz.max_failures {
                                        bound.fetch_min(
                                            fi[fuzz.max_failures - 1],
                                            Ordering::Relaxed,
                                        );
                                    }
                                }
                                progress(i, Some(&p.failure));
                            } else if out.compiled {
                                progress(i, None);
                            }
                            produced.push(out);
                        }
                    }
                    timing_reg.observe(Metric::FuzzWorkerIterations, produced.len() as u64);
                    produced
                })
            })
            .collect();
        for h in handles {
            let produced = h.join().expect("campaign worker panicked outside the ladder");
            worker_iterations.push(produced.len() as u64);
            outcomes.extend(produced);
        }
    });
    worker_iterations.sort_unstable();

    // Rank-order the records and replay the sequential campaign loop
    // over them: fold each record into the report in iteration order
    // and stop at the `max_failures` cutoff, exactly as `fuzz_with`
    // does. Whatever the workers over-processed past the cutoff is
    // discarded here (counted in the timing domain only).
    outcomes.sort_by_key(|o| o.iteration);
    let mut report = FuzzReport::default();
    let mut pendings: Vec<PendingFailure> = Vec::new();
    let mut it = outcomes.into_iter();
    for out in it.by_ref() {
        if !out.compiled {
            continue;
        }
        let mut one = FuzzReport {
            iterations_run: out.iteration + 1,
            total_insts: out.insts,
            failures: Vec::new(),
        };
        if let Some(p) = out.failure {
            one.failures.push(p.failure.clone());
            pendings.push(p);
        }
        report.merge(one);
        if fuzz.max_failures != 0 && report.failures.len() >= fuzz.max_failures {
            break;
        }
    }
    let overrun = it.count() as u64;

    // Shrink after the parallel phase: ascending iteration index, one
    // fresh context per failure — identical at any job count.
    let mut shrink_attempts = 0u64;
    for (j, p) in pendings.into_iter().enumerate() {
        let (fail, attempts) = shrink_pending(p, &fuzz.shrink);
        shrink_attempts += attempts;
        report.failures[j] = fail;
    }

    // Stable metrics come from the deterministic report, on this
    // thread, after the merge — never from the workers.
    let reg = MetricsRegistry::new();
    reg.add(Metric::FuzzIterations, report.iterations_run);
    reg.add(Metric::FuzzInsts, report.total_insts);
    reg.add(Metric::FuzzFailures, report.failures.len() as u64);
    reg.add(Metric::FuzzShrinkAttempts, shrink_attempts);
    timing_reg.add(Metric::FuzzOverrunIterations, overrun);
    timing_reg
        .add(Metric::FuzzCampaignNanos, u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));

    CampaignReport {
        report,
        metrics: reg.snapshot().stable_only(),
        timing: timing_reg.snapshot(),
        worker_iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::FuzzMode;
    use crate::shrink::ShrinkOptions;
    use crate::validator::ValidatorOptions;

    fn quick(iterations: u64, mode: FuzzMode) -> FuzzOptions {
        FuzzOptions {
            iterations,
            mode,
            validator: ValidatorOptions { fuel: 1 << 14, vectors: 3, ..Default::default() },
            shrink: Some(ShrinkOptions { max_attempts: 300 }),
            ..Default::default()
        }
    }

    #[test]
    fn parallel_matches_sequential_on_a_clean_campaign() {
        let fuzz = quick(24, FuzzMode::Both);
        let seq =
            run_campaign(&CampaignOptions { fuzz: fuzz.clone(), jobs: 1, ..Default::default() });
        let par = run_campaign(&CampaignOptions { fuzz, jobs: 4, max_iters_per_shard: 3 });
        assert_eq!(seq.report, par.report);
        assert!(seq.report.is_clean(), "failures: {:#?}", seq.report.failures);
        assert_eq!(seq.metrics, par.metrics, "stable metrics must not depend on jobs");
        assert_eq!(seq.stats_json(0), par.stats_json(0));
        assert_eq!(par.worker_iterations.iter().sum::<u64>(), 24);
        assert_eq!(par.worker_iterations.len(), 4);
    }

    #[test]
    fn parallel_matches_sequential_under_early_stop() {
        let fuzz = FuzzOptions {
            inject_miscompile: true,
            max_failures: 2,
            shrink: None,
            ..quick(40, FuzzMode::Validate)
        };
        let seq =
            run_campaign(&CampaignOptions { fuzz: fuzz.clone(), jobs: 1, ..Default::default() });
        let par = run_campaign(&CampaignOptions { fuzz, jobs: 3, max_iters_per_shard: 4 });
        assert_eq!(seq.report, par.report);
        assert_eq!(seq.report.failures.len(), 2);
        assert!(seq.report.iterations_run < 40);
        assert_eq!(seq.stats_json(0), par.stats_json(0));
        // Overrun lives in the timing domain only.
        assert!(seq.metrics.is_zero(Metric::FuzzOverrunIterations));
        assert!(par.metrics.is_zero(Metric::FuzzOverrunIterations));
    }

    #[test]
    fn sequential_campaign_agrees_with_fuzz_with() {
        let fuzz = FuzzOptions {
            inject_miscompile: true,
            max_failures: 1,
            ..quick(20, FuzzMode::Validate)
        };
        let legacy = crate::fuzz::fuzz(&fuzz);
        let campaign = run_campaign(&CampaignOptions { fuzz, jobs: 1, ..Default::default() });
        assert_eq!(legacy, campaign.report);
    }

    #[test]
    fn zero_iterations_and_zero_jobs_are_harmless() {
        let opts = CampaignOptions {
            fuzz: FuzzOptions { iterations: 0, ..Default::default() },
            jobs: 0,
            max_iters_per_shard: 0,
        };
        let rep = run_campaign(&opts);
        assert!(rep.report.is_clean());
        assert_eq!(rep.report.iterations_run, 0);
        assert_eq!(rep.worker_iterations, vec![0]);
    }
}
