//! Greedy minimization of failing routines.
//!
//! Given a routine and a predicate "does this routine still fail?", the
//! shrinker repeatedly tries smaller candidates — deleting statement
//! chunks, unwrapping control structure into one of its arms, and
//! replacing expression nodes by constants or their own operands — and
//! keeps any candidate that still fails. Candidates that would not
//! re-lower (a `break` orphaned outside any loop) are filtered out before
//! the predicate ever sees them.
//!
//! The result is a local minimum: no single deletion/unwrap/replacement
//! keeps the failure. In practice this turns 40-statement generated
//! routines into fixtures of a handful of instructions.

use pgvn_lang::{Expr, Routine, Stmt};

/// Tuning for one shrink run.
#[derive(Clone, Copy, Debug)]
pub struct ShrinkOptions {
    /// Upper bound on predicate evaluations (the expensive part).
    pub max_attempts: usize,
}

impl Default for ShrinkOptions {
    fn default() -> Self {
        ShrinkOptions { max_attempts: 4_000 }
    }
}

/// Address of a statement: descend through `steps` — each `(stmt, body)`
/// pair selects a compound statement and one of its child bodies — then
/// take statement `last` of the body reached.
#[derive(Clone, Debug)]
struct Path {
    steps: Vec<(usize, usize)>,
    last: usize,
}

fn child_bodies(s: &Stmt) -> Vec<&Vec<Stmt>> {
    match s {
        Stmt::If(_, t, e) => vec![t, e],
        Stmt::While(_, b) | Stmt::DoWhile(b, _) => vec![b],
        Stmt::Switch(_, cases, default) => {
            let mut v: Vec<&Vec<Stmt>> = cases.iter().map(|(_, b)| b).collect();
            v.push(default);
            v
        }
        _ => Vec::new(),
    }
}

fn child_bodies_mut(s: &mut Stmt) -> Vec<&mut Vec<Stmt>> {
    match s {
        Stmt::If(_, t, e) => vec![t, e],
        Stmt::While(_, b) | Stmt::DoWhile(b, _) => vec![b],
        Stmt::Switch(_, cases, default) => {
            let mut v: Vec<&mut Vec<Stmt>> = cases.iter_mut().map(|(_, b)| b).collect();
            v.push(default);
            v
        }
        _ => Vec::new(),
    }
}

/// Collects the paths of every statement, outermost first.
fn collect_paths(body: &[Stmt], steps: &[(usize, usize)], out: &mut Vec<Path>) {
    for (i, s) in body.iter().enumerate() {
        out.push(Path { steps: steps.to_vec(), last: i });
        for (bi, child) in child_bodies(s).into_iter().enumerate() {
            let mut st = steps.to_vec();
            st.push((i, bi));
            collect_paths(child, &st, out);
        }
    }
}

/// Resolves `path` to (containing body, index), or `None` if a prior
/// mutation made the path dangle.
fn navigate<'a>(r: &'a mut Routine, path: &Path) -> Option<(&'a mut Vec<Stmt>, usize)> {
    let mut body: &'a mut Vec<Stmt> = &mut r.body;
    for &(si, bi) in &path.steps {
        let stmt = body.get_mut(si)?;
        let mut children = child_bodies_mut(stmt);
        if bi >= children.len() {
            return None;
        }
        body = children.swap_remove(bi);
    }
    if path.last >= body.len() {
        return None;
    }
    Some((body, path.last))
}

fn exprs_of_mut(s: &mut Stmt) -> Vec<&mut Expr> {
    match s {
        Stmt::Assign(_, e) | Stmt::Return(e) | Stmt::Expr(e) => vec![e],
        Stmt::If(c, ..) | Stmt::While(c, _) | Stmt::DoWhile(_, c) | Stmt::Switch(c, ..) => vec![c],
        Stmt::Break | Stmt::Continue => Vec::new(),
    }
}

fn subexprs(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Int(_) | Expr::Var(_) | Expr::Opaque(_) => Vec::new(),
        Expr::Unary(_, a) | Expr::LogicalNot(a) => vec![a],
        Expr::Binary(_, a, b)
        | Expr::Cmp(_, a, b)
        | Expr::LogicalAnd(a, b)
        | Expr::LogicalOr(a, b) => vec![a, b],
    }
}

/// Drops `break`/`continue` statements that would bind to an *unwrapped*
/// loop (i.e. those not enclosed by a loop inside `body` itself).
fn scrub_orphaned_jumps(body: &mut Vec<Stmt>) {
    body.retain_mut(|s| match s {
        Stmt::Break | Stmt::Continue => false,
        Stmt::If(_, t, e) => {
            scrub_orphaned_jumps(t);
            scrub_orphaned_jumps(e);
            true
        }
        Stmt::Switch(_, cases, default) => {
            for (_, b) in cases.iter_mut() {
                scrub_orphaned_jumps(b);
            }
            scrub_orphaned_jumps(default);
            true
        }
        // An inner loop recaptures its own break/continue.
        _ => true,
    });
}

/// The shrink measure of a routine: the pair [`shrink_routine`]
/// strictly decreases at every accepted step. Public so regression
/// tests can assert the monotonicity contract on replayed fixtures.
pub fn shrink_measure(r: &Routine) -> (usize, usize) {
    measure(r)
}

/// The shrink measure: AST node count, then a constant-complexity weight
/// (0 for literal 0, 1 for literal 1, 2 for anything else). Candidates
/// are accepted only when this pair strictly decreases, which makes the
/// greedy loop terminate — sideways rewrites such as `0 + k → 1 + k`
/// would otherwise cycle forever.
fn measure(r: &Routine) -> (usize, usize) {
    fn expr(e: &Expr, m: &mut (usize, usize)) {
        m.0 += 1;
        if let Expr::Int(v) = e {
            m.1 += match v {
                0 => 0,
                1 => 1,
                _ => 2,
            };
        }
        for c in subexprs(e) {
            expr(c, m);
        }
    }
    fn stmts(body: &[Stmt], m: &mut (usize, usize)) {
        for s in body {
            m.0 += 1;
            let mut s2 = s.clone();
            for e in exprs_of_mut(&mut s2) {
                expr(e, m);
            }
            for b in child_bodies(s) {
                stmts(b, m);
            }
        }
    }
    let mut m = (0, 0);
    stmts(&r.body, &mut m);
    m
}

/// `break`/`continue` must sit inside a loop, or lowering panics.
fn structurally_valid(body: &[Stmt], in_loop: bool) -> bool {
    body.iter().all(|s| match s {
        Stmt::Break | Stmt::Continue => in_loop,
        Stmt::While(_, b) | Stmt::DoWhile(b, _) => structurally_valid(b, true),
        Stmt::If(_, t, e) => structurally_valid(t, in_loop) && structurally_valid(e, in_loop),
        Stmt::Switch(_, cases, default) => {
            cases.iter().all(|(_, b)| structurally_valid(b, in_loop))
                && structurally_valid(default, in_loop)
        }
        _ => true,
    })
}

/// All single-node simplifications of `e`: replace any one node by 0, by
/// 1, or by one of its own operands.
fn simplified_exprs(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    if *e != Expr::Int(0) {
        out.push(Expr::Int(0));
    }
    if *e != Expr::Int(1) {
        out.push(Expr::Int(1));
    }
    for child in subexprs(e) {
        out.push(child.clone());
    }
    let with = |k: &dyn Fn(Box<Expr>) -> Expr, a: &Expr, out: &mut Vec<Expr>| {
        for s in simplified_exprs(a) {
            out.push(k(Box::new(s)));
        }
    };
    match e {
        Expr::Int(_) | Expr::Var(_) | Expr::Opaque(_) => {}
        Expr::Unary(op, a) => with(&|s| Expr::Unary(*op, s), a, &mut out),
        Expr::LogicalNot(a) => with(&Expr::LogicalNot, a, &mut out),
        Expr::Binary(op, a, b) => {
            with(&|s| Expr::Binary(*op, s, b.clone()), a, &mut out);
            with(&|s| Expr::Binary(*op, a.clone(), s), b, &mut out);
        }
        Expr::Cmp(op, a, b) => {
            with(&|s| Expr::Cmp(*op, s, b.clone()), a, &mut out);
            with(&|s| Expr::Cmp(*op, a.clone(), s), b, &mut out);
        }
        Expr::LogicalAnd(a, b) => {
            with(&|s| Expr::LogicalAnd(s, b.clone()), a, &mut out);
            with(&|s| Expr::LogicalAnd(a.clone(), s), b, &mut out);
        }
        Expr::LogicalOr(a, b) => {
            with(&|s| Expr::LogicalOr(s, b.clone()), a, &mut out);
            with(&|s| Expr::LogicalOr(a.clone(), s), b, &mut out);
        }
    }
    out
}

/// One round of candidates, most-aggressive first.
fn candidates(r: &Routine) -> Vec<Routine> {
    let mut out = Vec::new();
    let mut paths = Vec::new();
    collect_paths(&r.body, &[], &mut paths);

    // 1. Chunk deletions at the top level (halves, then quarters).
    let n = r.body.len();
    for denom in [2usize, 4] {
        if n >= denom * 2 {
            let chunk = n / denom;
            for start in (0..n).step_by(chunk) {
                let mut c = r.clone();
                c.body.drain(start..(start + chunk).min(n));
                out.push(c);
            }
        }
    }

    // 2. Single-statement deletions.
    for path in &paths {
        let mut c = r.clone();
        if let Some((body, i)) = navigate(&mut c, path) {
            body.remove(i);
            out.push(c);
        }
    }

    // 3. Unwrap compound statements into one of their child bodies. When
    // the compound is a loop, its child body may contain break/continue
    // that would be orphaned by the unwrap — offer a scrubbed variant.
    for path in &paths {
        let mut probe = r.clone();
        let Some((body, i)) = navigate(&mut probe, path) else { continue };
        let num_bodies = child_bodies(&body[i]).len();
        let is_loop = matches!(body[i], Stmt::While(..) | Stmt::DoWhile(..));
        for bi in 0..num_bodies {
            let mut c = r.clone();
            if let Some((body, i)) = navigate(&mut c, path) {
                let mut children = child_bodies_mut(&mut body[i]);
                let mut replacement = std::mem::take(children.swap_remove(bi));
                drop(children);
                if is_loop {
                    scrub_orphaned_jumps(&mut replacement);
                }
                body.splice(i..=i, replacement);
                out.push(c);
            }
        }
    }

    // 4. Expression simplifications.
    for path in &paths {
        let mut probe = r.clone();
        let Some((body, i)) = navigate(&mut probe, path) else { continue };
        let variant_lists: Vec<Vec<Expr>> =
            exprs_of_mut(&mut body[i]).into_iter().map(|e| simplified_exprs(e)).collect();
        for (ei, variants) in variant_lists.into_iter().enumerate() {
            for v in variants {
                let mut c = r.clone();
                if let Some((body, i)) = navigate(&mut c, path) {
                    if let Some(slot) = exprs_of_mut(&mut body[i]).into_iter().nth(ei) {
                        *slot = v;
                        out.push(c);
                    }
                }
            }
        }
    }

    out.retain(|c| structurally_valid(&c.body, false));
    out
}

/// Greedily minimizes `routine` while `still_fails` holds.
///
/// `still_fails` must hold for the input routine itself; candidates that
/// compile but no longer fail should return `false`. Structurally invalid
/// candidates are never passed to the predicate.
pub fn shrink_routine(
    routine: &Routine,
    opts: &ShrinkOptions,
    still_fails: &mut dyn FnMut(&Routine) -> bool,
) -> Routine {
    let mut current = routine.clone();
    let mut size = measure(&current);
    let mut attempts = 0usize;
    loop {
        let mut improved = false;
        for cand in candidates(&current) {
            if attempts >= opts.max_attempts {
                return current;
            }
            let cand_size = measure(&cand);
            if cand_size >= size {
                continue;
            }
            attempts += 1;
            if still_fails(&cand) {
                current = cand;
                size = cand_size;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_ir::BinOp;

    fn contains_div(r: &Routine) -> bool {
        fn expr_has(e: &Expr) -> bool {
            matches!(e, Expr::Binary(BinOp::Div, ..)) || subexprs(e).iter().any(|c| expr_has(c))
        }
        fn stmt_has(s: &Stmt) -> bool {
            let mut s2 = s.clone();
            exprs_of_mut(&mut s2).iter().any(|e| expr_has(e))
                || child_bodies(s).iter().any(|b| b.iter().any(stmt_has))
        }
        r.body.iter().any(stmt_has)
    }

    #[test]
    fn shrinks_to_the_failing_kernel() {
        let src = "routine f(a, b) {
            x = a + b;
            y = x * 3;
            if (y > 10) {
                z = a / b;
                w = z + 1;
            } else {
                w = 0;
            }
            q = w ^ y;
            return q;
        }";
        let r = pgvn_lang::parse(src).unwrap();
        assert!(contains_div(&r));
        let shrunk = shrink_routine(&r, &ShrinkOptions::default(), &mut |c| contains_div(c));
        assert!(shrunk.body.len() <= 2, "shrunk to {} statements: {shrunk:?}", shrunk.body.len());
        assert!(contains_div(&shrunk));
        // The survivor still lowers.
        let _ = pgvn_lang::lower(&shrunk);
    }

    #[test]
    fn never_offers_orphaned_break() {
        // Unwrapping the while body would orphan the break; every
        // candidate the predicate sees must still be lowerable.
        let src = "routine f(n) {
            i = 0;
            while (i < n) { if (i > 3) { break; } i = i + 1; }
            return i;
        }";
        let r = pgvn_lang::parse(src).unwrap();
        let shrunk = shrink_routine(&r, &ShrinkOptions::default(), &mut |c| {
            let _ = pgvn_lang::lower(c); // panics if a break escaped its loop
            !c.body.is_empty()
        });
        let _ = pgvn_lang::lower(&shrunk);
    }

    #[test]
    fn respects_the_attempt_budget() {
        let src = "routine f(a) { x = a / 2; return x; }";
        let r = pgvn_lang::parse(src).unwrap();
        let mut calls = 0usize;
        let _ = shrink_routine(&r, &ShrinkOptions { max_attempts: 5 }, &mut |c| {
            calls += 1;
            contains_div(c)
        });
        assert!(calls <= 5);
    }
}
