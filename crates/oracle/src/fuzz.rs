//! The seeded fuzz driver: generate → validate/lattice-check → shrink.
//!
//! One user-visible seed drives everything. Each iteration derives a
//! fresh generator seed with [`mix64`], cycles through generator profiles
//! (default, inference-heavy, loop-heavy, opaque-heavy) so no single
//! routine shape dominates, builds the routine, and runs the requested
//! oracles. Failures are minimized with the [`crate::shrink`] module and
//! collected into a [`FuzzReport`] whose entries serialize to JSONL (for
//! telemetry sinks) and to self-contained `.pgvn` fixtures (for the
//! regression suite).

use crate::lattice::{check_lattice, check_lattice_with, default_relations, Relation};
use crate::outcome::mix64;
use crate::shrink::{shrink_routine, ShrinkOptions};
use crate::validator::{
    validate_function, validate_function_with, validate_optimized, ValidatorOptions,
};
use pgvn_core::{FaultKind, FaultPlan, FaultSite, GvnConfig, GvnContext};
use pgvn_ir::Function;
use pgvn_lang::Routine;
use pgvn_ssa::SsaStyle;
use pgvn_telemetry::json::JsonWriter;
use pgvn_transform::Pipeline;
use pgvn_workload::GenConfig;

/// Which oracles to run per generated routine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuzzMode {
    /// Translation validation only.
    Validate,
    /// Emulation-lattice checking only.
    Lattice,
    /// Both oracles on every routine.
    Both,
}

impl FuzzMode {
    fn runs_validate(self) -> bool {
        matches!(self, FuzzMode::Validate | FuzzMode::Both)
    }
    fn runs_lattice(self) -> bool {
        matches!(self, FuzzMode::Lattice | FuzzMode::Both)
    }
}

/// Tuning for one fuzz campaign.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Master seed: equal seeds replay identical campaigns.
    pub seed: u64,
    /// Number of routines to generate and check.
    pub iterations: u64,
    /// Which oracles to run.
    pub mode: FuzzMode,
    /// Validator tuning (fuel, vectors, configurations).
    pub validator: ValidatorOptions,
    /// Lattice relations to check.
    pub relations: Vec<Relation>,
    /// Stop after this many failures (0 = never stop early).
    pub max_failures: usize,
    /// Shrinker tuning; `None` disables shrinking.
    pub shrink: Option<ShrinkOptions>,
    /// Add a deliberately miscompiling configuration to the validator.
    /// Every iteration should then fail — the self-test of the oracle.
    pub inject_miscompile: bool,
    /// Also push every routine through the degradation ladder
    /// (`Pipeline::optimize_resilient`), cycling injected fault classes,
    /// and validate whatever rung committed against the original.
    pub check_resilient: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 0,
            iterations: 1_000,
            mode: FuzzMode::Both,
            validator: ValidatorOptions::default(),
            relations: default_relations(),
            max_failures: 10,
            shrink: Some(ShrinkOptions::default()),
            inject_miscompile: false,
            check_resilient: true,
        }
    }
}

/// One failing routine, minimized if shrinking was enabled.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Iteration index within the campaign.
    pub iteration: u64,
    /// The derived generator seed (replays this routine alone).
    pub gen_seed: u64,
    /// `"validate"`, `"lattice"`, or `"resilient"`.
    pub kind: String,
    /// Human-readable description of the disagreement.
    pub detail: String,
    /// Source of the original generated routine.
    pub source: String,
    /// Source after shrinking (equals `source` when shrinking is off).
    pub shrunk_source: String,
    /// Instruction count of the compiled shrunk routine.
    pub shrunk_insts: usize,
}

impl FuzzFailure {
    /// One JSONL record, suitable for the telemetry report sink.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_str("event", "fuzz_failure")
            .field_u64("iteration", self.iteration)
            .field_u64("gen_seed", self.gen_seed)
            .field_str("kind", &self.kind)
            .field_str("detail", &self.detail)
            .field_u64("shrunk_insts", self.shrunk_insts as u64)
            .field_str("source", &self.source)
            .field_str("shrunk_source", &self.shrunk_source);
        w.finish()
    }

    /// A self-contained `.pgvn` regression fixture: a comment header with
    /// the replay coordinates, then the shrunken routine source.
    pub fn fixture(&self) -> String {
        let mut out = String::new();
        out.push_str("// pgvn-oracle regression fixture\n");
        out.push_str(&format!("// kind: {}\n", self.kind));
        out.push_str(&format!(
            "// replay: iteration {} gen_seed {}\n",
            self.iteration, self.gen_seed
        ));
        for line in self.detail.lines() {
            out.push_str(&format!("// detail: {line}\n"));
        }
        out.push_str(&self.shrunk_source);
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out
    }
}

/// Outcome of a fuzz campaign.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Iterations actually executed (≤ requested when stopping early).
    pub iterations_run: u64,
    /// Total instructions across all generated routines (throughput).
    pub total_insts: u64,
    /// Every failure observed, in discovery order.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// `true` when no failure was observed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The generator profiles cycled across iterations. Varying the planted
/// pattern probabilities keeps any single routine shape from dominating
/// the campaign.
fn profile(k: u64, gen_seed: u64) -> GenConfig {
    let base = GenConfig { seed: gen_seed, ..GenConfig::default() };
    match k % 4 {
        // Default mix.
        0 => base,
        // Inference-heavy: predicates, diamonds, correlated branches.
        1 => GenConfig {
            inference_prob: 0.35,
            diamond_prob: 0.2,
            correlated_prob: 0.3,
            unreachable_prob: 0.15,
            loop_prob: 0.15,
            ..base
        },
        // Loop-heavy: cyclic values, do/while, φ-cycles.
        2 => GenConfig { loop_prob: 0.6, cyclic_prob: 0.6, target_stmts: 30, ..base },
        // Opaque-heavy with deeper nesting: stresses the interpreter's
        // opaque streams and the validator's divergence handling.
        _ => GenConfig { opaque_prob: 0.3, max_depth: 6, redundancy_prob: 0.3, ..base },
    }
}

fn compile_routine(r: &Routine) -> Option<Function> {
    let vf = pgvn_lang::lower(r);
    pgvn_ssa::build_ssa(&vf, SsaStyle::Pruned).ok()
}

/// The fault plans cycled through the resilient-ladder check: a clean
/// run, then one per recoverable fault class. The panic class is
/// deliberately absent — it is covered by the dedicated resilience tests
/// and the CI batch matrix, where firing real panics does not spray
/// panic-hook noise across a parallel fuzz campaign's output.
fn resilient_fault(iteration: u64, gen_seed: u64) -> Option<FaultPlan> {
    let plan = match iteration % 4 {
        0 => return None,
        1 => FaultPlan::new(FaultKind::Invariant, FaultSite::Eval),
        2 => FaultPlan::new(FaultKind::Budget, FaultSite::Edges),
        _ => FaultPlan::new(FaultKind::VerifierReject, FaultSite::Rewrite),
    };
    Some(plan.seeded(gen_seed))
}

/// Pushes `func` through the degradation ladder under the iteration's
/// injected fault and validates whatever rung committed against the
/// original: the ladder must end in a usable classified state, the
/// committed function must verify, and translation validation must
/// agree. Returns a one-line description of the first violation.
fn check_resilient(
    ctx: &mut GvnContext,
    func: &Function,
    iteration: u64,
    gen_seed: u64,
    validator: &ValidatorOptions,
) -> Result<(), String> {
    let plan = resilient_fault(iteration, gen_seed);
    let label = match plan {
        Some(p) => format!("resilient:{p}"),
        None => "resilient".to_string(),
    };
    let cfg = GvnConfig::full().fault_plan(plan);
    let mut optimized = func.clone();
    let rep =
        Pipeline::new(cfg).rounds(validator.rounds).optimize_resilient_with(ctx, &mut optimized);
    if !rep.is_usable() {
        return Err(format!(
            "[{label}] ladder rejected a verified input: outcome {}",
            rep.outcome.kind()
        ));
    }
    validate_optimized(func, &optimized, &label, validator).map_err(|e| e.to_string())
}

/// Runs a campaign with the default (silent) progress callback.
pub fn fuzz(opts: &FuzzOptions) -> FuzzReport {
    fuzz_with(opts, &mut |_, _| {})
}

/// A boxed "does this routine still exhibit the original failure?" check,
/// handed to the shrinker once a campaign iteration fails.
type FailurePredicate = Box<dyn FnMut(&Routine) -> bool>;

/// Runs a fuzz campaign. `progress` is invoked after every iteration with
/// the iteration index and the failure it produced, if any — the CLI uses
/// it for live reporting.
pub fn fuzz_with(
    opts: &FuzzOptions,
    progress: &mut dyn FnMut(u64, Option<&FuzzFailure>),
) -> FuzzReport {
    let mut report = FuzzReport::default();
    let mut validator = opts.validator.clone();
    if opts.inject_miscompile {
        validator.configs.push(("injected-bug".to_string(), GvnConfig::full().miscompile(true)));
    }
    // One analysis context for the whole campaign: every oracle run of
    // every iteration reuses the same arenas (cross-run isolation is the
    // driver's job, asserted by tests/session.rs). Shrink predicates
    // below own fresh contexts instead, since they outlive this loop.
    let mut ctx = GvnContext::new();
    for i in 0..opts.iterations {
        let gen_seed = mix64(opts.seed ^ mix64(i));
        let cfg = profile(i, gen_seed);
        let routine = pgvn_workload::generate_routine(&format!("fuzz_{i}"), &cfg);
        let Some(func) = compile_routine(&routine) else { continue };
        report.iterations_run = i + 1;
        report.total_insts += func.num_insts() as u64;

        // Per-iteration validator seed so argument vectors vary too.
        validator.input_seed = mix64(gen_seed);

        let mut failure: Option<(String, String)> = None;
        let mut failing_predicate: Option<FailurePredicate> = None;

        if opts.mode.runs_validate() {
            if let Err(e) = validate_function_with(&mut ctx, &func, &validator) {
                // Shrink against the one configuration that failed — an
                // 8× cheaper predicate, and the minimizer cannot wander
                // off to a different config's unrelated failure.
                let mut v = validator.clone();
                let failing = e.config().to_string();
                v.configs.retain(|(n, _)| *n == failing);
                failure = Some(("validate".to_string(), e.to_string()));
                failing_predicate = Some(Box::new(move |r: &Routine| {
                    compile_routine(r).is_some_and(|f| validate_function(&f, &v).is_err())
                }));
            }
        }
        if failure.is_none() && opts.mode.runs_lattice() {
            if let Err(v) = check_lattice_with(&mut ctx, &func, &opts.relations) {
                let mut rels: Vec<Relation> = opts
                    .relations
                    .iter()
                    .filter(|r| r.stronger.0 == v.stronger && r.weaker.0 == v.weaker)
                    .cloned()
                    .collect();
                if rels.is_empty() {
                    // Non-convergence reports name itself on both sides;
                    // keep every relation mentioning it.
                    rels = opts
                        .relations
                        .iter()
                        .filter(|r| r.stronger.0 == v.stronger || r.weaker.0 == v.stronger)
                        .cloned()
                        .collect();
                }
                failure = Some(("lattice".to_string(), v.to_string()));
                failing_predicate = Some(Box::new(move |r: &Routine| {
                    compile_routine(r).is_some_and(|f| check_lattice(&f, &rels).is_err())
                }));
            }
        }
        if failure.is_none() && opts.check_resilient {
            if let Err(detail) = check_resilient(&mut ctx, &func, i, gen_seed, &validator) {
                let v = validator.clone();
                let mut pred_ctx = GvnContext::new();
                failure = Some(("resilient".to_string(), detail));
                failing_predicate = Some(Box::new(move |r: &Routine| {
                    compile_routine(r).is_some_and(|f| {
                        check_resilient(&mut pred_ctx, &f, i, gen_seed, &v).is_err()
                    })
                }));
            }
        }

        let fail = match failure {
            None => {
                progress(i, None);
                continue;
            }
            Some((kind, detail)) => {
                let mut pred = failing_predicate.expect("predicate set with failure");
                let shrunk = match &opts.shrink {
                    Some(sopts) => shrink_routine(&routine, sopts, &mut *pred),
                    None => routine.clone(),
                };
                let shrunk_insts =
                    compile_routine(&shrunk).map(|f| f.num_insts()).unwrap_or(usize::MAX);
                FuzzFailure {
                    iteration: i,
                    gen_seed,
                    kind,
                    detail,
                    source: pgvn_lang::print_routine(&routine),
                    shrunk_source: pgvn_lang::print_routine(&shrunk),
                    shrunk_insts,
                }
            }
        };
        report.failures.push(fail);
        progress(i, report.failures.last());
        if opts.max_failures != 0 && report.failures.len() >= opts.max_failures {
            break;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(iterations: u64, mode: FuzzMode) -> FuzzOptions {
        FuzzOptions {
            iterations,
            mode,
            validator: ValidatorOptions { fuel: 1 << 14, vectors: 3, ..Default::default() },
            shrink: Some(ShrinkOptions { max_attempts: 300 }),
            ..Default::default()
        }
    }

    #[test]
    fn short_campaign_is_clean() {
        let report = fuzz(&quick(40, FuzzMode::Both));
        assert!(report.is_clean(), "failures: {:#?}", report.failures);
        assert!(report.iterations_run >= 39);
        assert!(report.total_insts > 0);
    }

    #[test]
    fn campaigns_are_reproducible() {
        let a = fuzz(&quick(10, FuzzMode::Validate));
        let b = fuzz(&quick(10, FuzzMode::Validate));
        assert_eq!(a.total_insts, b.total_insts);
        assert_eq!(a.failures.len(), b.failures.len());
    }

    #[test]
    fn injected_bug_fails_fast_and_shrinks() {
        let opts = FuzzOptions {
            inject_miscompile: true,
            max_failures: 1,
            shrink: Some(ShrinkOptions { max_attempts: 2_000 }),
            ..quick(50, FuzzMode::Validate)
        };
        let report = fuzz(&opts);
        assert!(!report.is_clean(), "injected miscompile must be caught");
        let f = &report.failures[0];
        assert_eq!(f.kind, "validate");
        assert!(f.detail.contains("injected-bug"), "{}", f.detail);
        // The shrunken reproducer must stay small and be a valid fixture.
        assert!(f.shrunk_insts <= 10, "shrunk to {} insts:\n{}", f.shrunk_insts, f.shrunk_source);
        let fixture = f.fixture();
        let replayed = pgvn_lang::parse(&fixture).expect("fixture re-parses");
        assert_eq!(pgvn_lang::print_routine(&replayed), f.shrunk_source);
        // And the JSONL record parses back.
        let v = pgvn_telemetry::json::parse(&f.to_json()).unwrap();
        assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some("validate"));
    }

    #[test]
    fn max_failures_stops_the_campaign() {
        let opts = FuzzOptions {
            inject_miscompile: true,
            max_failures: 2,
            shrink: None,
            ..quick(50, FuzzMode::Validate)
        };
        let report = fuzz(&opts);
        assert_eq!(report.failures.len(), 2);
        assert!(report.iterations_run < 50);
    }
}
