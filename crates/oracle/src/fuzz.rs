//! The seeded fuzz driver: generate → validate/lattice-check → shrink.
//!
//! One user-visible seed drives everything. Each iteration derives a
//! fresh generator seed with [`mix64`], cycles through generator profiles
//! (default, inference-heavy, loop-heavy, opaque-heavy) so no single
//! routine shape dominates, builds the routine, and runs the requested
//! oracles. Failures are minimized with the [`crate::shrink`] module and
//! collected into a [`FuzzReport`] whose entries serialize to JSONL (for
//! telemetry sinks) and to self-contained `.pgvn` fixtures (for the
//! regression suite).
//!
//! The per-iteration work is factored into [`run_iteration`], a pure
//! function of `(context, options, iteration index)`: nothing it
//! computes depends on which iterations the context ran before. That is
//! what lets [`crate::campaign`] shard the iteration space over worker
//! threads and still merge a byte-identical report — a failing iteration
//! returns a [`PendingFailure`] carrying a rebuildable [`FailureCheck`]
//! recipe instead of a live closure, so shrinking can happen after the
//! parallel phase, in ascending iteration order, with fresh contexts.

use crate::lattice::{check_lattice, check_lattice_with, default_relations, Relation};
use crate::outcome::mix64;
use crate::shrink::{shrink_routine, ShrinkOptions};
use crate::validator::{
    validate_function, validate_function_with, validate_optimized, ValidatorOptions,
};
use pgvn_core::{FaultKind, FaultPlan, FaultSite, GvnConfig, GvnContext};
use pgvn_ir::{Function, Severity};
use pgvn_lang::Routine;
use pgvn_ssa::SsaStyle;
use pgvn_telemetry::json::JsonWriter;
use pgvn_transform::{check_function_with, AnalysisManager, CheckOptions, Pipeline};
use pgvn_workload::GenConfig;

/// Which oracles to run per generated routine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuzzMode {
    /// Translation validation only.
    Validate,
    /// Emulation-lattice checking only.
    Lattice,
    /// Both oracles on every routine.
    Both,
}

impl FuzzMode {
    fn runs_validate(self) -> bool {
        matches!(self, FuzzMode::Validate | FuzzMode::Both)
    }
    fn runs_lattice(self) -> bool {
        matches!(self, FuzzMode::Lattice | FuzzMode::Both)
    }
}

/// Tuning for one fuzz campaign.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Master seed: equal seeds replay identical campaigns.
    pub seed: u64,
    /// Number of routines to generate and check.
    pub iterations: u64,
    /// Which oracles to run.
    pub mode: FuzzMode,
    /// Validator tuning (fuel, vectors, configurations).
    pub validator: ValidatorOptions,
    /// Lattice relations to check.
    pub relations: Vec<Relation>,
    /// Stop after this many failures (0 = never stop early).
    pub max_failures: usize,
    /// Shrinker tuning; `None` disables shrinking.
    pub shrink: Option<ShrinkOptions>,
    /// Add a deliberately miscompiling configuration to the validator.
    /// Every iteration should then fail — the self-test of the oracle.
    pub inject_miscompile: bool,
    /// Also push every routine through the degradation ladder
    /// (`Pipeline::optimize_resilient`), cycling injected fault classes,
    /// and validate whatever rung committed against the original.
    pub check_resilient: bool,
    /// Diff the lint suite's error-severity diagnostics across
    /// optimization: the optimizer must never *introduce* an error
    /// diagnostic the input did not already carry.
    pub check_diagnostics: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 0,
            iterations: 1_000,
            mode: FuzzMode::Both,
            validator: ValidatorOptions::default(),
            relations: default_relations(),
            max_failures: 10,
            shrink: Some(ShrinkOptions::default()),
            inject_miscompile: false,
            check_resilient: true,
            check_diagnostics: true,
        }
    }
}

/// One failing routine, minimized if shrinking was enabled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzFailure {
    /// Iteration index within the campaign.
    pub iteration: u64,
    /// The derived generator seed (replays this routine alone).
    pub gen_seed: u64,
    /// `"validate"`, `"lattice"`, `"resilient"`, or `"diagnostics"`.
    pub kind: String,
    /// Human-readable description of the disagreement.
    pub detail: String,
    /// Source of the original generated routine.
    pub source: String,
    /// Source after shrinking (equals `source` when shrinking is off).
    pub shrunk_source: String,
    /// Instruction count of the compiled shrunk routine.
    pub shrunk_insts: usize,
}

impl FuzzFailure {
    /// One JSONL record, suitable for the telemetry report sink.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_str("event", "fuzz_failure")
            .field_u64("iteration", self.iteration)
            .field_u64("gen_seed", self.gen_seed)
            .field_str("kind", &self.kind)
            .field_str("detail", &self.detail)
            .field_u64("shrunk_insts", self.shrunk_insts as u64)
            .field_str("source", &self.source)
            .field_str("shrunk_source", &self.shrunk_source);
        w.finish()
    }

    /// A self-contained `.pgvn` regression fixture: a comment header with
    /// the replay coordinates, then the shrunken routine source.
    pub fn fixture(&self) -> String {
        let mut out = String::new();
        out.push_str("// pgvn-oracle regression fixture\n");
        out.push_str(&format!("// kind: {}\n", self.kind));
        out.push_str(&format!(
            "// replay: iteration {} gen_seed {}\n",
            self.iteration, self.gen_seed
        ));
        for line in self.detail.lines() {
            out.push_str(&format!("// detail: {line}\n"));
        }
        out.push_str(&self.shrunk_source);
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out
    }
}

/// Outcome of a fuzz campaign.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FuzzReport {
    /// Iterations actually executed (≤ requested when stopping early).
    pub iterations_run: u64,
    /// Total instructions across all generated routines (throughput).
    pub total_insts: u64,
    /// Every failure observed, in discovery order.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// `true` when no failure was observed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Folds `other` into `self`: iteration high-water marks take the
    /// maximum, instruction totals add (saturating), and the two
    /// failure lists — each already ascending by iteration — interleave
    /// into one ascending list. Shard-local reports cover disjoint
    /// iteration sets, so the fold is associative and commutative: the
    /// campaign layer merges worker outputs in any order and still gets
    /// the sequential report.
    pub fn merge(&mut self, other: FuzzReport) {
        self.iterations_run = self.iterations_run.max(other.iterations_run);
        self.total_insts = self.total_insts.saturating_add(other.total_insts);
        if self.failures.is_empty() {
            self.failures = other.failures;
            return;
        }
        if other.failures.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.failures.len() + other.failures.len());
        let mut a = std::mem::take(&mut self.failures).into_iter().peekable();
        let mut b = other.failures.into_iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    let next = if x.iteration <= y.iteration { &mut a } else { &mut b };
                    merged.push(next.next().expect("peeked"));
                }
                (Some(_), None) => merged.push(a.next().expect("peeked")),
                (None, Some(_)) => merged.push(b.next().expect("peeked")),
                (None, None) => break,
            }
        }
        self.failures = merged;
    }
}

/// The generator profiles cycled across iterations. Varying the planted
/// pattern probabilities keeps any single routine shape from dominating
/// the campaign.
fn profile(k: u64, gen_seed: u64) -> GenConfig {
    let base = GenConfig { seed: gen_seed, ..GenConfig::default() };
    match k % 4 {
        // Default mix.
        0 => base,
        // Inference-heavy: predicates, diamonds, correlated branches.
        1 => GenConfig {
            inference_prob: 0.35,
            diamond_prob: 0.2,
            correlated_prob: 0.3,
            unreachable_prob: 0.15,
            loop_prob: 0.15,
            ..base
        },
        // Loop-heavy: cyclic values, do/while, φ-cycles.
        2 => GenConfig { loop_prob: 0.6, cyclic_prob: 0.6, target_stmts: 30, ..base },
        // Opaque-heavy with deeper nesting: stresses the interpreter's
        // opaque streams and the validator's divergence handling.
        _ => GenConfig { opaque_prob: 0.3, max_depth: 6, redundancy_prob: 0.3, ..base },
    }
}

fn compile_routine(r: &Routine) -> Option<Function> {
    let vf = pgvn_lang::lower(r);
    pgvn_ssa::build_ssa(&vf, SsaStyle::Pruned).ok()
}

/// The fault plans cycled through the resilient-ladder check: a clean
/// run, then one per fault class — including `Panic`, whose unwind is
/// caught inside the ladder. The campaign entry points ([`fuzz_with`]
/// when resilient checking is on, and `campaign::run_campaign` always)
/// install a process-wide silenced panic hook for the duration, so the
/// injected panics cannot spray hook noise across parallel shards.
fn resilient_fault(iteration: u64, gen_seed: u64) -> Option<FaultPlan> {
    let plan = match iteration % 5 {
        0 => return None,
        1 => FaultPlan::new(FaultKind::Invariant, FaultSite::Eval),
        2 => FaultPlan::new(FaultKind::Budget, FaultSite::Edges),
        3 => FaultPlan::new(FaultKind::VerifierReject, FaultSite::Rewrite),
        _ => FaultPlan::new(FaultKind::Panic, FaultSite::PhiPred),
    };
    Some(plan.seeded(gen_seed))
}

/// The previous panic hook plus the number of live
/// [`PanicHookGuard`]s, so nested or concurrent campaigns (parallel
/// `cargo test`) share one silenced hook instead of clobbering each
/// other's take/restore pairs.
#[allow(clippy::type_complexity)]
static SILENCED_HOOK: std::sync::Mutex<(
    usize,
    Option<Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Send + Sync + 'static>>,
)> = std::sync::Mutex::new((0, None));

/// Keeps the process-wide panic hook silenced while alive; dropping the
/// last live guard restores the hook that was installed before the
/// first. See [`silence_panic_hook`].
pub struct PanicHookGuard(());

/// Installs one process-wide silenced panic hook (refcounted, so
/// overlapping campaigns share it) and returns the guard that restores
/// the previous hook when the last campaign finishes. The resilient
/// oracle's fault cycle includes the panic class, and every injected
/// panic is caught inside the degradation ladder — without this the
/// default hook would print a backtrace per injected fault.
pub fn silence_panic_hook() -> PanicHookGuard {
    let mut state = SILENCED_HOOK.lock().unwrap_or_else(|e| e.into_inner());
    if state.0 == 0 {
        state.1 = Some(std::panic::take_hook());
        std::panic::set_hook(Box::new(|_| {}));
    }
    state.0 += 1;
    PanicHookGuard(())
}

impl Drop for PanicHookGuard {
    fn drop(&mut self) {
        let mut state = SILENCED_HOOK.lock().unwrap_or_else(|e| e.into_inner());
        state.0 -= 1;
        if state.0 == 0 {
            if let Some(prev) = state.1.take() {
                std::panic::set_hook(prev);
            }
        }
    }
}

/// Pushes `func` through the degradation ladder under the iteration's
/// injected fault and validates whatever rung committed against the
/// original: the ladder must end in a usable classified state, the
/// committed function must verify, and translation validation must
/// agree. Returns a one-line description of the first violation.
fn check_resilient(
    ctx: &mut GvnContext,
    func: &Function,
    iteration: u64,
    gen_seed: u64,
    validator: &ValidatorOptions,
) -> Result<(), String> {
    let plan = resilient_fault(iteration, gen_seed);
    let label = match plan {
        Some(p) => format!("resilient:{p}"),
        None => "resilient".to_string(),
    };
    let cfg = GvnConfig::full().fault_plan(plan);
    let mut optimized = func.clone();
    let rep =
        Pipeline::new(cfg).rounds(validator.rounds).optimize_resilient_with(ctx, &mut optimized);
    if !rep.is_usable() {
        return Err(format!(
            "[{label}] ladder rejected a verified input: outcome {}",
            rep.outcome.kind()
        ));
    }
    validate_optimized(func, &optimized, &label, validator).map_err(|e| e.to_string())
}

/// The diagnostic-stability oracle: optimization must never *introduce*
/// an error-severity lint diagnostic. Lints the input (GVN-free suite —
/// every error lint is), optimizes a clone through the plain pipeline,
/// lints the output, and fails on any error code absent from the input.
/// Codes are compared as a set: the optimizer may move or merge
/// diagnostics, but a fresh class of breakage is a bug in a rewrite.
fn check_diagnostic_stability(
    ctx: &mut GvnContext,
    func: &Function,
    rounds: usize,
) -> Result<(), String> {
    let opts = CheckOptions::without_gvn();
    let mut analyses = AnalysisManager::new();
    let before = check_function_with(ctx, &mut analyses, func, &opts);
    let input_codes: Vec<&str> = before
        .diagnostics()
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .map(|d| d.code())
        .collect();
    let mut optimized = func.clone();
    Pipeline::new(GvnConfig::full()).rounds(rounds).optimize_with(ctx, &mut optimized);
    let mut analyses = AnalysisManager::new();
    let after = check_function_with(ctx, &mut analyses, &optimized, &opts);
    for d in after.diagnostics() {
        if d.severity() == Severity::Error && !input_codes.contains(&d.code()) {
            return Err(format!(
                "[diagnostics] optimization introduced error diagnostic {} at {}: {}",
                d.code(),
                d.location(),
                d.message()
            ));
        }
    }
    Ok(())
}

/// Runs a campaign with the default (silent) progress callback.
pub fn fuzz(opts: &FuzzOptions) -> FuzzReport {
    fuzz_with(opts, &mut |_, _| {})
}

/// A rebuildable "does this routine still exhibit the original
/// failure?" recipe. Unlike a captured closure it is `Send` and carries
/// no live analysis state, so a parallel campaign can hand it from a
/// worker thread to the post-merge shrink phase and evaluate it there
/// against a fresh context — byte-identically at any worker count.
#[derive(Clone, Debug)]
pub enum FailureCheck {
    /// Re-validate against the one configuration that failed — an 8×
    /// cheaper predicate, and the minimizer cannot wander off to a
    /// different config's unrelated failure.
    Validate(ValidatorOptions),
    /// Re-check the lattice relations filtered to the violated pair (or
    /// to every relation naming the non-converging config).
    Lattice(Vec<Relation>),
    /// Re-run the degradation-ladder oracle with the iteration's exact
    /// injected fault plan.
    Resilient {
        /// Validator options in effect when the failure was found.
        validator: ValidatorOptions,
        /// Campaign iteration (selects the injected fault class).
        iteration: u64,
        /// Generator seed (seeds the fault plan).
        gen_seed: u64,
    },
    /// Re-run the diagnostic-stability oracle: does optimizing this
    /// routine still introduce an error-severity lint diagnostic?
    Diagnostics {
        /// Pipeline rounds in effect when the failure was found.
        rounds: usize,
    },
}

impl FailureCheck {
    /// `true` when `r` still exhibits the recorded failure class.
    /// Routines that no longer compile never count as failing. `ctx` is
    /// used by the resilient check only; the validator and lattice
    /// checks build their own scratch state per call, exactly as the
    /// original inline predicates did.
    pub fn still_fails(&self, ctx: &mut GvnContext, r: &Routine) -> bool {
        let Some(f) = compile_routine(r) else { return false };
        match self {
            FailureCheck::Validate(v) => validate_function(&f, v).is_err(),
            FailureCheck::Lattice(rels) => check_lattice(&f, rels).is_err(),
            FailureCheck::Resilient { validator, iteration, gen_seed } => {
                check_resilient(ctx, &f, *iteration, *gen_seed, validator).is_err()
            }
            FailureCheck::Diagnostics { rounds } => {
                check_diagnostic_stability(ctx, &f, *rounds).is_err()
            }
        }
    }
}

/// A failure as detected, before shrinking: the unminimized
/// [`FuzzFailure`] (its `shrunk_source` still equals `source`), the
/// routine to minimize, and the [`FailureCheck`] recipe to minimize
/// against.
#[derive(Clone, Debug)]
pub struct PendingFailure {
    /// The failure record with `source == shrunk_source`.
    pub failure: FuzzFailure,
    /// How to re-establish the failure on a candidate routine.
    pub check: FailureCheck,
    /// The original generated routine (shrink input).
    pub routine: Routine,
}

/// Everything one campaign iteration produced. Pure in `(opts, i)`:
/// the context is scratch space, never a source of variation.
#[derive(Clone, Debug)]
pub struct IterationOutcome {
    /// The iteration index.
    pub iteration: u64,
    /// The derived generator seed, `mix64(opts.seed ^ mix64(i))`.
    pub gen_seed: u64,
    /// Whether the generated routine compiled (uncompilable routines
    /// are skipped without counting toward `iterations_run`).
    pub compiled: bool,
    /// Instruction count of the compiled routine (0 when not compiled).
    pub insts: u64,
    /// The failure this iteration produced, if any, unshrunk.
    pub failure: Option<PendingFailure>,
}

/// Runs one fuzz iteration against `ctx`: derive the generator seed,
/// build the routine, and run the requested oracles. The result depends
/// only on `(opts, i)` — shard assignment cannot change what any
/// iteration generates or how its oracles decide — which is the
/// invariant the parallel campaign's byte-identical merge rests on.
pub fn run_iteration(ctx: &mut GvnContext, opts: &FuzzOptions, i: u64) -> IterationOutcome {
    let gen_seed = mix64(opts.seed ^ mix64(i));
    let mut out =
        IterationOutcome { iteration: i, gen_seed, compiled: false, insts: 0, failure: None };
    let cfg = profile(i, gen_seed);
    let routine = pgvn_workload::generate_routine(&format!("fuzz_{i}"), &cfg);
    let Some(func) = compile_routine(&routine) else { return out };
    out.compiled = true;
    out.insts = func.num_insts() as u64;

    let mut validator = opts.validator.clone();
    if opts.inject_miscompile {
        validator.configs.push(("injected-bug".to_string(), GvnConfig::full().miscompile(true)));
    }
    // Per-iteration validator seed so argument vectors vary too.
    validator.input_seed = mix64(gen_seed);

    let mut found: Option<(&'static str, String, FailureCheck)> = None;
    if opts.mode.runs_validate() {
        if let Err(e) = validate_function_with(ctx, &func, &validator) {
            let mut v = validator.clone();
            let failing = e.config().to_string();
            v.configs.retain(|(n, _)| *n == failing);
            found = Some(("validate", e.to_string(), FailureCheck::Validate(v)));
        }
    }
    if found.is_none() && opts.mode.runs_lattice() {
        if let Err(v) = check_lattice_with(ctx, &func, &opts.relations) {
            let mut rels: Vec<Relation> = opts
                .relations
                .iter()
                .filter(|r| r.stronger.0 == v.stronger && r.weaker.0 == v.weaker)
                .cloned()
                .collect();
            if rels.is_empty() {
                // Non-convergence reports name itself on both sides;
                // keep every relation mentioning it.
                rels = opts
                    .relations
                    .iter()
                    .filter(|r| r.stronger.0 == v.stronger || r.weaker.0 == v.stronger)
                    .cloned()
                    .collect();
            }
            found = Some(("lattice", v.to_string(), FailureCheck::Lattice(rels)));
        }
    }
    if found.is_none() && opts.check_resilient {
        if let Err(detail) = check_resilient(ctx, &func, i, gen_seed, &validator) {
            let check =
                FailureCheck::Resilient { validator: validator.clone(), iteration: i, gen_seed };
            found = Some(("resilient", detail, check));
        }
    }

    if found.is_none() && opts.check_diagnostics {
        if let Err(detail) = check_diagnostic_stability(ctx, &func, validator.rounds) {
            found = Some((
                "diagnostics",
                detail,
                FailureCheck::Diagnostics { rounds: validator.rounds },
            ));
        }
    }

    if let Some((kind, detail, check)) = found {
        let source = pgvn_lang::print_routine(&routine);
        out.failure = Some(PendingFailure {
            failure: FuzzFailure {
                iteration: i,
                gen_seed,
                kind: kind.to_string(),
                detail,
                source: source.clone(),
                shrunk_source: source,
                shrunk_insts: func.num_insts(),
            },
            check,
            routine,
        });
    }
    out
}

/// Minimizes a pending failure into its final [`FuzzFailure`],
/// returning the number of shrink predicate evaluations performed
/// (deterministic, so it may feed stable metrics). A fresh context is
/// created per failure, exactly as the inline shrink did, so the result
/// is independent of whatever the campaign context ran before.
pub fn shrink_pending(
    pending: PendingFailure,
    shrink: &Option<ShrinkOptions>,
) -> (FuzzFailure, u64) {
    let PendingFailure { mut failure, check, routine } = pending;
    let mut attempts = 0u64;
    let shrunk = match shrink {
        Some(sopts) => {
            let mut ctx = GvnContext::new();
            shrink_routine(&routine, sopts, &mut |r| {
                attempts += 1;
                check.still_fails(&mut ctx, r)
            })
        }
        None => routine,
    };
    failure.shrunk_insts = compile_routine(&shrunk).map(|f| f.num_insts()).unwrap_or(usize::MAX);
    failure.shrunk_source = pgvn_lang::print_routine(&shrunk);
    (failure, attempts)
}

/// Runs a fuzz campaign. `progress` is invoked after every iteration with
/// the iteration index and the failure it produced, if any — the CLI uses
/// it for live reporting.
pub fn fuzz_with(
    opts: &FuzzOptions,
    progress: &mut dyn FnMut(u64, Option<&FuzzFailure>),
) -> FuzzReport {
    // The resilient fault cycle includes the panic class; every panic is
    // caught inside the ladder, so the only observable effect would be
    // hook noise — silence it for the duration.
    let _hook = opts.check_resilient.then(silence_panic_hook);
    let mut report = FuzzReport::default();
    // One analysis context for the whole campaign: every oracle run of
    // every iteration reuses the same arenas (cross-run isolation is the
    // driver's job, asserted by tests/session.rs). Shrinking owns fresh
    // contexts instead — see [`shrink_pending`].
    let mut ctx = GvnContext::new();
    for i in 0..opts.iterations {
        let out = run_iteration(&mut ctx, opts, i);
        if !out.compiled {
            continue;
        }
        report.iterations_run = i + 1;
        report.total_insts += out.insts;
        match out.failure {
            None => progress(i, None),
            Some(pending) => {
                let (fail, _attempts) = shrink_pending(pending, &opts.shrink);
                report.failures.push(fail);
                progress(i, report.failures.last());
                if opts.max_failures != 0 && report.failures.len() >= opts.max_failures {
                    break;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(iterations: u64, mode: FuzzMode) -> FuzzOptions {
        FuzzOptions {
            iterations,
            mode,
            validator: ValidatorOptions { fuel: 1 << 14, vectors: 3, ..Default::default() },
            shrink: Some(ShrinkOptions { max_attempts: 300 }),
            ..Default::default()
        }
    }

    #[test]
    fn short_campaign_is_clean() {
        let report = fuzz(&quick(40, FuzzMode::Both));
        assert!(report.is_clean(), "failures: {:#?}", report.failures);
        assert!(report.iterations_run >= 39);
        assert!(report.total_insts > 0);
    }

    #[test]
    fn campaigns_are_reproducible() {
        let a = fuzz(&quick(10, FuzzMode::Validate));
        let b = fuzz(&quick(10, FuzzMode::Validate));
        assert_eq!(a.total_insts, b.total_insts);
        assert_eq!(a.failures.len(), b.failures.len());
    }

    #[test]
    fn injected_bug_fails_fast_and_shrinks() {
        let opts = FuzzOptions {
            inject_miscompile: true,
            max_failures: 1,
            shrink: Some(ShrinkOptions { max_attempts: 2_000 }),
            ..quick(50, FuzzMode::Validate)
        };
        let report = fuzz(&opts);
        assert!(!report.is_clean(), "injected miscompile must be caught");
        let f = &report.failures[0];
        assert_eq!(f.kind, "validate");
        assert!(f.detail.contains("injected-bug"), "{}", f.detail);
        // The shrunken reproducer must stay small and be a valid fixture.
        assert!(f.shrunk_insts <= 10, "shrunk to {} insts:\n{}", f.shrunk_insts, f.shrunk_source);
        let fixture = f.fixture();
        let replayed = pgvn_lang::parse(&fixture).expect("fixture re-parses");
        assert_eq!(pgvn_lang::print_routine(&replayed), f.shrunk_source);
        // And the JSONL record parses back.
        let v = pgvn_telemetry::json::parse(&f.to_json()).unwrap();
        assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some("validate"));
    }

    #[test]
    fn diagnostic_stability_accepts_clean_optimization() {
        let r =
            pgvn_lang::parse("routine f(a, b) { x = a + b; if (x > 0) { return x; } return b; }")
                .expect("parses");
        let f = compile_routine(&r).expect("compiles");
        let mut ctx = GvnContext::new();
        assert_eq!(check_diagnostic_stability(&mut ctx, &f, 2), Ok(()));
    }

    #[test]
    fn max_failures_stops_the_campaign() {
        let opts = FuzzOptions {
            inject_miscompile: true,
            max_failures: 2,
            shrink: None,
            ..quick(50, FuzzMode::Validate)
        };
        let report = fuzz(&opts);
        assert_eq!(report.failures.len(), 2);
        assert!(report.iterations_run < 50);
    }
}
