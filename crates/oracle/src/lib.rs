//! # pgvn-oracle — the differential correctness oracle
//!
//! The paper's central claim (§2.9, Table 1) is that one unified fixed
//! point safely emulates AWZ/Simpson, Click's strongest algorithm and
//! Wegman–Zadeck SCCP while finding strictly more congruences. This crate
//! checks both halves of that claim mechanically, on millions of
//! generated routines, instead of on hand-written fixtures alone:
//!
//! - **Translation validation** ([`validator`]): every generated routine
//!   is executed before and after the full transform pipeline on
//!   randomized argument/opaque-value vectors (with fuel limits), and the
//!   observable outcomes — returned value, trap, or divergence — must
//!   agree.
//! - **Lattice checking** ([`lattice`]): the driver runs under every
//!   emulation preset on the same routine, and the resulting congruence
//!   partitions must satisfy the paper's refinement ordering
//!   (`full ⊒ click ⊒ awz`, `optimistic ⊒ balanced ⊒ pessimistic`), with
//!   SCCP-mode constants a subset of full-mode constants.
//! - **Shrinking** ([`shrink`]): any failing routine is minimized — drop
//!   statements, unwrap control structure, simplify expressions,
//!   re-lower — and emitted as a self-contained `.pgvn` regression
//!   fixture.
//! - **Fuzzing** ([`fuzz`]): a seeded driver loop over the
//!   `pgvn-workload` generator ties the three together; the `pgvn fuzz`
//!   CLI subcommand and CI both drive this engine.
//! - **Sharded campaigns** ([`campaign`]): the iteration space sharded
//!   over worker threads with a deterministic merge — `--jobs 1` and
//!   `--jobs N` produce identical reports, fixtures, and exit codes,
//!   so nightly CI can push the same campaign toward millions of
//!   iterations at hardware speed.
//!
//! See `docs/ORACLE.md` for the design discussion and usage examples.
//!
//! ```
//! use pgvn_oracle::{fuzz, FuzzMode, FuzzOptions};
//!
//! let report = fuzz(&FuzzOptions {
//!     iterations: 25,
//!     mode: FuzzMode::Both,
//!     ..FuzzOptions::default()
//! });
//! assert!(report.is_clean(), "{:?}", report.failures);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod fuzz;
pub mod lattice;
pub mod outcome;
pub mod shrink;
pub mod validator;

pub use campaign::{run_campaign, run_campaign_with, CampaignOptions, CampaignReport};
pub use fuzz::{
    fuzz, fuzz_with, run_iteration, shrink_pending, silence_panic_hook, FailureCheck, FuzzFailure,
    FuzzMode, FuzzOptions, FuzzReport, IterationOutcome, PanicHookGuard, PendingFailure,
};
pub use lattice::{
    check_lattice, check_lattice_with, default_relations, LatticeViolation, Relation,
};
pub use outcome::{mix64, run_outcome, Outcome};
pub use shrink::{shrink_measure, shrink_routine, ShrinkOptions};
pub use validator::{
    default_validation_configs, validate_function, validate_function_with, validate_optimized,
    Failure, ValidatorOptions,
};
