//! Observable execution outcomes.
//!
//! The translation validator compares routines by what an external
//! observer can see: the returned value, a trap, or divergence. Fuel
//! exhaustion is *divergence*, not a value — an optimized routine may
//! legitimately finish a computation the original could not afford under
//! the same budget, which is why the validator retries with a larger
//! budget before calling a divergence disagreement a miscompile.

use pgvn_ir::{Function, HashedOpaques, InterpError, Interpreter};
use std::fmt;

/// What an execution of a routine looks like from the outside.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The routine returned a value.
    Return(i64),
    /// The fuel budget was exhausted (treated as divergence).
    Diverge,
    /// Execution trapped (undefined value, or division by zero in
    /// trapping mode).
    Trap(InterpError),
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Return(v) => write!(f, "return {v}"),
            Outcome::Diverge => write!(f, "diverge"),
            Outcome::Trap(e) => write!(f, "trap: {e}"),
        }
    }
}

/// Runs `f` on `args` with deterministic opaque values derived from
/// `opaque_seed`, classifying the result as an [`Outcome`].
pub fn run_outcome(f: &Function, args: &[i64], opaque_seed: u64, fuel: u64) -> Outcome {
    match Interpreter::new(f).fuel(fuel).run(args, &mut HashedOpaques::new(opaque_seed)) {
        Ok(v) => Outcome::Return(v),
        Err(InterpError::OutOfFuel) => Outcome::Diverge,
        Err(e) => Outcome::Trap(e),
    }
}

/// splitmix64: the oracle's only randomness primitive. Deterministic,
/// cheap, well-spread; used to derive per-iteration generator seeds and
/// argument vectors from the one user-visible fuzz seed.
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_lang::compile;
    use pgvn_ssa::SsaStyle;

    #[test]
    fn outcomes_classify_runs() {
        let f = compile("routine f(a) { return a + 1; }", SsaStyle::Pruned).unwrap();
        assert_eq!(run_outcome(&f, &[41], 0, 1000), Outcome::Return(42));

        let spin = compile("routine s() { while (1 == 1) { opaque(0); } }", SsaStyle::Pruned);
        let spin = spin.unwrap();
        assert_eq!(run_outcome(&spin, &[], 0, 1000), Outcome::Diverge);
    }

    #[test]
    fn mix64_spreads_and_is_deterministic() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // Not the identity on small inputs.
        assert_ne!(mix64(0), 0);
    }
}
