//! Behavioural tests of the GVN algorithm on compiled source programs.

use pgvn_core::{run, GvnConfig, Mode, Variant};
use pgvn_ir::{Function, InstKind, Value};
use pgvn_lang::compile;
use pgvn_ssa::SsaStyle;

fn build(src: &str) -> Function {
    compile(src, SsaStyle::Minimal).expect("compiles")
}

/// The value returned by the (single) return reachable in `f`, if the
/// GVN proved it constant.
fn returned_constant(f: &Function, cfg: &GvnConfig) -> Option<i64> {
    let results = run(f, cfg);
    assert!(results.stats.converged, "analysis did not converge");
    let mut constants = Vec::new();
    for b in f.blocks() {
        let Some(t) = f.terminator(b) else { continue };
        if let InstKind::Return(v) = f.kind(t) {
            if results.is_block_reachable(b) {
                constants.push(results.constant_value(*v));
            }
        }
    }
    match &constants[..] {
        [only] => *only,
        _ => {
            // Multiple reachable returns: constant only if all agree.
            let first = constants.first().copied().flatten()?;
            constants.iter().all(|&c| c == Some(first)).then_some(first)
        }
    }
}

fn ret_const(src: &str, cfg: &GvnConfig) -> Option<i64> {
    returned_constant(&build(src), cfg)
}

// ---------------------------------------------------------------------
// Constant folding and algebraic simplification
// ---------------------------------------------------------------------

#[test]
fn folds_constants() {
    assert_eq!(ret_const("routine f() { return 2 + 3 * 4; }", &GvnConfig::full()), Some(14));
    assert_eq!(ret_const("routine f() { return (10 / 3) % 2; }", &GvnConfig::full()), Some(1));
    assert_eq!(ret_const("routine f() { return 1 << 5; }", &GvnConfig::full()), Some(32));
}

#[test]
fn simplifies_identities() {
    for (src, want) in [
        ("routine f(x) { return x * 0; }", 0),
        ("routine f(x) { return x - x; }", 0),
        ("routine f(x) { return x ^ x; }", 0),
        ("routine f(x) { return (x & 0) + (x % 1); }", 0),
    ] {
        assert_eq!(ret_const(src, &GvnConfig::full()), Some(want), "{src}");
    }
}

#[test]
fn awz_mode_does_not_fold() {
    let src = "routine f() { return 2 + 3; }";
    assert_eq!(ret_const(src, &GvnConfig::full()), Some(5));
    assert_eq!(ret_const(src, &GvnConfig::awz()), None, "AWZ performs no constant folding");
}

// ---------------------------------------------------------------------
// Global reassociation
// ---------------------------------------------------------------------

#[test]
fn reassociation_exposes_congruences() {
    // (a + b) - (b + a) == 0 needs commutativity.
    assert_eq!(
        ret_const("routine f(a, b) { return (a + b) - (b + a); }", &GvnConfig::full()),
        Some(0)
    );
    // ((a + 1) + b) - ((b + 1) + a) == 0 needs associativity.
    assert_eq!(
        ret_const("routine f(a, b) { return ((a + 1) + b) - ((b + 1) + a); }", &GvnConfig::full()),
        Some(0)
    );
    // (a + b) * c - a*c - b*c == 0 needs distribution.
    assert_eq!(
        ret_const("routine f(a, b, c) { return (a + b) * c - a * c - b * c; }", &GvnConfig::full()),
        Some(0)
    );
    // Click emulation cannot do any of these.
    assert_eq!(
        ret_const("routine f(a, b) { return (a + b) - (b + a); }", &GvnConfig::click()),
        None
    );
}

#[test]
fn shift_by_constant_reassociates() {
    assert_eq!(
        ret_const("routine f(x) { return (x << 1) - (x + x); }", &GvnConfig::full()),
        Some(0)
    );
}

#[test]
fn bitwise_not_linearizes() {
    // ~x == -x - 1, so ~x + x + 1 == 0.
    assert_eq!(ret_const("routine f(x) { return ~x + x + 1; }", &GvnConfig::full()), Some(0));
}

#[test]
fn forward_propagation_limit_caps_growth() {
    // A long chain still terminates and stays sound with a tiny limit.
    let src = "routine f(a, b, c, d) {
        s = a + b + c + d + a + b + c + d + a + b + c + d;
        t = d + c + b + a + d + c + b + a + d + c + b + a;
        return s - t;
    }";
    let full = GvnConfig::full();
    assert_eq!(ret_const(src, &full), Some(0));
    let mut tiny = GvnConfig::full();
    tiny.forward_propagation_limit = 2;
    // With propagation cancelled the congruence may be missed, but the
    // analysis must still converge and not crash.
    let f = build(src);
    let r = run(&f, &tiny);
    assert!(r.stats.converged);
}

// ---------------------------------------------------------------------
// Unreachable code elimination
// ---------------------------------------------------------------------

#[test]
fn detects_unreachable_branch() {
    let src = "routine f(x) {
        if (1 > 2) { return 111; }
        return 7;
    }";
    assert_eq!(ret_const(src, &GvnConfig::full()), Some(7));
    let f = build(src);
    let r = run(&f, &GvnConfig::full());
    // Some block must be unreachable.
    assert!(f.blocks().any(|b| !r.is_block_reachable(b)));
    // AWZ (no UCE) finds no unreachable block.
    let r_awz = run(&f, &GvnConfig::awz());
    assert!(f.blocks().all(|b| r_awz.is_block_reachable(b)));
}

#[test]
fn unreachable_definitions_are_ignored_through_phis() {
    let src = "routine f(x) {
        t = 4;
        if (0) { t = 9; }
        return t;
    }";
    assert_eq!(ret_const(src, &GvnConfig::full()), Some(4));
    assert_eq!(ret_const(src, &GvnConfig::sccp()), Some(4), "SCCP also gets this");
}

#[test]
fn sccp_finds_constants_but_not_congruences() {
    let f = build("routine f(a, b) { x = a + b; y = a + b; return x - y; }");
    assert_eq!(returned_constant(&f, &GvnConfig::full()), Some(0));
    assert_eq!(returned_constant(&f, &GvnConfig::sccp()), None, "SCCP tracks only constants");
    // But SCCP still folds pure constants.
    assert_eq!(ret_const("routine f() { return 3 * 3; }", &GvnConfig::sccp()), Some(9));
}

// ---------------------------------------------------------------------
// Optimistic vs balanced vs pessimistic (§1.2, §2.6)
// ---------------------------------------------------------------------

/// A loop-invariant cyclic value: i stays 0 through the loop.
const CYCLIC_INVARIANT: &str = "routine f(n) {
    i = 0;
    j = 0;
    while (j < n) {
        i = i * 2;
        j = j + 1;
    }
    return i;
}";

#[test]
fn optimistic_detects_loop_invariant_cyclic_value() {
    assert_eq!(ret_const(CYCLIC_INVARIANT, &GvnConfig::full()), Some(0));
}

#[test]
fn balanced_misses_cyclic_but_keeps_unreachable_code() {
    let cfg = GvnConfig::full().mode(Mode::Balanced);
    assert_eq!(ret_const(CYCLIC_INVARIANT, &cfg), None, "balanced treats cyclic φs as unique");
    // ... but it still removes unreachable code:
    let src = "routine f(x) { if (2 < 1) { return 9; } return 3; }";
    assert_eq!(ret_const(src, &cfg), Some(3));
    let f = build(src);
    let r = run(&f, &cfg);
    assert!(f.blocks().any(|b| !r.is_block_reachable(b)));
    assert_eq!(r.stats.passes, 1, "balanced terminates after one pass");
}

#[test]
fn pessimistic_is_single_pass_everything_reachable() {
    let f = build(CYCLIC_INVARIANT);
    let r = run(&f, &GvnConfig::full().mode(Mode::Pessimistic));
    assert_eq!(r.stats.passes, 1);
    assert!(f.blocks().all(|b| r.is_block_reachable(b)));
    // Still folds straight-line constants.
    assert_eq!(
        ret_const("routine f() { return 4 + 4; }", &GvnConfig::full().mode(Mode::Pessimistic)),
        Some(8)
    );
}

#[test]
fn cyclic_congruences_found_optimistically() {
    // Two identical counters are congruent only under optimism.
    let src = "routine f(n) {
        i = 0; j = 0; k = 0;
        while (k < n) {
            i = i + 1;
            j = j + 1;
            k = k + 1;
        }
        return i - j;
    }";
    assert_eq!(ret_const(src, &GvnConfig::full()), Some(0));
    assert_eq!(ret_const(src, &GvnConfig::full().mode(Mode::Balanced)), None);
}

// ---------------------------------------------------------------------
// Predicate and value inference (§2.7)
// ---------------------------------------------------------------------

#[test]
fn value_inference_from_equality_with_constant() {
    let src = "routine f(k) {
        if (k == 0) { return k + 5; }
        return 5;
    }";
    assert_eq!(ret_const(src, &GvnConfig::full()), Some(5));
    let mut no_vi = GvnConfig::full();
    no_vi.value_inference = false;
    assert_eq!(ret_const(src, &no_vi), None);
}

#[test]
fn value_inference_chain_figure6() {
    // Figure 6: inside K==J and J==I, X = K + 1 ≅ I + 1.
    let f = build(pgvn_lang::fixtures::FIGURE6);
    let r = run(&f, &GvnConfig::full());
    assert!(r.stats.converged);
    // Find the value computing K + 1 and a manually-built I + 1 witness:
    // instead, check via a twin routine where we return (K+1) - (I+1).
    let twin = build(
        "routine fig6t(I, J, K) {
            if (K == J) {
                if (J == I) {
                    return (K + 1) - (I + 1);
                }
            }
            return 0;
        }",
    );
    assert_eq!(returned_constant(&twin, &GvnConfig::full()), Some(0));
}

#[test]
fn predicate_inference_decides_dominated_comparisons() {
    let src = "routine f(z) {
        if (z > 1) {
            return z < 1;
        }
        return 0;
    }";
    assert_eq!(ret_const(src, &GvnConfig::full()), Some(0));
    let mut no_pi = GvnConfig::full();
    no_pi.predicate_inference = false;
    assert_eq!(ret_const(src, &no_pi), None);
}

#[test]
fn predicate_inference_same_operands() {
    let src = "routine f(a, b) {
        if (a < b) {
            return a >= b;
        }
        return 0;
    }";
    assert_eq!(ret_const(src, &GvnConfig::full()), Some(0));
}

#[test]
fn briggs_figure13_unified_inference() {
    // I and J both become 0 inside the branch; I + J == 0.
    let src = "routine fig13(K) {
        L = K + 0;
        if (K == 0) {
            I = K;
            J = L;
            return I + J;
        }
        return 0;
    }";
    assert_eq!(ret_const(src, &GvnConfig::full()), Some(0));
}

#[test]
fn inference_does_not_cross_back_edges_in_practical() {
    // The guard is outside the loop; the use inside the loop is reached
    // through a back edge on some iterations. The practical algorithm
    // must still handle the first-iteration path soundly.
    let src = "routine f(k, n) {
        s = 0;
        if (k == 0) {
            i = 0;
            while (i < n) {
                s = s + k;
                i = i + 1;
            }
        }
        return s;
    }";
    // s stays 0 since k == 0 in the loop; optimistic + inference finds it.
    assert_eq!(ret_const(src, &GvnConfig::full()), Some(0));
}

// ---------------------------------------------------------------------
// φ-predication (§2.8)
// ---------------------------------------------------------------------

#[test]
fn phi_predication_unifies_structurally_identical_diamonds() {
    let src = "routine f(c, x, y) {
        if (c < 10) { a = x; } else { a = y; }
        if (c < 10) { b = x; } else { b = y; }
        return a - b;
    }";
    assert_eq!(ret_const(src, &GvnConfig::full()), Some(0));
    let mut no_pp = GvnConfig::full();
    no_pp.phi_predication = false;
    assert_eq!(ret_const(src, &no_pp), None, "without φ-predication the φs stay apart");
}

#[test]
fn phi_predication_requires_congruent_predicates() {
    let src = "routine f(c, d, x, y) {
        if (c < 10) { a = x; } else { a = y; }
        if (d < 10) { b = x; } else { b = y; }
        return a - b;
    }";
    assert_eq!(ret_const(src, &GvnConfig::full()), None, "different predicates: not congruent");
}

#[test]
fn phi_predication_swapped_branch_sides() {
    // Same condition written in flipped form; canonicalization of the
    // comparison plus canonical edge ordering must still unify.
    let src = "routine f(c, x, y) {
        if (c < 10) { a = x; } else { a = y; }
        if (10 <= c) { b = y; } else { b = x; }
        return a - b;
    }";
    assert_eq!(ret_const(src, &GvnConfig::full()), Some(0));
}

#[test]
fn figure14a_is_out_of_scope_for_the_base_algorithm() {
    // The paper (§6) notes that K3 ≅ L3 needs a φ-distribution extension
    // it does not perform; the base algorithm must miss it but converge.
    let f = build(pgvn_lang::fixtures::FIGURE14A);
    let r = run(&f, &GvnConfig::full());
    assert!(r.stats.converged);
    assert_eq!(returned_constant(&f, &GvnConfig::full()), None);
}

// ---------------------------------------------------------------------
// The headline example (Figure 1 / Figure 2 / §2.10)
// ---------------------------------------------------------------------

#[test]
fn figure1_returns_constant_one_with_full_algorithm() {
    assert_eq!(ret_const(pgvn_lang::fixtures::FIGURE1, &GvnConfig::full()), Some(1));
}

#[test]
fn figure1_needs_every_analysis() {
    let f = build(pgvn_lang::fixtures::FIGURE1);
    let mut cases: Vec<(&str, GvnConfig)> = Vec::new();
    let mut c = GvnConfig::full();
    c.value_inference = false;
    cases.push(("value inference", c));
    let mut c = GvnConfig::full();
    c.predicate_inference = false;
    cases.push(("predicate inference", c));
    let mut c = GvnConfig::full();
    c.phi_predication = false;
    cases.push(("φ-predication", c));
    let mut c = GvnConfig::full();
    c.global_reassociation = false;
    cases.push(("global reassociation", c));
    let mut c = GvnConfig::full();
    c.unreachable_code_elim = false;
    cases.push(("unreachable code elimination", c));
    cases.push(("optimism (balanced)", GvnConfig::full().mode(Mode::Balanced)));
    cases.push(("click emulation", GvnConfig::click()));
    cases.push(("sccp emulation", GvnConfig::sccp()));
    cases.push(("awz emulation", GvnConfig::awz()));
    for (name, cfg) in cases {
        assert_eq!(
            returned_constant(&f, &cfg),
            None,
            "disabling {name} should break the Figure 1 inference chain"
        );
    }
}

#[test]
fn figure1_works_with_complete_variant_too() {
    let cfg = GvnConfig::full().variant(Variant::Complete);
    assert_eq!(ret_const(pgvn_lang::fixtures::FIGURE1, &cfg), Some(1));
}

#[test]
fn figure1_works_dense() {
    let cfg = GvnConfig::full().sparse(false);
    assert_eq!(ret_const(pgvn_lang::fixtures::FIGURE1, &cfg), Some(1));
}

// ---------------------------------------------------------------------
// Congruence quality across modes and variants
// ---------------------------------------------------------------------

fn all_return_values(f: &Function) -> Vec<Value> {
    f.blocks()
        .filter_map(|b| f.terminator(b))
        .filter_map(|t| match f.kind(t) {
            InstKind::Return(v) => Some(*v),
            _ => None,
        })
        .collect()
}

#[test]
fn redundant_expressions_share_a_class() {
    let f = build("routine f(a, b) { x = a * b + 3; y = a * b + 3; return x - y; }");
    let r = run(&f, &GvnConfig::full());
    // The two computations are congruent; the return is 0.
    assert_eq!(returned_constant(&f, &GvnConfig::full()), Some(0));
    let _ = all_return_values(&f);
    assert!(r.num_congruence_classes() > 0);
}

#[test]
fn strength_ordering_of_modes() {
    // optimistic >= balanced >= pessimistic in constants found.
    for src in [
        CYCLIC_INVARIANT,
        pgvn_lang::fixtures::FIGURE1,
        "routine f(a) { if (a > 0) { return a - a; } return 0; }",
    ] {
        let f = build(src);
        let opt = run(&f, &GvnConfig::full()).strength();
        let bal = run(&f, &GvnConfig::full().mode(Mode::Balanced)).strength();
        let pes = run(&f, &GvnConfig::full().mode(Mode::Pessimistic)).strength();
        assert!(opt.constant_values >= bal.constant_values, "{src}");
        assert!(bal.constant_values >= pes.constant_values, "{src}");
        assert!(opt.unreachable_values >= bal.unreachable_values, "{src}");
        assert!(bal.unreachable_values >= pes.unreachable_values, "{src}");
    }
}

#[test]
fn sparse_and_dense_agree() {
    for src in [
        pgvn_lang::fixtures::FIGURE1,
        pgvn_lang::fixtures::FIGURE6,
        CYCLIC_INVARIANT,
        "routine f(a, b) { return (a + b) - (b + a); }",
    ] {
        let f = build(src);
        let sparse = run(&f, &GvnConfig::full());
        let dense = run(&f, &GvnConfig::full().sparse(false));
        assert_eq!(sparse.strength(), dense.strength(), "{src}");
        for v in f.values() {
            assert_eq!(
                sparse.constant_value(v),
                dense.constant_value(v),
                "{src}: {v} differs between sparse and dense"
            );
        }
    }
}

#[test]
fn practical_and_complete_agree_on_paper_programs() {
    for src in
        [pgvn_lang::fixtures::FIGURE1, pgvn_lang::fixtures::FIGURE6, pgvn_lang::fixtures::FIGURE13]
    {
        let f = build(src);
        let p = run(&f, &GvnConfig::full());
        let c = run(&f, &GvnConfig::full().variant(Variant::Complete));
        // Complete is at least as strong as practical.
        assert!(c.strength().constant_values >= p.strength().constant_values, "{src}");
        assert!(c.strength().unreachable_values >= p.strength().unreachable_values, "{src}");
    }
}

#[test]
fn figure9_ladder_converges_and_infers() {
    // The value-inference worst case: J = I_n + 1 where a ladder of
    // guards makes I_n ≅ I_1. Check the chain is actually followed.
    let src_ladder = pgvn_lang::fixtures::figure9(6);
    let twin = "routine fig9t(I1, I2, I3, I4, I5, I6) {
            if (I1 == I2) { if (I2 == I3) { if (I3 == I4) {
            if (I4 == I5) { if (I5 == I6) {
                return (I6 + 1) - (I1 + 1);
            } } } } }
            return 0;
        }";
    let f = build(&src_ladder);
    let r = run(&f, &GvnConfig::full());
    assert!(r.stats.converged);
    assert!(r.stats.value_inference_visits > 0);
    assert_eq!(ret_const(twin, &GvnConfig::full()), Some(0));
}

#[test]
fn stats_are_populated() {
    let f = build(pgvn_lang::fixtures::FIGURE1);
    let r = run(&f, &GvnConfig::full());
    assert!(r.stats.passes >= 2, "figure 1 needs optimistic iteration");
    assert!(r.stats.insts_processed > 0);
    assert!(r.stats.num_insts > 0);
    assert!(r.stats.value_inference_visits > 0);
    assert!(r.stats.predicate_inference_visits > 0);
    assert!(r.stats.phi_predication_visits > 0);
    assert!(r.stats.value_inference_per_inst() >= 0.0);
}

// ---------------------------------------------------------------------
// The §6 φ-distribution extension (GvnConfig::extended)
// ---------------------------------------------------------------------

#[test]
fn extension_captures_figure14a() {
    // K3 = φ(I1+1, I2+1) vs L3 = φ(I1,I2) + 1.
    let f = build(pgvn_lang::fixtures::FIGURE14A);
    assert_eq!(returned_constant(&f, &GvnConfig::full()), None, "base algorithm misses it");
    assert_eq!(returned_constant(&f, &GvnConfig::extended()), Some(0), "extension captures it");
}

#[test]
fn extension_captures_figure14b() {
    // K3 = φ(1,2) + φ(2,1) vs L3 = 3 — the paper predicts the
    // distribution extension captures case (b) as well (§6).
    let f = build(pgvn_lang::fixtures::FIGURE14B);
    assert_eq!(returned_constant(&f, &GvnConfig::full()), None);
    assert_eq!(returned_constant(&f, &GvnConfig::extended()), Some(0));
}

#[test]
fn extension_distributes_comparisons() {
    let src = "routine f(c, x) {
        if (c) { a = 1; } else { a = 2; }
        return a < 5;
    }";
    let f = build(src);
    assert_eq!(returned_constant(&f, &GvnConfig::extended()), Some(1));
}

#[test]
fn extension_still_proves_figure1() {
    assert_eq!(ret_const(pgvn_lang::fixtures::FIGURE1, &GvnConfig::extended()), Some(1));
}

#[test]
fn extension_is_at_least_as_strong() {
    for src in [
        pgvn_lang::fixtures::FIGURE1,
        pgvn_lang::fixtures::FIGURE6,
        pgvn_lang::fixtures::FIGURE13,
        pgvn_lang::fixtures::FIGURE14A,
        CYCLIC_INVARIANT,
    ] {
        let f = build(src);
        let base = run(&f, &GvnConfig::full()).strength();
        let ext = run(&f, &GvnConfig::extended()).strength();
        assert!(ext.constant_values >= base.constant_values, "{src}");
        assert!(ext.unreachable_values >= base.unreachable_values, "{src}");
    }
}

// ---------------------------------------------------------------------
// The §7 joint-domination extension (part of GvnConfig::extended)
// ---------------------------------------------------------------------

/// Both paths into the final block establish x == 0 on their own edges.
const JOINT_DOM: &str = "routine f(x, c) {
    if (c < 5) {
        if (x != 0) { return 9; }
    } else {
        if (x != 0) { return 8; }
    }
    return x + 1;
}";

#[test]
fn joint_domination_infers_across_confluences() {
    let f = build(JOINT_DOM);
    // The base practical algorithm climbs past the join and loses the
    // x == 0 knowledge carried by *both* incoming edges…
    let base = run(&f, &GvnConfig::full());
    assert!(base.stats.converged);
    // …the extension combines them: the joined return is the constant 1.
    let ext = run(&f, &GvnConfig::extended());
    assert!(ext.stats.converged);
    let ret_consts: Vec<Option<i64>> = f
        .blocks()
        .filter(|&b| ext.is_block_reachable(b))
        .filter_map(|b| f.terminator(b))
        .filter_map(|t| match f.kind(t) {
            InstKind::Return(v) => Some(*v),
            _ => None,
        })
        .map(|v| ext.constant_value(v))
        .collect();
    assert!(ret_consts.contains(&Some(1)), "{ret_consts:?}");
    // And the base algorithm indeed misses it (documented gap the §7
    // extension closes).
    let base_consts: Vec<Option<i64>> = f
        .blocks()
        .filter_map(|b| f.terminator(b))
        .filter_map(|t| match f.kind(t) {
            InstKind::Return(v) => Some(*v),
            _ => None,
        })
        .map(|v| base.constant_value(v))
        .collect();
    assert!(!base_consts.contains(&Some(1)), "{base_consts:?}");
}

#[test]
fn joint_domination_predicate_queries() {
    // Both edges into the join carry x > 3 knowledge in different forms.
    let src = "routine f(x, c) {
        if (c < 5) {
            if (x <= 3) { return 0; }
        } else {
            if (x <= 3) { return 0; }
        }
        return x > 1;
    }";
    let f = build(src);
    let ext = run(&f, &GvnConfig::extended());
    let folded = f
        .blocks()
        .filter(|&b| ext.is_block_reachable(b))
        .filter_map(|b| f.terminator(b))
        .filter_map(|t| match f.kind(t) {
            InstKind::Return(v) => Some(ext.constant_value(*v)),
            _ => None,
        })
        .any(|c| c == Some(1));
    assert!(folded, "x > 1 should fold to 1 at the joint-dominated block");
}

#[test]
fn joint_domination_requires_agreement() {
    // The two paths imply different facts about x; nothing may fold.
    let src = "routine f(x, c) {
        if (c < 5) {
            if (x != 0) { return 9; }
        } else {
            if (x != 1) { return 8; }
        }
        return x + 1;
    }";
    let f = build(src);
    let ext = run(&f, &GvnConfig::extended());
    assert!(ext.stats.converged);
    let any_one = f
        .blocks()
        .filter_map(|b| f.terminator(b))
        .filter_map(|t| match f.kind(t) {
            InstKind::Return(v) => Some(ext.constant_value(*v)),
            _ => None,
        })
        .any(|c| c == Some(1) || c == Some(2));
    assert!(!any_one, "disagreeing predicates must not fold the join");
}

// ---------------------------------------------------------------------
// §3: value inference restricted to congruences with constants
// ---------------------------------------------------------------------

#[test]
fn constants_only_value_inference_keeps_constant_replacements() {
    let src = "routine f(x) {
        if (x == 3) { return x - 3; }
        return 0;
    }";
    let mut cfg = GvnConfig::full();
    cfg.value_inference_constants_only = true;
    assert_eq!(ret_const(src, &cfg), Some(0), "constant replacement still applies");
}

#[test]
fn constants_only_value_inference_skips_variable_replacements() {
    // y → x replacement is variable-to-variable: skipped in this mode,
    // so y - x is not proven 0 … but the predicate x == y itself still
    // decides `y == x` queries (predicate inference is unaffected).
    let src = "routine f(x) {
        y = opaque(1);
        if (y == x) { return y - x; }
        return 0;
    }";
    let mut cfg = GvnConfig::full();
    cfg.value_inference_constants_only = true;
    assert_eq!(ret_const(src, &cfg), None);
    assert_eq!(ret_const(src, &GvnConfig::full()), Some(0), "unrestricted mode folds it");
}

// ---------------------------------------------------------------------
// Results API surface
// ---------------------------------------------------------------------

#[test]
fn results_expose_congruence_queries() {
    let f = build("routine f(a, b) { x = a * b; y = b * a; z = a + 1; return x + y + z; }");
    let r = run(&f, &GvnConfig::full());
    let muls: Vec<Value> = f
        .values()
        .filter(|&v| matches!(f.kind(f.def(v)), InstKind::Binary(pgvn_ir::BinOp::Mul, _, _)))
        .collect();
    let [x, y] = muls[..] else { panic!("expected two multiplies") };
    // The two multiplies are congruent (reassociation commutes them).
    assert!(r.congruent(x, y), "\n{}", pgvn_core::annotated(&f, &r));
    assert_eq!(r.class_of(x), r.class_of(y));
    assert!(r.leader_value(y).is_some());
    let s = r.strength();
    assert!(s.congruence_classes >= 1);
    assert_eq!(s.unreachable_values, 0);
}

// ---------------------------------------------------------------------
// §2.10 walkthrough facts on Figure 1
// ---------------------------------------------------------------------

#[test]
fn figure1_walkthrough_intermediate_facts() {
    let f = build(pgvn_lang::fixtures::FIGURE1);
    let r = run(&f, &GvnConfig::full());
    assert!(r.stats.converged);

    // "Unreachable code elimination ignores the definition of I4" and
    // "the definition of P8": both guarded assignments (`I = 2` and
    // `P = 2` behind `I ≠ 1`) are dead, so at least two blocks are
    // proven unreachable.
    let unreachable: Vec<_> = f.blocks().filter(|&b| !r.is_block_reachable(b)).collect();
    assert!(unreachable.len() >= 2, "expected both `≠ 1` arms dead, got {unreachable:?}");

    // "φ-predication enables congruence finding to determine that Q14 is
    // congruent to P11": φs in *different* blocks share congruence
    // classes. (Our lowering builds the 3-way merges of the paper's
    // figure as chains of 2-argument φs, so the congruent φs here are
    // those chains' links.)
    let phis: Vec<(Value, pgvn_ir::Block)> = f
        .values()
        .filter(|&v| {
            f.kind(f.def(v)).is_phi() && !r.is_value_unreachable(v) && r.constant_value(v).is_none()
        })
        .map(|v| (v, f.def_block(v)))
        .collect();
    let cross_block_congruent = phis
        .iter()
        .any(|&(a, ba)| phis.iter().any(|&(b, bb)| a != b && ba != bb && r.congruent(a, b)));
    assert!(
        cross_block_congruent,
        "P and Q φs should share a class via φ-predication:\n{}",
        pgvn_core::annotated(&f, &r)
    );

    // "The algorithm … performs 3 passes over the routine" — ours takes
    // the same number.
    assert_eq!(r.stats.passes, 3, "§2.10 reports exactly 3 passes");

    // The loop-carried I φ is congruent to the constant 1.
    let one_phi = f.values().any(|v| f.kind(f.def(v)).is_phi() && r.constant_value(v) == Some(1));
    assert!(one_phi, "I2 = φ(1, I17) must be the constant 1");
}
