//! Differential validation of the §2.9 emulation claim: with symbolic
//! evaluation restricted to constants, "our algorithm will emulate Wegman
//! and Zadeck's sparse conditional constant propagation algorithm".
//!
//! This file contains an *independent*, textbook implementation of SCCP —
//! the classic three-level lattice (⊤ / constant / ⊥) with SSA and CFG
//! worklists — sharing no code with the GVN driver beyond the IR.
//!
//! The paper's emulation is built on top of Click's configuration, which
//! keeps algebraic simplification — so it can fold `x − x → 0` where a
//! textbook SCCP sees ⊥ − ⊥ = ⊥. The differential property is therefore
//! *dominance*: the emulation finds every constant the reference finds
//! (with the same value), never resurrects reference-unreachable code,
//! and any extra strength flows only in the stronger direction.

use pgvn_core::{run, GvnConfig};
use pgvn_ir::{Edge, EntityRef, Function, InstKind, Value};
use pgvn_workload::{generate_function, GenConfig};
use std::collections::VecDeque;

/// The SCCP lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Lattice {
    Top,
    Const(i64),
    Bottom,
}

impl Lattice {
    fn meet(self, other: Lattice) -> Lattice {
        match (self, other) {
            (Lattice::Top, x) | (x, Lattice::Top) => x,
            (Lattice::Const(a), Lattice::Const(b)) if a == b => Lattice::Const(a),
            _ => Lattice::Bottom,
        }
    }
}

/// Classic Wegman–Zadeck SCCP over the pgvn IR.
struct Sccp<'f> {
    func: &'f Function,
    value: Vec<Lattice>,
    edge_executable: Vec<bool>,
    block_executable: Vec<bool>,
    flow_work: VecDeque<Edge>,
    ssa_work: VecDeque<pgvn_ir::Inst>,
    uses: pgvn_ir::DefUse,
}

impl<'f> Sccp<'f> {
    fn new(func: &'f Function) -> Self {
        Sccp {
            func,
            value: vec![Lattice::Top; func.value_capacity()],
            edge_executable: vec![false; func.edge_capacity()],
            block_executable: vec![false; func.block_capacity()],
            flow_work: VecDeque::new(),
            ssa_work: VecDeque::new(),
            uses: pgvn_ir::DefUse::compute(func),
        }
    }

    fn lat(&self, v: Value) -> Lattice {
        self.value[v.index()]
    }

    fn set(&mut self, v: Value, l: Lattice) {
        let cur = self.lat(v);
        let new = cur.meet(l);
        if new != cur {
            self.value[v.index()] = new;
            for &u in self.uses.uses(v) {
                self.ssa_work.push_back(u);
            }
        }
    }

    fn mark_edge(&mut self, e: Edge) {
        if !self.edge_executable[e.index()] {
            self.edge_executable[e.index()] = true;
            self.flow_work.push_back(e);
        }
    }

    fn visit_inst(&mut self, inst: pgvn_ir::Inst) {
        let b = self.func.inst_block(inst);
        if !self.block_executable[b.index()] {
            return;
        }
        let get = |s: &Self, v: Value| s.lat(v);
        match self.func.kind(inst).clone() {
            InstKind::Const(c) => self.set(self.func.inst_result(inst).unwrap(), Lattice::Const(c)),
            InstKind::Param(_) | InstKind::Opaque(_) => {
                self.set(self.func.inst_result(inst).unwrap(), Lattice::Bottom)
            }
            InstKind::Copy(a) => self.set(self.func.inst_result(inst).unwrap(), get(self, a)),
            InstKind::Unary(op, a) => {
                let l = match get(self, a) {
                    Lattice::Top => Lattice::Top,
                    Lattice::Const(x) => Lattice::Const(op.eval(x)),
                    Lattice::Bottom => Lattice::Bottom,
                };
                self.set(self.func.inst_result(inst).unwrap(), l);
            }
            InstKind::Binary(op, a, b2) => {
                let l = match (get(self, a), get(self, b2)) {
                    (Lattice::Const(x), Lattice::Const(y)) => Lattice::Const(op.eval(x, y)),
                    (Lattice::Top, _) | (_, Lattice::Top) => Lattice::Top,
                    _ => Lattice::Bottom,
                };
                self.set(self.func.inst_result(inst).unwrap(), l);
            }
            InstKind::Cmp(op, a, b2) => {
                let l = match (get(self, a), get(self, b2)) {
                    (Lattice::Const(x), Lattice::Const(y)) => Lattice::Const(op.eval(x, y)),
                    (Lattice::Top, _) | (_, Lattice::Top) => Lattice::Top,
                    _ => Lattice::Bottom,
                };
                self.set(self.func.inst_result(inst).unwrap(), l);
            }
            InstKind::Phi(args) => {
                let mut acc = Lattice::Top;
                for (i, &e) in self.func.preds(b).iter().enumerate() {
                    if self.edge_executable[e.index()] {
                        acc = acc.meet(self.lat(args[i]));
                    }
                }
                self.set(self.func.inst_result(inst).unwrap(), acc);
            }
            InstKind::Jump => self.mark_edge(self.func.succs(b)[0]),
            InstKind::Branch(c) => match get(self, c) {
                Lattice::Top => {}
                Lattice::Const(k) => {
                    self.mark_edge(self.func.succs(b)[usize::from(k == 0)]);
                }
                Lattice::Bottom => {
                    self.mark_edge(self.func.succs(b)[0]);
                    self.mark_edge(self.func.succs(b)[1]);
                }
            },
            InstKind::Switch(a, cases) => match get(self, a) {
                Lattice::Top => {}
                Lattice::Const(k) => {
                    let idx = cases.iter().position(|&c| c == k).unwrap_or(cases.len());
                    self.mark_edge(self.func.succs(b)[idx]);
                }
                Lattice::Bottom => {
                    for &e in self.func.succs(b) {
                        self.mark_edge(e);
                    }
                }
            },
            InstKind::Return(_) => {}
        }
    }

    fn solve(mut self) -> (Vec<bool>, Vec<bool>, Vec<Lattice>) {
        // Entry block is executable; visit its instructions.
        let entry = self.func.entry();
        self.block_executable[entry.index()] = true;
        for &i in self.func.block_insts(entry) {
            self.ssa_work.push_back(i);
        }
        loop {
            if let Some(e) = self.flow_work.pop_front() {
                let d = self.func.edge_to(e);
                if !self.block_executable[d.index()] {
                    self.block_executable[d.index()] = true;
                    for &i in self.func.block_insts(d) {
                        self.ssa_work.push_back(i);
                    }
                } else {
                    // Re-evaluate the φs: a new incoming edge arrived.
                    for &i in self.func.block_insts(d) {
                        if self.func.kind(i).is_phi() {
                            self.ssa_work.push_back(i);
                        }
                    }
                }
                continue;
            }
            if let Some(i) = self.ssa_work.pop_front() {
                self.visit_inst(i);
                continue;
            }
            break;
        }
        (self.block_executable, self.edge_executable, self.value)
    }
}

fn check(f: &Function, seed: u64) {
    let (ref_blocks, ref_edges, ref_values) = Sccp::new(f).solve();
    let gvn = run(f, &GvnConfig::sccp());
    assert!(gvn.stats.converged);
    // Reachability: the emulation proves at least as much unreachable.
    for b in f.blocks() {
        if gvn.is_block_reachable(b) {
            assert!(
                ref_blocks[b.index()],
                "seed {seed}: emulation reaches {b}, reference does not\n{f}"
            );
        }
    }
    for e in f.edges() {
        if gvn.is_edge_reachable(e) {
            assert!(
                ref_edges[e.index()],
                "seed {seed}: emulation reaches {e}, reference does not\n{f}"
            );
        }
    }
    for v in f.values() {
        let reference = match ref_values[v.index()] {
            Lattice::Const(c) => Some(c),
            _ => None,
        };
        let emulated = gvn.constant_value(v);
        match (reference, emulated) {
            // Every reference constant must be found, with the same value
            // (unless the emulation proved the whole value unreachable).
            (Some(c), Some(d)) => assert_eq!(c, d, "seed {seed}: {v} constant value differs\n{f}"),
            (Some(_), None) => assert!(
                gvn.is_value_unreachable(v),
                "seed {seed}: emulation missed reference constant for {v}\n{f}"
            ),
            // Extra emulation constants are allowed only on top of the
            // algebraic simplifications Click's base keeps; they must at
            // least concern values the reference saw as ⊥/⊤, which is
            // what this arm encodes.
            (None, _) => {}
        }
    }
}

#[test]
fn sccp_emulation_matches_reference_on_fixtures() {
    for src in [
        pgvn_lang::fixtures::FIGURE1,
        pgvn_lang::fixtures::FIGURE6,
        pgvn_lang::fixtures::FIGURE13,
        pgvn_lang::fixtures::FIGURE14A,
        pgvn_lang::fixtures::FIGURE14B,
        pgvn_lang::fixtures::SIMPLE_INFERENCE,
    ] {
        let f = pgvn_lang::compile(src, pgvn_ssa::SsaStyle::Minimal).unwrap();
        check(&f, u64::MAX);
    }
}

#[test]
fn sccp_emulation_matches_reference_on_generated_routines() {
    for seed in 0..150 {
        let cfg = GenConfig { seed, target_stmts: 30, ..Default::default() };
        let f = generate_function(&format!("sccp{seed}"), &cfg, pgvn_ssa::SsaStyle::Minimal);
        check(&f, seed);
    }
}

#[test]
fn sccp_emulation_matches_reference_on_switch_heavy_code() {
    let src = "routine f(x) {
        k = 3;
        switch (k) {
            case 1: { r = x; }
            case 3: { r = 7; }
            default: { r = x * 2; }
        }
        switch (x) {
            case 5: { s = r + 1; }
            default: { s = r; }
        }
        return s;
    }";
    let f = pgvn_lang::compile(src, pgvn_ssa::SsaStyle::Minimal).unwrap();
    check(&f, u64::MAX - 1);
}
