//! Switch-instruction support: the §3 extension "φ-predication can be
//! extended to handle switch instructions, even when their default case
//! does not have an explicit predicate", plus the interactions of
//! multi-way branches with every other part of the algorithm.

use pgvn_core::{run, GvnConfig, Mode};
use pgvn_ir::{Function, HashedOpaques, InstKind, Interpreter};
use pgvn_lang::compile;
use pgvn_ssa::SsaStyle;

fn build(src: &str) -> Function {
    compile(src, SsaStyle::Minimal).expect("compiles")
}

fn ret_const(src: &str, cfg: &GvnConfig) -> Option<i64> {
    let f = build(src);
    let results = run(&f, cfg);
    assert!(results.stats.converged);
    let mut constants = Vec::new();
    for b in f.blocks() {
        let Some(t) = f.terminator(b) else { continue };
        if let InstKind::Return(v) = f.kind(t) {
            if results.is_block_reachable(b) {
                constants.push(results.constant_value(*v));
            }
        }
    }
    let first = constants.first().copied().flatten()?;
    constants.iter().all(|&c| c == Some(first)).then_some(first)
}

fn exec(src: &str, args: &[i64]) -> i64 {
    let f = build(src);
    Interpreter::new(&f).run(args, &mut HashedOpaques::new(0)).expect("terminates")
}

const DISPATCH: &str = "routine dispatch(x) {
    switch (x) {
        case 1: { r = 10; }
        case 2: { r = 20; }
        default: { r = 0; }
    }
    return r;
}";

#[test]
fn switch_executes_correctly() {
    assert_eq!(exec(DISPATCH, &[1]), 10);
    assert_eq!(exec(DISPATCH, &[2]), 20);
    assert_eq!(exec(DISPATCH, &[3]), 0);
    assert_eq!(exec(DISPATCH, &[-1]), 0);
}

#[test]
fn switch_on_constant_prunes_other_cases() {
    let src = "routine f() {
        k = 2;
        switch (k) {
            case 1: { return 111; }
            case 2: { return 222; }
            default: { return 333; }
        }
        return 0;
    }";
    assert_eq!(exec(src, &[]), 222);
    assert_eq!(ret_const(src, &GvnConfig::full()), Some(222));
    let f = build(src);
    let r = run(&f, &GvnConfig::full());
    assert!(f.blocks().any(|b| !r.is_block_reachable(b)), "case arms pruned");
}

#[test]
fn case_edges_enable_value_inference() {
    // In the `case 7` arm, x is known to be 7: x + 1 is the constant 8.
    let src = "routine f(x) {
        switch (x) {
            case 7: { return x + 1; }
            default: { return 8; }
        }
        return 0;
    }";
    assert_eq!(ret_const(src, &GvnConfig::full()), Some(8));
    let mut no_vi = GvnConfig::full();
    no_vi.value_inference = false;
    assert_eq!(ret_const(src, &no_vi), None);
}

#[test]
fn case_edges_enable_predicate_inference() {
    // In the `case 5` arm, x == 5 decides x > 3.
    let src = "routine f(x) {
        switch (x) {
            case 5: { return x > 3; }
            default: { return 1; }
        }
        return 0;
    }";
    assert_eq!(ret_const(src, &GvnConfig::full()), Some(1));
}

#[test]
fn default_edge_has_no_predicate_but_stays_sound() {
    // The default arm knows nothing about x (our predicate for it is ∅),
    // so x + 1 must NOT fold there.
    let src = "routine f(x) {
        switch (x) {
            case 1: { return 2; }
            default: { return x + 1; }
        }
        return 0;
    }";
    assert_eq!(ret_const(src, &GvnConfig::full()), None);
    assert_eq!(exec(src, &[1]), 2);
    assert_eq!(exec(src, &[41]), 42);
}

#[test]
fn phis_after_switch_join_work() {
    let src = "routine f(x, a, b) {
        switch (x) {
            case 0: { t = a; }
            case 1: { t = b; }
            default: { t = a + b; }
        }
        return t;
    }";
    assert_eq!(exec(src, &[0, 3, 9]), 3);
    assert_eq!(exec(src, &[1, 3, 9]), 9);
    assert_eq!(exec(src, &[5, 3, 9]), 12);
    let f = build(src);
    let r = run(&f, &GvnConfig::full());
    assert!(r.stats.converged);
}

#[test]
fn phi_predication_unifies_identical_switches() {
    // Two switches over the same scrutinee selecting the same values: the
    // joined results are congruent (σ-predication over case predicates).
    let src = "routine f(x, a, b) {
        switch (x) {
            case 1: { s = a; }
            default: { s = b; }
        }
        switch (x) {
            case 1: { t = a; }
            default: { t = b; }
        }
        return s - t;
    }";
    assert_eq!(ret_const(src, &GvnConfig::full()), Some(0));
    let mut no_pp = GvnConfig::full();
    no_pp.phi_predication = false;
    assert_eq!(ret_const(src, &no_pp), None, "needs φ-predication");
}

#[test]
fn switch_in_loop_with_modes() {
    let src = "routine f(n) {
        s = 0;
        i = 0;
        while (i < n) {
            switch (i % 3) {
                case 0: { s = s + 1; }
                case 1: { s = s + 10; }
                default: { s = s + 100; }
            }
            i = i + 1;
        }
        return s;
    }";
    assert_eq!(exec(src, &[6]), 222);
    for mode in [Mode::Optimistic, Mode::Balanced, Mode::Pessimistic] {
        let f = build(src);
        let r = run(&f, &GvnConfig::full().mode(mode));
        assert!(r.stats.converged, "{mode:?}");
    }
}

#[test]
fn nested_switches() {
    let src = "routine f(x, y) {
        switch (x) {
            case 0: {
                switch (y) {
                    case 0: { return 1; }
                    default: { return 2; }
                }
                return 0;
            }
            default: { return 3; }
        }
        return 0;
    }";
    assert_eq!(exec(src, &[0, 0]), 1);
    assert_eq!(exec(src, &[0, 9]), 2);
    assert_eq!(exec(src, &[4, 0]), 3);
    let f = build(src);
    assert!(run(&f, &GvnConfig::full()).stats.converged);
}

#[test]
fn switch_without_default_body_falls_through() {
    let src = "routine f(x) {
        r = 100;
        switch (x) {
            case 1: { r = 1; }
        }
        return r;
    }";
    assert_eq!(exec(src, &[1]), 1);
    assert_eq!(exec(src, &[2]), 100);
}

#[test]
fn negative_case_values_parse_and_run() {
    let src = "routine f(x) {
        switch (x) {
            case -3: { return 1; }
            case 0: { return 2; }
            default: { return 3; }
        }
        return 0;
    }";
    assert_eq!(exec(src, &[-3]), 1);
    assert_eq!(exec(src, &[0]), 2);
    assert_eq!(exec(src, &[5]), 3);
}

#[test]
fn duplicate_cases_rejected_by_parser() {
    let err = compile(
        "routine f(x) { switch (x) { case 1: { return 1; } case 1: { return 2; } } return 0; }",
        SsaStyle::Minimal,
    )
    .unwrap_err();
    assert!(err.to_string().contains("duplicate case"), "{err}");
}
