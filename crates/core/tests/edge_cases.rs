//! Degenerate and adversarial shapes: the analysis must converge and stay
//! sound on CFGs the generator never produces.

use pgvn_core::{run, GvnConfig, Mode, Variant};
use pgvn_ir::{Function, HashedOpaques, InstKind, Interpreter};
use pgvn_lang::compile;
use pgvn_ssa::SsaStyle;

fn all_configs() -> Vec<GvnConfig> {
    vec![
        GvnConfig::full(),
        GvnConfig::extended(),
        GvnConfig::full().mode(Mode::Balanced),
        GvnConfig::full().mode(Mode::Pessimistic),
        GvnConfig::full().variant(Variant::Complete),
        GvnConfig::full().sparse(false),
        GvnConfig::click(),
        GvnConfig::sccp(),
        GvnConfig::awz(),
    ]
}

#[test]
fn minimal_function() {
    let mut f = Function::new("k", 0);
    let v = f.iconst(f.entry(), 42);
    f.set_return(f.entry(), v);
    for cfg in all_configs() {
        let r = run(&f, &cfg);
        assert!(r.stats.converged, "{cfg:?}");
        assert_eq!(r.constant_value(v), Some(42), "{cfg:?}");
    }
}

#[test]
fn infinite_loop_without_exit() {
    // No block can reach a return: postdominators are empty, which must
    // disable φ-predication gracefully, and the analysis must converge.
    let src = "routine spin(n) {
        i = 0;
        while (true) { i = i + 1; }
        return i;
    }";
    let f = compile(src, SsaStyle::Minimal).unwrap();
    for cfg in all_configs() {
        let r = run(&f, &cfg);
        assert!(r.stats.converged, "{cfg:?}");
    }
}

#[test]
fn self_loop_block() {
    let mut f = Function::new("selfloop", 1);
    let entry = f.entry();
    let l = f.add_block();
    let exit = f.add_block();
    let zero = f.iconst(entry, 0);
    f.set_jump(entry, l);
    let i = f.append_phi(l);
    let one = f.iconst(l, 1);
    let i2 = f.binary(l, pgvn_ir::BinOp::Add, i, one);
    let c = f.cmp(l, pgvn_ir::CmpOp::Lt, i2, f.param(0));
    f.set_branch(l, c, l, exit);
    f.set_phi_args(i, vec![zero, i2]);
    f.set_return(exit, i2);
    pgvn_ir::assert_verifies(&f);
    for cfg in all_configs() {
        let r = run(&f, &cfg);
        assert!(r.stats.converged, "{cfg:?}");
    }
    let out = Interpreter::new(&f).run(&[3], &mut HashedOpaques::new(0)).unwrap();
    assert_eq!(out, 3);
}

#[test]
fn orphan_blocks_stay_initial() {
    let mut f = Function::new("orphan", 0);
    let v = f.iconst(f.entry(), 1);
    f.set_return(f.entry(), v);
    let dead = f.add_block();
    let dv = f.iconst(dead, 9);
    f.set_return(dead, dv);
    for cfg in all_configs() {
        let r = run(&f, &cfg);
        assert!(r.stats.converged);
        assert!(!r.is_block_reachable(dead), "{cfg:?}");
        assert!(r.is_value_unreachable(dv), "{cfg:?}");
    }
}

#[test]
fn switch_with_only_a_default_edge() {
    let mut f = Function::new("onlydefault", 1);
    let entry = f.entry();
    let d = f.add_block();
    f.set_switch(entry, f.param(0), &[], &[], d);
    let v = f.iconst(d, 5);
    f.set_return(d, v);
    pgvn_ir::assert_verifies(&f);
    for cfg in all_configs() {
        let r = run(&f, &cfg);
        assert!(r.stats.converged);
        assert_eq!(r.constant_value(v), Some(5));
    }
    assert_eq!(Interpreter::new(&f).run(&[77], &mut HashedOpaques::new(0)).unwrap(), 5);
}

#[test]
fn branch_with_both_edges_to_same_block() {
    let mut f = Function::new("same", 1);
    let entry = f.entry();
    let j = f.add_block();
    let zero = f.iconst(entry, 0);
    let one = f.iconst(entry, 1);
    let c = f.cmp(entry, pgvn_ir::CmpOp::Gt, f.param(0), zero);
    f.set_branch(entry, c, j, j);
    let p = f.append_phi(j);
    f.set_phi_args(p, vec![zero, one]);
    f.set_return(j, p);
    pgvn_ir::assert_verifies(&f);
    for cfg in all_configs() {
        let r = run(&f, &cfg);
        assert!(r.stats.converged, "{cfg:?}");
    }
    // Semantics: φ resolves by the arriving edge.
    let interp = Interpreter::new(&f);
    let mut o = HashedOpaques::new(0);
    assert_eq!(interp.run(&[5], &mut o).unwrap(), 0);
    assert_eq!(interp.run(&[-5], &mut o).unwrap(), 1);
}

#[test]
fn extremes_of_integer_arithmetic() {
    let src = "routine ext() {
        a = 9223372036854775807;     // i64::MAX
        b = a + 1;                   // wraps to MIN
        c = b - 1;                   // back to MAX
        d = a - c;                   // 0
        return d;
    }";
    let f = compile(src, SsaStyle::Minimal).unwrap();
    let r = run(&f, &GvnConfig::full());
    let ret = f
        .blocks()
        .filter_map(|b| f.terminator(b))
        .find_map(|t| match f.kind(t) {
            InstKind::Return(v) => Some(*v),
            _ => None,
        })
        .unwrap();
    assert_eq!(r.constant_value(ret), Some(0));
    assert_eq!(Interpreter::new(&f).run(&[], &mut HashedOpaques::new(0)).unwrap(), 0);
}

#[test]
fn division_by_zero_semantics_agree() {
    let src = "routine dz(x) {
        a = 5 / 0;
        b = 5 % 0;
        c = x / 0;
        return a + b + c;
    }";
    let f = compile(src, SsaStyle::Minimal).unwrap();
    let r = run(&f, &GvnConfig::full());
    let ret = f
        .blocks()
        .filter_map(|b| f.terminator(b))
        .find_map(|t| match f.kind(t) {
            InstKind::Return(v) => Some(*v),
            _ => None,
        })
        .unwrap();
    // a = 0, b = 0, c = 0 under the total semantics: the whole sum folds.
    assert_eq!(r.constant_value(ret), Some(0));
    assert_eq!(Interpreter::new(&f).run(&[123], &mut HashedOpaques::new(9)).unwrap(), 0);
}

#[test]
fn deeply_nested_control_flow_converges() {
    // 24 nested ifs — deep dominator chains for the inference walks.
    let mut src = String::from("routine deep(x) {\n");
    for i in 0..24 {
        src.push_str(&format!("if (x > {i}) {{\n"));
    }
    src.push_str("x = x + 1;\n");
    for _ in 0..24 {
        src.push_str("}\n");
    }
    src.push_str("return x;\n}");
    let f = compile(&src, SsaStyle::Minimal).unwrap();
    for cfg in [GvnConfig::full(), GvnConfig::extended()] {
        let r = run(&f, &cfg);
        assert!(r.stats.converged);
        assert!(r.stats.predicate_inference_visits > 0 || r.stats.value_inference_visits > 0);
    }
}

#[test]
fn long_copy_chains_collapse() {
    let mut src = String::from("routine chain(x) {\n    t0 = x;\n");
    for i in 1..40 {
        src.push_str(&format!("    t{i} = t{};\n", i - 1));
    }
    src.push_str("    return t39 - x;\n}");
    let f = compile(&src, SsaStyle::Minimal).unwrap();
    let r = run(&f, &GvnConfig::full());
    let ret = f
        .blocks()
        .filter_map(|b| f.terminator(b))
        .find_map(|t| match f.kind(t) {
            InstKind::Return(v) => Some(*v),
            _ => None,
        })
        .unwrap();
    assert_eq!(r.constant_value(ret), Some(0), "copies are congruent to their source");
}

#[test]
fn phis_under_distinct_constant_branches_stay_distinct() {
    // Regression: constant-condition branches carry the edge predicate ∅
    // (Figure 5 line 18). φ-predication once rewrote ∅ path predicates to
    // "true", so the joins of `if (0)` and `if (1)` shared the block
    // predicate (1 ∨ 1) with identical argument lists and were keyed
    // congruent — folding b - a to 0 even though the routine returns 1.
    // Pessimistic mode is the exposed surface: a decided branch keeps both
    // edges reachable there. See tests/fixtures/oracle/
    // phi-pred-ambiguous-split.pgvn for the interpreter-level replay.
    let src = "routine f() {
        if (0) { a = 1; }
        if (1) { b = 1; }
        return b - a;
    }";
    let f = compile(src, SsaStyle::Pruned).unwrap();
    let r = run(&f, &GvnConfig::full().mode(Mode::Pessimistic));
    assert!(r.stats.converged);
    let phis: Vec<_> = f
        .blocks()
        .flat_map(|b| f.block_insts(b).iter().copied())
        .filter(|&i| f.kind(i).is_phi())
        .filter_map(|i| f.inst_result(i))
        .collect();
    assert_eq!(phis.len(), 2, "both joins carry a live φ");
    assert!(
        !r.congruent(phis[0], phis[1]),
        "φs governed by different constant branches must not be congruent"
    );
    let ret = f
        .blocks()
        .filter_map(|b| f.terminator(b))
        .find_map(|t| match f.kind(t) {
            InstKind::Return(v) => Some(*v),
            _ => None,
        })
        .unwrap();
    assert_ne!(r.constant_value(ret), Some(0), "b - a must not fold to 0");
}
