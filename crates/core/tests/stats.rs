//! Work accounting: the sparse formulation must do strictly less work
//! than the dense one on routines that need refinement, and the stats
//! counters must be coherent.

use pgvn_core::{run, try_run, GvnConfig, Mode, RunOutcome};
use pgvn_lang::compile;
use pgvn_ssa::SsaStyle;
use pgvn_workload::{generate_function, GenConfig};

#[test]
fn sparse_processes_fewer_instructions_than_dense() {
    // A routine with loops (multiple optimistic passes) shows the gap.
    let cfg = GenConfig { seed: 5, target_stmts: 60, loop_prob: 0.5, ..Default::default() };
    let f = generate_function("w", &cfg, SsaStyle::Minimal);
    let sparse = run(&f, &GvnConfig::full());
    let dense = run(&f, &GvnConfig::full().sparse(false));
    assert!(sparse.stats.converged && dense.stats.converged);
    assert!(
        sparse.stats.insts_processed < dense.stats.insts_processed,
        "sparse {} vs dense {}",
        sparse.stats.insts_processed,
        dense.stats.insts_processed
    );
    // Identical results (checked exhaustively elsewhere; spot-check here).
    assert_eq!(sparse.strength(), dense.strength());
}

#[test]
fn single_pass_modes_process_each_instruction_at_most_once_per_pass() {
    let cfg = GenConfig { seed: 9, target_stmts: 40, ..Default::default() };
    let f = generate_function("w", &cfg, SsaStyle::Minimal);
    for mode in [Mode::Balanced, Mode::Pessimistic] {
        let r = run(&f, &GvnConfig::full().mode(mode));
        assert_eq!(r.stats.passes, 1, "{mode:?}");
        // One pass can process at most every instruction once (touched
        // blocks/instructions drained in RPO order).
        assert!(
            r.stats.insts_processed <= f.num_insts() as u64,
            "{mode:?}: {} processed vs {} insts",
            r.stats.insts_processed,
            f.num_insts()
        );
    }
}

#[test]
fn converged_runs_carry_an_explicit_outcome() {
    // The robustness satellite: truncation is never silent. A settled
    // fixed point must say so in `stats.outcome` (not just the legacy
    // `converged` flag), `outcome()` must agree, and the fallible entry
    // point must accept it.
    let cfg = GenConfig { seed: 11, target_stmts: 50, loop_prob: 0.4, ..Default::default() };
    let f = generate_function("w", &cfg, SsaStyle::Minimal);
    for gvn_cfg in [GvnConfig::full(), GvnConfig::full().mode(Mode::Pessimistic)] {
        let r = run(&f, &gvn_cfg);
        assert!(r.stats.converged);
        assert_eq!(r.stats.outcome, RunOutcome::Converged);
        assert_eq!(r.outcome(), RunOutcome::Converged);
        assert!(try_run(&f, &gvn_cfg).is_ok(), "converged run classifies clean");
    }
}

#[test]
fn counters_are_coherent() {
    let f = compile(pgvn_lang::fixtures::FIGURE1, SsaStyle::Minimal).unwrap();
    let r = run(&f, &GvnConfig::full());
    let s = r.stats;
    assert_eq!(s.num_insts, f.num_insts() as u64);
    assert!(s.insts_processed >= s.num_insts, "everything processed at least once");
    assert!(s.touches >= s.insts_processed, "every processed instruction was touched");
    assert!(s.value_inference_per_inst() > 0.0);
    assert!(s.predicate_inference_per_inst() > 0.0);
    assert!(s.phi_predication_per_inst() > 0.0);
}

#[test]
fn disabled_analyses_do_no_analysis_work() {
    let f = compile(pgvn_lang::fixtures::FIGURE1, SsaStyle::Minimal).unwrap();
    let r = run(&f, &GvnConfig::basic());
    assert_eq!(r.stats.value_inference_visits, 0);
    assert_eq!(r.stats.predicate_inference_visits, 0);
    assert_eq!(r.stats.phi_predication_visits, 0);
}

#[test]
fn inferenceable_gating_reduces_walks() {
    // A routine with arithmetic but no equality guards: the §3 gate makes
    // value inference never walk.
    let src = "routine f(a, b) {
        x = a * b + a;
        y = b * a + a;
        z = x - y;
        if (z > a) { z = z + 1; }
        return z;
    }";
    let f = compile(src, SsaStyle::Minimal).unwrap();
    let r = run(&f, &GvnConfig::full());
    assert_eq!(
        r.stats.value_inference_visits, 0,
        "no equality edge predicates → no value-inference walks"
    );
}
