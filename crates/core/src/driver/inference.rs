//! Predicate and value inference (§2.7, Figure 7): walks over
//! dominating edges, the §3 gating/caching devices, and the back-edge
//! restrictions discussed in `DESIGN.md`.
//!
//! The §7 *joint domination* extension (`GvnConfig::joint_domination`)
//! generalizes the walk: at a confluence whose reachable incoming edges
//! all decide the question identically — each through its own predicate
//! or its own recursive walk — the agreed answer holds at the block.
//! Recursion through nested joins is depth-bounded.

use super::*;

/// Maximum nesting of joint-domination recursion.
const MAX_JOIN_DEPTH: u32 = 4;

impl Run<'_, '_, '_, '_> {
    /// Figure 4 lines 28–29: if the evaluated expression is a predicate,
    /// try to decide it from a dominating edge (Figure 7, lines 1–16).
    pub(super) fn apply_predicate_inference(&mut self, e: ExprId, b: Block) -> ExprId {
        if !self.cfg.predicate_inference || self.cfg.sccp_only {
            return e;
        }
        let ExprKind::Cmp(op, lhs, rhs) = *self.interner.kind(e) else {
            return e;
        };
        // §3: a query predicate that shares no operand with any edge
        // predicate can never be decided — skip the walk.
        if !self.pred_operands.contains(lhs) && !self.pred_operands.contains(rhs) {
            self.stats.pi_gate_skips += 1;
            return e;
        }
        if let Some(&hit) = self.pi_cache.get(&(b, op, lhs, rhs)) {
            self.stats.pi_cache_hits += 1;
            return hit;
        }
        let query = Pred { op, lhs, rhs };
        let join_depth = if self.cfg.joint_domination { MAX_JOIN_DEPTH } else { 0 };
        let t0 = self.tel.clock();
        let out = match self.decide_predicate(Some(b), query, join_depth) {
            Some(truth) => self.interner.constant(truth as i64),
            None => e,
        };
        self.tel.record(Phase::PredicateInference, t0);
        self.pi_cache.insert((b, op, lhs, rhs), out);
        out
    }

    /// The dominating-edge walk for predicate queries (Figure 7 lines
    /// 1–16), with joint-domination recursion.
    fn decide_predicate(
        &mut self,
        start: Option<Block>,
        query: Pred,
        join_depth: u32,
    ) -> Option<bool> {
        let mut block = start;
        while let Some(cur) = block {
            self.stats.predicate_inference_visits += 1;
            match self.dominating_edge(cur) {
                EdgeSearch::Climb(next) => block = next,
                EdgeSearch::Found(edge) => {
                    if self.cfg.variant == Variant::Practical && self.rpo.is_back_edge(edge) {
                        return None;
                    }
                    if let Some(known) = self.edge_pred[edge.index()] {
                        if let Some(truth) = implies(self.interner, known, query) {
                            return Some(truth);
                        }
                    }
                    let origin = self.func.edge_from(edge);
                    block = (origin != cur).then_some(origin);
                }
                EdgeSearch::Joint(edges) => {
                    if join_depth > 0 {
                        if let Some(truth) =
                            self.joint_predicate_decision(&edges, query, join_depth - 1)
                        {
                            return Some(truth);
                        }
                    }
                    block = self.idom_of(cur);
                }
            }
        }
        None
    }

    /// §7: decides `query` when every reachable incoming edge decides it
    /// identically — by its own predicate, or by its own upward walk.
    fn joint_predicate_decision(
        &mut self,
        edges: &[Edge],
        query: Pred,
        join_depth: u32,
    ) -> Option<bool> {
        let mut agreed: Option<bool> = None;
        for &e in edges {
            if self.cfg.variant == Variant::Practical && self.rpo.is_back_edge(e) {
                return None;
            }
            let own =
                self.edge_pred[e.index()].and_then(|known| implies(self.interner, known, query));
            let t = match own {
                Some(t) => t,
                None => self.decide_predicate(Some(self.func.edge_from(e)), query, join_depth)?,
            };
            match agreed {
                None => agreed = Some(t),
                Some(prev) if prev == t => {}
                _ => return None,
            }
        }
        agreed
    }

    /// Finds the edge dominating `b` per Figure 7: the unique reachable
    /// incoming edge, a direction to climb, or — with the §7 extension —
    /// the full set of reachable incoming edges of a confluence.
    pub(super) fn dominating_edge(&mut self, b: Block) -> EdgeSearch {
        let incoming = self.func.preds(b);
        let has_back = incoming.iter().any(|&e| self.rpo.is_back_edge(e));
        let mut must_climb = self.cfg.mode != Mode::Optimistic && has_back;
        let mut only: Option<Edge> = None;
        let mut multiple = false;
        if !must_climb {
            for &e in incoming {
                if self.reach_edges.contains(e) {
                    if only.is_some() {
                        only = None;
                        must_climb = true;
                        multiple = true;
                        break;
                    }
                    only = Some(e);
                }
            }
        }
        if let (false, Some(e)) = (must_climb, only) {
            return EdgeSearch::Found(e);
        }
        if multiple
            && self.cfg.joint_domination
            && !(self.cfg.variant == Variant::Practical && has_back)
        {
            let edges: Vec<Edge> =
                incoming.iter().copied().filter(|&e| self.reach_edges.contains(e)).collect();
            return EdgeSearch::Joint(edges);
        }
        EdgeSearch::Climb(self.idom_of(b))
    }

    /// The immediate dominator used by the inference walks, or `None` at
    /// the root.
    pub(super) fn idom_of(&mut self, b: Block) -> Option<Block> {
        let idom = match self.rdt.as_mut() {
            Some(rdt) => rdt.idom(self.func, b),
            None => self.domtree.idom(b),
        };
        idom.filter(|&d| d != b)
    }

    /// Figure 7 lines 17–44: value inference at a block. Replacements
    /// repeat on the new (strictly lower-ranked) value until nothing more
    /// is decided, so the loop terminates.
    pub(super) fn infer_value_at_block(&mut self, v: Value, b: Block) -> Option<ExprId> {
        let mut cur_expr = self.leader_expr(v)?;
        if !self.cfg.value_inference {
            return Some(cur_expr);
        }
        // §3: only members of classes with an inferenceable value can be
        // refined; everything else skips the dominator walk entirely.
        if !self.inferenceable_classes.contains(self.classes.class_of(v)) {
            self.stats.vi_gate_skips += 1;
            return Some(cur_expr);
        }
        if let Some(hit) = self.vi_cache.get(b, v) {
            self.stats.vi_cache_hits += 1;
            return Some(hit);
        }
        self.stats.vi_cache_misses += 1;
        let join_depth = if self.cfg.joint_domination { MAX_JOIN_DEPTH } else { 0 };
        let t0 = self.tel.clock();
        while self.interner.as_value(cur_expr).is_some() {
            match self.find_replacement(Some(b), cur_expr, join_depth) {
                Some(repl) => cur_expr = repl,
                None => break,
            }
        }
        self.tel.record(Phase::ValueInference, t0);
        self.vi_cache.insert(b, v, cur_expr);
        Some(cur_expr)
    }

    /// One upward walk looking for an equality replacement of `cur`.
    fn find_replacement(
        &mut self,
        start: Option<Block>,
        cur: ExprId,
        join_depth: u32,
    ) -> Option<ExprId> {
        let mut block = start;
        while let Some(b) = block {
            self.stats.value_inference_visits += 1;
            match self.dominating_edge(b) {
                EdgeSearch::Climb(next) => block = next,
                EdgeSearch::Found(edge) => {
                    if self.cfg.variant == Variant::Practical && self.rpo.is_back_edge(edge) {
                        return None;
                    }
                    if let Some(repl) = self.equality_replacement(edge, cur) {
                        return Some(repl);
                    }
                    let origin = self.func.edge_from(edge);
                    block = (origin != b).then_some(origin);
                }
                EdgeSearch::Joint(edges) => {
                    if join_depth > 0 {
                        if let Some(repl) = self.joint_replacement(&edges, cur, join_depth - 1) {
                            return Some(repl);
                        }
                    }
                    block = self.idom_of(b);
                }
            }
        }
        None
    }

    /// §7: all reachable incoming edges must produce the *same*
    /// replacement, each via its own predicate or its own walk.
    fn joint_replacement(
        &mut self,
        edges: &[Edge],
        cur: ExprId,
        join_depth: u32,
    ) -> Option<ExprId> {
        let mut agreed: Option<ExprId> = None;
        for &e in edges {
            if self.cfg.variant == Variant::Practical && self.rpo.is_back_edge(e) {
                return None;
            }
            let repl = match self.equality_replacement(e, cur) {
                Some(r) => r,
                None => self.find_replacement(Some(self.func.edge_from(e)), cur, join_depth)?,
            };
            match agreed {
                None => agreed = Some(repl),
                Some(prev) if prev == repl => {}
                _ => return None,
            }
        }
        agreed
    }

    /// Figure 7 lines 45–54: value inference at a φ's carrying edge.
    ///
    /// For a *back* edge, only the edge's own predicate may be used (the
    /// special case §2.7 allows "because this dependency is captured by
    /// def-use chains" — a change in the predicate touches the edge's
    /// destination, where the φ lives). Continuing the walk from the back
    /// edge's origin would produce conclusions that downstream touching
    /// cannot invalidate, so it is disallowed (see DESIGN.md; the paper
    /// lists lifting this as future work).
    pub(super) fn infer_value_at_edge(&mut self, v: Value, e: Edge) -> Option<ExprId> {
        let cur = self.leader_expr(v)?;
        if !self.cfg.value_inference || self.cfg.sccp_only {
            return Some(cur);
        }
        let is_back = self.rpo.is_back_edge(e);
        if let Some(repl) = self.equality_replacement(e, cur) {
            // Continue inferring on the replacement from the edge origin.
            if !is_back {
                if let Some(w) = self.interner.as_value(repl) {
                    return self.infer_value_at_block(w, self.func.edge_from(e));
                }
            }
            return Some(repl);
        }
        if is_back {
            return Some(cur);
        }
        let origin = self.func.edge_from(e);
        if let Some(w) = self.interner.as_value(cur) {
            return self.infer_value_at_block(w, origin);
        }
        Some(cur)
    }

    /// If `edge` carries an equality predicate `X = Y` whose higher-ranked
    /// side is congruent to `cur`, returns the lower-ranked replacement.
    pub(super) fn equality_replacement(&mut self, edge: Edge, cur: ExprId) -> Option<ExprId> {
        let pred = self.edge_pred[edge.index()]?;
        let (lo, hi) = pred.as_equality()?;
        // Canonical order guarantees rank(lo) <= rank(hi).
        let hi_class = self.class_of_expr(hi)?;
        let cur_v = self.interner.as_value(cur)?;
        if self.classes.class_of(cur_v) != hi_class {
            return None;
        }
        if self.cfg.value_inference_constants_only && self.interner.as_const(lo).is_none() {
            return None;
        }
        if lo == cur {
            return None;
        }
        Some(lo)
    }

    pub(super) fn class_of_expr(&self, e: ExprId) -> Option<ClassId> {
        if let Some(v) = self.interner.as_value(e) {
            Some(self.classes.class_of(v))
        } else {
            self.classes.lookup(e)
        }
    }
}

pub(super) enum EdgeSearch {
    /// No unique dominating edge here; continue at `Some(idom)` or give
    /// up (`None`).
    Climb(Option<Block>),
    /// The unique reachable incoming edge.
    Found(Edge),
    /// §7 extension: the reachable incoming edges of a confluence —
    /// knowledge they agree on holds at the block.
    Joint(Vec<Edge>),
}
