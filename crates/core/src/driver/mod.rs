//! The sparse predicated GVN driver — Figures 3–5, 7 and 8 of the paper.
//!
//! The driver makes repeated reverse-postorder passes over the routine,
//! processing only *touched* instructions and blocks. Symbolic evaluation
//! (constant folding, algebraic simplification, global reassociation,
//! predicate/value inference and φ handling) produces a canonical
//! expression per instruction; congruence finding moves the result value
//! between classes; jump processing grows the reachable set and maintains
//! edge predicates; and φ-predication computes block predicates over the
//! region between a block and its immediate dominator.

mod edges;
mod eval;
mod inference;
mod phi;
mod phipred;

use crate::classes::{ClassId, Classes, Leader};
use crate::config::{GvnConfig, Mode, Variant};
use crate::context::{GvnContext, ViCache};
use crate::error::{BudgetKind, FaultKind, FaultSite, GvnError};
use crate::expr::{ExprId, ExprKind, Interner, PhiKey};
use crate::linear::LinearExpr;
use crate::predicate::{implies, Pred};
use crate::results::{GvnResults, GvnStats, RunOutcome};
use pgvn_analysis::{DomTree, PostDomTree, Ranks, ReachableDomTree, Rpo};
use pgvn_ir::{
    BinOp, Block, CmpOp, DefUse, Edge, EntityRef, EntitySet, Function, Inst, InstKind, UnOp, Value,
};
use pgvn_telemetry::{Metric, Phase, Telemetry, TextSink, TraceEvent};
use std::collections::HashMap;
use std::time::Instant;

/// Hard cap on RPO passes; hit only on non-convergence bugs (the stats
/// carry a `converged` flag that tests assert).
const MAX_PASSES: u32 = 10_000;

/// Pass count beyond which class movement is reported as a potential
/// oscillation (a converging run is expected to settle in a handful of
/// passes; see `GvnStats::passes`).
const OSC_PASS_THRESHOLD: u32 = 64;

/// Entry point for the analysis.
///
/// # Examples
///
/// ```
/// use pgvn_ir::{Function, BinOp};
/// use pgvn_core::{run, GvnConfig};
///
/// // return (x + 1) - (1 + x)  — reassociation proves the result is 0.
/// let mut f = Function::new("zero", 1);
/// let b = f.entry();
/// let x = f.param(0);
/// let one = f.iconst(b, 1);
/// let a = f.binary(b, BinOp::Add, x, one);
/// let c = f.binary(b, BinOp::Add, one, x);
/// let d = f.binary(b, BinOp::Sub, a, c);
/// f.set_return(b, d);
///
/// let results = run(&f, &GvnConfig::full());
/// assert_eq!(results.constant_value(d), Some(0));
/// assert!(results.congruent(a, c));
/// ```
pub fn run(func: &Function, cfg: &GvnConfig) -> GvnResults {
    run_in_context(&mut GvnContext::new(), func, cfg)
}

/// [`run`] against a reusable [`GvnContext`]: all scratch state (interner,
/// partition, worklists, predicate tables, inference caches) lives in the
/// context and is reset-without-free at run start, so a stream of
/// routines is allocation-amortized. Results never depend on what the
/// context previously ran — see the `context` module docs.
pub fn run_in_context(ctx: &mut GvnContext, func: &Function, cfg: &GvnConfig) -> GvnResults {
    // Back-compat: `PGVN_DEBUG_OSC` predates the telemetry layer and used
    // to switch on an ad-hoc stderr dump of late-pass class movement. It
    // now enables the text trace sink, whose `oscillation` events carry
    // the same information.
    if std::env::var_os("PGVN_DEBUG_OSC").is_some() {
        let mut sink = TextSink::stderr();
        let mut tel = Telemetry::with_sink(&mut sink);
        return run_traced_in_context(ctx, func, cfg, &mut tel);
    }
    run_traced_in_context(ctx, func, cfg, &mut Telemetry::off())
}

/// Entry point with observability: per-pass [`TraceEvent`]s go to the
/// handle's sink and phase timings accumulate in its profiler. With
/// [`Telemetry::off`] this is exactly [`run`].
///
/// # Panics
///
/// Like [`run`], panics on an internal invariant violation (or an
/// injected fault). Use [`try_run_traced`] where failures must be
/// contained and classified.
pub fn run_traced(func: &Function, cfg: &GvnConfig, tel: &mut Telemetry<'_>) -> GvnResults {
    run_traced_in_context(&mut GvnContext::new(), func, cfg, tel)
}

/// [`run_traced`] against a reusable [`GvnContext`].
pub fn run_traced_in_context(
    ctx: &mut GvnContext,
    func: &Function,
    cfg: &GvnConfig,
    tel: &mut Telemetry<'_>,
) -> GvnResults {
    match Run::new(ctx, func, cfg.clone(), tel).execute() {
        Ok(results) => results,
        Err(err) => panic!("pgvn analysis failed: {err} (use try_run/try_run_traced to recover)"),
    }
}

/// Fallible entry point for the analysis: every failure mode is a
/// classified [`GvnError`] instead of a panic or a silently partial
/// fixed point. `Err` covers non-convergence (the hard pass cap),
/// exhaustion of any [`crate::GvnBudget`] ceiling, internal invariant
/// violations, and injected faults; injected *panics* still unwind and
/// must be caught at an isolation boundary (see
/// `Pipeline::optimize_resilient` in `pgvn-transform`).
pub fn try_run(func: &Function, cfg: &GvnConfig) -> Result<GvnResults, GvnError> {
    try_run_traced(func, cfg, &mut Telemetry::off())
}

/// [`try_run`] against a reusable [`GvnContext`].
pub fn try_run_in_context(
    ctx: &mut GvnContext,
    func: &Function,
    cfg: &GvnConfig,
) -> Result<GvnResults, GvnError> {
    try_run_traced_in_context(ctx, func, cfg, &mut Telemetry::off())
}

/// [`try_run`] with observability (see [`run_traced`]).
pub fn try_run_traced(
    func: &Function,
    cfg: &GvnConfig,
    tel: &mut Telemetry<'_>,
) -> Result<GvnResults, GvnError> {
    try_run_traced_in_context(&mut GvnContext::new(), func, cfg, tel)
}

/// [`try_run_traced`] against a reusable [`GvnContext`]. A failed run
/// leaves the context reusable: the next run re-prepares all scratch
/// state, so no partial results can leak out of an error.
pub fn try_run_traced_in_context(
    ctx: &mut GvnContext,
    func: &Function,
    cfg: &GvnConfig,
    tel: &mut Telemetry<'_>,
) -> Result<GvnResults, GvnError> {
    let results = Run::new(ctx, func, cfg.clone(), tel).execute()?;
    classify(cfg, results)
}

/// Maps a completed run's [`RunOutcome`] to the error taxonomy: only a
/// converged run is `Ok`; truncated runs (hard cap or budget ceilings)
/// become the corresponding [`GvnError`].
fn classify(cfg: &GvnConfig, results: GvnResults) -> Result<GvnResults, GvnError> {
    let stats = results.stats;
    match stats.outcome {
        RunOutcome::Converged => Ok(results),
        RunOutcome::NonConverged => Err(GvnError::NonConvergence { passes: stats.passes }),
        RunOutcome::BudgetPasses => Err(GvnError::BudgetExceeded {
            budget: BudgetKind::Passes,
            limit: u64::from(cfg.budget.max_passes.unwrap_or(0)),
            spent: u64::from(stats.passes),
        }),
        RunOutcome::BudgetTime => {
            let limit = cfg
                .budget
                .time_limit
                .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
                .unwrap_or(0);
            Err(GvnError::BudgetExceeded { budget: BudgetKind::Time, limit, spent: limit })
        }
        RunOutcome::BudgetWork => Err(GvnError::BudgetExceeded {
            budget: BudgetKind::Work,
            limit: cfg.budget.max_touches.unwrap_or(0),
            spent: stats.touches,
        }),
        RunOutcome::NotRun => Err(GvnError::invariant("analysis finished without an outcome")),
    }
}

/// One analysis run: per-function analyses (`rpo`, ranks, dominator
/// trees, def-use) are owned and computed fresh per run, while all
/// *scratch* state is `&mut`-borrowed from a [`GvnContext`] so capacity
/// survives across runs. The `'c` lifetime is that borrow split.
struct Run<'f, 'c, 't, 's> {
    tel: &'t mut Telemetry<'s>,
    func: &'f Function,
    cfg: GvnConfig,
    rpo: Rpo,
    rank_of: Vec<u32>,
    domtree: DomTree,
    postdom: PostDomTree,
    defuse: DefUse,
    rdt: Option<ReachableDomTree>,
    interner: &'c mut Interner,
    classes: &'c mut Classes,
    reach_blocks: &'c mut EntitySet<Block>,
    reach_edges: &'c mut EntitySet<Edge>,
    touched_insts: &'c mut EntitySet<Inst>,
    touched_blocks: &'c mut EntitySet<Block>,
    changed: &'c mut EntitySet<Value>,
    edge_pred: &'c mut Vec<Option<Pred>>,
    block_pred: &'c mut Vec<Option<ExprId>>,
    canonical: &'c mut Vec<Vec<Edge>>,
    /// §3: classes that currently appear as the higher-ranked side of an
    /// equality edge predicate — the only classes value inference can
    /// refine. Grows monotonically (a conservative superset).
    inferenceable_classes: &'c mut EntitySet<ClassId>,
    /// §3: operand expressions of current edge predicates — a query
    /// predicate sharing no operand with any edge predicate can never be
    /// decided. Grows monotonically (a conservative superset).
    pred_operands: &'c mut EntitySet<ExprId>,
    /// §3: blocks whose φ-predication aborted; permanently nullified when
    /// the corresponding config flag is set.
    nullified_blocks: &'c mut EntitySet<Block>,
    /// §3: memo for value inference ("the result of the first value
    /// inference can be cached"), keyed by the walk's *starting block*
    /// and the value; invalidated on class movement.
    vi_cache: &'c mut ViCache,
    /// §3: memo for predicate inference, keyed by starting block and
    /// canonical predicate.
    pi_cache: &'c mut HashMap<(Block, CmpOp, ExprId, ExprId), ExprId>,
    /// φ-predication OR-operand scratch, recycled per traversal.
    or_ops: &'c mut Vec<Vec<ExprId>>,
    stats: GvnStats,
    any_change: bool,
    /// Wall-clock deadline derived from the budget, checked per block.
    deadline: Option<Instant>,
    /// Site visits remaining before the armed fault fires; `None` when
    /// no driver-site fault is armed (or it already fired).
    fault_countdown: Option<u64>,
}

impl<'f, 'c, 't, 's> Run<'f, 'c, 't, 's> {
    fn new(
        ctx: &'c mut GvnContext,
        func: &'f Function,
        cfg: GvnConfig,
        tel: &'t mut Telemetry<'s>,
    ) -> Self {
        let t0 = tel.clock();
        let rpo = Rpo::compute(func);
        let ranks = Ranks::assign(func, &rpo);
        let rank_of: Vec<u32> =
            (0..func.value_capacity()).map(|i| ranks.rank(Value::new(i))).collect();
        let defuse = DefUse::compute(func);
        tel.record_phase(Phase::Cfg, t0);
        let t0 = tel.clock();
        let domtree = DomTree::compute(func, &rpo);
        let postdom = PostDomTree::compute(func, &rpo);
        let rdt = (cfg.variant == Variant::Complete).then(|| ReachableDomTree::new(func));
        tel.record_phase(Phase::DomTree, t0);
        let deadline = cfg.budget.time_limit.map(|limit| Instant::now() + limit);
        let fault_countdown =
            cfg.fault_plan.filter(|p| p.site != FaultSite::Rewrite).map(|p| p.countdown());
        // Wipe and size every scratch structure (keeping allocations),
        // then split the context into independent `&mut` borrows.
        let caps_before = ctx.capacities();
        ctx.prepare(func);
        if tel.is_active() {
            let caps = ctx.capacities();
            let reused = caps == caps_before;
            tel.count(Metric::ContextPrepares, 1);
            if reused {
                tel.count(Metric::ContextPrepareReuses, 1);
            }
            tel.gauge_max(Metric::ContextValueSlots, caps.value_slots as u64);
            let runs = ctx.runs();
            tel.emit(|| TraceEvent::ContextPrepare {
                runs,
                reused_capacity: reused,
                value_slots: caps.value_slots as u64,
                interner_exprs: caps.interner_exprs as u64,
            });
        }
        let GvnContext {
            interner,
            classes,
            reach_blocks,
            reach_edges,
            touched_insts,
            touched_blocks,
            changed,
            edge_pred,
            block_pred,
            canonical,
            inferenceable_classes,
            pred_operands,
            nullified_blocks,
            vi_cache,
            pi_cache,
            or_ops,
            ..
        } = ctx;
        Run {
            tel,
            func,
            cfg,
            rpo,
            rank_of,
            domtree,
            postdom,
            defuse,
            rdt,
            interner,
            classes,
            reach_blocks,
            reach_edges,
            touched_insts,
            touched_blocks,
            changed,
            edge_pred,
            block_pred,
            canonical,
            inferenceable_classes,
            pred_operands,
            nullified_blocks,
            vi_cache,
            pi_cache,
            or_ops,
            stats: GvnStats::default(),
            any_change: false,
            deadline,
            fault_countdown,
        }
    }

    /// Fires the armed fault plan if `site` matches and the countdown
    /// has elapsed. Each plan fires at most once per run.
    fn maybe_fault(&mut self, site: FaultSite) -> Result<(), GvnError> {
        let Some(plan) = self.cfg.fault_plan else { return Ok(()) };
        if plan.site != site {
            return Ok(());
        }
        match self.fault_countdown.as_mut() {
            None => Ok(()),
            Some(n) if *n > 0 => {
                *n -= 1;
                Ok(())
            }
            Some(_) => {
                self.fault_countdown = None;
                match plan.kind {
                    FaultKind::Panic => panic!("pgvn injected fault: panic at site {site}"),
                    FaultKind::Invariant => {
                        Err(GvnError::invariant(format!("injected fault at site {site}")))
                    }
                    FaultKind::Budget => Err(GvnError::BudgetExceeded {
                        budget: BudgetKind::Work,
                        limit: 0,
                        spent: self.stats.touches,
                    }),
                    // Only meaningful at the rewrite site (handled by the
                    // transform pipeline); a no-op inside the analysis.
                    FaultKind::VerifierReject => Ok(()),
                }
            }
        }
    }

    fn rank(&self, v: Value) -> u32 {
        self.rank_of[v.index()]
    }

    fn preds_enabled(&self) -> bool {
        self.cfg.predicate_inference || self.cfg.value_inference || self.cfg.phi_predication
    }

    fn touch_inst(&mut self, i: Inst) {
        if self.touched_insts.insert(i) {
            self.stats.touches += 1;
        }
    }

    fn touch_block_insts(&mut self, b: Block) {
        for &i in self.func.block_insts(b) {
            self.touch_inst(i);
        }
    }

    // -----------------------------------------------------------------
    // Initialization and the pass loop (Figure 3)
    // -----------------------------------------------------------------

    fn execute(mut self) -> Result<GvnResults, GvnError> {
        self.stats.num_insts = self.func.num_insts() as u64;
        let func = self.func;
        self.tel.emit(|| TraceEvent::RunStart {
            routine: func.name().to_string(),
            num_insts: func.num_insts() as u64,
            num_blocks: func.num_blocks() as u64,
        });
        let start_everywhere =
            !self.cfg.unreachable_code_elim || self.cfg.mode == Mode::Pessimistic;
        if start_everywhere {
            let order: Vec<Block> = self.rpo.order().to_vec();
            for b in order {
                self.reach_blocks.insert(b);
                self.touch_block_insts(b);
                self.touched_blocks.insert(b);
            }
            for e in self.func.edges() {
                let from = self.func.edge_from(e);
                if self.rpo.is_reachable(from) {
                    self.reach_edges.insert(e);
                    if let Some(rdt) = self.rdt.as_mut() {
                        rdt.add_edge(e);
                    }
                }
            }
        } else {
            let entry = self.func.entry();
            self.reach_blocks.insert(entry);
            self.touch_block_insts(entry);
        }

        match self.run_passes() {
            Ok(outcome) => Ok(self.finish(outcome)),
            Err(err) => {
                // The run is abandoned mid-pass: delimit and flush the
                // trace so sinks still see a complete event stream.
                let passes = self.stats.passes;
                self.tel.emit(|| TraceEvent::RunEnd { passes, converged: false });
                self.tel.flush();
                Err(err)
            }
        }
    }

    fn run_passes(&mut self) -> Result<RunOutcome, GvnError> {
        loop {
            if let Some(max) = self.cfg.budget.max_passes {
                if self.stats.passes >= max {
                    return Ok(RunOutcome::BudgetPasses);
                }
            }
            self.stats.passes += 1;
            self.any_change = false;
            let pass = self.stats.passes;
            let (ti0, tb0) = (self.touched_insts.len() as u64, self.touched_blocks.len() as u64);
            self.tel.emit(|| TraceEvent::PassStart {
                pass,
                touched_insts: ti0,
                touched_blocks: tb0,
            });
            self.tel.observe(Metric::DriverTouchedInstsPass, ti0);
            let snap = self.stats;
            let pass_t0 = self.tel.clock();
            for bi in 0..self.rpo.order().len() {
                let b = self.rpo.order()[bi];
                if let Some(deadline) = self.deadline {
                    if Instant::now() >= deadline {
                        return Ok(RunOutcome::BudgetTime);
                    }
                }
                // Inference-cache invalidation audit (see also the clears
                // on class movement in `congruence_finding`): both memos
                // are keyed by the walk's *starting block*, and a cached
                // answer depends on (a) the current edge-predicate tables
                // and (b) the current partition along the dominator walk.
                // Clearing at every block boundary and on every class
                // movement over-approximates both dependencies within a
                // pass. Across passes nothing needs special handling:
                // reachability only *grows* (monotone, §2.4), it never
                // refines away an edge mid-run, and every pass re-enters
                // this loop which clears before the first query of each
                // block. A cached inference can therefore never outlive
                // the facts it was derived from; cross-*run* staleness is
                // impossible because `GvnContext::prepare` wipes both
                // caches at run start (asserted by tests/session.rs).
                self.vi_cache.clear();
                self.pi_cache.clear();
                self.stats.vi_cache_evictions += 1;
                if self.touched_blocks.remove(b)
                    && self.reach_blocks.contains(b)
                    && self.cfg.phi_predication
                {
                    self.maybe_fault(FaultSite::PhiPred)?;
                    let t0 = self.tel.clock();
                    self.compute_block_predicate(b);
                    self.tel.record(Phase::PhiPredication, t0);
                }
                let insts = self.func.block_insts(b).to_vec();
                for inst in insts {
                    if self.touched_insts.remove(inst) && self.reach_blocks.contains(b) {
                        self.stats.insts_processed += 1;
                        if pass > OSC_PASS_THRESHOLD && self.tel.is_tracing() {
                            self.process_inst_watching_oscillation(inst, b)?;
                        } else {
                            self.process_inst(inst, b)?;
                        }
                        if let Some(quota) = self.cfg.budget.max_touches {
                            if self.stats.touches > quota {
                                return Ok(RunOutcome::BudgetWork);
                            }
                        }
                    }
                }
            }
            let nanos = pass_t0
                .map(|t0| u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX))
                .unwrap_or(0);
            self.tel.record(Phase::Passes, pass_t0);
            let stats = self.stats;
            let (rb, re) = (self.reach_blocks.len() as u64, self.reach_edges.len() as u64);
            let (ti, tb) = (self.touched_insts.len() as u64, self.touched_blocks.len() as u64);
            let changed_values = self.changed.len() as u64;
            let any_change = self.any_change;
            self.tel.emit(|| TraceEvent::PassEnd {
                pass,
                insts_processed: stats.insts_processed - snap.insts_processed,
                touches: stats.touches - snap.touches,
                class_merges: stats.class_merges - snap.class_merges,
                reachable_blocks: rb,
                reachable_edges: re,
                touched_insts: ti,
                touched_blocks: tb,
                changed_values,
                any_change,
                nanos,
            });
            self.tel.observe(Metric::DriverMergesPass, stats.class_merges - snap.class_merges);
            if self.cfg.mode != Mode::Optimistic {
                return Ok(RunOutcome::Converged);
            }
            if !self.cfg.sparse {
                // Dense formulation: brute-force reapplication while
                // anything changed in the pass.
                if self.any_change {
                    if self.stats.passes >= MAX_PASSES {
                        return Ok(RunOutcome::NonConverged);
                    }
                    let blocks: Vec<Block> = self.reach_blocks.iter().collect();
                    for b in blocks {
                        self.touch_block_insts(b);
                        self.touched_blocks.insert(b);
                    }
                    continue;
                }
                return Ok(RunOutcome::Converged);
            }
            if self.touched_insts.is_empty() && self.touched_blocks.is_empty() {
                return Ok(RunOutcome::Converged);
            }
            if self.stats.passes >= MAX_PASSES {
                return Ok(RunOutcome::NonConverged);
            }
        }
    }

    fn finish(self, outcome: RunOutcome) -> GvnResults {
        let converged = outcome == RunOutcome::Converged;
        let mut stats = self.stats;
        stats.converged = converged;
        stats.outcome = outcome;
        stats.hash_cons_hits = self.interner.hits();
        stats.hash_cons_misses = self.interner.misses();
        stats.interned_exprs = self.interner.len() as u64;
        if self.tel.is_metering() {
            self.tel.count(Metric::DriverRuns, 1);
            self.tel.observe(Metric::DriverPasses, u64::from(stats.passes));
            self.tel.count(Metric::DriverTouches, stats.touches);
            self.tel.count(Metric::DriverInstsProcessed, stats.insts_processed);
            self.tel.count(Metric::InternerHits, stats.hash_cons_hits);
            self.tel.count(Metric::InternerMisses, stats.hash_cons_misses);
            self.tel.count(Metric::InternerTableGrowths, self.interner.growths());
            self.tel.observe(Metric::InternerExprs, stats.interned_exprs);
            self.tel.count(Metric::ViCacheHits, stats.vi_cache_hits);
            self.tel.count(Metric::ViCacheMisses, stats.vi_cache_misses);
            self.tel.count(Metric::ViCacheEvictions, stats.vi_cache_evictions);
        }
        self.tel.emit(|| TraceEvent::RunEnd { passes: stats.passes, converged });
        self.tel.flush();
        let nvals = self.func.value_capacity();
        let class_of: Vec<ClassId> =
            (0..nvals).map(|i| self.classes.class_of(Value::new(i))).collect();
        let leaders: Vec<Leader> = (0..self.classes.num_class_slots())
            .map(|i| self.classes.leader(ClassId::from_raw(i as u32)))
            .collect();
        GvnResults {
            // The sets are context-owned scratch; the results get a copy.
            reachable_blocks: self.reach_blocks.clone(),
            reachable_edges: self.reach_edges.clone(),
            class_of,
            leaders,
            stats,
        }
    }

    // -----------------------------------------------------------------
    // Instruction processing
    // -----------------------------------------------------------------

    fn process_inst(&mut self, inst: Inst, b: Block) -> Result<(), GvnError> {
        match self.func.kind(inst) {
            InstKind::Jump | InstKind::Branch(_) | InstKind::Switch(..) => {
                self.maybe_fault(FaultSite::Edges)?;
                let t0 = self.tel.clock();
                self.process_outgoing_edges(b);
                self.tel.record(Phase::EdgeProcessing, t0);
            }
            InstKind::Return(_) => {}
            _ => {
                self.maybe_fault(FaultSite::Eval)?;
                let Some(v) = self.func.inst_result(inst) else {
                    return Err(GvnError::invariant(format!(
                        "instruction {inst} in {b} should define a value but has no result"
                    )));
                };
                let t0 = self.tel.clock();
                let e = self.evaluate(inst, v, b);
                self.tel.record(Phase::SymbolicEval, t0);
                let t0 = self.tel.clock();
                let moved = self.congruence_finding(v, e)?;
                self.tel.record(Phase::CongruenceMerge, t0);
                if moved {
                    self.any_change = true;
                    let users = self.defuse.uses(v).to_vec();
                    for u in users {
                        self.touch_inst(u);
                    }
                }
            }
        }
        Ok(())
    }

    /// [`Run::process_inst`], but reporting any class movement as an
    /// [`TraceEvent::Oscillation`]. Used for every re-evaluation once
    /// the pass count exceeds [`OSC_PASS_THRESHOLD`] while tracing: a
    /// run that deep is either a pathological chain or a convergence
    /// bug, and the before/after expressions identify the values that
    /// keep moving.
    fn process_inst_watching_oscillation(&mut self, inst: Inst, b: Block) -> Result<(), GvnError> {
        let result = self.func.inst_result(inst);
        let before = result.map(|v| self.describe_value(v));
        self.process_inst(inst, b)?;
        let after = result.map(|v| self.describe_value(v));
        if before != after {
            let pass = self.stats.passes;
            self.tel.emit(|| TraceEvent::Oscillation {
                pass,
                inst: inst.to_string(),
                block: b.to_string(),
                before: before.unwrap_or_default(),
                after: after.unwrap_or_default(),
            });
        }
        Ok(())
    }

    /// `"c3=v1"`-style description of a value's congruence class, its
    /// leader, and (when present) the class's defining expression.
    fn describe_value(&self, v: Value) -> String {
        let c = self.classes.class_of(v);
        let leader = match self.classes.leader(c) {
            Leader::Undetermined => "⊥".to_string(),
            Leader::Const(k) => k.to_string(),
            Leader::Value(l) => l.to_string(),
        };
        match self.classes.expression(c) {
            Some(e) => format!("{c}={leader} [{}]", self.interner.display(e)),
            None => format!("{c}={leader}"),
        }
    }

    // -----------------------------------------------------------------
    // Symbolic evaluation (Figure 4, top half)
    // -----------------------------------------------------------------

    // -----------------------------------------------------------------
    // φ evaluation (Figure 4 lines 10–23)
    // -----------------------------------------------------------------

    // -----------------------------------------------------------------
    // Congruence finding (Figure 4, bottom half)
    // -----------------------------------------------------------------

    // -----------------------------------------------------------------
    // Edges (Figure 5)
    // -----------------------------------------------------------------

    // -----------------------------------------------------------------
    // φ-predication (Figure 8)
    // -----------------------------------------------------------------
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_func() -> Function {
        let mut f = Function::new("t", 1);
        let b = f.entry();
        let x = f.param(0);
        let one = f.iconst(b, 1);
        let a = f.binary(b, BinOp::Add, x, one);
        f.set_return(b, a);
        f
    }

    /// Satellite of the robustness PR: `MAX_PASSES` exhaustion (and the
    /// budget ceilings) must surface as explicit classified outcomes,
    /// never a silently accepted partial fixed point.
    #[test]
    fn classify_surfaces_every_truncated_outcome() {
        let cfg = GvnConfig::full();
        let base = run(&tiny_func(), &cfg);
        assert_eq!(base.stats.outcome, RunOutcome::Converged);
        assert!(base.stats.converged);
        assert!(classify(&cfg, base.clone()).is_ok());
        for (outcome, kind) in [
            (RunOutcome::NonConverged, "non_convergence"),
            (RunOutcome::BudgetPasses, "budget_exceeded"),
            (RunOutcome::BudgetTime, "budget_exceeded"),
            (RunOutcome::BudgetWork, "budget_exceeded"),
            (RunOutcome::NotRun, "internal_invariant"),
        ] {
            let mut r = base.clone();
            r.stats.outcome = outcome;
            let err = classify(&cfg, r).expect_err("truncated outcome must classify as an error");
            assert_eq!(err.kind(), kind, "{outcome}");
        }
        let mut r = base;
        r.stats.outcome = RunOutcome::NonConverged;
        r.stats.passes = MAX_PASSES;
        assert_eq!(
            classify(&cfg, r).err(),
            Some(GvnError::NonConvergence { passes: MAX_PASSES }),
            "the oscillation cap reports the pass count it died at"
        );
    }
}
