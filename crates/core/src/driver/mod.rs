//! The sparse predicated GVN driver — Figures 3–5, 7 and 8 of the paper.
//!
//! The driver makes repeated reverse-postorder passes over the routine,
//! processing only *touched* instructions and blocks. Symbolic evaluation
//! (constant folding, algebraic simplification, global reassociation,
//! predicate/value inference and φ handling) produces a canonical
//! expression per instruction; congruence finding moves the result value
//! between classes; jump processing grows the reachable set and maintains
//! edge predicates; and φ-predication computes block predicates over the
//! region between a block and its immediate dominator.

mod edges;
mod eval;
mod inference;
mod phi;
mod phipred;

use crate::classes::{ClassId, Classes, Leader};
use crate::config::{GvnConfig, Mode, Variant};
use crate::expr::{ExprId, ExprKind, Interner, PhiKey};
use crate::linear::LinearExpr;
use crate::predicate::{implies, Pred};
use crate::results::{GvnResults, GvnStats};
use pgvn_ir::{
    BinOp, Block, CmpOp, DefUse, Edge, EntityRef, EntitySet, Function, Inst, InstKind, UnOp, Value,
};
use pgvn_analysis::{DomTree, PostDomTree, Ranks, ReachableDomTree, Rpo};

/// Hard cap on RPO passes; hit only on non-convergence bugs (the stats
/// carry a `converged` flag that tests assert).
const MAX_PASSES: u32 = 10_000;

/// Entry point for the analysis.
///
/// # Examples
///
/// ```
/// use pgvn_ir::{Function, BinOp};
/// use pgvn_core::{run, GvnConfig};
///
/// // return (x + 1) - (1 + x)  — reassociation proves the result is 0.
/// let mut f = Function::new("zero", 1);
/// let b = f.entry();
/// let x = f.param(0);
/// let one = f.iconst(b, 1);
/// let a = f.binary(b, BinOp::Add, x, one);
/// let c = f.binary(b, BinOp::Add, one, x);
/// let d = f.binary(b, BinOp::Sub, a, c);
/// f.set_return(b, d);
///
/// let results = run(&f, &GvnConfig::full());
/// assert_eq!(results.constant_value(d), Some(0));
/// assert!(results.congruent(a, c));
/// ```
pub fn run(func: &Function, cfg: &GvnConfig) -> GvnResults {
    Run::new(func, cfg.clone()).execute()
}

struct Run<'f> {
    func: &'f Function,
    cfg: GvnConfig,
    rpo: Rpo,
    rank_of: Vec<u32>,
    domtree: DomTree,
    postdom: PostDomTree,
    defuse: DefUse,
    rdt: Option<ReachableDomTree>,
    interner: Interner,
    classes: Classes,
    reach_blocks: EntitySet<Block>,
    reach_edges: EntitySet<Edge>,
    touched_insts: EntitySet<Inst>,
    touched_blocks: EntitySet<Block>,
    changed: EntitySet<Value>,
    edge_pred: Vec<Option<Pred>>,
    block_pred: Vec<Option<ExprId>>,
    canonical: Vec<Vec<Edge>>,
    /// §3: classes that currently appear as the higher-ranked side of an
    /// equality edge predicate — the only classes value inference can
    /// refine. Grows monotonically (a conservative superset).
    inferenceable_classes: std::collections::HashSet<ClassId>,
    /// §3: operand expressions of current edge predicates — a query
    /// predicate sharing no operand with any edge predicate can never be
    /// decided. Grows monotonically (a conservative superset).
    pred_operands: std::collections::HashSet<ExprId>,
    /// §3: blocks whose φ-predication aborted; permanently nullified when
    /// the corresponding config flag is set.
    nullified_blocks: EntitySet<Block>,
    /// §3: memo for value inference ("the result of the first value
    /// inference can be cached"), keyed by the walk's *starting block*
    /// and the value; invalidated on class movement.
    vi_cache: std::collections::HashMap<(Block, Value), ExprId>,
    /// §3: memo for predicate inference, keyed by starting block and
    /// canonical predicate.
    pi_cache: std::collections::HashMap<(Block, CmpOp, ExprId, ExprId), ExprId>,
    stats: GvnStats,
    any_change: bool,
}

impl<'f> Run<'f> {
    fn new(func: &'f Function, cfg: GvnConfig) -> Self {
        let rpo = Rpo::compute(func);
        let ranks = Ranks::assign(func, &rpo);
        let rank_of: Vec<u32> = (0..func.value_capacity()).map(|i| ranks.rank(Value::new(i))).collect();
        let domtree = DomTree::compute(func, &rpo);
        let postdom = PostDomTree::compute(func, &rpo);
        let defuse = DefUse::compute(func);
        let rdt = (cfg.variant == Variant::Complete).then(|| ReachableDomTree::new(func));
        let classes = Classes::new(func.value_capacity());
        Run {
            func,
            cfg,
            rpo,
            rank_of,
            domtree,
            postdom,
            defuse,
            rdt,
            interner: Interner::new(),
            classes,
            reach_blocks: EntitySet::with_capacity(func.block_capacity()),
            reach_edges: EntitySet::with_capacity(func.edge_capacity()),
            touched_insts: EntitySet::with_capacity(func.inst_capacity()),
            touched_blocks: EntitySet::with_capacity(func.block_capacity()),
            changed: EntitySet::with_capacity(func.value_capacity()),
            edge_pred: vec![None; func.edge_capacity()],
            block_pred: vec![None; func.block_capacity()],
            canonical: vec![Vec::new(); func.block_capacity()],
            inferenceable_classes: std::collections::HashSet::new(),
            pred_operands: std::collections::HashSet::new(),
            nullified_blocks: EntitySet::with_capacity(func.block_capacity()),
            vi_cache: std::collections::HashMap::new(),
            pi_cache: std::collections::HashMap::new(),
            stats: GvnStats::default(),
            any_change: false,
        }
    }

    fn rank(&self, v: Value) -> u32 {
        self.rank_of[v.index()]
    }

    fn preds_enabled(&self) -> bool {
        self.cfg.predicate_inference || self.cfg.value_inference || self.cfg.phi_predication
    }

    fn touch_inst(&mut self, i: Inst) {
        if self.touched_insts.insert(i) {
            self.stats.touches += 1;
        }
    }

    fn touch_block_insts(&mut self, b: Block) {
        for &i in self.func.block_insts(b) {
            self.touch_inst(i);
        }
    }

    // -----------------------------------------------------------------
    // Initialization and the pass loop (Figure 3)
    // -----------------------------------------------------------------

    fn execute(mut self) -> GvnResults {
        self.stats.num_insts = self.func.num_insts() as u64;
        let start_everywhere = !self.cfg.unreachable_code_elim || self.cfg.mode == Mode::Pessimistic;
        if start_everywhere {
            let order: Vec<Block> = self.rpo.order().to_vec();
            for b in order {
                self.reach_blocks.insert(b);
                self.touch_block_insts(b);
                self.touched_blocks.insert(b);
            }
            for e in self.func.edges() {
                let from = self.func.edge_from(e);
                if self.rpo.is_reachable(from) {
                    self.reach_edges.insert(e);
                    if let Some(rdt) = self.rdt.as_mut() {
                        rdt.add_edge(e);
                    }
                }
            }
        } else {
            let entry = self.func.entry();
            self.reach_blocks.insert(entry);
            self.touch_block_insts(entry);
        }

        loop {
            self.stats.passes += 1;
            self.any_change = false;
            for bi in 0..self.rpo.order().len() {
                let b = self.rpo.order()[bi];
                self.vi_cache.clear();
                self.pi_cache.clear();
                if self.touched_blocks.remove(b)
                    && self.reach_blocks.contains(b)
                    && self.cfg.phi_predication
                {
                    self.compute_block_predicate(b);
                }
                let insts = self.func.block_insts(b).to_vec();
                for inst in insts {
                    if self.touched_insts.remove(inst) && self.reach_blocks.contains(b) {
                        self.stats.insts_processed += 1;
                        #[cfg(debug_assertions)]
                        if self.stats.passes > 64 && std::env::var_os("PGVN_DEBUG_OSC").is_some() {
                            let before = self.func.inst_result(inst).map(|v| self.classes.class_of(v));
                            self.process_inst(inst, b);
                            let after = self.func.inst_result(inst).map(|v| self.classes.class_of(v));
                            if before != after {
                                eprintln!(
                                    "pass {}: {inst} in {b} moved {:?} -> {:?} ({:?})",
                                    self.stats.passes, before, after, self.func.kind(inst)
                                );
                            }
                            continue;
                        }
                        self.process_inst(inst, b);
                    }
                }
            }
            if self.cfg.mode != Mode::Optimistic {
                break;
            }
            if !self.cfg.sparse {
                // Dense formulation: brute-force reapplication while
                // anything changed in the pass.
                if self.any_change && self.stats.passes < MAX_PASSES {
                    let blocks: Vec<Block> = self.reach_blocks.iter().collect();
                    for b in blocks {
                        self.touch_block_insts(b);
                        self.touched_blocks.insert(b);
                    }
                    continue;
                }
                break;
            }
            if self.touched_insts.is_empty() && self.touched_blocks.is_empty() {
                break;
            }
            if self.stats.passes >= MAX_PASSES {
                return self.finish(false);
            }
        }
        self.finish(true)
    }

    fn finish(self, converged: bool) -> GvnResults {
        let mut stats = self.stats;
        stats.converged = converged;
        let nvals = self.func.value_capacity();
        let class_of: Vec<ClassId> = (0..nvals).map(|i| self.classes.class_of(Value::new(i))).collect();
        let leaders: Vec<Leader> = (0..self.classes.num_class_slots())
            .map(|i| self.classes.leader(ClassId::from_raw(i as u32)))
            .collect();
        GvnResults {
            reachable_blocks: self.reach_blocks,
            reachable_edges: self.reach_edges,
            class_of,
            leaders,
            stats,
        }
    }

    // -----------------------------------------------------------------
    // Instruction processing
    // -----------------------------------------------------------------

    fn process_inst(&mut self, inst: Inst, b: Block) {
        match self.func.kind(inst) {
            InstKind::Jump | InstKind::Branch(_) | InstKind::Switch(..) => self.process_outgoing_edges(b),
            InstKind::Return(_) => {}
            _ => {
                let v = self.func.inst_result(inst).expect("value-defining instruction");
                let e = self.evaluate(inst, b);
                if self.congruence_finding(v, e) {
                    self.any_change = true;
                    let users = self.defuse.uses(v).to_vec();
                    for u in users {
                        self.touch_inst(u);
                    }
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Symbolic evaluation (Figure 4, top half)
    // -----------------------------------------------------------------

    // -----------------------------------------------------------------
    // φ evaluation (Figure 4 lines 10–23)
    // -----------------------------------------------------------------

    // -----------------------------------------------------------------
    // Congruence finding (Figure 4, bottom half)
    // -----------------------------------------------------------------

    // -----------------------------------------------------------------
    // Edges (Figure 5)
    // -----------------------------------------------------------------

    // -----------------------------------------------------------------
    // φ-predication (Figure 8)
    // -----------------------------------------------------------------

}

