//! φ evaluation (Figure 4 lines 10–23) and congruence finding
//! (Figure 4 bottom half): the heart of the hash-based partitioning.

use super::*;

impl Run<'_, '_, '_, '_> {
    pub(super) fn eval_phi(&mut self, v: Value, b: Block, args: &[Value]) -> Option<ExprId> {
        let preds = self.func.preds(b).to_vec();
        if self.cfg.mode != Mode::Optimistic && preds.iter().any(|&e| self.rpo.is_back_edge(e)) {
            // Balanced/pessimistic: cyclic φs are unique values (§2.6).
            return Some(self.interner.intern(ExprKind::Unique(v)));
        }
        // Evaluate each argument carried by a reachable edge. Arguments
        // that are still ⊥ are *ignored*, exactly like arguments on
        // unreachable edges: ⊥ is the optimistic "any value" assumption,
        // and dropping it is what lets mutually-dependent φ cycles resolve.
        let mut pairs: Vec<(Edge, ExprId)> = Vec::with_capacity(args.len());
        let mut dropped_bottom = false;
        for (i, &e) in preds.iter().enumerate() {
            if !self.reach_edges.contains(e) {
                continue;
            }
            match self.infer_value_at_edge(args[i], e) {
                Some(ae) => pairs.push((e, ae)),
                None => dropped_bottom = true,
            }
        }
        if pairs.is_empty() {
            return None;
        }
        // Reorder to CANONICAL[B] when the block predicate is known and
        // the correspondence with reachable incoming edges is intact.
        let key = match self.block_pred[b.index()] {
            Some(p) if !dropped_bottom && self.canonical[b.index()].len() == pairs.len() => {
                let canon = self.canonical[b.index()].clone();
                let mut reordered = Vec::with_capacity(pairs.len());
                let mut ok = true;
                for e in canon {
                    match pairs.iter().find(|&&(pe, _)| pe == e) {
                        Some(&p2) => reordered.push(p2),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    pairs = reordered;
                    PhiKey::Pred(p)
                } else {
                    PhiKey::Block(b)
                }
            }
            _ => PhiKey::Block(b),
        };
        let arg_exprs: Vec<ExprId> = pairs.into_iter().map(|(_, ae)| ae).collect();
        // All-congruent arguments reduce the φ (Figure 4 line 23). Note:
        // no "self-reference" shortcut here — reducing φ(x, self) → x in a
        // later pass would be a move *up* the lattice and break the
        // optimistic-to-pessimistic monotonicity that §4's termination
        // argument relies on. A φ that is its own class leader simply
        // hashes to its existing class through its Leader leaf.
        if let [single, rest @ ..] = &arg_exprs[..] {
            if rest.iter().all(|a| a == single) {
                return Some(*single);
            }
        }
        Some(self.interner.intern(ExprKind::Phi(key, arg_exprs)))
    }

    pub(super) fn congruence_finding(
        &mut self,
        v: Value,
        e: Option<ExprId>,
    ) -> Result<bool, GvnError> {
        let was_changed = self.changed.remove(v);
        let Some(e) = e else {
            return Ok(was_changed);
        };
        let c0 = self.classes.class_of(v);
        let target = if let Some(w) = self.interner.as_value(e) {
            // The expression is (congruent to) an existing value.
            self.classes.class_of(w)
        } else {
            match self.classes.lookup(e) {
                Some(c) => c,
                None => {
                    let leader = match self.interner.as_const(e) {
                        Some(k) => Leader::Const(k),
                        None => Leader::Value(v),
                    };
                    self.classes.create_class(leader, e)
                }
            }
        };
        if target == c0 {
            return Ok(was_changed);
        }
        self.classes.move_value(v, target);
        self.stats.class_merges += 1;
        // Class movement can invalidate memoized inference results.
        self.vi_cache.clear();
        self.pi_cache.clear();
        self.stats.vi_cache_evictions += 1;
        if c0 != ClassId::INITIAL
            && self.classes.size(c0) > 0
            && self.classes.leader(c0) == Leader::Value(v)
        {
            // Leader departure (Figure 4 lines 52–56): elect the lowest-
            // ranked member, mark the class changed, re-evaluate members.
            let members: Vec<Value> = self.classes.members(c0).collect();
            let Some(new_leader) = members.iter().copied().min_by_key(|&m| (self.rank(m), m))
            else {
                return Err(GvnError::invariant(format!(
                    "class {c0} reported non-empty on leader departure of {v} but has no members"
                )));
            };
            self.classes.set_leader(c0, Leader::Value(new_leader));
            for m in members {
                self.changed.insert(m);
                self.touch_inst(self.func.def(m));
                let users = self.defuse.uses(m).to_vec();
                for u in users {
                    self.touch_inst(u);
                }
            }
        }
        Ok(true)
    }
}
