//! Edge processing (Figure 5): reachability growth, `PREDICATE[E]`
//! maintenance for branches and switches, and the conservative
//! re-touching that keeps the sparse formulation sound.

use super::*;

impl Run<'_, '_, '_, '_> {
    pub(super) fn process_outgoing_edges(&mut self, b: Block) {
        let Some(term) = self.func.terminator(b) else {
            return;
        };
        let succs = self.func.succs(b).to_vec();
        let term_kind = self.func.kind(term).clone();
        let reachability: Vec<bool> = match &term_kind {
            InstKind::Return(_) => return,
            InstKind::Jump => vec![true],
            InstKind::Branch(cond) => {
                if !self.cfg.unreachable_code_elim {
                    vec![true, true]
                } else {
                    match self.classes.leader(self.classes.class_of(*cond)) {
                        Leader::Const(k) => vec![k != 0, k == 0],
                        Leader::Undetermined => vec![false, false],
                        Leader::Value(_) => vec![true, true],
                    }
                }
            }
            InstKind::Switch(arg, cases) => {
                if !self.cfg.unreachable_code_elim {
                    vec![true; cases.len() + 1]
                } else {
                    match self.classes.leader(self.classes.class_of(*arg)) {
                        Leader::Const(k) => {
                            let hit = cases.iter().position(|&c| c == k).unwrap_or(cases.len());
                            (0..=cases.len()).map(|i| i == hit).collect()
                        }
                        Leader::Undetermined => vec![false; cases.len() + 1],
                        Leader::Value(_) => vec![true; cases.len() + 1],
                    }
                }
            }
            _ => unreachable!("terminator"),
        };
        for (i, &edge) in succs.iter().enumerate() {
            if reachability[i] && self.reach_edges.insert(edge) {
                self.any_change = true;
                if let Some(rdt) = self.rdt.as_mut() {
                    rdt.add_edge(edge);
                }
                let d = self.func.edge_to(edge);
                if self.reach_blocks.insert(d) {
                    self.touch_block_insts(d);
                    self.touched_blocks.insert(d);
                } else {
                    // The destination became a confluence node: touch its
                    // φs and conservatively re-run inference downstream
                    // (Figure 5 footnote 7).
                    let phis: Vec<Inst> = self
                        .func
                        .block_insts(d)
                        .iter()
                        .copied()
                        .filter(|&i2| self.func.kind(i2).is_phi())
                        .collect();
                    for p in phis {
                        self.touch_inst(p);
                    }
                    self.propagate_change_in_edge(edge);
                }
            }
        }
        // Maintain PREDICATE[E] (Figure 5 lines 16–21). Switch case
        // edges carry the equality predicate `caseᵢ = arg` (§3: "can be
        // extended to handle switch instructions"); the default edge has
        // no explicit predicate and stays ∅, exactly the case the paper
        // singles out.
        if let InstKind::Switch(arg, cases) = &term_kind {
            if self.preds_enabled() {
                let leader = match self.classes.leader(self.classes.class_of(*arg)) {
                    Leader::Value(l) => Some(l),
                    _ => None,
                };
                for (i, &edge) in succs.iter().enumerate() {
                    let p = match (leader, cases.get(i)) {
                        (Some(l), Some(&c)) => {
                            let ce = self.interner.constant(c);
                            let le = self.interner.leader(l);
                            Some(Pred { op: CmpOp::Eq, lhs: ce, rhs: le })
                        }
                        _ => None, // default edge, or constant arg
                    };
                    if self.edge_pred[edge.index()] != p {
                        self.edge_pred[edge.index()] = p;
                        if let Some(p) = p {
                            self.pred_operands.insert(p.lhs);
                            self.pred_operands.insert(p.rhs);
                            if let Some(c) = self.class_of_expr(p.rhs) {
                                self.inferenceable_classes.insert(c);
                            }
                        }
                        self.any_change = true;
                        self.propagate_change_in_edge(edge);
                    }
                }
            }
        }
        if let InstKind::Branch(cond) = &term_kind {
            if self.preds_enabled() {
                let base = self.branch_predicate(*cond);
                for (i, &edge) in succs.iter().enumerate() {
                    let p = if i == 0 { base } else { base.map(Pred::negated) };
                    if self.edge_pred[edge.index()] != p {
                        self.edge_pred[edge.index()] = p;
                        if let Some(p) = p {
                            self.pred_operands.insert(p.lhs);
                            self.pred_operands.insert(p.rhs);
                            if p.op == CmpOp::Eq {
                                if let Some(c) = self.class_of_expr(p.rhs) {
                                    self.inferenceable_classes.insert(c);
                                }
                            }
                        }
                        self.any_change = true;
                        self.propagate_change_in_edge(edge);
                    }
                }
            }
        }
    }

    /// Computes the canonical predicate of the *true* edge of a branch on
    /// `cond`. Constant (decided) predicates are ∅ (Figure 5 line 18).
    pub(super) fn branch_predicate(&mut self, cond: Value) -> Option<Pred> {
        let class = self.classes.class_of(cond);
        let leader = match self.classes.leader(class) {
            Leader::Undetermined | Leader::Const(_) => return None,
            Leader::Value(l) => l,
        };
        // Prefer the class's canonical defining expression; fall back to
        // re-evaluating the leader's comparison instruction, then to the
        // generic truthiness predicate `0 ≠ leader`.
        if let Some(def_e) = self.classes.expression(class) {
            if let ExprKind::Cmp(op, lhs, rhs) = *self.interner.kind(def_e) {
                return Some(Pred { op, lhs, rhs });
            }
        }
        match self.func.kind(self.func.def(leader)).clone() {
            InstKind::Cmp(op, a, b) => {
                let ae = self.leader_expr(a)?;
                let be = self.leader_expr(b)?;
                let e = self.eval_cmp(op, ae, be);
                match *self.interner.kind(e) {
                    ExprKind::Cmp(cop, lhs, rhs) => Some(Pred { op: cop, lhs, rhs }),
                    _ => None, // folded to a constant
                }
            }
            _ => {
                let zero = self.interner.constant(0);
                let le = self.interner.leader(leader);
                Some(Pred { op: CmpOp::Ne, lhs: zero, rhs: le })
            }
        }
    }

    /// Figure 5 lines 22–32: conservative re-touching after a change in
    /// the reachability or predicate of an edge.
    ///
    /// Both variants touch everything at or after the destination in RPO.
    /// The paper's complete variant touches the smaller set of blocks
    /// dominated by / postdominating the destination; that set misses φs
    /// at join points whose arguments were refined by inference walks
    /// rooted in the region (see DESIGN.md), so this reproduction uses the
    /// RPO-downstream superset for both variants — sound, and every bit
    /// as strong.
    pub(super) fn propagate_change_in_edge(&mut self, edge: Edge) {
        if !self.preds_enabled() {
            return;
        }
        let d = self.func.edge_to(edge);
        let dn = self.rpo.number(d);
        let order: Vec<Block> = self.rpo.order().to_vec();
        for blk in order {
            if self.rpo.number(blk) >= dn {
                self.touch_block_insts(blk);
                self.touched_blocks.insert(blk);
            }
        }
    }
}
