//! Symbolic evaluation (§2.2): constant folding, algebraic
//! simplification, global reassociation into rank-ordered sums of
//! products, canonical comparisons, and the §6 φ-distribution extension.

use super::*;

impl Run<'_, '_, '_, '_> {
    /// The leader of `v`'s class as an expression; `None` while ⊥.
    pub(super) fn leader_expr(&mut self, v: Value) -> Option<ExprId> {
        match self.classes.leader(self.classes.class_of(v)) {
            Leader::Undetermined => None,
            Leader::Const(c) => Some(self.interner.constant(c)),
            Leader::Value(l) => Some(self.interner.leader(l)),
        }
    }

    /// An operand of an ordinary expression: leader, refined by value
    /// inference at the containing block (Figure 4 line 25).
    pub(super) fn operand_expr(&mut self, v: Value, b: Block) -> Option<ExprId> {
        if self.cfg.value_inference && !self.cfg.sccp_only {
            self.infer_value_at_block(v, b)
        } else {
            self.leader_expr(v)
        }
    }

    /// The linear form of an operand expression, honouring forward
    /// propagation through the defining expression of its class (§2.2).
    pub(super) fn linear_of(&mut self, e: ExprId) -> LinearExpr {
        if let Some(c) = self.interner.as_const(e) {
            return LinearExpr::from_const(c);
        }
        if let Some(v) = self.interner.as_value(e) {
            // Forward propagation: splice in the defining expression of
            // the operand's class when it is itself linear.
            let class = self.classes.class_of(v);
            if let Some(def_e) = self.classes.expression(class) {
                if let ExprKind::Linear(l) = self.interner.kind(def_e) {
                    return l.clone();
                }
            }
            return LinearExpr::from_value(v);
        }
        // Compound non-linear expression: if it names a class, use its
        // leader as an atom; otherwise it cannot appear inside a linear
        // form and the caller falls back to an opaque Op node.
        if let Some(class) = self.classes.lookup(e) {
            if let Leader::Value(l) = self.classes.leader(class) {
                return LinearExpr::from_value(l);
            }
            if let Leader::Const(c) = self.classes.leader(class) {
                return LinearExpr::from_const(c);
            }
        }
        LinearExpr::default()
    }

    /// Interns a linear expression, demoting to `Const`/`Leader` leaves.
    pub(super) fn finish_linear(&mut self, l: LinearExpr) -> ExprId {
        if let Some(c) = l.as_const() {
            self.interner.constant(c)
        } else if let Some(v) = l.as_single_value() {
            self.interner.leader(v)
        } else {
            self.interner.intern(ExprKind::Linear(l))
        }
    }

    /// Symbolically evaluates `inst` (whose result value is `v`, checked
    /// by the caller so missing results are a recoverable invariant
    /// failure rather than a panic) in block `b`.
    pub(super) fn evaluate(&mut self, inst: Inst, v: Value, b: Block) -> Option<ExprId> {
        let kind = self.func.kind(inst).clone();
        let result = match kind {
            InstKind::Const(c) => Some(self.interner.constant(c)),
            InstKind::Param(_) => Some(self.interner.intern(ExprKind::Unique(v))),
            InstKind::Opaque(t) => Some(self.interner.intern(ExprKind::Opaque(t))),
            InstKind::Copy(a) => self.operand_expr(a, b),
            InstKind::Unary(op, a) => {
                let ae = self.operand_expr(a, b)?;
                Some(self.eval_unary(op, ae))
            }
            InstKind::Binary(op, a, b2) => {
                let ae = self.operand_expr(a, b)?;
                let be = self.operand_expr(b2, b)?;
                Some(self.eval_binary(op, ae, be))
            }
            InstKind::Cmp(op, a, b2) => {
                let ae = self.operand_expr(a, b)?;
                let be = self.operand_expr(b2, b)?;
                if self.cfg.phi_op_distribution {
                    if let Some(e) = self.try_phi_distribution(PhiOp::Compare(op), ae, be, 0) {
                        return Some(e);
                    }
                }
                let cmp = self.eval_cmp(op, ae, be);
                Some(self.apply_predicate_inference(cmp, b))
            }
            InstKind::Phi(ref args) => self.eval_phi(v, b, args),
            InstKind::Jump | InstKind::Branch(_) | InstKind::Switch(..) | InstKind::Return(_) => {
                unreachable!()
            }
        };
        // SCCP emulation: non-constants are bottom (§2.9).
        match result {
            Some(e) if self.cfg.sccp_only && self.interner.as_const(e).is_none() => {
                Some(self.interner.intern(ExprKind::Unique(v)))
            }
            other => other,
        }
    }

    pub(super) fn eval_unary(&mut self, op: UnOp, ae: ExprId) -> ExprId {
        if self.cfg.constant_folding {
            if let Some(c) = self.interner.as_const(ae) {
                return self.interner.constant(op.eval(c));
            }
        }
        if self.cfg.global_reassociation {
            let l = self.linear_of(ae);
            let folded = match op {
                UnOp::Neg => l.neg(),
                // ~x == -x - 1 in two's complement.
                UnOp::Not => l.neg().add(&LinearExpr::from_const(-1)),
            };
            if folded.size() <= self.cfg.forward_propagation_limit {
                return self.finish_linear(folded);
            }
        }
        self.interner.intern(ExprKind::Un(op, ae))
    }

    pub(super) fn eval_binary(&mut self, op: BinOp, ae: ExprId, be: ExprId) -> ExprId {
        let consts = (self.interner.as_const(ae), self.interner.as_const(be));
        if self.cfg.constant_folding {
            if let (Some(x), Some(y)) = consts {
                // The oracle's self-test knob: folded additions are off by
                // one, so the translation validator has a real (injected)
                // miscompile to catch. See `GvnConfig::debug_miscompile`.
                let bias = i64::from(self.cfg.debug_miscompile && op == BinOp::Add);
                return self.interner.constant(op.eval(x, y).wrapping_add(bias));
            }
        }
        if self.cfg.phi_op_distribution {
            if let Some(e) = self.try_phi_distribution(PhiOp::Bin(op), ae, be, 0) {
                return e;
            }
        }
        if self.cfg.global_reassociation {
            if let Some(e) = self.eval_reassociated(op, ae, be) {
                return e;
            }
        }
        if self.cfg.algebraic_simplification {
            if let Some(e) = self.eval_identities(op, ae, be, consts) {
                return e;
            }
        }
        // Commutative canonicalization is part of the commutative law,
        // i.e. global reassociation (§1.3) — not plain simplification.
        let (ae, be) = if self.cfg.global_reassociation && op.is_commutative() {
            self.ordered_pair(ae, be)
        } else {
            (ae, be)
        };
        self.interner.intern(ExprKind::Op(op, vec![ae, be]))
    }

    /// The §6 extension: distributes an operation over φ expressions with
    /// identical keys (same block, or congruent block predicates), and
    /// over (φ, scalar) pairs. The resulting expression names the value
    /// `φ(a₁ op b₁, …)`, which is exactly what a real φ over the
    /// per-edge results would compute — so values built either way become
    /// congruent (Figure 14).
    pub(super) fn try_phi_distribution(
        &mut self,
        op: PhiOp,
        ae: ExprId,
        be: ExprId,
        depth: u32,
    ) -> Option<ExprId> {
        const MAX_DEPTH: u32 = 4;
        if depth > MAX_DEPTH {
            return None;
        }
        let phi_parts = |run: &Self, e: ExprId| -> Option<(PhiKey, Vec<ExprId>)> {
            let v = run.interner.as_value(e)?;
            let class = run.classes.class_of(v);
            match run.interner.kind(run.classes.expression(class)?) {
                ExprKind::Phi(key, args) => Some((*key, args.clone())),
                _ => None,
            }
        };
        let scalar = |run: &Self, e: ExprId| -> bool {
            run.interner.as_const(e).is_some()
                || matches!(
                    run.interner.kind(e),
                    ExprKind::Leader(_) | ExprKind::Unique(_) | ExprKind::Opaque(_)
                )
        };
        let (key, pairs): (PhiKey, Vec<(ExprId, ExprId)>) =
            match (phi_parts(self, ae), phi_parts(self, be)) {
                (Some((ka, aa)), Some((kb, ba))) if ka == kb && aa.len() == ba.len() => {
                    (ka, aa.into_iter().zip(ba).collect())
                }
                (Some((ka, aa)), None) if scalar(self, be) => {
                    (ka, aa.into_iter().map(|a| (a, be)).collect())
                }
                (None, Some((kb, ba))) if scalar(self, ae) => {
                    (kb, ba.into_iter().map(|b| (ae, b)).collect())
                }
                _ => return None,
            };
        if pairs.is_empty() || pairs.len() > 8 {
            return None;
        }
        let mut combined = Vec::with_capacity(pairs.len());
        for (a, b) in pairs {
            let c = match op {
                PhiOp::Bin(bop) => {
                    // Recurse through nested φs of the arguments.
                    if let Some(e) = self.try_phi_distribution(op, a, b, depth + 1) {
                        e
                    } else if self.interner.as_const(a).is_some()
                        && self.interner.as_const(b).is_some()
                    {
                        self.eval_binary(bop, a, b)
                    } else if self.cfg.global_reassociation
                        && matches!(bop, BinOp::Add | BinOp::Sub | BinOp::Mul)
                    {
                        let l = self.combine_linear(bop, a, b)?;
                        self.finish_linear(l)
                    } else {
                        return None; // keep distribution conservative
                    }
                }
                PhiOp::Compare(cop) => {
                    let e = self.eval_cmp(cop, a, b);
                    self.interner.as_const(e)?;
                    e
                }
            };
            // Normalize to the class leader so the distributed φ hashes
            // identically to a real φ over the same per-edge values.
            combined.push(self.leader_normalized(c));
        }
        if let [first, rest @ ..] = &combined[..] {
            if rest.iter().all(|c| c == first) {
                return Some(*first);
            }
        }
        let d = self.interner.intern(ExprKind::Phi(key, combined));
        if depth > 0 {
            return Some(d);
        }
        // At the top level, adopt the distributed form only when it names
        // an existing congruence class (i.e. an actual φ computed the same
        // per-edge results); otherwise fall back to standard evaluation so
        // the linear reassociation chains are not derailed.
        self.classes.lookup(d).is_some().then_some(d)
    }

    /// Rewrites an expression to its congruence class's leader expression
    /// when the class is known.
    pub(super) fn leader_normalized(&mut self, e: ExprId) -> ExprId {
        if self.interner.as_const(e).is_some() {
            return e;
        }
        let class = match self.class_of_expr(e) {
            Some(c) => c,
            None => return e,
        };
        match self.classes.leader(class) {
            Leader::Const(c) => self.interner.constant(c),
            Leader::Value(l) => self.interner.leader(l),
            Leader::Undetermined => e,
        }
    }

    /// Reassociation of +, −, ×, and shifts by constants (§2.2).
    pub(super) fn eval_reassociated(
        &mut self,
        op: BinOp,
        ae: ExprId,
        be: ExprId,
    ) -> Option<ExprId> {
        let folded = match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul => self.combine_linear(op, ae, be),
            BinOp::Shl => {
                let k = self.interner.as_const(be)?;
                if !(0..64).contains(&k) {
                    return None;
                }
                let la = self.linear_of(ae);
                Some(la.scale(1i64.wrapping_shl(k as u32)))
            }
            _ => None,
        }?;
        Some(self.finish_linear(folded))
    }

    pub(super) fn combine_linear(
        &mut self,
        op: BinOp,
        ae: ExprId,
        be: ExprId,
    ) -> Option<LinearExpr> {
        let limit = self.cfg.forward_propagation_limit;
        let la = self.linear_of(ae);
        let lb = self.linear_of(be);
        let apply = |la: &LinearExpr, lb: &LinearExpr, rank_of: &[u32]| match op {
            BinOp::Add => la.add(lb),
            BinOp::Sub => la.sub(lb),
            BinOp::Mul => la.mul(lb, &|v: Value| rank_of[v.index()]),
            _ => unreachable!("combine_linear handles +, -, ×"),
        };
        let out = apply(&la, &lb, &self.rank_of);
        if out.size() <= limit {
            return Some(out);
        }
        // Forward propagation cancelled (§2.2 footnote 4): retry with the
        // operands as atoms instead of their defining expressions.
        self.stats.reassoc_cap_hits += 1;
        let la = atomic_linear(self.interner, ae)?;
        let lb = atomic_linear(self.interner, be)?;
        let out = apply(&la, &lb, &self.rank_of);
        (out.size() <= limit).then_some(out)
    }

    /// Local algebraic identities for non-reassociable operators.
    pub(super) fn eval_identities(
        &mut self,
        op: BinOp,
        ae: ExprId,
        be: ExprId,
        consts: (Option<i64>, Option<i64>),
    ) -> Option<ExprId> {
        let (ca, cb) = consts;
        let e = match (op, ca, cb) {
            (BinOp::Add, Some(0), _) => be,
            (BinOp::Add, _, Some(0)) => ae,
            (BinOp::Sub, _, Some(0)) => ae,
            (BinOp::Sub, _, _) if ae == be => self.interner.constant(0),
            (BinOp::Mul, Some(1), _) => be,
            (BinOp::Mul, _, Some(1)) => ae,
            (BinOp::Mul, Some(0), _) | (BinOp::Mul, _, Some(0)) => self.interner.constant(0),
            (BinOp::Div, _, Some(1)) => ae,
            (BinOp::Div, Some(0), _) => self.interner.constant(0),
            // Total semantics: x / 0 == 0 and x % 0 == 0 (DESIGN.md).
            (BinOp::Div, _, Some(0)) | (BinOp::Rem, _, Some(0)) => self.interner.constant(0),
            (BinOp::Rem, _, Some(1)) => self.interner.constant(0),
            (BinOp::Rem, _, _) if ae == be => self.interner.constant(0),
            (BinOp::And, _, Some(0)) | (BinOp::And, Some(0), _) => self.interner.constant(0),
            (BinOp::And, _, Some(-1)) => ae,
            (BinOp::And, Some(-1), _) => be,
            (BinOp::And, _, _) | (BinOp::Or, _, _) if ae == be => ae,
            (BinOp::Or, _, Some(0)) => ae,
            (BinOp::Or, Some(0), _) => be,
            (BinOp::Or, _, Some(-1)) | (BinOp::Or, Some(-1), _) => self.interner.constant(-1),
            (BinOp::Xor, _, Some(0)) => ae,
            (BinOp::Xor, Some(0), _) => be,
            (BinOp::Xor, _, _) if ae == be => self.interner.constant(0),
            (BinOp::Shl, _, Some(0)) | (BinOp::Shr, _, Some(0)) => ae,
            (BinOp::Shl, Some(0), _) | (BinOp::Shr, Some(0), _) => self.interner.constant(0),
            _ => return None,
        };
        Some(e)
    }

    /// A canonical sort key for predicate/commutative operand ordering:
    /// constants first (rank 0), then values by rank, then compound
    /// expressions (§2.2, §2.8).
    pub(super) fn operand_key(&self, e: ExprId) -> (u8, u32, u32) {
        if self.interner.as_const(e).is_some() {
            (0, 0, e.index() as u32)
        } else if let Some(v) = self.interner.as_value(e) {
            (1, self.rank(v), v.as_u32())
        } else {
            (2, 0, e.index() as u32)
        }
    }

    pub(super) fn ordered_pair(&self, a: ExprId, b: ExprId) -> (ExprId, ExprId) {
        if self.operand_key(a) <= self.operand_key(b) {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Canonical comparison evaluation (shared by instruction evaluation
    /// and edge-predicate maintenance).
    pub(super) fn eval_cmp(&mut self, op: CmpOp, ae: ExprId, be: ExprId) -> ExprId {
        if self.cfg.constant_folding {
            if let (Some(x), Some(y)) = (self.interner.as_const(ae), self.interner.as_const(be)) {
                return self.interner.constant(op.eval(x, y));
            }
        }
        if self.cfg.algebraic_simplification && ae == be {
            // Same canonical operand on both sides.
            return self.interner.constant(op.holds_on_equal() as i64);
        }
        // Canonical comparison-operand order is required by the predicate
        // machinery (§2.8) and counts as a commutative-law rewrite
        // otherwise; pure AWZ emulation turns it off.
        let canonicalize = self.cfg.global_reassociation
            || self.cfg.algebraic_simplification
            || self.preds_enabled();
        let (op, ae, be) = if !canonicalize || self.operand_key(ae) <= self.operand_key(be) {
            (op, ae, be)
        } else {
            (op.swapped(), be, ae)
        };
        self.interner.intern(ExprKind::Cmp(op, ae, be))
    }
}

pub(super) fn atomic_linear(interner: &Interner, e: ExprId) -> Option<LinearExpr> {
    if let Some(c) = interner.as_const(e) {
        Some(LinearExpr::from_const(c))
    } else {
        interner.as_value(e).map(LinearExpr::from_value)
    }
}

/// The operation being distributed over φs by the §6 extension.
#[derive(Clone, Copy)]
pub(super) enum PhiOp {
    Bin(BinOp),
    Compare(CmpOp),
}
