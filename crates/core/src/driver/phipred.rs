//! φ-predication (§2.8, Figure 8): block predicates as canonical
//! OR-of-AND path formulas between a block and its immediate dominator,
//! plus the `CANONICAL` edge ordering.

use super::*;

impl Run<'_, '_, '_, '_> {
    pub(super) fn compute_block_predicate(&mut self, b0: Block) {
        if self.nullified_blocks.contains(b0) {
            return; // §3: permanently nullified after an aborted traversal
        }
        let reachable_incoming =
            self.func.preds(b0).iter().filter(|&&e| self.reach_edges.contains(e)).count();
        let d0 = match self.rdt.as_mut() {
            Some(rdt) => rdt.idom(self.func, b0),
            None => self.domtree.idom(b0),
        };
        let new_pred;
        let mut new_canon = Vec::new();
        match d0 {
            Some(d0)
                if d0 != b0 && self.postdom.postdominates(b0, d0) && reachable_incoming >= 1 =>
            {
                // Recycle the per-block OR-operand table from the session
                // context (empty inner vec = unvisited); it is cleared and
                // returned below, so each traversal starts blank.
                let mut or_ops = std::mem::take(self.or_ops);
                for ops in &mut or_ops {
                    ops.clear();
                }
                if or_ops.len() < self.func.block_capacity() {
                    or_ops.resize_with(self.func.block_capacity(), Vec::new);
                }
                let mut ctx = PredCtx {
                    b0,
                    aborted: false,
                    incomplete: false,
                    canonical: Vec::new(),
                    or_ops,
                    result: Vec::new(),
                };
                self.compute_partial(d0, None, true, &mut ctx);
                *self.or_ops = std::mem::take(&mut ctx.or_ops);
                if ctx.aborted && self.cfg.nullify_aborted_predicates {
                    self.nullified_blocks.insert(b0);
                }
                if ctx.aborted || ctx.incomplete || ctx.result.len() != reachable_incoming {
                    new_pred = None;
                } else {
                    new_canon = ctx.canonical;
                    let t = self.interner.constant(1);
                    let ops: Vec<ExprId> = ctx.result.iter().map(|o| o.unwrap_or(t)).collect();
                    new_pred = if ops.len() == 1 {
                        Some(ops[0])
                    } else {
                        Some(self.interner.intern(ExprKind::PredOr(ops)))
                    };
                }
            }
            _ => new_pred = None,
        }
        if self.block_pred[b0.index()] != new_pred || self.canonical[b0.index()] != new_canon {
            self.block_pred[b0.index()] = new_pred;
            self.canonical[b0.index()] = new_canon;
            let phis: Vec<Inst> = self
                .func
                .block_insts(b0)
                .iter()
                .copied()
                .filter(|&i| self.func.kind(i).is_phi())
                .collect();
            for p in phis {
                self.touch_inst(p);
            }
            self.any_change = true;
        }
    }

    pub(super) fn compute_partial(
        &mut self,
        b: Block,
        pp: Option<ExprId>,
        ignore_incoming: bool,
        ctx: &mut PredCtx,
    ) {
        if ctx.aborted || ctx.incomplete {
            return;
        }
        self.stats.phi_predication_visits += 1;
        let reachable_in =
            self.func.preds(b).iter().filter(|&&e| self.reach_edges.contains(e)).count();
        if b == ctx.b0 {
            // A path arrived at B0: record its predicate as the next OR
            // operand (correspondence with CANONICAL is kept by the
            // caller pushing the edge right after this call).
            ctx.result.push(pp);
            return;
        }
        let partial = if ignore_incoming || reachable_in < 2 {
            pp
        } else {
            // A confluence node inside the region: accumulate one operand
            // per incoming path and proceed only once complete.
            let t = self.interner.constant(1);
            let ops = &mut ctx.or_ops[b.index()];
            ops.push(pp.unwrap_or(t));
            if ops.len() < reachable_in {
                return;
            }
            let ops = ops.clone();
            Some(if ops.len() == 1 { ops[0] } else { self.interner.intern(ExprKind::PredOr(ops)) })
        };
        // Skip-to-postdominator shortcut (Figure 8 lines 25–28).
        if let Some(d) = self.postdom.ipdom(b) {
            if d != ctx.b0 && self.domtree.dominates(b, d) {
                self.compute_partial(d, partial, true, ctx);
                return;
            }
        }
        let succs = self.canonical_succs(b);
        let reachable_out = succs.iter().filter(|&&e| self.reach_edges.contains(e)).count();
        // A split is *ambiguous* when two or more of its reachable edges
        // carry no predicate: a branch whose condition is constant or still
        // unresolved (both edges ∅, Figure 5 line 18), or a switch on a
        // constant scrutinee with unreachable-code elimination off. A
        // formula cannot express which way such a split goes, so treating
        // its ∅ edges as "true" would key φs under *different* splits with
        // identical predicates — a real, interpreter-visible miscompile in
        // pessimistic mode, where the decided branch keeps both edges
        // reachable. A *single* ∅ edge among predicated siblings (the §3
        // switch default) is fine: the sibling case predicates appear in
        // the formula and pin down the default condition.
        let ambiguous = reachable_out >= 2
            && succs
                .iter()
                .filter(|&&e| self.reach_edges.contains(e) && self.edge_pred[e.index()].is_none())
                .count()
                >= 2;
        for e in succs {
            if ctx.aborted || ctx.incomplete {
                return;
            }
            if !self.reach_edges.contains(e) {
                continue;
            }
            if self.rpo.is_back_edge(e) {
                ctx.aborted = true;
                return;
            }
            let ep = if reachable_out == 1 {
                partial
            } else {
                let edge_p = self.edge_pred[e.index()].map(|p| self.pred_expr(p));
                match (partial, edge_p) {
                    // ∅ edge of an ambiguous split: the block gets no
                    // predicate this pass. Unlike a back-edge abort this is
                    // not nullified, so the key upgrades if the predicate
                    // materializes later (e.g. the condition class leaves ⊥).
                    (_, None) if ambiguous => {
                        ctx.incomplete = true;
                        return;
                    }
                    (None, ep) => ep,
                    (pp2, None) => pp2,
                    (Some(a), Some(b2)) => {
                        Some(self.interner.intern(ExprKind::PredAnd(vec![a, b2])))
                    }
                }
            };
            let dest = self.func.edge_to(e);
            self.compute_partial(dest, ep, false, ctx);
            if dest == ctx.b0 {
                ctx.canonical.push(e);
            }
        }
    }

    pub(super) fn pred_expr(&mut self, p: Pred) -> ExprId {
        self.interner.intern(ExprKind::Cmp(p.op, p.lhs, p.rhs))
    }

    /// Outgoing edges in canonical order (§2.8: "the outgoing edges are
    /// arranged so that the predicate of the first outgoing edge has the
    /// operator =, < or ≤").
    pub(super) fn canonical_succs(&self, b: Block) -> Vec<Edge> {
        let succs = self.func.succs(b).to_vec();
        if succs.len() == 2 {
            if let Some(p) = self.edge_pred[succs[0].index()] {
                if !matches!(p.op, CmpOp::Eq | CmpOp::Lt | CmpOp::Le) {
                    return vec![succs[1], succs[0]];
                }
            }
        }
        succs
    }
}

pub(super) struct PredCtx {
    b0: Block,
    aborted: bool,
    /// A path crossed a reachable multi-way split whose edge carries no
    /// predicate: the formula is unknowable *this pass* (not nullified).
    incomplete: bool,
    canonical: Vec<Edge>,
    /// Per-block accumulated OR operands; an empty vec means unvisited.
    /// Borrowed from the session context for the traversal's duration.
    or_ops: Vec<Vec<ExprId>>,
    result: Vec<Option<ExprId>>,
}
