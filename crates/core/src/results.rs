//! Run statistics and analysis results.

use crate::classes::{ClassId, Leader};
use pgvn_ir::{Block, Edge, EntityRef, EntitySet, Value};

/// Counters collected during a GVN run (§4 and §5 report these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GvnStats {
    /// Number of RPO passes over the routine (paper: average 1.98).
    pub passes: u32,
    /// Touched instructions actually processed.
    pub insts_processed: u64,
    /// Total touch operations performed.
    pub touches: u64,
    /// Blocks visited by `Infer value at block` / `Infer value at edge`
    /// (paper: average 0.91 per instruction).
    pub value_inference_visits: u64,
    /// Blocks visited by `Infer value of predicate` (paper: 0.38).
    pub predicate_inference_visits: u64,
    /// Blocks visited by `Compute partial predicate of block`
    /// (paper: 0.16).
    pub phi_predication_visits: u64,
    /// Live instructions in the routine, for per-instruction averages.
    pub num_insts: u64,
    /// `false` if the pass cap was hit before the fixed point (should
    /// never happen; monitored by tests).
    pub converged: bool,
}

impl GvnStats {
    /// Average blocks visited per instruction by value inference.
    pub fn value_inference_per_inst(&self) -> f64 {
        self.value_inference_visits as f64 / (self.num_insts.max(1)) as f64
    }

    /// Average blocks visited per instruction by predicate inference.
    pub fn predicate_inference_per_inst(&self) -> f64 {
        self.predicate_inference_visits as f64 / (self.num_insts.max(1)) as f64
    }

    /// Average blocks visited per instruction by φ-predication.
    pub fn phi_predication_per_inst(&self) -> f64 {
        self.phi_predication_visits as f64 / (self.num_insts.max(1)) as f64
    }
}

/// The per-routine strength measures compared in the paper's Figures
/// 10–12: unreachable values and constant values (more is better),
/// congruence classes (fewer is better).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Strength {
    /// Values proven unreachable.
    pub unreachable_values: usize,
    /// Values proven constant. Per §5, unreachable values count as
    /// constant values too ("when a constant value is found to be
    /// unreachable, it improves the number of unreachable values but
    /// worsens the number of constant values; we correct for this by
    /// counting unreachable values as constant values too").
    pub constant_values: usize,
    /// Congruence classes among reachable values.
    pub congruence_classes: usize,
}

/// The outcome of running the GVN algorithm on a routine.
#[derive(Clone, Debug)]
pub struct GvnResults {
    pub(crate) reachable_blocks: EntitySet<Block>,
    pub(crate) reachable_edges: EntitySet<Edge>,
    pub(crate) class_of: Vec<ClassId>,
    pub(crate) leaders: Vec<Leader>,
    /// Statistics of the run.
    pub stats: GvnStats,
}

impl GvnResults {
    /// Returns `true` if the analysis proved `b` reachable.
    pub fn is_block_reachable(&self, b: Block) -> bool {
        self.reachable_blocks.contains(b)
    }

    /// Returns `true` if the analysis proved `e` reachable.
    pub fn is_edge_reachable(&self, e: Edge) -> bool {
        self.reachable_edges.contains(e)
    }

    /// Returns `true` if `v` was proven unreachable (still in `INITIAL`).
    pub fn is_value_unreachable(&self, v: Value) -> bool {
        self.class_of[v.index()] == ClassId::INITIAL
    }

    /// The congruence class of `v`.
    pub fn class_of(&self, v: Value) -> ClassId {
        self.class_of[v.index()]
    }

    /// The constant `v` was proven to hold, if any.
    pub fn constant_value(&self, v: Value) -> Option<i64> {
        match self.leaders[self.class_of(v).index()] {
            Leader::Const(c) => Some(c),
            _ => None,
        }
    }

    /// The leader value of `v`'s class, when the leader is a value.
    pub fn leader_value(&self, v: Value) -> Option<Value> {
        match self.leaders[self.class_of(v).index()] {
            Leader::Value(l) => Some(l),
            _ => None,
        }
    }

    /// Returns `true` if `a` and `b` were proven congruent.
    pub fn congruent(&self, a: Value, b: Value) -> bool {
        let ca = self.class_of(a);
        ca != ClassId::INITIAL && ca == self.class_of(b)
    }

    /// The number of congruence classes among determined values.
    pub fn num_congruence_classes(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for (i, &c) in self.class_of.iter().enumerate() {
            let _ = i;
            if c != ClassId::INITIAL {
                seen.insert(c);
            }
        }
        seen.len()
    }

    /// The strength measures used by the paper's Figures 10–12.
    pub fn strength(&self) -> Strength {
        let unreachable = self.class_of.iter().filter(|&&c| c == ClassId::INITIAL).count();
        let constants = self
            .class_of
            .iter()
            .filter(|&&c| c == ClassId::INITIAL || matches!(self.leaders[c.index()], Leader::Const(_)))
            .count();
        Strength {
            unreachable_values: unreachable,
            constant_values: constants,
            congruence_classes: self.num_congruence_classes(),
        }
    }
}
