//! Run statistics and analysis results.

use crate::classes::{ClassId, Leader};
use pgvn_ir::{Block, Edge, EntityRef, EntitySet, Value};
use pgvn_telemetry::json::{self, JsonWriter};

/// How an analysis run ended, recorded in [`GvnStats::outcome`].
///
/// `Converged` is the only outcome of a healthy run. The budget outcomes
/// mark runs cut short by a [`crate::GvnBudget`] ceiling, and
/// `NonConverged` marks the hard pass cap — both leave the partial (still
/// conservative-to-use-with-care) results attached so callers can inspect
/// them, but [`crate::driver::try_run`] refuses to return them as `Ok`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RunOutcome {
    /// The analysis has not run (the default of an empty stats block).
    #[default]
    NotRun,
    /// The fixed point was reached.
    Converged,
    /// The hard pass cap was hit before the fixed point (a convergence
    /// bug; surfaced as [`crate::GvnError::NonConvergence`]).
    NonConverged,
    /// The configured pass ceiling was hit.
    BudgetPasses,
    /// The configured wall-clock deadline expired.
    BudgetTime,
    /// The configured touched-work quota was exhausted.
    BudgetWork,
}

impl RunOutcome {
    /// Stable snake_case name for JSON records.
    pub fn name(self) -> &'static str {
        match self {
            RunOutcome::NotRun => "not_run",
            RunOutcome::Converged => "converged",
            RunOutcome::NonConverged => "non_converged",
            RunOutcome::BudgetPasses => "budget_passes",
            RunOutcome::BudgetTime => "budget_time",
            RunOutcome::BudgetWork => "budget_work",
        }
    }

    /// Parses a [`RunOutcome::name`] string.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "not_run" => Some(RunOutcome::NotRun),
            "converged" => Some(RunOutcome::Converged),
            "non_converged" => Some(RunOutcome::NonConverged),
            "budget_passes" => Some(RunOutcome::BudgetPasses),
            "budget_time" => Some(RunOutcome::BudgetTime),
            "budget_work" => Some(RunOutcome::BudgetWork),
            _ => None,
        }
    }

    /// Severity rank used by [`GvnStats::merge`]: `NotRun` (identity)
    /// below `Converged`, budget outcomes in escalation order, and
    /// `NonConverged` (the convergence bug) on top. The mapping is
    /// injective, so equal severity means equal outcome and taking the
    /// maximum is a commutative, associative merge.
    pub fn severity(self) -> u8 {
        match self {
            RunOutcome::NotRun => 0,
            RunOutcome::Converged => 1,
            RunOutcome::BudgetPasses => 2,
            RunOutcome::BudgetTime => 3,
            RunOutcome::BudgetWork => 4,
            RunOutcome::NonConverged => 5,
        }
    }
}

impl std::fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Counters collected during a GVN run (§4 and §5 report these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GvnStats {
    /// Number of RPO passes over the routine (paper: average 1.98).
    pub passes: u32,
    /// Touched instructions actually processed.
    pub insts_processed: u64,
    /// Total touch operations performed.
    pub touches: u64,
    /// Blocks visited by `Infer value at block` / `Infer value at edge`
    /// (paper: average 0.91 per instruction).
    pub value_inference_visits: u64,
    /// Blocks visited by `Infer value of predicate` (paper: 0.38).
    pub predicate_inference_visits: u64,
    /// Blocks visited by `Compute partial predicate of block`
    /// (paper: 0.16).
    pub phi_predication_visits: u64,
    /// Live instructions in the routine, for per-instruction averages.
    pub num_insts: u64,
    /// Expression lookups answered by the hash-cons table.
    pub hash_cons_hits: u64,
    /// Expression lookups that interned a fresh expression.
    pub hash_cons_misses: u64,
    /// Distinct expressions in the interner when the run finished.
    pub interned_exprs: u64,
    /// Values moved between congruence classes.
    pub class_merges: u64,
    /// Reassociations abandoned because the combined linear form would
    /// exceed the operand cap.
    pub reassoc_cap_hits: u64,
    /// Value-inference queries skipped by the inferenceable-classes
    /// gate before any dominator walk.
    pub vi_gate_skips: u64,
    /// Predicate-inference queries skipped by the shared-operand gate
    /// before any dominator walk.
    pub pi_gate_skips: u64,
    /// Value-inference queries answered from the per-block memo.
    pub vi_cache_hits: u64,
    /// Value-inference queries that missed the memo and walked the
    /// dominator tree.
    pub vi_cache_misses: u64,
    /// Epoch bumps that invalidated the whole value-inference memo
    /// (block-boundary and φ-predication clears).
    pub vi_cache_evictions: u64,
    /// Predicate-inference queries answered from the per-block memo.
    pub pi_cache_hits: u64,
    /// `false` if the pass cap was hit before the fixed point (should
    /// never happen; monitored by tests).
    pub converged: bool,
    /// How the run ended (converged, non-converged, or which budget
    /// ceiling tripped). Refines `converged`.
    pub outcome: RunOutcome,
    /// The degradation-ladder rung that produced these results (0 = full
    /// predicated GVN; see `Pipeline::optimize_resilient` in
    /// `pgvn-transform`). Zero for plain `run`/`try_run`.
    pub ladder_rung: u32,
    /// Ladder rungs that failed and were rolled back before this one
    /// succeeded. Zero for plain `run`/`try_run`.
    pub ladder_failures: u32,
}

impl GvnStats {
    /// Average blocks visited per instruction by value inference.
    pub fn value_inference_per_inst(&self) -> f64 {
        self.value_inference_visits as f64 / (self.num_insts.max(1)) as f64
    }

    /// Average blocks visited per instruction by predicate inference.
    pub fn predicate_inference_per_inst(&self) -> f64 {
        self.predicate_inference_visits as f64 / (self.num_insts.max(1)) as f64
    }

    /// Average blocks visited per instruction by φ-predication.
    pub fn phi_predication_per_inst(&self) -> f64 {
        self.phi_predication_visits as f64 / (self.num_insts.max(1)) as f64
    }

    /// Renders every counter as one JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_u64("passes", u64::from(self.passes))
            .field_u64("insts_processed", self.insts_processed)
            .field_u64("touches", self.touches)
            .field_u64("value_inference_visits", self.value_inference_visits)
            .field_u64("predicate_inference_visits", self.predicate_inference_visits)
            .field_u64("phi_predication_visits", self.phi_predication_visits)
            .field_u64("num_insts", self.num_insts)
            .field_u64("hash_cons_hits", self.hash_cons_hits)
            .field_u64("hash_cons_misses", self.hash_cons_misses)
            .field_u64("interned_exprs", self.interned_exprs)
            .field_u64("class_merges", self.class_merges)
            .field_u64("reassoc_cap_hits", self.reassoc_cap_hits)
            .field_u64("vi_gate_skips", self.vi_gate_skips)
            .field_u64("pi_gate_skips", self.pi_gate_skips)
            .field_u64("vi_cache_hits", self.vi_cache_hits)
            .field_u64("vi_cache_misses", self.vi_cache_misses)
            .field_u64("vi_cache_evictions", self.vi_cache_evictions)
            .field_u64("pi_cache_hits", self.pi_cache_hits)
            .field_bool("converged", self.converged)
            .field_str("outcome", self.outcome.name())
            .field_u64("ladder_rung", u64::from(self.ladder_rung))
            .field_u64("ladder_failures", u64::from(self.ladder_failures));
        w.finish()
    }

    /// Folds another run's counters into this one, for merged batch
    /// reports: numeric counters saturating-add; `converged` is the
    /// conjunction (with `NotRun` as the identity); `outcome` keeps the
    /// most severe outcome by [`RunOutcome::severity`] (so a merged
    /// report surfaces the worst failure); `ladder_rung` keeps the
    /// deepest rung reached and `ladder_failures` accumulates. Merging
    /// is associative *and* commutative (guarded by a proptest), so
    /// merged parallel batch output is identical to sequential however
    /// the per-worker partial sums are folded.
    pub fn merge(&mut self, other: &GvnStats) {
        self.passes = self.passes.saturating_add(other.passes);
        self.insts_processed = self.insts_processed.saturating_add(other.insts_processed);
        self.touches = self.touches.saturating_add(other.touches);
        self.value_inference_visits =
            self.value_inference_visits.saturating_add(other.value_inference_visits);
        self.predicate_inference_visits =
            self.predicate_inference_visits.saturating_add(other.predicate_inference_visits);
        self.phi_predication_visits =
            self.phi_predication_visits.saturating_add(other.phi_predication_visits);
        self.num_insts = self.num_insts.saturating_add(other.num_insts);
        self.hash_cons_hits = self.hash_cons_hits.saturating_add(other.hash_cons_hits);
        self.hash_cons_misses = self.hash_cons_misses.saturating_add(other.hash_cons_misses);
        self.interned_exprs = self.interned_exprs.saturating_add(other.interned_exprs);
        self.class_merges = self.class_merges.saturating_add(other.class_merges);
        self.reassoc_cap_hits = self.reassoc_cap_hits.saturating_add(other.reassoc_cap_hits);
        self.vi_gate_skips = self.vi_gate_skips.saturating_add(other.vi_gate_skips);
        self.pi_gate_skips = self.pi_gate_skips.saturating_add(other.pi_gate_skips);
        self.vi_cache_hits = self.vi_cache_hits.saturating_add(other.vi_cache_hits);
        self.vi_cache_misses = self.vi_cache_misses.saturating_add(other.vi_cache_misses);
        self.vi_cache_evictions = self.vi_cache_evictions.saturating_add(other.vi_cache_evictions);
        self.pi_cache_hits = self.pi_cache_hits.saturating_add(other.pi_cache_hits);
        // `NotRun` (an untouched accumulator) is the identity on both
        // sides; otherwise `converged` is the conjunction. Symmetric, so
        // the merge stays commutative.
        self.converged = match (self.outcome, other.outcome) {
            (RunOutcome::NotRun, _) => other.converged,
            (_, RunOutcome::NotRun) => self.converged,
            _ => self.converged && other.converged,
        };
        if other.outcome.severity() > self.outcome.severity() {
            self.outcome = other.outcome;
        }
        self.ladder_rung = self.ladder_rung.max(other.ladder_rung);
        self.ladder_failures = self.ladder_failures.saturating_add(other.ladder_failures);
    }

    /// Parses the output of [`GvnStats::to_json`]. Every field must be
    /// present with the right type.
    pub fn from_json(text: &str) -> Result<GvnStats, String> {
        let v = json::parse(text)?;
        let u = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(|f| f.as_u64())
                .ok_or_else(|| format!("missing or non-integer field `{name}`"))
        };
        Ok(GvnStats {
            passes: u32::try_from(u("passes")?).map_err(|_| "passes out of range".to_string())?,
            insts_processed: u("insts_processed")?,
            touches: u("touches")?,
            value_inference_visits: u("value_inference_visits")?,
            predicate_inference_visits: u("predicate_inference_visits")?,
            phi_predication_visits: u("phi_predication_visits")?,
            num_insts: u("num_insts")?,
            hash_cons_hits: u("hash_cons_hits")?,
            hash_cons_misses: u("hash_cons_misses")?,
            interned_exprs: u("interned_exprs")?,
            class_merges: u("class_merges")?,
            reassoc_cap_hits: u("reassoc_cap_hits")?,
            vi_gate_skips: u("vi_gate_skips")?,
            pi_gate_skips: u("pi_gate_skips")?,
            vi_cache_hits: u("vi_cache_hits")?,
            vi_cache_misses: u("vi_cache_misses")?,
            vi_cache_evictions: u("vi_cache_evictions")?,
            pi_cache_hits: u("pi_cache_hits")?,
            converged: v
                .get("converged")
                .and_then(|f| f.as_bool())
                .ok_or_else(|| "missing or non-boolean field `converged`".to_string())?,
            outcome: v
                .get("outcome")
                .and_then(|f| f.as_str())
                .and_then(RunOutcome::from_name)
                .ok_or_else(|| "missing or unknown field `outcome`".to_string())?,
            ladder_rung: u32::try_from(u("ladder_rung")?)
                .map_err(|_| "ladder_rung out of range".to_string())?,
            ladder_failures: u32::try_from(u("ladder_failures")?)
                .map_err(|_| "ladder_failures out of range".to_string())?,
        })
    }
}

/// The per-routine strength measures compared in the paper's Figures
/// 10–12: unreachable values and constant values (more is better),
/// congruence classes (fewer is better).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Strength {
    /// Values proven unreachable.
    pub unreachable_values: usize,
    /// Values proven constant. Per §5, unreachable values count as
    /// constant values too ("when a constant value is found to be
    /// unreachable, it improves the number of unreachable values but
    /// worsens the number of constant values; we correct for this by
    /// counting unreachable values as constant values too").
    pub constant_values: usize,
    /// Congruence classes among reachable values.
    pub congruence_classes: usize,
}

impl Strength {
    /// Renders the three measures as one JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_u64("unreachable_values", self.unreachable_values as u64)
            .field_u64("constant_values", self.constant_values as u64)
            .field_u64("congruence_classes", self.congruence_classes as u64);
        w.finish()
    }
}

/// A canonical congruence partition, extracted from [`GvnResults`] by
/// [`GvnResults::partition`].
///
/// The paper's §2.9 emulation claims are *refinement* statements over
/// these partitions: every congruence a weaker configuration finds must
/// also be found by a stronger one. [`Partition::refinement_violation`]
/// and [`Partition::constant_violation`] check those statements
/// mechanically; the differential oracle runs them on millions of
/// generated routines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Dense canonical class per value slot; `None` is ⊥ (the value was
    /// left in `INITIAL`: unreachable or undetermined).
    class: Vec<Option<u32>>,
    /// The constant leader of each canonical class, if any.
    constants: Vec<Option<i64>>,
}

impl Partition {
    /// Number of value slots covered.
    pub fn len(&self) -> usize {
        self.class.len()
    }

    /// `true` when no value slots are covered.
    pub fn is_empty(&self) -> bool {
        self.class.is_empty()
    }

    /// The number of (non-⊥) congruence classes.
    pub fn num_classes(&self) -> usize {
        self.constants.len()
    }

    /// `true` if `v` was determined (not left in `INITIAL`).
    pub fn is_determined(&self, v: Value) -> bool {
        self.class[v.index()].is_some()
    }

    /// The constant `v` was proven to hold, if any.
    pub fn constant_of(&self, v: Value) -> Option<i64> {
        self.constants[self.class[v.index()]? as usize]
    }

    /// `true` if `a` and `b` were proven congruent (⊥ is congruent to
    /// nothing here; the refinement checks treat it as congruent to
    /// everything on the *stronger* side).
    pub fn congruent(&self, a: Value, b: Value) -> bool {
        match (self.class[a.index()], self.class[b.index()]) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Checks that every congruence in `self` (the *weaker* analysis)
    /// also holds in `stronger`: for any pair `a ~ b` here, `stronger`
    /// must either place them in one class or have proven one of them
    /// unreachable (⊥, which is below every class). Returns the first
    /// violating pair, or `None` when the refinement ordering holds.
    pub fn refinement_violation(&self, stronger: &Partition) -> Option<(Value, Value)> {
        debug_assert_eq!(self.class.len(), stronger.class.len());
        // For each weak class: the stronger class of the first determined
        // (on both sides) member, to compare the rest against.
        let mut rep: Vec<Option<(Value, u32)>> = vec![None; self.constants.len()];
        for (i, &wc) in self.class.iter().enumerate() {
            let v = Value::from_u32(i as u32);
            let Some(wc) = wc else { continue };
            let Some(sc) = stronger.class[i] else { continue };
            match rep[wc as usize] {
                None => rep[wc as usize] = Some((v, sc)),
                Some((w, prev)) if prev != sc => return Some((w, v)),
                Some(_) => {}
            }
        }
        None
    }

    /// Checks that every constant in `self` (the *weaker* analysis) is
    /// found identically by `stronger` (or the value is ⊥ there).
    /// Returns the first violation as `(value, weak constant, stronger
    /// constant if any)`.
    pub fn constant_violation(&self, stronger: &Partition) -> Option<(Value, i64, Option<i64>)> {
        debug_assert_eq!(self.class.len(), stronger.class.len());
        for (i, &wc) in self.class.iter().enumerate() {
            let Some(wc) = wc else { continue };
            let Some(k) = self.constants[wc as usize] else { continue };
            if stronger.class[i].is_some() {
                let v = Value::from_u32(i as u32);
                let sk = stronger.constant_of(v);
                if sk != Some(k) {
                    return Some((v, k, sk));
                }
            }
        }
        None
    }
}

/// The outcome of running the GVN algorithm on a routine.
#[derive(Clone, Debug)]
pub struct GvnResults {
    pub(crate) reachable_blocks: EntitySet<Block>,
    pub(crate) reachable_edges: EntitySet<Edge>,
    pub(crate) class_of: Vec<ClassId>,
    pub(crate) leaders: Vec<Leader>,
    /// Statistics of the run.
    pub stats: GvnStats,
}

impl GvnResults {
    /// How the run ended (converged, non-converged, or which budget
    /// ceiling tripped).
    pub fn outcome(&self) -> RunOutcome {
        self.stats.outcome
    }

    /// Returns `true` if the analysis proved `b` reachable.
    pub fn is_block_reachable(&self, b: Block) -> bool {
        self.reachable_blocks.contains(b)
    }

    /// Returns `true` if the analysis proved `e` reachable.
    pub fn is_edge_reachable(&self, e: Edge) -> bool {
        self.reachable_edges.contains(e)
    }

    /// Returns `true` if `v` was proven unreachable (still in `INITIAL`).
    pub fn is_value_unreachable(&self, v: Value) -> bool {
        self.class_of[v.index()] == ClassId::INITIAL
    }

    /// The congruence class of `v`.
    pub fn class_of(&self, v: Value) -> ClassId {
        self.class_of[v.index()]
    }

    /// The constant `v` was proven to hold, if any.
    pub fn constant_value(&self, v: Value) -> Option<i64> {
        match self.leaders[self.class_of(v).index()] {
            Leader::Const(c) => Some(c),
            _ => None,
        }
    }

    /// The leader value of `v`'s class, when the leader is a value.
    pub fn leader_value(&self, v: Value) -> Option<Value> {
        match self.leaders[self.class_of(v).index()] {
            Leader::Value(l) => Some(l),
            _ => None,
        }
    }

    /// Returns `true` if `a` and `b` were proven congruent.
    pub fn congruent(&self, a: Value, b: Value) -> bool {
        let ca = self.class_of(a);
        ca != ClassId::INITIAL && ca == self.class_of(b)
    }

    /// The number of congruence classes among determined values.
    pub fn num_congruence_classes(&self) -> usize {
        // Class ids are dense slot indices, so a flat bitmap replaces the
        // former hash set.
        let mut seen = vec![false; self.leaders.len()];
        let mut count = 0;
        for &c in &self.class_of {
            if c != ClassId::INITIAL && !std::mem::replace(&mut seen[c.index()], true) {
                count += 1;
            }
        }
        count
    }

    /// Extracts the congruence partition the run computed, in the
    /// canonical form used by the differential oracle's lattice checks
    /// (`pgvn-oracle`): per-value dense class ids plus per-class constant
    /// leaders. Values still in `INITIAL` (unreachable/undetermined) are
    /// ⊥ — congruent to everything, constant of every value.
    pub fn partition(&self) -> Partition {
        // Class ids are dense slot indices, so the canonicalization map
        // is a flat vector (first-appearance order, as before).
        let mut canon: Vec<Option<u32>> = vec![None; self.leaders.len()];
        let mut class = Vec::with_capacity(self.class_of.len());
        let mut constants = Vec::new();
        for &c in &self.class_of {
            if c == ClassId::INITIAL {
                class.push(None);
                continue;
            }
            let id = *canon[c.index()].get_or_insert_with(|| {
                let next = constants.len() as u32;
                constants.push(match self.leaders[c.index()] {
                    Leader::Const(k) => Some(k),
                    _ => None,
                });
                next
            });
            class.push(Some(id));
        }
        Partition { class, constants }
    }

    /// The strength measures used by the paper's Figures 10–12.
    pub fn strength(&self) -> Strength {
        let unreachable = self.class_of.iter().filter(|&&c| c == ClassId::INITIAL).count();
        let constants = self
            .class_of
            .iter()
            .filter(|&&c| {
                c == ClassId::INITIAL || matches!(self.leaders[c.index()], Leader::Const(_))
            })
            .count();
        Strength {
            unreachable_values: unreachable,
            constant_values: constants,
            congruence_classes: self.num_congruence_classes(),
        }
    }
}
