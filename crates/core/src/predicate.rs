//! Canonical comparison predicates and implication (§2.7, §2.8).
//!
//! Edge predicates are comparisons over canonical operand expressions.
//! Predicate inference asks: given that `known` holds (it labels a
//! dominating edge), is `query` decided? Two reasoning modes:
//!
//! - **same operand pair**: `a < b` decides `a ≥ b` (false), `a ≤ b`
//!   (true), and so on — a fixed 6×6 implication table;
//! - **intervals against constants**: `1 ≤ X` confines `X` to
//!   `[1, i64::MAX]`, which decides any other comparison of `X` with a
//!   constant whose satisfying set contains or excludes that interval.
//!   This is the integer-aware step behind the paper's example "`Z < 1` is
//!   false in a block dominated by `Z > I₅`" once `I₅`'s leader is 1.

use crate::expr::{ExprId, Interner};
use pgvn_ir::CmpOp;

/// A predicate: `lhs op rhs` over canonical expressions.
///
/// Canonical operand order (the paper §2.8: "the predicates of edges are
/// canonicalized by arranging their operands in order of increasing rank")
/// is established by the evaluator before a `Pred` is built; constants
/// rank lowest and therefore appear on the left.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Pred {
    /// Comparison operator.
    pub op: CmpOp,
    /// Left operand (lower rank).
    pub lhs: ExprId,
    /// Right operand (higher rank).
    pub rhs: ExprId,
}

impl Pred {
    /// The negated predicate (same operands, negated operator).
    pub fn negated(self) -> Pred {
        Pred { op: self.op.negated(), ..self }
    }

    /// Returns `(x, y)` if this is an equality `x == y`.
    pub fn as_equality(self) -> Option<(ExprId, ExprId)> {
        (self.op == CmpOp::Eq).then_some((self.lhs, self.rhs))
    }
}

/// Implication between comparisons of the *same* operand pair: given
/// `a known_op b`, what is the truth of `a query_op b`?
fn same_pair(known_op: CmpOp, query_op: CmpOp) -> Option<bool> {
    use CmpOp::*;
    if known_op == query_op {
        return Some(true);
    }
    match known_op {
        Eq => Some(matches!(query_op, Le | Ge)),
        Ne => match query_op {
            Eq => Some(false),
            _ => None,
        },
        Lt => match query_op {
            Le | Ne => Some(true),
            Eq | Gt | Ge => Some(false),
            Lt => Some(true),
        },
        Gt => match query_op {
            Ge | Ne => Some(true),
            Eq | Lt | Le => Some(false),
            Gt => Some(true),
        },
        Le => match query_op {
            Gt => Some(false),
            _ => None,
        },
        Ge => match query_op {
            Lt => Some(false),
            _ => None,
        },
    }
}

/// The satisfying set of `x op c` as an interval over i128 (so the ±1
/// adjustments cannot overflow), with `Ne` handled separately.
fn interval(op: CmpOp, c: i64) -> Option<(i128, i128)> {
    let c = c as i128;
    let (lo, hi) = (i64::MIN as i128, i64::MAX as i128);
    Some(match op {
        CmpOp::Eq => (c, c),
        CmpOp::Lt => (lo, c - 1),
        CmpOp::Le => (lo, c),
        CmpOp::Gt => (c + 1, hi),
        CmpOp::Ge => (c, hi),
        CmpOp::Ne => return None,
    })
}

/// Decides `x query_op qc` given that `x known_op kc` holds.
fn against_constants(known_op: CmpOp, kc: i64, query_op: CmpOp, qc: i64) -> Option<bool> {
    // Ne as knowledge: only decides the same-constant queries.
    if known_op == CmpOp::Ne {
        return match query_op {
            CmpOp::Eq if qc == kc => Some(false),
            CmpOp::Ne if qc == kc => Some(true),
            _ => None,
        };
    }
    let (klo, khi) = interval(known_op, kc).expect("Ne handled above");
    if klo > khi {
        // The known predicate is unsatisfiable: the program point is
        // dynamically unreachable, so any answer is vacuously sound.
        return Some(true);
    }
    if query_op == CmpOp::Ne {
        let q = qc as i128;
        if q < klo || q > khi {
            return Some(true);
        }
        if klo == khi && klo == q {
            return Some(false);
        }
        return None;
    }
    let (qlo, qhi) = interval(query_op, qc).expect("Ne handled above");
    if klo >= qlo && khi <= qhi {
        Some(true)
    } else if khi < qlo || klo > qhi {
        Some(false)
    } else {
        None
    }
}

/// Decides `query` given that `known` holds, or returns `None`.
///
/// Operands are compared as interned expression ids, which is exactly the
/// congruence the paper requires: both predicates were canonicalized over
/// class leaders by the same evaluator.
pub fn implies(interner: &Interner, known: Pred, query: Pred) -> Option<bool> {
    if known.lhs == query.lhs && known.rhs == query.rhs {
        return same_pair(known.op, query.op);
    }
    // Same-pair with swapped operands cannot occur for canonicalized
    // predicates, but cost nothing to handle defensively.
    if known.lhs == query.rhs && known.rhs == query.lhs {
        return same_pair(known.op, query.op.swapped());
    }
    // Constant-interval reasoning. Canonical form places constants on the
    // lhs; normalize both to "x op c".
    let norm = |p: Pred| -> Option<(ExprId, CmpOp, i64)> {
        if let Some(c) = interner.as_const(p.lhs) {
            // c op x  ⇔  x op.swapped() c
            Some((p.rhs, p.op.swapped(), c))
        } else {
            interner.as_const(p.rhs).map(|c| (p.lhs, p.op, c))
        }
    };
    if let (Some((kx, kop, kc)), Some((qx, qop, qc))) = (norm(known), norm(query)) {
        if kx == qx {
            return against_constants(kop, kc, qop, qc);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_ir::{EntityRef, Value};

    fn setup() -> (Interner, ExprId, ExprId) {
        let mut i = Interner::new();
        let x = i.leader(Value::new(1));
        let y = i.leader(Value::new(2));
        (i, x, y)
    }

    fn pred(op: CmpOp, lhs: ExprId, rhs: ExprId) -> Pred {
        Pred { op, lhs, rhs }
    }

    #[test]
    fn same_pair_table_is_sound() {
        // Exhaustively check the table against concrete integer pairs.
        let (i, x, y) = setup();
        let pairs: Vec<(i64, i64)> = vec![(1, 2), (2, 1), (3, 3), (i64::MIN, i64::MAX), (0, 0)];
        for kop in CmpOp::ALL {
            for qop in CmpOp::ALL {
                if let Some(expect) = implies(&i, pred(kop, x, y), pred(qop, x, y)) {
                    for &(a, b) in &pairs {
                        if kop.eval(a, b) == 1 {
                            assert_eq!(
                                qop.eval(a, b) == 1,
                                expect,
                                "({a} {kop} {b}) true but ({a} {qop} {b}) != {expect}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn same_pair_known_cases() {
        let (i, x, y) = setup();
        assert_eq!(implies(&i, pred(CmpOp::Lt, x, y), pred(CmpOp::Ge, x, y)), Some(false));
        assert_eq!(implies(&i, pred(CmpOp::Lt, x, y), pred(CmpOp::Le, x, y)), Some(true));
        assert_eq!(implies(&i, pred(CmpOp::Eq, x, y), pred(CmpOp::Le, x, y)), Some(true));
        assert_eq!(implies(&i, pred(CmpOp::Le, x, y), pred(CmpOp::Lt, x, y)), None);
        assert_eq!(implies(&i, pred(CmpOp::Ne, x, y), pred(CmpOp::Lt, x, y)), None);
    }

    #[test]
    fn paper_example_z_less_one_false_given_z_greater_one() {
        // Edge predicate: 1 < Z (canonical for Z > 1). Query: Z < 1.
        let mut i = Interner::new();
        let z = i.leader(Value::new(7));
        let one = i.constant(1);
        let known = pred(CmpOp::Lt, one, z);
        let query = pred(CmpOp::Gt, one, z); // canonical form of Z < 1
        assert_eq!(implies(&i, known, query), Some(false));
    }

    #[test]
    fn interval_reasoning_against_constants() {
        let mut i = Interner::new();
        let x = i.leader(Value::new(1));
        let c0 = i.constant(0);
        let c5 = i.constant(5);
        let c10 = i.constant(10);
        // x > 10 implies x > 5, x >= 10, x != 0.
        let known = pred(CmpOp::Lt, c10, x); // 10 < x
        assert_eq!(implies(&i, known, pred(CmpOp::Lt, c5, x)), Some(true));
        assert_eq!(implies(&i, known, pred(CmpOp::Le, c10, x)), Some(true));
        assert_eq!(implies(&i, known, pred(CmpOp::Ne, c0, x)), Some(true));
        // x > 10 decides x < 5 (false) and x == 0 (false).
        assert_eq!(implies(&i, known, pred(CmpOp::Gt, c5, x)), Some(false));
        assert_eq!(implies(&i, known, pred(CmpOp::Eq, c0, x)), Some(false));
        // x > 5 does not decide x > 10.
        let weaker = pred(CmpOp::Lt, c5, x);
        assert_eq!(implies(&i, weaker, pred(CmpOp::Lt, c10, x)), None);
    }

    #[test]
    fn equality_with_constant_decides_everything() {
        let mut i = Interner::new();
        let x = i.leader(Value::new(1));
        let c5 = i.constant(5);
        let c9 = i.constant(9);
        let known = pred(CmpOp::Eq, c5, x);
        assert_eq!(implies(&i, known, pred(CmpOp::Lt, c9, x)), Some(false)); // 9 < x?
        assert_eq!(implies(&i, known, pred(CmpOp::Gt, c9, x)), Some(true)); // 9 > x?
        assert_eq!(implies(&i, known, pred(CmpOp::Ne, c9, x)), Some(true));
        assert_eq!(implies(&i, known, pred(CmpOp::Eq, c5, x)), Some(true));
    }

    #[test]
    fn ne_knowledge_is_weak() {
        let mut i = Interner::new();
        let x = i.leader(Value::new(1));
        let c5 = i.constant(5);
        let known = pred(CmpOp::Ne, c5, x);
        assert_eq!(implies(&i, known, pred(CmpOp::Eq, c5, x)), Some(false));
        assert_eq!(implies(&i, known, pred(CmpOp::Ne, c5, x)), Some(true));
        assert_eq!(implies(&i, known, pred(CmpOp::Lt, c5, x)), None);
    }

    #[test]
    fn boundary_constants_do_not_overflow() {
        let mut i = Interner::new();
        let x = i.leader(Value::new(1));
        let cmin = i.constant(i64::MIN);
        let cmax = i.constant(i64::MAX);
        // x < MIN is unsatisfiable; vacuous truth.
        let known = pred(CmpOp::Gt, cmin, x); // MIN > x
        assert_eq!(implies(&i, known, pred(CmpOp::Eq, cmax, x)), Some(true));
        // x <= MAX always true as knowledge decides nothing new.
        let known2 = pred(CmpOp::Ge, cmax, x); // MAX >= x
        assert_eq!(implies(&i, known2, pred(CmpOp::Eq, cmin, x)), None);
    }

    #[test]
    fn different_operands_are_unrelated() {
        let (mut i, x, y) = setup();
        let z = i.leader(Value::new(9));
        assert_eq!(implies(&i, pred(CmpOp::Lt, x, y), pred(CmpOp::Lt, x, z)), None);
    }

    #[test]
    fn negated_and_equality_helpers() {
        let (_, x, y) = setup();
        let p = pred(CmpOp::Lt, x, y);
        assert_eq!(p.negated().op, CmpOp::Ge);
        assert_eq!(p.as_equality(), None);
        assert_eq!(pred(CmpOp::Eq, x, y).as_equality(), Some((x, y)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pgvn_ir::{EntityRef, Value};
    use proptest::prelude::*;

    fn arb_op() -> impl Strategy<Value = CmpOp> {
        proptest::sample::select(&CmpOp::ALL[..])
    }

    proptest! {
        /// The interval reasoning must be sound for every concrete x that
        /// satisfies the known predicate.
        #[test]
        fn constant_implication_is_sound(
            kop in arb_op(),
            kc in -6i64..7,
            qop in arb_op(),
            qc in -6i64..7,
            x in -10i64..11,
        ) {
            let mut i = Interner::new();
            let xv = i.leader(Value::new(1));
            let kce = i.constant(kc);
            let qce = i.constant(qc);
            // Canonical form: constant on the lhs, so "x kop kc" is
            // written "kc kop.swapped() x".
            let known = Pred { op: kop.swapped(), lhs: kce, rhs: xv };
            let query = Pred { op: qop.swapped(), lhs: qce, rhs: xv };
            if let Some(expect) = implies(&i, known, query) {
                if kop.eval(x, kc) == 1 {
                    prop_assert_eq!(
                        qop.eval(x, qc) == 1,
                        expect,
                        "x={} known x {} {} query x {} {}",
                        x, kop, kc, qop, qc
                    );
                }
            }
        }

        /// Boundary constants must not wrap the ±1 interval adjustments.
        #[test]
        fn extreme_constants_are_sound(
            kop in arb_op(),
            qop in arb_op(),
            kc in proptest::sample::select(&[i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX][..]),
            qc in proptest::sample::select(&[i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX][..]),
            x in proptest::sample::select(&[i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX][..]),
        ) {
            let mut i = Interner::new();
            let xv = i.leader(Value::new(1));
            let kce = i.constant(kc);
            let qce = i.constant(qc);
            let known = Pred { op: kop.swapped(), lhs: kce, rhs: xv };
            let query = Pred { op: qop.swapped(), lhs: qce, rhs: xv };
            if let Some(expect) = implies(&i, known, query) {
                if kop.eval(x, kc) == 1 {
                    prop_assert_eq!(qop.eval(x, qc) == 1, expect);
                }
            }
        }
    }
}
