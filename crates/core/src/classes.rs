//! Congruence classes (§2.2–2.3, §3).
//!
//! A congruence class is a set of values with a *leader* (its
//! representative: a constant or a member value) and a *defining
//! expression* (used by forward propagation). Following §3, classes are
//! implemented as intrusive doubly-linked lists over value indices, so
//! membership moves are O(1) and no sets are allocated per class.
//!
//! Class 0 is the `INITIAL` class: every value starts there with the
//! undetermined leader ⊥; values still in `INITIAL` when the algorithm
//! finishes are unreachable.

use crate::expr::ExprId;
use pgvn_ir::{EntityRef, Value};

/// A congruence class reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(u32);

/// Class ids are dense per-run indices (slot order of creation), so they
/// key the dense entity maps used by the session context.
impl EntityRef for ClassId {
    #[inline]
    fn new(index: usize) -> Self {
        debug_assert!(index < u32::MAX as usize);
        ClassId(index as u32)
    }
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl ClassId {
    /// The `INITIAL` class holding all values at the start.
    pub const INITIAL: ClassId = ClassId(0);

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a class id from a raw index. Only meaningful together
    /// with the [`Classes`] store that produced it.
    #[doc(hidden)]
    pub fn from_raw(raw: u32) -> Self {
        ClassId(raw)
    }
}

impl std::fmt::Display for ClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The representative of a congruence class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Leader {
    /// ⊥ — the class's value is not (yet) determined.
    #[default]
    Undetermined,
    /// The class is a known constant.
    Const(i64),
    /// A member value represents the class.
    Value(Value),
}

#[derive(Clone, Debug, Default)]
struct ClassData {
    head: Option<Value>,
    size: u32,
    leader: Leader,
    expression: Option<ExprId>,
}

/// The congruence class store: `CLASS`, `LEADER`, `EXPRESSION` and `TABLE`
/// from the paper, in one structure.
#[derive(Debug, Default)]
pub struct Classes {
    class_of: Vec<ClassId>,
    next: Vec<Option<Value>>,
    prev: Vec<Option<Value>>,
    classes: Vec<ClassData>,
    /// `TABLE`, keyed by dense expression index (`None` = absent).
    /// Expression ids are interned per run starting at 0, so a flat
    /// vector replaces the former `HashMap<ExprId, ClassId>`.
    table: Vec<Option<ClassId>>,
}

impl Classes {
    /// Creates the store with `num_values` values, all in `INITIAL`.
    pub fn new(num_values: usize) -> Self {
        let mut c = Classes::default();
        c.reset(num_values);
        c
    }

    /// Resets the store to the initial state for `num_values` values —
    /// all in `INITIAL` with leader ⊥, `TABLE` empty — keeping every
    /// allocation so a session context can reuse it across runs.
    pub fn reset(&mut self, num_values: usize) {
        self.class_of.clear();
        self.class_of.resize(num_values, ClassId::INITIAL);
        self.next.clear();
        self.next.resize(num_values, None);
        self.prev.clear();
        self.prev.resize(num_values, None);
        self.classes.clear();
        self.classes.push(ClassData::default());
        self.table.clear();
        // Link all values into INITIAL.
        let mut prev: Option<Value> = None;
        for i in 0..num_values {
            let v = Value::new(i);
            self.prev[i] = prev;
            if let Some(p) = prev {
                self.next[p.index()] = Some(v);
            } else {
                self.classes[0].head = Some(v);
            }
            prev = Some(v);
        }
        self.classes[0].size = num_values as u32;
    }

    /// The class of `v`.
    pub fn class_of(&self, v: Value) -> ClassId {
        self.class_of[v.index()]
    }

    /// The leader of `c`.
    pub fn leader(&self, c: ClassId) -> Leader {
        self.classes[c.index()].leader
    }

    /// Sets the leader of `c`.
    pub fn set_leader(&mut self, c: ClassId, leader: Leader) {
        self.classes[c.index()].leader = leader;
    }

    /// The defining expression of `c`.
    pub fn expression(&self, c: ClassId) -> Option<ExprId> {
        self.classes[c.index()].expression
    }

    /// The number of members of `c`.
    pub fn size(&self, c: ClassId) -> u32 {
        self.classes[c.index()].size
    }

    /// Looks up the class of an expression in `TABLE`.
    pub fn lookup(&self, e: ExprId) -> Option<ClassId> {
        self.table.get(e.index()).copied().flatten()
    }

    /// Iterates over the members of `c`.
    pub fn members(&self, c: ClassId) -> Members<'_> {
        Members { classes: self, cur: self.classes[c.index()].head }
    }

    /// Creates a fresh empty class keyed by `e` with the given leader, and
    /// registers it in `TABLE`.
    pub fn create_class(&mut self, leader: Leader, e: ExprId) -> ClassId {
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(ClassData { head: None, size: 0, leader, expression: Some(e) });
        if e.index() >= self.table.len() {
            self.table.resize(e.index() + 1, None);
        }
        self.table[e.index()] = Some(id);
        id
    }

    fn unlink(&mut self, v: Value) {
        let i = v.index();
        let c = self.class_of[i];
        let (p, n) = (self.prev[i], self.next[i]);
        if let Some(p) = p {
            self.next[p.index()] = n;
        } else {
            self.classes[c.index()].head = n;
        }
        if let Some(n) = n {
            self.prev[n.index()] = p;
        }
        self.prev[i] = None;
        self.next[i] = None;
        self.classes[c.index()].size -= 1;
    }

    fn link(&mut self, v: Value, c: ClassId) {
        let i = v.index();
        let head = self.classes[c.index()].head;
        self.next[i] = head;
        self.prev[i] = None;
        if let Some(h) = head {
            self.prev[h.index()] = Some(v);
        }
        self.classes[c.index()].head = Some(v);
        self.classes[c.index()].size += 1;
        self.class_of[i] = c;
    }

    /// Moves `v` from its current class into `to`. Returns the vacated
    /// class. If the vacated class became empty, its `TABLE` entry,
    /// leader and expression are cleared (paper Figure 4, lines 48–51).
    /// The caller handles the leader-departure case.
    pub fn move_value(&mut self, v: Value, to: ClassId) -> ClassId {
        let from = self.class_of(v);
        debug_assert_ne!(from, to);
        self.unlink(v);
        self.link(v, to);
        if from != ClassId::INITIAL && self.classes[from.index()].size == 0 {
            if let Some(e) = self.classes[from.index()].expression.take() {
                // Only remove if the table still points at this class (it
                // may have been re-keyed meanwhile).
                if self.table.get(e.index()).copied().flatten() == Some(from) {
                    self.table[e.index()] = None;
                }
            }
            self.classes[from.index()].leader = Leader::Undetermined;
        }
        from
    }

    /// Number of classes ever created (including `INITIAL` and emptied
    /// classes).
    pub fn num_class_slots(&self) -> usize {
        self.classes.len()
    }

    /// Number of currently non-empty classes, excluding `INITIAL`.
    pub fn num_live_classes(&self) -> usize {
        self.classes.iter().skip(1).filter(|c| c.size > 0).count()
    }

    /// Capacity of the class arena (allocation-amortization metric).
    pub fn slot_capacity(&self) -> usize {
        self.classes.capacity()
    }

    /// Capacity of the dense `TABLE` (allocation-amortization metric).
    pub fn table_capacity(&self) -> usize {
        self.table.capacity()
    }

    /// Capacity of the per-value arrays (allocation-amortization metric).
    pub fn value_capacity(&self) -> usize {
        self.class_of.capacity()
    }
}

/// Iterator over the members of a class.
#[derive(Debug)]
pub struct Members<'a> {
    classes: &'a Classes,
    cur: Option<Value>,
}

impl Iterator for Members<'_> {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        let v = self.cur?;
        self.cur = self.classes.next[v.index()];
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Value {
        Value::new(i)
    }

    #[test]
    fn all_values_start_in_initial() {
        let c = Classes::new(4);
        for i in 0..4 {
            assert_eq!(c.class_of(v(i)), ClassId::INITIAL);
        }
        assert_eq!(c.size(ClassId::INITIAL), 4);
        assert_eq!(c.leader(ClassId::INITIAL), Leader::Undetermined);
        let members: Vec<Value> = c.members(ClassId::INITIAL).collect();
        assert_eq!(members.len(), 4);
        assert_eq!(c.num_live_classes(), 0);
    }

    #[test]
    fn create_and_move() {
        let mut c = Classes::new(3);
        let e = ExprId::from_raw(7);
        let k = c.create_class(Leader::Const(5), e);
        assert_eq!(c.lookup(e), Some(k));
        assert_eq!(c.size(k), 0);
        let from = c.move_value(v(1), k);
        assert_eq!(from, ClassId::INITIAL);
        assert_eq!(c.class_of(v(1)), k);
        assert_eq!(c.size(k), 1);
        assert_eq!(c.size(ClassId::INITIAL), 2);
        assert_eq!(c.members(k).collect::<Vec<_>>(), vec![v(1)]);
        assert_eq!(c.num_live_classes(), 1);
    }

    #[test]
    fn emptied_class_is_scrubbed() {
        let mut c = Classes::new(2);
        let e1 = ExprId::from_raw(1);
        let e2 = ExprId::from_raw(2);
        let k1 = c.create_class(Leader::Value(v(0)), e1);
        let k2 = c.create_class(Leader::Value(v(0)), e2);
        c.move_value(v(0), k1);
        c.move_value(v(0), k2);
        assert_eq!(c.size(k1), 0);
        assert_eq!(c.lookup(e1), None, "vacated class leaves TABLE");
        assert_eq!(c.leader(k1), Leader::Undetermined);
        assert_eq!(c.expression(k1), None);
        assert_eq!(c.lookup(e2), Some(k2));
    }

    #[test]
    fn reset_restores_initial_state_keeping_capacity() {
        let mut c = Classes::new(6);
        let e = ExprId::from_raw(3);
        let k = c.create_class(Leader::Const(9), e);
        for i in 0..6 {
            c.move_value(v(i), k);
        }
        let slots = c.slot_capacity();
        let table = c.table_capacity();
        let values = c.value_capacity();
        c.reset(6);
        assert_eq!(c.size(ClassId::INITIAL), 6);
        assert_eq!(c.num_live_classes(), 0);
        assert_eq!(c.lookup(e), None, "reset empties TABLE");
        for i in 0..6 {
            assert_eq!(c.class_of(v(i)), ClassId::INITIAL);
        }
        assert_eq!(c.members(ClassId::INITIAL).count(), 6);
        assert!(c.slot_capacity() >= slots);
        assert!(c.table_capacity() >= table);
        assert!(c.value_capacity() >= values);
        // Shrinking the value count keeps the larger allocation too.
        c.reset(2);
        assert_eq!(c.size(ClassId::INITIAL), 2);
        assert_eq!(c.value_capacity(), values);
    }

    #[test]
    fn member_list_survives_interior_removal() {
        let mut c = Classes::new(5);
        let e = ExprId::from_raw(1);
        let k = c.create_class(Leader::Value(v(0)), e);
        for i in 0..5 {
            c.move_value(v(i), k);
        }
        assert_eq!(c.size(k), 5);
        // Remove an interior member (v2) by moving it to a new class.
        let e2 = ExprId::from_raw(2);
        let k2 = c.create_class(Leader::Value(v(2)), e2);
        c.move_value(v(2), k2);
        let mut members: Vec<Value> = c.members(k).collect();
        members.sort();
        assert_eq!(members, vec![v(0), v(1), v(3), v(4)]);
        assert_eq!(c.size(ClassId::INITIAL), 0);
    }
}
