//! Congruence classes (§2.2–2.3, §3).
//!
//! A congruence class is a set of values with a *leader* (its
//! representative: a constant or a member value) and a *defining
//! expression* (used by forward propagation). Following §3, classes are
//! implemented as intrusive doubly-linked lists over value indices, so
//! membership moves are O(1) and no sets are allocated per class.
//!
//! Class 0 is the `INITIAL` class: every value starts there with the
//! undetermined leader ⊥; values still in `INITIAL` when the algorithm
//! finishes are unreachable.

use crate::expr::ExprId;
use pgvn_ir::{EntityRef, Value};
use std::collections::HashMap;

/// A congruence class reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(u32);

impl ClassId {
    /// The `INITIAL` class holding all values at the start.
    pub const INITIAL: ClassId = ClassId(0);

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a class id from a raw index. Only meaningful together
    /// with the [`Classes`] store that produced it.
    #[doc(hidden)]
    pub fn from_raw(raw: u32) -> Self {
        ClassId(raw)
    }
}

impl std::fmt::Display for ClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The representative of a congruence class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Leader {
    /// ⊥ — the class's value is not (yet) determined.
    #[default]
    Undetermined,
    /// The class is a known constant.
    Const(i64),
    /// A member value represents the class.
    Value(Value),
}

#[derive(Clone, Debug, Default)]
struct ClassData {
    head: Option<Value>,
    size: u32,
    leader: Leader,
    expression: Option<ExprId>,
}

/// The congruence class store: `CLASS`, `LEADER`, `EXPRESSION` and `TABLE`
/// from the paper, in one structure.
#[derive(Debug)]
pub struct Classes {
    class_of: Vec<ClassId>,
    next: Vec<Option<Value>>,
    prev: Vec<Option<Value>>,
    classes: Vec<ClassData>,
    table: HashMap<ExprId, ClassId>,
}

impl Classes {
    /// Creates the store with `num_values` values, all in `INITIAL`.
    pub fn new(num_values: usize) -> Self {
        let mut c = Classes {
            class_of: vec![ClassId::INITIAL; num_values],
            next: vec![None; num_values],
            prev: vec![None; num_values],
            classes: vec![ClassData::default()],
            table: HashMap::new(),
        };
        // Link all values into INITIAL.
        let mut prev: Option<Value> = None;
        for i in 0..num_values {
            let v = Value::new(i);
            c.prev[i] = prev;
            if let Some(p) = prev {
                c.next[p.index()] = Some(v);
            } else {
                c.classes[0].head = Some(v);
            }
            prev = Some(v);
        }
        c.classes[0].size = num_values as u32;
        c
    }

    /// The class of `v`.
    pub fn class_of(&self, v: Value) -> ClassId {
        self.class_of[v.index()]
    }

    /// The leader of `c`.
    pub fn leader(&self, c: ClassId) -> Leader {
        self.classes[c.index()].leader
    }

    /// Sets the leader of `c`.
    pub fn set_leader(&mut self, c: ClassId, leader: Leader) {
        self.classes[c.index()].leader = leader;
    }

    /// The defining expression of `c`.
    pub fn expression(&self, c: ClassId) -> Option<ExprId> {
        self.classes[c.index()].expression
    }

    /// The number of members of `c`.
    pub fn size(&self, c: ClassId) -> u32 {
        self.classes[c.index()].size
    }

    /// Looks up the class of an expression in `TABLE`.
    pub fn lookup(&self, e: ExprId) -> Option<ClassId> {
        self.table.get(&e).copied()
    }

    /// Iterates over the members of `c`.
    pub fn members(&self, c: ClassId) -> Members<'_> {
        Members { classes: self, cur: self.classes[c.index()].head }
    }

    /// Creates a fresh empty class keyed by `e` with the given leader, and
    /// registers it in `TABLE`.
    pub fn create_class(&mut self, leader: Leader, e: ExprId) -> ClassId {
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(ClassData { head: None, size: 0, leader, expression: Some(e) });
        self.table.insert(e, id);
        id
    }

    fn unlink(&mut self, v: Value) {
        let i = v.index();
        let c = self.class_of[i];
        let (p, n) = (self.prev[i], self.next[i]);
        if let Some(p) = p {
            self.next[p.index()] = n;
        } else {
            self.classes[c.index()].head = n;
        }
        if let Some(n) = n {
            self.prev[n.index()] = p;
        }
        self.prev[i] = None;
        self.next[i] = None;
        self.classes[c.index()].size -= 1;
    }

    fn link(&mut self, v: Value, c: ClassId) {
        let i = v.index();
        let head = self.classes[c.index()].head;
        self.next[i] = head;
        self.prev[i] = None;
        if let Some(h) = head {
            self.prev[h.index()] = Some(v);
        }
        self.classes[c.index()].head = Some(v);
        self.classes[c.index()].size += 1;
        self.class_of[i] = c;
    }

    /// Moves `v` from its current class into `to`. Returns the vacated
    /// class. If the vacated class became empty, its `TABLE` entry,
    /// leader and expression are cleared (paper Figure 4, lines 48–51).
    /// The caller handles the leader-departure case.
    pub fn move_value(&mut self, v: Value, to: ClassId) -> ClassId {
        let from = self.class_of(v);
        debug_assert_ne!(from, to);
        self.unlink(v);
        self.link(v, to);
        if from != ClassId::INITIAL && self.classes[from.index()].size == 0 {
            if let Some(e) = self.classes[from.index()].expression.take() {
                // Only remove if the table still points at this class (it
                // may have been re-keyed meanwhile).
                if self.table.get(&e) == Some(&from) {
                    self.table.remove(&e);
                }
            }
            self.classes[from.index()].leader = Leader::Undetermined;
        }
        from
    }

    /// Number of classes ever created (including `INITIAL` and emptied
    /// classes).
    pub fn num_class_slots(&self) -> usize {
        self.classes.len()
    }

    /// Number of currently non-empty classes, excluding `INITIAL`.
    pub fn num_live_classes(&self) -> usize {
        self.classes.iter().skip(1).filter(|c| c.size > 0).count()
    }
}

/// Iterator over the members of a class.
#[derive(Debug)]
pub struct Members<'a> {
    classes: &'a Classes,
    cur: Option<Value>,
}

impl Iterator for Members<'_> {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        let v = self.cur?;
        self.cur = self.classes.next[v.index()];
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Value {
        Value::new(i)
    }

    #[test]
    fn all_values_start_in_initial() {
        let c = Classes::new(4);
        for i in 0..4 {
            assert_eq!(c.class_of(v(i)), ClassId::INITIAL);
        }
        assert_eq!(c.size(ClassId::INITIAL), 4);
        assert_eq!(c.leader(ClassId::INITIAL), Leader::Undetermined);
        let members: Vec<Value> = c.members(ClassId::INITIAL).collect();
        assert_eq!(members.len(), 4);
        assert_eq!(c.num_live_classes(), 0);
    }

    #[test]
    fn create_and_move() {
        let mut c = Classes::new(3);
        let e = ExprId::from_raw(7);
        let k = c.create_class(Leader::Const(5), e);
        assert_eq!(c.lookup(e), Some(k));
        assert_eq!(c.size(k), 0);
        let from = c.move_value(v(1), k);
        assert_eq!(from, ClassId::INITIAL);
        assert_eq!(c.class_of(v(1)), k);
        assert_eq!(c.size(k), 1);
        assert_eq!(c.size(ClassId::INITIAL), 2);
        assert_eq!(c.members(k).collect::<Vec<_>>(), vec![v(1)]);
        assert_eq!(c.num_live_classes(), 1);
    }

    #[test]
    fn emptied_class_is_scrubbed() {
        let mut c = Classes::new(2);
        let e1 = ExprId::from_raw(1);
        let e2 = ExprId::from_raw(2);
        let k1 = c.create_class(Leader::Value(v(0)), e1);
        let k2 = c.create_class(Leader::Value(v(0)), e2);
        c.move_value(v(0), k1);
        c.move_value(v(0), k2);
        assert_eq!(c.size(k1), 0);
        assert_eq!(c.lookup(e1), None, "vacated class leaves TABLE");
        assert_eq!(c.leader(k1), Leader::Undetermined);
        assert_eq!(c.expression(k1), None);
        assert_eq!(c.lookup(e2), Some(k2));
    }

    #[test]
    fn member_list_survives_interior_removal() {
        let mut c = Classes::new(5);
        let e = ExprId::from_raw(1);
        let k = c.create_class(Leader::Value(v(0)), e);
        for i in 0..5 {
            c.move_value(v(i), k);
        }
        assert_eq!(c.size(k), 5);
        // Remove an interior member (v2) by moving it to a new class.
        let e2 = ExprId::from_raw(2);
        let k2 = c.create_class(Leader::Value(v(2)), e2);
        c.move_value(v(2), k2);
        let mut members: Vec<Value> = c.members(k).collect();
        members.sort();
        assert_eq!(members, vec![v(0), v(1), v(3), v(4)]);
        assert_eq!(c.size(ClassId::INITIAL), 0);
    }
}
