//! Reusable analysis sessions.
//!
//! Every GVN run needs a pile of scratch state: the expression interner,
//! the congruence-class partition, the `TOUCHED`/`REACHABLE` bitsets,
//! edge/block predicate tables, and the §3 inference gates and memo
//! caches. Building all of that from scratch per routine undercuts the
//! paper's sparseness argument — on batch workloads the allocator, not
//! the algorithm, dominates. A [`GvnContext`] owns all of it across
//! runs: [`GvnContext::clear`] (and the internal per-run `prepare`)
//! resets every structure *without freeing*, so a routine stream reuses
//! the same allocations and steady-state runs perform no per-routine
//! capacity growth.
//!
//! # Cross-run isolation
//!
//! Entity indices (blocks, values, `ExprId`s, `ClassId`s) are only
//! meaningful within one run, so every semantic structure is wiped at
//! run start: the interner restarts at id 0, the partition relinks all
//! values into `INITIAL`, predicate tables are cleared to `None`, and
//! both inference caches are invalidated. Nothing observable can leak
//! from one routine into the next — `tests/session.rs` asserts that a
//! shared context and a fresh context produce identical results over
//! generated corpora. A context is therefore also *rollback-safe*: if a
//! run panics mid-pass (e.g. an injected fault inside the resilient
//! ladder), the half-mutated scratch state is simply re-prepared by the
//! next run.

use crate::classes::Classes;
use crate::expr::{ExprId, Interner};
use crate::predicate::Pred;
use pgvn_ir::{Block, CmpOp, Edge, EntityRef, EntitySet, Function, Inst, Value};
use std::collections::HashMap;

use crate::classes::ClassId;

/// An epoch-stamped dense memo for value inference (§3: "the result of
/// the first value inference can be cached").
///
/// Keys are `(starting block, value)`; the value index is dense, so the
/// memo is one slot per value with the block stored alongside. The
/// driver invalidates it at every block boundary and on every class
/// movement — with a `HashMap` each invalidation rehashed and freed;
/// here [`ViCache::clear`] is a single epoch bump and `get`/`insert`
/// are array accesses. The memo is lossy (one slot per value): a
/// colliding starting block misses and deterministically recomputes the
/// same answer, so only the hit *counter* can differ from an exact map,
/// never a result.
#[derive(Debug, Default)]
pub struct ViCache {
    /// Per-value `(epoch, starting block, inferred expression)`.
    entries: Vec<(u64, Block, ExprId)>,
    epoch: u64,
}

impl ViCache {
    /// Resets the memo for a routine with `num_values` value slots,
    /// keeping the allocation.
    fn prepare(&mut self, num_values: usize) {
        self.entries.clear();
        self.entries.resize(num_values, (0, Block::new(0), ExprId::from_raw(0)));
        self.epoch = 1;
    }

    /// Invalidates every entry in O(1) by advancing the epoch.
    pub fn clear(&mut self) {
        self.epoch += 1;
    }

    /// The memoized inference for `v` starting at `b`, if current.
    pub fn get(&self, b: Block, v: Value) -> Option<ExprId> {
        let &(epoch, block, expr) = self.entries.get(v.index())?;
        (epoch == self.epoch && block == b).then_some(expr)
    }

    /// Memoizes the inference for `v` starting at `b`.
    pub fn insert(&mut self, b: Block, v: Value, expr: ExprId) {
        if let Some(slot) = self.entries.get_mut(v.index()) {
            *slot = (self.epoch, b, expr);
        }
    }
}

/// Capacity snapshot of a context's dominant allocations, for asserting
/// allocation amortization: after a warm-up pass over a routine corpus,
/// re-running the same corpus must leave every capacity unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContextCapacities {
    /// Slots in the interner's expression arena.
    pub interner_exprs: usize,
    /// Capacity of the interner's hash-cons table.
    pub interner_table: usize,
    /// Slots in the congruence-class arena.
    pub class_slots: usize,
    /// Slots in the dense expression → class `TABLE`.
    pub class_table: usize,
    /// Per-value slots in the partition.
    pub value_slots: usize,
}

/// A reusable analysis session: all scratch state of the GVN driver,
/// reset-without-free between runs.
///
/// Construct once, then pass to [`crate::run_in_context`] /
/// [`crate::try_run_traced_in_context`] (or
/// `Pipeline::optimize_with` in `pgvn-transform`) for every routine in
/// a stream. The free-function entry points ([`crate::run`],
/// [`crate::try_run`], …) remain as thin wrappers that construct a
/// throwaway context per call.
///
/// A context is deliberately `Send` but not shared: parallel batch
/// engines give each worker thread its own private context.
#[derive(Debug, Default)]
pub struct GvnContext {
    /// The hash-consed expression arena, restarted (ids from 0) per run.
    pub(crate) interner: Interner,
    /// The congruence-class partition, relinked into `INITIAL` per run.
    pub(crate) classes: Classes,
    /// `REACHABLE` blocks (§2.4).
    pub(crate) reach_blocks: EntitySet<Block>,
    /// `REACHABLE` edges (§2.4).
    pub(crate) reach_edges: EntitySet<Edge>,
    /// `TOUCHED` instructions (§3).
    pub(crate) touched_insts: EntitySet<Inst>,
    /// `TOUCHED` blocks (§3).
    pub(crate) touched_blocks: EntitySet<Block>,
    /// Values whose class changed this run (telemetry).
    pub(crate) changed: EntitySet<Value>,
    /// Per-edge predicates (dense, `None` = no predicate).
    pub(crate) edge_pred: Vec<Option<Pred>>,
    /// Per-block φ-predication predicates (dense).
    pub(crate) block_pred: Vec<Option<ExprId>>,
    /// Per-block `CANONICAL` incoming-edge order (§2.8).
    pub(crate) canonical: Vec<Vec<Edge>>,
    /// §3 gate: classes appearing as the higher-ranked side of an
    /// equality edge predicate. Dense over class indices.
    pub(crate) inferenceable_classes: EntitySet<ClassId>,
    /// §3 gate: operand expressions of current edge predicates. Dense
    /// over expression indices.
    pub(crate) pred_operands: EntitySet<ExprId>,
    /// §3: blocks permanently nullified after an aborted φ-predication.
    pub(crate) nullified_blocks: EntitySet<Block>,
    /// §3 memo for value inference (dense, epoch-invalidated).
    pub(crate) vi_cache: ViCache,
    /// §3 memo for predicate inference. The key `(block, op, lhs, rhs)`
    /// is genuinely sparse — most blocks never query most predicates —
    /// so this stays a hash map; the context reuses its allocation.
    pub(crate) pi_cache: HashMap<(Block, CmpOp, ExprId, ExprId), ExprId>,
    /// φ-predication per-block OR-operand scratch (empty = unvisited).
    pub(crate) or_ops: Vec<Vec<ExprId>>,
    /// Runs served by this context.
    runs: u64,
}

impl GvnContext {
    /// Creates an empty context. Allocations grow on first use and are
    /// retained across runs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of runs this context has served.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Resets all scratch state without freeing, exactly as the next
    /// run's internal `prepare` would. Useful to drop *content* (e.g.
    /// between unrelated batches) while keeping capacity; calling it is
    /// never required for correctness.
    pub fn clear(&mut self) {
        self.interner.clear();
        self.classes.reset(0);
        self.reach_blocks.clear();
        self.reach_edges.clear();
        self.touched_insts.clear();
        self.touched_blocks.clear();
        self.changed.clear();
        self.edge_pred.clear();
        self.block_pred.clear();
        for c in &mut self.canonical {
            c.clear();
        }
        self.inferenceable_classes.clear();
        self.pred_operands.clear();
        self.nullified_blocks.clear();
        self.vi_cache.prepare(0);
        self.pi_cache.clear();
        for o in &mut self.or_ops {
            o.clear();
        }
    }

    /// Sizes and wipes every structure for a run over `func`, keeping
    /// all allocations. Called by the driver at run start — which is
    /// what makes a context rollback-safe after a mid-run panic.
    pub(crate) fn prepare(&mut self, func: &Function) {
        self.runs += 1;
        self.interner.clear();
        self.classes.reset(func.value_capacity());
        self.reach_blocks.clear();
        self.reach_edges.clear();
        self.touched_insts.clear();
        self.touched_blocks.clear();
        self.changed.clear();
        self.edge_pred.clear();
        self.edge_pred.resize(func.edge_capacity(), None);
        self.block_pred.clear();
        self.block_pred.resize(func.block_capacity(), None);
        // Keep inner vectors (and their capacity); never shrink the
        // outer table so a smaller routine reuses the larger one's rows.
        for c in &mut self.canonical {
            c.clear();
        }
        if self.canonical.len() < func.block_capacity() {
            self.canonical.resize_with(func.block_capacity(), Vec::new);
        }
        self.inferenceable_classes.clear();
        self.pred_operands.clear();
        self.nullified_blocks.clear();
        self.vi_cache.prepare(func.value_capacity());
        self.pi_cache.clear();
        for o in &mut self.or_ops {
            o.clear();
        }
        if self.or_ops.len() < func.block_capacity() {
            self.or_ops.resize_with(func.block_capacity(), Vec::new);
        }
    }

    /// Snapshot of the dominant allocation capacities (see
    /// [`ContextCapacities`]).
    pub fn capacities(&self) -> ContextCapacities {
        ContextCapacities {
            interner_exprs: self.interner.expr_capacity(),
            interner_table: self.interner.table_capacity(),
            class_slots: self.classes.slot_capacity(),
            class_table: self.classes.table_capacity(),
            value_slots: self.classes.value_capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vi_cache_epoch_invalidation() {
        let mut c = ViCache::default();
        c.prepare(4);
        let b = Block::new(1);
        let e = ExprId::from_raw(7);
        assert_eq!(c.get(b, Value::new(2)), None);
        c.insert(b, Value::new(2), e);
        assert_eq!(c.get(b, Value::new(2)), Some(e));
        assert_eq!(c.get(Block::new(0), Value::new(2)), None, "block mismatch misses");
        c.clear();
        assert_eq!(c.get(b, Value::new(2)), None, "epoch bump invalidates");
        c.insert(b, Value::new(2), e);
        assert_eq!(c.get(b, Value::new(2)), Some(e));
    }

    #[test]
    fn context_clear_keeps_capacity() {
        let mut ctx = GvnContext::new();
        let mut f = Function::new("t", 1);
        let b = f.entry();
        let x = f.param(0);
        let one = f.iconst(b, 1);
        let a = f.binary(b, pgvn_ir::BinOp::Add, x, one);
        f.set_return(b, a);
        crate::run_in_context(&mut ctx, &f, &crate::GvnConfig::full());
        let caps = ctx.capacities();
        assert!(caps.interner_exprs > 0);
        ctx.clear();
        assert_eq!(ctx.capacities(), caps, "clear() must not free");
        assert_eq!(ctx.runs(), 1);
    }
}
