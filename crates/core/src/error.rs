//! The structured failure taxonomy of the resilient driver.
//!
//! The paper's fixed point converges only when the lattice machinery is
//! correct (§2.1, §3); a bug, an adversarial routine, or a resource
//! blowup must be *contained and classified*, never fatal. Every way an
//! analysis or rewrite can fail is a [`GvnError`] variant; per-routine
//! resource ceilings are a [`GvnBudget`]; and the deterministic
//! fault-injection harness that proves the containment works is driven
//! by a [`FaultPlan`]. See `docs/ROBUSTNESS.md`.

use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Which budget axis a [`GvnError::BudgetExceeded`] tripped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// The configured pass ceiling ([`GvnBudget::max_passes`]).
    Passes,
    /// The wall-clock deadline ([`GvnBudget::time_limit`]).
    Time,
    /// The touched-work quota ([`GvnBudget::max_touches`]) — a memory
    /// and work proxy: every touch enqueues worklist state.
    Work,
}

impl BudgetKind {
    /// Stable snake_case name used in diagnostics and JSON records.
    pub fn name(self) -> &'static str {
        match self {
            BudgetKind::Passes => "passes",
            BudgetKind::Time => "time",
            BudgetKind::Work => "work",
        }
    }
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A recoverable failure of the analysis or rewrite pipeline.
///
/// Replaces the panics and silent truncation on the driver hot paths:
/// [`crate::driver::try_run`] returns these instead of accepting a
/// partial fixed point, and `Pipeline::optimize_resilient` (in
/// `pgvn-transform`) classifies every rung failure with one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GvnError {
    /// The hard pass cap was hit before the fixed point — a convergence
    /// bug in the lattice machinery (§4 proves termination, so this
    /// should never fire on correct code).
    NonConvergence {
        /// Passes executed when the cap was hit.
        passes: u32,
    },
    /// A configured [`GvnBudget`] ceiling was exceeded.
    BudgetExceeded {
        /// Which ceiling tripped.
        budget: BudgetKind,
        /// The configured limit (nanoseconds for [`BudgetKind::Time`]).
        limit: u64,
        /// The amount spent when the ceiling tripped.
        spent: u64,
    },
    /// An internal invariant did not hold (the recoverable replacement
    /// for `expect`/`unwrap` on the driver hot paths).
    InternalInvariant {
        /// What was violated, and where.
        detail: String,
    },
    /// A rewrite produced IR that the `pgvn-ir` verifier rejects; the
    /// degradation ladder rolls back to the pre-rewrite clone.
    VerifierRejected {
        /// The ladder rung (or pipeline stage) whose output was rejected.
        rung: String,
        /// The stable lint code of the first diagnostic the verifier
        /// reported (see `pgvn_ir::diag::codes`).
        code: String,
        /// The verifier's message.
        error: String,
    },
    /// A panic unwound out of the analysis or a rewrite and was caught
    /// at the isolation boundary.
    Panicked {
        /// The panic payload, when it was a string.
        payload: String,
    },
}

impl GvnError {
    /// Shorthand for an [`GvnError::InternalInvariant`].
    pub fn invariant(detail: impl Into<String>) -> Self {
        GvnError::InternalInvariant { detail: detail.into() }
    }

    /// Stable snake_case tag for JSON records and matrix jobs.
    pub fn kind(&self) -> &'static str {
        match self {
            GvnError::NonConvergence { .. } => "non_convergence",
            GvnError::BudgetExceeded { .. } => "budget_exceeded",
            GvnError::InternalInvariant { .. } => "internal_invariant",
            GvnError::VerifierRejected { .. } => "verifier_rejected",
            GvnError::Panicked { .. } => "panicked",
        }
    }
}

impl fmt::Display for GvnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GvnError::NonConvergence { passes } => {
                write!(f, "analysis did not converge within {passes} passes")
            }
            GvnError::BudgetExceeded { budget, limit, spent } => {
                write!(f, "{budget} budget exceeded: spent {spent} of {limit}")
            }
            GvnError::InternalInvariant { detail } => {
                write!(f, "internal invariant violated: {detail}")
            }
            GvnError::VerifierRejected { rung, code, error } => {
                write!(
                    f,
                    "rewrite output rejected by the IR verifier at rung {rung} [{code}]: {error}"
                )
            }
            GvnError::Panicked { payload } => write!(f, "panicked: {payload}"),
        }
    }
}

impl Error for GvnError {}

/// Per-routine resource ceilings, checked inside the TOUCHED worklist
/// loop. The default is unlimited on every axis, which reproduces the
/// classic driver exactly; a production caller sets ceilings so one
/// pathological routine cannot sink a batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GvnBudget {
    /// Ceiling on *started* RPO passes. A run needing more returns
    /// [`GvnError::BudgetExceeded`] with [`BudgetKind::Passes`]. Note the
    /// hard convergence cap (`MAX_PASSES`) is separate and reports
    /// [`GvnError::NonConvergence`].
    pub max_passes: Option<u32>,
    /// Wall-clock deadline for the fixed point, checked once per block
    /// visit.
    pub time_limit: Option<Duration>,
    /// Quota on total touch operations (worklist growth — the memory
    /// proxy), checked after every processed instruction.
    pub max_touches: Option<u64>,
}

impl GvnBudget {
    /// No ceilings (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// `true` when no ceiling is configured on any axis.
    pub fn is_unlimited(&self) -> bool {
        self.max_passes.is_none() && self.time_limit.is_none() && self.max_touches.is_none()
    }

    /// Sets the pass ceiling.
    pub fn passes(mut self, max: u32) -> Self {
        self.max_passes = Some(max);
        self
    }

    /// Sets the wall-clock deadline.
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Sets the touched-work quota.
    pub fn touches(mut self, max: u64) -> Self {
        self.max_touches = Some(max);
        self
    }
}

/// Which failure class a [`FaultPlan`] injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// `panic!` at the site — exercises the `catch_unwind` isolation.
    Panic,
    /// Return [`GvnError::InternalInvariant`] at the site.
    Invariant,
    /// Return [`GvnError::BudgetExceeded`] (work axis) at the site.
    Budget,
    /// Corrupt the rewritten function so the IR verifier rejects it —
    /// exercises the degradation ladder's verifier gate. Only meaningful
    /// at [`FaultSite::Rewrite`].
    VerifierReject,
}

impl FaultKind {
    /// Stable kebab-case name (CLI `--inject` syntax, JSON records).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Invariant => "invariant",
            FaultKind::Budget => "budget",
            FaultKind::VerifierReject => "verifier-reject",
        }
    }

    /// Parses a [`FaultKind::name`] string.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "panic" => Some(FaultKind::Panic),
            "invariant" => Some(FaultKind::Invariant),
            "budget" => Some(FaultKind::Budget),
            "verifier-reject" => Some(FaultKind::VerifierReject),
            _ => None,
        }
    }

    /// All fault classes, for matrix jobs.
    pub const ALL: [FaultKind; 4] =
        [FaultKind::Panic, FaultKind::Invariant, FaultKind::Budget, FaultKind::VerifierReject];
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a [`FaultPlan`] injects its fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Symbolic evaluation of a touched instruction.
    Eval,
    /// Outgoing-edge (jump/branch/switch) processing.
    Edges,
    /// Block-predicate computation (φ-predication).
    PhiPred,
    /// The rewrite stages of the transform pipeline.
    Rewrite,
}

impl FaultSite {
    /// Stable name (CLI `--inject` syntax, JSON records).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Eval => "eval",
            FaultSite::Edges => "edges",
            FaultSite::PhiPred => "phipred",
            FaultSite::Rewrite => "rewrite",
        }
    }

    /// Parses a [`FaultSite::name`] string.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "eval" => Some(FaultSite::Eval),
            "edges" => Some(FaultSite::Edges),
            "phipred" => Some(FaultSite::PhiPred),
            "rewrite" => Some(FaultSite::Rewrite),
            _ => None,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic fault-injection plan, carried in
/// [`crate::GvnConfig::fault_plan`] and seeded like `debug_miscompile`:
/// the same plan on the same routine fires at the same site visit every
/// time, so a red fault-matrix run replays exactly.
///
/// Within one analysis run the fault fires once, on the `seed % 8`-th
/// visit to the chosen site. Across the degradation ladder a non-sticky
/// plan is stripped after the first failed rung (modelling a transient
/// or config-specific failure, so the ladder demonstrably recovers one
/// rung down); a sticky plan poisons every analysis rung and forces the
/// routine all the way to the verified-identity rung.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The failure class to inject.
    pub kind: FaultKind,
    /// Where to inject it.
    pub site: FaultSite,
    /// Deterministic trigger seed: the fault fires on the `seed % 8`-th
    /// visit to the site (per analysis run; per round for rewrite sites).
    pub seed: u64,
    /// Keep injecting on every ladder rung instead of only the first.
    pub sticky: bool,
}

impl FaultPlan {
    /// A plan firing `kind` at `site` on the first visit.
    pub fn new(kind: FaultKind, site: FaultSite) -> Self {
        FaultPlan { kind, site, seed: 0, sticky: false }
    }

    /// Sets the trigger seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Makes the plan fire on every ladder rung.
    pub fn sticky(mut self) -> Self {
        self.sticky = true;
        self
    }

    /// The site-visit countdown this plan starts from.
    pub fn countdown(&self) -> u64 {
        self.seed % 8
    }

    /// Parses the CLI `kind@site` syntax (e.g. `panic@eval`,
    /// `verifier-reject@rewrite`).
    pub fn parse(s: &str) -> Option<Self> {
        let (kind, site) = s.split_once('@')?;
        Some(FaultPlan::new(FaultKind::parse(kind)?, FaultSite::parse(site)?))
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.kind, self.site)?;
        if self.sticky {
            f.write_str(" (sticky)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_kinds_and_display_are_stable() {
        let cases: [(GvnError, &str); 5] = [
            (GvnError::NonConvergence { passes: 10_000 }, "non_convergence"),
            (
                GvnError::BudgetExceeded { budget: BudgetKind::Time, limit: 5, spent: 9 },
                "budget_exceeded",
            ),
            (GvnError::invariant("boom"), "internal_invariant"),
            (
                GvnError::VerifierRejected {
                    rung: "full".into(),
                    code: "block_no_terminator".into(),
                    error: "bad".into(),
                },
                "verifier_rejected",
            ),
            (GvnError::Panicked { payload: "aiee".into() }, "panicked"),
        ];
        for (e, kind) in cases {
            assert_eq!(e.kind(), kind);
            assert!(!e.to_string().is_empty());
            assert!(!e.to_string().contains('\n'), "one-line diagnostics only: {e}");
        }
    }

    #[test]
    fn budget_builders_compose() {
        let b = GvnBudget::unlimited();
        assert!(b.is_unlimited());
        let b = b.passes(4).deadline(Duration::from_millis(10)).touches(1_000);
        assert!(!b.is_unlimited());
        assert_eq!(b.max_passes, Some(4));
        assert_eq!(b.time_limit, Some(Duration::from_millis(10)));
        assert_eq!(b.max_touches, Some(1_000));
        assert_eq!(GvnBudget::default(), GvnBudget::unlimited());
    }

    #[test]
    fn fault_plan_parses_cli_syntax() {
        for kind in FaultKind::ALL {
            for site in [FaultSite::Eval, FaultSite::Edges, FaultSite::PhiPred, FaultSite::Rewrite]
            {
                let text = format!("{kind}@{site}");
                let plan = FaultPlan::parse(&text).unwrap_or_else(|| panic!("parses {text}"));
                assert_eq!(plan.kind, kind);
                assert_eq!(plan.site, site);
                assert!(!plan.sticky);
            }
        }
        assert!(FaultPlan::parse("panic").is_none());
        assert!(FaultPlan::parse("bogus@eval").is_none());
        assert!(FaultPlan::parse("panic@bogus").is_none());
    }

    #[test]
    fn fault_plan_countdown_is_deterministic() {
        let p = FaultPlan::new(FaultKind::Panic, FaultSite::Eval).seeded(13);
        assert_eq!(p.countdown(), 13 % 8);
        assert_eq!(p.countdown(), p.countdown());
        assert!(p.sticky().sticky);
    }
}
