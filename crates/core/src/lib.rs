//! # pgvn-core — predicated sparse global value numbering
//!
//! A faithful reproduction of the algorithm in Karthik Gargi, *"A Sparse
//! Algorithm for Predicated Global Value Numbering"*, PLDI 2002: a single
//! fixed point unifying optimistic value numbering, constant folding,
//! algebraic simplification, unreachable code elimination, global
//! reassociation, predicate and value inference, and φ-predication, over
//! a sparse `TOUCHED` worklist formulation.
//!
//! The analyses can be toggled independently ([`GvnConfig`]); specific
//! combinations emulate the baselines the paper compares against (Click's
//! algorithm, Wegman–Zadeck SCCP, AWZ/Simpson value numbering). The value
//! numbering mode can be optimistic, balanced or pessimistic ([`Mode`]),
//! and both the *practical* and *complete* variants are implemented
//! ([`Variant`]).
//!
//! ```
//! use pgvn_lang::compile;
//! use pgvn_ssa::SsaStyle;
//! use pgvn_core::{run, GvnConfig};
//!
//! // GVN proves `return (a + b) - (b + a)` is the constant 0.
//! let f = compile("routine f(a, b) { return (a + b) - (b + a); }", SsaStyle::Pruned)?;
//! let results = run(&f, &GvnConfig::full());
//! let ret = f.blocks().filter_map(|b| f.terminator(b)).find_map(|t| {
//!     match f.kind(t) {
//!         pgvn_ir::InstKind::Return(v) => Some(*v),
//!         _ => None,
//!     }
//! }).unwrap();
//! assert_eq!(results.constant_value(ret), Some(0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod annotate;
pub mod classes;
pub mod config;
pub mod context;
pub mod driver;
pub mod error;
pub mod expr;
pub mod linear;
pub mod predicate;
pub mod results;

pub use annotate::{annotated, class_report};
pub use classes::{ClassId, Classes, Leader};
pub use config::{GvnConfig, Mode, Variant};
pub use context::{ContextCapacities, GvnContext, ViCache};
pub use driver::{
    run, run_in_context, run_traced, run_traced_in_context, try_run, try_run_in_context,
    try_run_traced, try_run_traced_in_context,
};
pub use error::{BudgetKind, FaultKind, FaultPlan, FaultSite, GvnBudget, GvnError};
pub use expr::{ExprId, ExprKind, Interner, PhiKey};
pub use linear::{LinearExpr, Term};
pub use predicate::{implies, Pred};
pub use results::{GvnResults, GvnStats, Partition, RunOutcome, Strength};
