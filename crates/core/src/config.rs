//! Configuration of the GVN algorithm.
//!
//! The paper's algorithm "offers a range of tradeoffs between compilation
//! time and optimization strength" (§1.3) by letting each unified analysis
//! be disabled independently, and by choosing between optimistic, balanced
//! and pessimistic value numbering. §2.9 shows that specific combinations
//! emulate prior algorithms; the presets here reproduce those baselines
//! for the evaluation figures.

use crate::error::{FaultPlan, GvnBudget};

/// How cyclic values (φs fed by back edges) are treated, §1.1–1.2.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Mode {
    /// The optimistic assumption: back-edge values are initially ignored;
    /// the analysis iterates to a fixed point. Strongest, slowest.
    #[default]
    Optimistic,
    /// The paper's new middle point: unreachable-code detection is kept
    /// optimistic but every cyclic φ is a unique value, and the algorithm
    /// terminates after one pass (§2.6).
    Balanced,
    /// Everything reachable, cyclic φs unique, one pass. Fastest, weakest.
    Pessimistic,
}

/// Which of the paper's two algorithm variants to run (§2.7).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Static dominator tree + single-reachable-incoming-edge refinement;
    /// RPO-downstream touching; no inference across back edges.
    #[default]
    Practical,
    /// Reachable dominator tree (incrementally maintained); touching by
    /// dominance/postdominance.
    Complete,
}

/// Feature toggles for the unified analyses.
///
/// Construct via a preset ([`GvnConfig::full`], [`GvnConfig::click`],
/// [`GvnConfig::sccp`], [`GvnConfig::awz`], [`GvnConfig::basic`]) and
/// refine with the builder-style setters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GvnConfig {
    /// Value numbering mode.
    pub mode: Mode,
    /// Practical or complete variant.
    pub variant: Variant,
    /// Sparse worklist formulation; disabling reproduces the "Dense"
    /// column of Table 2 (every pass re-processes every instruction).
    pub sparse: bool,
    /// Constant folding during symbolic evaluation.
    pub constant_folding: bool,
    /// Algebraic simplification (identities, commutative canonicalization).
    pub algebraic_simplification: bool,
    /// Unreachable code elimination inside the fixed point. When `false`
    /// every statically reachable block/edge is assumed reachable.
    pub unreachable_code_elim: bool,
    /// Global reassociation: forward propagation plus the commutative,
    /// associative and distributive laws over sums of products (§2.2).
    pub global_reassociation: bool,
    /// Predicate inference (§2.7).
    pub predicate_inference: bool,
    /// Value inference (§2.7).
    pub value_inference: bool,
    /// Restrict value inference to replacements by constants (§3 notes
    /// this "appears to give slightly better results in practice").
    pub value_inference_constants_only: bool,
    /// φ-predication (§2.8).
    pub phi_predication: bool,
    /// §3: "the predicate of a block can be permanently nullified after
    /// an abnormal termination of φ-predication; this usually improves
    /// efficiency at a small cost in strength". Aborts are caused by back
    /// edges in the region and are monotone under growing reachability,
    /// so the paper (and this default) enables it.
    pub nullify_aborted_predicates: bool,
    /// Forward propagation is cancelled when a reassociated expression
    /// exceeds this many terms/factors (§2.2 footnote 4).
    pub forward_propagation_limit: usize,
    /// Wegman–Zadeck SCCP emulation: non-constant expressions are replaced
    /// by the defining value itself, so only constants and reachability
    /// propagate (§2.9).
    pub sccp_only: bool,
    /// The §7 extension: at a block with several reachable incoming
    /// edges, inference may use knowledge carried by *all* of them when
    /// they agree (joint domination by multiple congruent predicates) —
    /// "which would enable the practical algorithm to completely unify
    /// predicate and value inference with unreachable code elimination".
    /// Off by default.
    pub joint_domination: bool,
    /// Deliberately miscompile: constant folding of additions yields a
    /// result that is off by one. Never enabled by any preset; the
    /// differential-testing oracle (`pgvn-oracle`) switches it on to
    /// prove that its translation validator catches real miscompiles and
    /// that its shrinker can minimize the resulting failures. See
    /// `docs/ORACLE.md`.
    pub debug_miscompile: bool,
    /// The §6 extension: distribute operations over φ-functions with
    /// congruent keys — `φ(x₁,x₂) op φ(y₁,y₂) → φ(x₁ op y₁, x₂ op y₂)`
    /// and `c op φ(x₁,x₂) → φ(c op x₁, c op x₂)` — which captures the
    /// Rüthing–Knoop–Steffen congruences of Figure 14. Off by default
    /// (the paper leaves it as future work: "it remains to be seen
    /// whether this is practical").
    pub phi_op_distribution: bool,
    /// Per-routine resource ceilings (pass ceiling, wall-clock deadline,
    /// touched-work quota) checked inside the TOUCHED worklist loop.
    /// Unlimited by default; see `docs/ROBUSTNESS.md`.
    pub budget: GvnBudget,
    /// Deterministic fault-injection plan. Never set by any preset; the
    /// resilience self-checks and the `pgvn batch --inject` harness use
    /// it to prove that every failure class is contained and classified.
    pub fault_plan: Option<FaultPlan>,
}

impl GvnConfig {
    /// The full algorithm: everything enabled, optimistic, practical.
    pub fn full() -> Self {
        GvnConfig {
            mode: Mode::Optimistic,
            variant: Variant::Practical,
            sparse: true,
            constant_folding: true,
            algebraic_simplification: true,
            unreachable_code_elim: true,
            global_reassociation: true,
            predicate_inference: true,
            value_inference: true,
            value_inference_constants_only: false,
            phi_predication: true,
            nullify_aborted_predicates: true,
            forward_propagation_limit: 16,
            sccp_only: false,
            debug_miscompile: false,
            joint_domination: false,
            phi_op_distribution: false,
            budget: GvnBudget::unlimited(),
            fault_plan: None,
        }
    }

    /// Sets the per-routine resource ceilings (see [`GvnBudget`]).
    pub fn budget(mut self, budget: GvnBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Arms (or disarms) the deterministic fault-injection plan (see
    /// [`FaultPlan`]).
    pub fn fault_plan(mut self, plan: Option<FaultPlan>) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Enables or disables the deliberate-miscompilation debug knob
    /// (see [`GvnConfig::debug_miscompile`]).
    pub fn miscompile(mut self, on: bool) -> Self {
        self.debug_miscompile = on;
        self
    }

    /// The full algorithm plus the proposed extensions: §6 φ-operation
    /// distribution and §7 joint domination.
    pub fn extended() -> Self {
        GvnConfig { phi_op_distribution: true, joint_domination: true, ..Self::full() }
    }

    /// Emulates Click's strongest algorithm: optimistic value numbering
    /// unified with constant folding, algebraic simplification and
    /// unreachable code elimination — but no reassociation, inference or
    /// φ-predication (§2.9).
    pub fn click() -> Self {
        GvnConfig {
            global_reassociation: false,
            predicate_inference: false,
            value_inference: false,
            phi_predication: false,
            ..Self::full()
        }
    }

    /// Emulates Wegman–Zadeck sparse conditional constant propagation:
    /// only constants and reachability propagate (§2.9).
    pub fn sccp() -> Self {
        GvnConfig { sccp_only: true, ..Self::click() }
    }

    /// Emulates Alpern–Wegman–Zadeck / Simpson RPO: only optimistic value
    /// numbering — no constant folding, simplification or unreachable code
    /// elimination (§2.9).
    pub fn awz() -> Self {
        GvnConfig {
            constant_folding: false,
            algebraic_simplification: false,
            unreachable_code_elim: false,
            ..Self::click()
        }
    }

    /// The "Basic" configuration of Table 2: the full driver with global
    /// reassociation, predicate inference, value inference and
    /// φ-predication disabled (identical analyses to [`GvnConfig::click`]).
    pub fn basic() -> Self {
        Self::click()
    }

    /// Sets the value numbering mode.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the algorithm variant.
    pub fn variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Enables or disables the sparse formulation.
    pub fn sparse(mut self, sparse: bool) -> Self {
        self.sparse = sparse;
        self
    }
}

impl Default for GvnConfig {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_enables_everything() {
        let c = GvnConfig::full();
        assert!(c.sparse && c.constant_folding && c.algebraic_simplification);
        assert!(c.unreachable_code_elim && c.global_reassociation);
        assert!(c.predicate_inference && c.value_inference && c.phi_predication);
        assert!(!c.sccp_only);
        assert!(c.budget.is_unlimited());
        assert!(c.fault_plan.is_none());
        assert_eq!(c.mode, Mode::Optimistic);
        assert_eq!(c.variant, Variant::Practical);
        assert_eq!(GvnConfig::default(), c);
    }

    #[test]
    fn click_disables_new_analyses_only() {
        let c = GvnConfig::click();
        assert!(c.constant_folding && c.algebraic_simplification && c.unreachable_code_elim);
        assert!(
            !c.global_reassociation
                && !c.predicate_inference
                && !c.value_inference
                && !c.phi_predication
        );
    }

    #[test]
    fn sccp_builds_on_click() {
        let c = GvnConfig::sccp();
        assert!(c.sccp_only);
        assert!(c.unreachable_code_elim && c.constant_folding);
    }

    #[test]
    fn awz_is_pure_value_numbering() {
        let c = GvnConfig::awz();
        assert!(!c.constant_folding && !c.algebraic_simplification && !c.unreachable_code_elim);
        assert!(!c.sccp_only);
    }

    #[test]
    fn extended_adds_distribution_only() {
        let e = GvnConfig::extended();
        assert!(e.phi_op_distribution && e.joint_domination);
        assert_eq!(
            GvnConfig { phi_op_distribution: false, joint_domination: false, ..e },
            GvnConfig::full()
        );
        assert!(!GvnConfig::full().phi_op_distribution);
        assert!(!GvnConfig::full().joint_domination);
    }

    #[test]
    fn no_preset_miscompiles() {
        for c in [
            GvnConfig::full(),
            GvnConfig::extended(),
            GvnConfig::click(),
            GvnConfig::sccp(),
            GvnConfig::awz(),
            GvnConfig::basic(),
        ] {
            assert!(!c.debug_miscompile);
        }
        assert!(GvnConfig::full().miscompile(true).debug_miscompile);
    }

    #[test]
    fn builder_setters() {
        let c = GvnConfig::full().mode(Mode::Balanced).variant(Variant::Complete).sparse(false);
        assert_eq!(c.mode, Mode::Balanced);
        assert_eq!(c.variant, Variant::Complete);
        assert!(!c.sparse);
    }

    #[test]
    fn budget_and_fault_plan_builders() {
        use crate::error::{FaultKind, FaultSite};

        let c = GvnConfig::full()
            .budget(GvnBudget::unlimited().passes(3))
            .fault_plan(Some(FaultPlan::new(FaultKind::Invariant, FaultSite::Eval)));
        assert_eq!(c.budget.max_passes, Some(3));
        assert_eq!(c.fault_plan.map(|p| p.site), Some(FaultSite::Eval));
        assert!(c.fault_plan(None).fault_plan.is_none());
    }
}
