//! Hash-consed symbolic expressions.
//!
//! Symbolic evaluation (§2.2) turns every instruction into a canonical
//! expression over *class leaders*; the `TABLE` mapping from expressions
//! to congruence classes then makes congruence finding a hash lookup.
//! Interning gives every distinct expression a stable [`ExprId`], so
//! expression equality — including the equality of block predicates needed
//! by φ-predication — is an integer comparison.

use crate::linear::LinearExpr;
use pgvn_ir::{BinOp, Block, CmpOp, UnOp, Value};
use std::collections::HashMap;

/// An interned expression reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

impl ExprId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs an id from a raw index. Only meaningful with the
    /// interner that produced the index; exposed for tests and debugging.
    #[doc(hidden)]
    pub fn from_raw(raw: u32) -> Self {
        ExprId(raw)
    }
}

impl std::fmt::Display for ExprId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Expression ids are dense per-run indices, so they key the dense
/// entity maps (`EntitySet`, flat vectors) used by the session context.
impl pgvn_ir::EntityRef for ExprId {
    #[inline]
    fn new(index: usize) -> Self {
        debug_assert!(index < u32::MAX as usize);
        ExprId(index as u32)
    }

    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// The distinguishing context of a φ expression (§2.2, §2.8): a φ's
/// expression carries either its block or — when φ-predication computed
/// one — the block's predicate, which lets φs of *different* blocks with
/// congruent predicates fall into one congruence class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PhiKey {
    /// The φ's own block (no predicate available).
    Block(Block),
    /// The block's predicate expression.
    Pred(ExprId),
}

/// A canonical symbolic expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ExprKind {
    /// An integer constant.
    Const(i64),
    /// An atomic value (a congruence class leader).
    Leader(Value),
    /// A value that is forcibly its own class: cyclic φs under balanced /
    /// pessimistic value numbering (§2.6), and SCCP-mode non-constants.
    Unique(Value),
    /// An opaque token (call/load); congruent only to itself.
    Opaque(u32),
    /// A reassociated linear combination (sum of products of leaders).
    Linear(LinearExpr),
    /// A non-reassociable operation over canonical operands.
    Op(BinOp, Vec<ExprId>),
    /// A unary operation that did not simplify.
    Un(UnOp, ExprId),
    /// A comparison with canonically ordered operands.
    Cmp(CmpOp, ExprId, ExprId),
    /// A φ-function: key plus one argument per (canonically ordered)
    /// reachable incoming edge.
    Phi(PhiKey, Vec<ExprId>),
    /// Conjunction of edge predicates along a path (φ-predication).
    PredAnd(Vec<ExprId>),
    /// Disjunction of path predicates of a block (φ-predication).
    PredOr(Vec<ExprId>),
}

/// The expression interner.
#[derive(Debug, Default)]
pub struct Interner {
    map: HashMap<ExprKind, ExprId>,
    kinds: Vec<ExprKind>,
    hits: u64,
    misses: u64,
    growths: u64,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `kind`, returning its stable id.
    pub fn intern(&mut self, kind: ExprKind) -> ExprId {
        if let Some(&id) = self.map.get(&kind) {
            self.hits += 1;
            return id;
        }
        self.misses += 1;
        let id = ExprId(self.kinds.len() as u32);
        self.kinds.push(kind.clone());
        let before = self.map.capacity();
        self.map.insert(kind, id);
        if self.map.capacity() > before {
            self.growths += 1;
        }
        id
    }

    /// Empties the interner, keeping its allocations: ids restart at 0
    /// and the hit/miss counters reset. Part of the session-context
    /// reset — a reused interner performs no per-run capacity growth
    /// once warm.
    pub fn clear(&mut self) {
        self.map.clear();
        self.kinds.clear();
        self.hits = 0;
        self.misses = 0;
        self.growths = 0;
    }

    /// Capacity of the expression arena (amortization metric).
    pub fn expr_capacity(&self) -> usize {
        self.kinds.capacity()
    }

    /// Capacity of the hash-cons table (amortization metric).
    pub fn table_capacity(&self) -> usize {
        self.map.capacity()
    }

    /// Lookups answered by the hash-cons table.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that interned a fresh expression (equals [`Self::len`]).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hash-cons table capacity growths (rehashes) since the last
    /// [`Interner::clear`]. Zero on a warm session context whose table
    /// already fits the routine.
    pub fn growths(&self) -> u64 {
        self.growths
    }

    /// The expression for `id`.
    pub fn kind(&self, id: ExprId) -> &ExprKind {
        &self.kinds[id.index()]
    }

    /// Number of distinct expressions interned.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Shorthand: interns a constant.
    pub fn constant(&mut self, c: i64) -> ExprId {
        self.intern(ExprKind::Const(c))
    }

    /// Shorthand: interns a leader leaf.
    pub fn leader(&mut self, v: Value) -> ExprId {
        self.intern(ExprKind::Leader(v))
    }

    /// Returns the constant if `id` is a constant (directly or as a
    /// degenerate linear expression).
    pub fn as_const(&self, id: ExprId) -> Option<i64> {
        match self.kind(id) {
            ExprKind::Const(c) => Some(*c),
            ExprKind::Linear(l) => l.as_const(),
            _ => None,
        }
    }

    /// Returns the value if `id` is a single-value leaf.
    pub fn as_value(&self, id: ExprId) -> Option<Value> {
        match self.kind(id) {
            ExprKind::Leader(v) => Some(*v),
            ExprKind::Linear(l) => l.as_single_value(),
            _ => None,
        }
    }

    /// Renders `id` for diagnostics.
    ///
    /// The walk uses an explicit work stack writing into one buffer:
    /// deep expressions (reassociated sums and predicate formulas chain
    /// through thousands of nodes) must not recurse, and per-node
    /// intermediate `String`s would make rendering quadratic.
    pub fn display(&self, id: ExprId) -> String {
        enum Task {
            Expr(ExprId),
            Lit(&'static str),
            Sep(String),
        }
        use std::fmt::Write;
        let mut out = String::new();
        let mut stack = vec![Task::Expr(id)];
        // Children are pushed in reverse so they pop in source order,
        // interleaved with the separators/closers that follow them.
        let push_args = |stack: &mut Vec<Task>, args: &[ExprId], sep: &'static str| {
            stack.push(Task::Lit(")"));
            for (i, &a) in args.iter().enumerate().rev() {
                stack.push(Task::Expr(a));
                if i > 0 {
                    stack.push(Task::Lit(sep));
                }
            }
        };
        while let Some(task) = stack.pop() {
            let id = match task {
                Task::Lit(s) => {
                    out.push_str(s);
                    continue;
                }
                Task::Sep(s) => {
                    out.push_str(&s);
                    continue;
                }
                Task::Expr(id) => id,
            };
            match self.kind(id) {
                ExprKind::Const(c) => {
                    let _ = write!(out, "{c}");
                }
                ExprKind::Leader(v) => {
                    let _ = write!(out, "{v}");
                }
                ExprKind::Unique(v) => {
                    let _ = write!(out, "unique({v})");
                }
                ExprKind::Opaque(t) => {
                    let _ = write!(out, "opaque({t})");
                }
                ExprKind::Linear(l) => {
                    for (i, t) in l.terms.iter().enumerate() {
                        if i > 0 {
                            out.push_str(" + ");
                        }
                        let _ = write!(out, "{}", t.coeff);
                        for f in &t.factors {
                            let _ = write!(out, "·{f}");
                        }
                    }
                    if l.constant != 0 || l.terms.is_empty() {
                        if !l.terms.is_empty() {
                            out.push_str(" + ");
                        }
                        let _ = write!(out, "{}", l.constant);
                    }
                }
                ExprKind::Op(op, args) => {
                    let _ = write!(out, "({op} ");
                    push_args(&mut stack, args, " ");
                }
                ExprKind::Un(op, a) => {
                    let _ = write!(out, "({op} ");
                    stack.push(Task::Lit(")"));
                    stack.push(Task::Expr(*a));
                }
                ExprKind::Cmp(op, a, b) => {
                    out.push('(');
                    stack.push(Task::Lit(")"));
                    stack.push(Task::Expr(*b));
                    stack.push(Task::Sep(format!(" {} ", op.symbol())));
                    stack.push(Task::Expr(*a));
                }
                ExprKind::Phi(key, args) => {
                    out.push_str("φ[");
                    match key {
                        PhiKey::Block(b) => {
                            let _ = write!(out, "{b}](");
                            push_args(&mut stack, args, ", ");
                        }
                        PhiKey::Pred(p) => {
                            push_args(&mut stack, args, ", ");
                            stack.push(Task::Lit("]("));
                            stack.push(Task::Expr(*p));
                        }
                    }
                }
                ExprKind::PredAnd(args) => {
                    out.push('(');
                    push_args(&mut stack, args, " ∧ ");
                }
                ExprKind::PredOr(args) => {
                    out.push('(');
                    push_args(&mut stack, args, " ∨ ");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_ir::EntityRef;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.constant(4);
        let b = i.constant(4);
        let c = i.constant(5);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn structural_equality_of_compounds() {
        let mut i = Interner::new();
        let x = i.leader(Value::new(1));
        let y = i.leader(Value::new(2));
        let e1 = i.intern(ExprKind::Cmp(CmpOp::Lt, x, y));
        let e2 = i.intern(ExprKind::Cmp(CmpOp::Lt, x, y));
        let e3 = i.intern(ExprKind::Cmp(CmpOp::Lt, y, x));
        assert_eq!(e1, e2);
        assert_ne!(e1, e3);
    }

    #[test]
    fn linear_exprs_intern_canonically() {
        let mut i = Interner::new();
        let x = LinearExpr::from_value(Value::new(1));
        let y = LinearExpr::from_value(Value::new(2));
        let a = i.intern(ExprKind::Linear(x.add(&y)));
        let b = i.intern(ExprKind::Linear(y.add(&x)));
        assert_eq!(a, b);
    }

    #[test]
    fn as_const_and_as_value_helpers() {
        let mut i = Interner::new();
        let c = i.constant(9);
        assert_eq!(i.as_const(c), Some(9));
        assert_eq!(i.as_value(c), None);
        let lc = i.intern(ExprKind::Linear(LinearExpr::from_const(9)));
        assert_eq!(i.as_const(lc), Some(9));
        let v = i.leader(Value::new(3));
        assert_eq!(i.as_value(v), Some(Value::new(3)));
        let lv = i.intern(ExprKind::Linear(LinearExpr::from_value(Value::new(3))));
        assert_eq!(i.as_value(lv), Some(Value::new(3)));
    }

    #[test]
    fn phi_keys_distinguish_blocks() {
        let mut i = Interner::new();
        let x = i.leader(Value::new(1));
        let p1 = i.intern(ExprKind::Phi(PhiKey::Block(Block::new(1)), vec![x, x]));
        let p2 = i.intern(ExprKind::Phi(PhiKey::Block(Block::new(2)), vec![x, x]));
        assert_ne!(p1, p2, "φs in different blocks must not collide");
        let pred = i.constant(1);
        let p3 = i.intern(ExprKind::Phi(PhiKey::Pred(pred), vec![x, x]));
        let p4 = i.intern(ExprKind::Phi(PhiKey::Pred(pred), vec![x, x]));
        assert_eq!(p3, p4, "φs with congruent predicates collide");
    }

    #[test]
    fn display_walks_deep_chains_without_recursion() {
        // A ~10k-deep chain: the old recursive renderer overflowed the
        // stack (and was quadratic in intermediate strings) on inputs
        // like this long before real reassociated sums hit it.
        const DEPTH: usize = 10_000;
        let mut i = Interner::new();
        let mut e = i.constant(0);
        for _ in 0..DEPTH {
            e = i.intern(ExprKind::Un(pgvn_ir::UnOp::Neg, e));
        }
        let s = i.display(e);
        assert_eq!(s.matches('(').count(), DEPTH);
        assert_eq!(s.matches(')').count(), DEPTH);
        assert!(s.ends_with(&format!("0{}", ")".repeat(DEPTH))));
    }

    #[test]
    fn display_interleaves_nested_compounds() {
        let mut i = Interner::new();
        let x = i.leader(Value::new(1));
        let y = i.leader(Value::new(2));
        let c = i.constant(3);
        let cmp = i.intern(ExprKind::Cmp(CmpOp::Lt, x, c));
        let cmp2 = i.intern(ExprKind::Cmp(CmpOp::Eq, y, c));
        let and = i.intern(ExprKind::PredAnd(vec![cmp, cmp2]));
        let or = i.intern(ExprKind::PredOr(vec![and, cmp]));
        assert_eq!(i.display(or), "(((v1 < 3) ∧ (v2 == 3)) ∨ (v1 < 3))");
        let phi = i.intern(ExprKind::Phi(PhiKey::Pred(cmp), vec![x, y]));
        assert_eq!(i.display(phi), "φ[(v1 < 3)](v1, v2)");
        let phi_b = i.intern(ExprKind::Phi(PhiKey::Block(Block::new(4)), vec![x, y]));
        assert_eq!(i.display(phi_b), "φ[bb4](v1, v2)");
        let neg = i.intern(ExprKind::Un(pgvn_ir::UnOp::Neg, x));
        let op = i.intern(ExprKind::Op(BinOp::Mul, vec![neg, y]));
        assert_eq!(i.display(op), format!("({} ({} v1) v2)", BinOp::Mul, pgvn_ir::UnOp::Neg));
    }

    #[test]
    fn clear_keeps_allocations_and_restarts_ids() {
        let mut i = Interner::new();
        for k in 0..100 {
            i.constant(k);
        }
        assert_eq!(i.len(), 100);
        assert!(i.growths() > 0, "a cold table grows while filling");
        let exprs = i.expr_capacity();
        let table = i.table_capacity();
        i.clear();
        assert!(i.is_empty());
        assert_eq!(i.hits(), 0);
        assert_eq!(i.misses(), 0);
        assert_eq!(i.growths(), 0);
        assert_eq!(i.expr_capacity(), exprs, "clear must keep the arena");
        assert_eq!(i.table_capacity(), table, "clear must keep the table");
        assert_eq!(i.constant(42), ExprId::from_raw(0), "ids restart at 0");
        // Refilling a warm table performs no capacity growth.
        i.clear();
        for k in 0..100 {
            i.constant(k);
        }
        assert_eq!(i.growths(), 0, "warm table must not regrow");
    }

    #[test]
    fn display_is_readable() {
        let mut i = Interner::new();
        let x = i.leader(Value::new(1));
        let c = i.constant(3);
        let cmp = i.intern(ExprKind::Cmp(CmpOp::Le, c, x));
        assert_eq!(i.display(cmp), "(3 <= v1)");
        let lin = i.intern(ExprKind::Linear(LinearExpr::from_value(Value::new(1)).scale(2)));
        assert_eq!(i.display(lin), "2·v1");
    }
}
