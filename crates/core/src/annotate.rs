//! Human-readable reports of analysis results: the IR annotated with
//! per-value congruence classes and leaders, reachability markers, and a
//! class-by-class summary. Used by the CLI's `--emit analysis` and by
//! anyone debugging the analysis.

use crate::classes::ClassId;
use crate::results::GvnResults;
use pgvn_ir::{Function, Value};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Renders `func` with analysis annotations:
///
/// ```text
/// bb2:                       [unreachable]
///   v5 = add v3, v4          ; c7 = const 12
/// ```
pub fn annotated(func: &Function, results: &GvnResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "routine {} — {} passes, {} classes",
        func.name(),
        results.stats.passes,
        results.num_congruence_classes()
    );
    for b in func.blocks() {
        let marker = if results.is_block_reachable(b) { "" } else { "    [unreachable]" };
        let _ = writeln!(out, "{b}:{marker}");
        for &inst in func.block_insts(b) {
            let mut line = String::new();
            if let Some(r) = func.inst_result(inst) {
                let _ = write!(line, "  {r} = {:?}", func.kind(inst));
            } else {
                let _ = write!(line, "  {:?}", func.kind(inst));
            }
            if let Some(v) = func.inst_result(inst) {
                let _ = write!(line, "    ; {}", describe_value(results, v));
            }
            let _ = writeln!(out, "{line}");
        }
    }
    out
}

fn describe_value(results: &GvnResults, v: Value) -> String {
    if results.is_value_unreachable(v) {
        return "unreachable".to_string();
    }
    let class = results.class_of(v);
    match (results.constant_value(v), results.leader_value(v)) {
        (Some(c), _) => format!("{class} = const {c}"),
        (None, Some(l)) if l != v => format!("{class}, leader {l}"),
        _ => format!("{class} (leader)"),
    }
}

/// A class-by-class summary: members, leader, constant.
pub fn class_report(func: &Function, results: &GvnResults) -> String {
    let mut classes: BTreeMap<ClassId, Vec<Value>> = BTreeMap::new();
    for v in func.values() {
        if !results.is_value_unreachable(v) {
            classes.entry(results.class_of(v)).or_default().push(v);
        }
    }
    let mut out = String::new();
    for (class, mut members) in classes {
        members.sort();
        let head = match (results.constant_value(members[0]), results.leader_value(members[0])) {
            (Some(c), _) => format!("const {c}"),
            (None, Some(l)) => format!("leader {l}"),
            _ => "⊥".to_string(),
        };
        let names: Vec<String> = members.iter().map(Value::to_string).collect();
        let _ = writeln!(out, "{class}: {head} {{ {} }}", names.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, GvnConfig};
    use pgvn_ir::{BinOp, CmpOp};

    fn sample() -> (Function, GvnResults) {
        let mut f = Function::new("s", 2);
        let entry = f.entry();
        let (t, e) = (f.add_block(), f.add_block());
        let a = f.binary(entry, BinOp::Add, f.param(0), f.param(1));
        let b = f.binary(entry, BinOp::Add, f.param(1), f.param(0));
        let two = f.iconst(entry, 2);
        let five = f.iconst(entry, 5);
        let dead = f.cmp(entry, CmpOp::Gt, two, five);
        f.set_branch(entry, dead, t, e);
        let x = f.iconst(t, 9);
        f.set_return(t, x);
        let d = f.binary(e, BinOp::Sub, a, b);
        f.set_return(e, d);
        let r = run(&f, &GvnConfig::full());
        (f, r)
    }

    #[test]
    fn annotated_marks_unreachable_and_constants() {
        let (f, r) = sample();
        let text = annotated(&f, &r);
        assert!(text.contains("[unreachable]"), "{text}");
        assert!(text.contains("const 0"), "sub of congruent values:\n{text}");
        assert!(text.contains("unreachable"), "{text}");
    }

    #[test]
    fn class_report_groups_congruent_values() {
        let (f, r) = sample();
        let report = class_report(&f, &r);
        // The two adds share one line.
        let line = report
            .lines()
            .find(|l| l.contains("v2") && l.contains("v3"))
            .unwrap_or_else(|| panic!("no shared class line:\n{report}"));
        assert!(line.contains("leader"), "{line}");
    }
}
